//! Synthetic LongWriter benchmark: long-generation tasks scored on the
//! six dimensions of the paper's Table 4.
//!
//! The paper scores generations with GPT-4o on relevance, accuracy,
//! coherence, clarity, breadth & depth, and reading experience. Without a
//! judge model we compute mechanical proxies with the same *comparative*
//! semantics: all six reward staying close to the dense-attention
//! reference generation and penalize degenerate output. Scores are on
//! the paper's 0–5 scale.

use serde::{Deserialize, Serialize};
use spec_model::Model;
use spec_tensor::{stats, Matrix, SimRng};

/// A long-generation task: a short planted prompt and a generation
/// length (the LongWriter regime: ~100-token instruction, long output).
#[derive(Debug, Clone)]
pub struct LongWriterTask {
    /// Prompt embeddings.
    pub prompt: Matrix,
    /// Tokens to generate.
    pub gen_len: usize,
}

impl LongWriterTask {
    /// Builds a task with a `prompt_len`-token prompt.
    pub fn build(model: &Model, prompt_len: usize, gen_len: usize, rng: &mut SimRng) -> Self {
        let vocab = model.geometry().vocab;
        let tokens: Vec<usize> = (0..prompt_len).map(|_| rng.below(vocab)).collect();
        Self {
            prompt: model.embed_tokens(&tokens),
            gen_len,
        }
    }
}

/// The six Table-4 dimensions plus their average, 0–5 scale.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LongWriterScores {
    /// Agreement of generated tokens with the dense reference.
    pub relevance: f32,
    /// Logit fidelity to the dense reference (cosine).
    pub accuracy: f32,
    /// Absence of degenerate repetition (distinct bigrams).
    pub coherence: f32,
    /// Confidence of the output distribution (low entropy).
    pub clarity: f32,
    /// Vocabulary coverage of the generation.
    pub breadth_depth: f32,
    /// Geometric mean of coherence and clarity.
    pub reading_experience: f32,
}

impl LongWriterScores {
    /// The average column of Table 4.
    pub fn average(&self) -> f32 {
        (self.relevance
            + self.accuracy
            + self.coherence
            + self.clarity
            + self.breadth_depth
            + self.reading_experience)
            / 6.0
    }
}

/// Inputs to the scorer: what the run generated and what the dense
/// reference generated.
#[derive(Debug, Clone)]
pub struct GenerationRecord<'a> {
    /// Generated token ids.
    pub tokens: &'a [usize],
    /// Per-step logits of the run.
    pub logits: &'a [Vec<f32>],
    /// Dense-reference token ids (same length).
    pub reference_tokens: &'a [usize],
    /// Dense-reference logits.
    pub reference_logits: &'a [Vec<f32>],
}

/// Scores a generation against its dense reference.
///
/// # Panics
///
/// Panics if the record's token/logit lengths disagree.
pub fn score_generation(rec: &GenerationRecord<'_>) -> LongWriterScores {
    assert_eq!(rec.tokens.len(), rec.logits.len(), "tokens/logits mismatch");
    assert_eq!(
        rec.reference_tokens.len(),
        rec.reference_logits.len(),
        "reference mismatch"
    );
    let n = rec.tokens.len().min(rec.reference_tokens.len());
    if n == 0 {
        return LongWriterScores::default();
    }

    // Relevance: token agreement with the reference.
    let agree = rec
        .tokens
        .iter()
        .zip(rec.reference_tokens)
        .filter(|(a, b)| a == b)
        .count() as f32
        / n as f32;
    let relevance = 5.0 * agree;

    // Accuracy: mean logit cosine similarity to the reference.
    let mut cos_sum = 0.0;
    for (a, b) in rec.logits.iter().zip(rec.reference_logits).take(n) {
        cos_sum += cosine(a, b).max(0.0);
    }
    let accuracy = 5.0 * cos_sum / n as f32;

    // Coherence: distinct-bigram fraction (degenerate loops score low).
    let coherence = 5.0 * distinct_bigram_fraction(rec.tokens);

    // Clarity: normalized negentropy of the output distributions.
    let mut clar_sum = 0.0;
    for l in rec.logits.iter().take(n) {
        clar_sum += 1.0 - normalized_entropy(l);
    }
    let clarity = 5.0 * clar_sum / n as f32;

    // Breadth & depth: unique-token coverage, saturating at 50%.
    let unique: std::collections::HashSet<usize> = rec.tokens.iter().copied().collect();
    let coverage = (unique.len() as f32 / n as f32 / 0.5).min(1.0);
    let breadth_depth = 5.0 * coverage;

    let reading_experience =
        5.0 * stats::geometric_mean(&[(coherence / 5.0).max(1e-4), (clarity / 5.0).max(1e-4)]);

    LongWriterScores {
        relevance,
        accuracy,
        coherence,
        clarity,
        breadth_depth,
        reading_experience,
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|v| v * v).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|v| v * v).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

fn distinct_bigram_fraction(tokens: &[usize]) -> f32 {
    if tokens.len() < 2 {
        return 1.0;
    }
    let bigrams: std::collections::HashSet<(usize, usize)> =
        tokens.windows(2).map(|w| (w[0], w[1])).collect();
    bigrams.len() as f32 / (tokens.len() - 1) as f32
}

fn normalized_entropy(logits: &[f32]) -> f32 {
    if logits.len() < 2 {
        return 0.0;
    }
    let mut p = logits.to_vec();
    spec_tensor::ops::softmax_inplace(&mut p);
    let h: f32 = p.iter().filter(|&&x| x > 0.0).map(|&x| -x * x.ln()).sum();
    h / (logits.len() as f32).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{AttentionKind, SimGeometry};

    #[test]
    fn identical_runs_score_maximally_on_fidelity() {
        let tokens = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let logits: Vec<Vec<f32>> = (0..8)
            .map(|i| (0..16).map(|j| if j == i { 5.0 } else { 0.0 }).collect())
            .collect();
        let rec = GenerationRecord {
            tokens: &tokens,
            logits: &logits,
            reference_tokens: &tokens,
            reference_logits: &logits,
        };
        let s = score_generation(&rec);
        assert!((s.relevance - 5.0).abs() < 1e-4);
        assert!((s.accuracy - 5.0).abs() < 1e-4);
        assert!(s.average() > 3.0);
    }

    #[test]
    fn divergent_tokens_reduce_relevance() {
        let a = vec![1, 2, 3, 4];
        let b = vec![9, 9, 9, 9];
        let la: Vec<Vec<f32>> = vec![vec![1.0, 0.0, 0.0]; 4];
        let lb: Vec<Vec<f32>> = vec![vec![0.0, 1.0, 0.0]; 4];
        let rec = GenerationRecord {
            tokens: &a,
            logits: &la,
            reference_tokens: &b,
            reference_logits: &lb,
        };
        let s = score_generation(&rec);
        assert_eq!(s.relevance, 0.0);
        assert!(s.accuracy < 1.0);
    }

    #[test]
    fn repetition_tanks_coherence() {
        let looping = vec![1, 2, 1, 2, 1, 2, 1, 2, 1, 2];
        let varied: Vec<usize> = (0..10).collect();
        let logits = vec![vec![0.0; 8]; 10];
        let rec_loop = GenerationRecord {
            tokens: &looping,
            logits: &logits,
            reference_tokens: &looping,
            reference_logits: &logits,
        };
        let rec_var = GenerationRecord {
            tokens: &varied,
            logits: &logits,
            reference_tokens: &varied,
            reference_logits: &logits,
        };
        assert!(score_generation(&rec_loop).coherence < score_generation(&rec_var).coherence);
    }

    #[test]
    fn task_builder_produces_prompt() {
        let m = Model::new(SimGeometry::tiny(AttentionKind::Gqa), 7);
        let t = LongWriterTask::build(&m, 24, 64, &mut SimRng::seed(1));
        assert_eq!(t.prompt.rows(), 24);
        assert_eq!(t.gen_len, 64);
    }

    #[test]
    fn entropy_bounds() {
        assert!(normalized_entropy(&[1.0, 1.0, 1.0]) > 0.99);
        assert!(normalized_entropy(&[100.0, 0.0, 0.0]) < 0.05);
    }
}
