//! Synthetic long-context workloads with measurable ground truth.
//!
//! The paper evaluates on LongBench (long-context *input*) and LongWriter
//! (long-context *reasoning/generation*). Neither dataset nor a GPT-4o
//! judge is available here, so this crate builds the closest synthetic
//! equivalents with controlled ground truth:
//!
//! * [`context`] — long distractor contexts with **planted evidence**:
//!   evidence and question tokens carry the model's semantic probe
//!   direction, so the (simulated) teacher genuinely attends to evidence
//!   through its own attention mechanism — nothing is scripted;
//! * [`longbench`] — four task families mirroring the paper's LongBench
//!   subset (2WikiMQA, TriviaQA, HotpotQA, PassageCount), scored from the
//!   model's *real attention trace* at the answer step;
//! * [`longwriter`] — long-generation tasks scored on six mechanical
//!   proxy dimensions matching Table 4's rubric.

pub mod context;
pub mod longbench;
pub mod longwriter;
pub mod needle;

pub use context::{ContextBuilder, PlantedContext};
pub use longbench::{LongBenchTask, TaskInstance, TaskKind};
pub use longwriter::{score_generation, LongWriterScores, LongWriterTask};
pub use needle::{DepthSweep, NeedleInstance, NeedleTask};
