//! Synthetic LongBench tasks: 2WikiMQA, TriviaQA, HotpotQA, PassageCount.
//!
//! Each instance is a planted-evidence context plus a task-specific
//! scoring rule applied to the model's *answer-step attention trace*:
//! a group of evidence tokens counts as "found" when the trace assigns it
//! sufficient attention mass relative to the most salient group. The
//! causal chain is real end to end: planting → genuine attention →
//! genuine sparse selection → measured recall/precision. Selections that
//! drop evidence lose it from the softmax and inflate distractor mass,
//! producing genuine false positives.

use crate::context::{ContextBuilder, PlantedContext};
use serde::{Deserialize, Serialize};
use spec_model::{Model, StepTrace};
use spec_tensor::SimRng;

/// The four LongBench task families of the paper's Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// 2WikiMQA: two-hop multi-document QA (F1).
    TwoWikiMqa,
    /// TriviaQA: single-evidence QA (F1).
    TriviaQa,
    /// HotpotQA: two-hop QA with many distractors (F1).
    HotpotQa,
    /// PassageCount: count the relevant passages (exact match).
    PassageCount,
}

impl TaskKind {
    /// All four tasks, in the paper's figure order.
    pub fn all() -> [TaskKind; 4] {
        [
            TaskKind::TwoWikiMqa,
            TaskKind::TriviaQa,
            TaskKind::HotpotQa,
            TaskKind::PassageCount,
        ]
    }

    /// Name as the paper prints it.
    pub fn paper_name(&self) -> &'static str {
        match self {
            TaskKind::TwoWikiMqa => "2WikiMQA",
            TaskKind::TriviaQa => "TriviaQA",
            TaskKind::HotpotQa => "HotpotQA",
            TaskKind::PassageCount => "Passage count",
        }
    }

    /// (gold groups, group size, distractor groups) per task family.
    fn shape(&self, rng: &mut SimRng) -> (usize, usize, usize) {
        match self {
            TaskKind::TwoWikiMqa => (2, 3, 3),
            TaskKind::TriviaQa => (1, 4, 3),
            TaskKind::HotpotQa => (2, 2, 5),
            TaskKind::PassageCount => (2 + rng.below(3), 2, 2),
        }
    }
}

/// One task instance.
#[derive(Debug, Clone)]
pub struct TaskInstance {
    /// The task family.
    pub kind: TaskKind,
    /// The planted context (question token last).
    pub ctx: PlantedContext,
}

/// A task family bound to a context length.
#[derive(Debug, Clone, Copy)]
pub struct LongBenchTask {
    /// The family.
    pub kind: TaskKind,
    /// Context length in tokens.
    pub context_len: usize,
}

impl LongBenchTask {
    /// Builds one instance.
    pub fn build(&self, model: &Model, builder: &ContextBuilder, rng: &mut SimRng) -> TaskInstance {
        let (gold, size, distract) = self.kind.shape(rng);
        let ctx =
            builder.build_with_distractors(model, self.context_len, gold, size, distract, rng);
        TaskInstance {
            kind: self.kind,
            ctx,
        }
    }
}

/// The salience threshold: a group is "found" when its per-token
/// attention is at least this multiple of the uniform baseline
/// `1/total_len`, so dense and sparse runs are scored on equal footing.
pub const SALIENCE_THRESHOLD: f32 = 3.0;

impl TaskInstance {
    /// Salience ratio per group: per-token group attention divided by the
    /// uniform per-token baseline `1/total_len` of the full context,
    /// averaged over layers and query heads. 1.0 = indistinguishable from
    /// background; 0.0 = the group was dropped from attention entirely.
    /// Using the *total* length as the baseline keeps the metric fair
    /// across dense and sparse runs: a perfect sparse selection scores at
    /// least as high as dense (renormalization concentrates mass), while
    /// dropping evidence zeroes it.
    /// Returns `(gold_saliences, distractor_saliences)`.
    pub fn group_saliences(&self, trace: &StepTrace) -> (Vec<f32>, Vec<f32>) {
        let total = self.ctx.emb.rows() + 1;
        let gold = self
            .ctx
            .groups
            .iter()
            .map(|g| group_salience(trace, g, total))
            .collect();
        let distractor = self
            .ctx
            .distractors
            .iter()
            .map(|g| group_salience(trace, g, total))
            .collect();
        (gold, distractor)
    }

    /// Scores the answer-step trace in `[0, 1]` per the task's metric.
    pub fn score(&self, trace: &StepTrace) -> f32 {
        let (gold, distractor) = self.group_saliences(trace);
        let found_gold = gold.iter().filter(|&&s| s >= SALIENCE_THRESHOLD).count();
        let found_distract = distractor
            .iter()
            .filter(|&&s| s >= SALIENCE_THRESHOLD)
            .count();
        match self.kind {
            TaskKind::TriviaQa => {
                // Answer = the most salient group; correct iff it is the
                // gold one and genuinely salient.
                let best_gold = gold.iter().cloned().fold(0.0f32, f32::max);
                let best_distract = distractor.iter().cloned().fold(0.0f32, f32::max);
                if best_gold >= SALIENCE_THRESHOLD && best_gold > best_distract {
                    1.0
                } else {
                    0.0
                }
            }
            TaskKind::TwoWikiMqa | TaskKind::HotpotQa => {
                // F1 over found groups vs gold groups.
                let tp = found_gold as f32;
                let fp = found_distract as f32;
                let fn_ = (gold.len() - found_gold) as f32;
                if tp == 0.0 {
                    0.0
                } else {
                    2.0 * tp / (2.0 * tp + fp + fn_)
                }
            }
            TaskKind::PassageCount => {
                // Exact match of the predicted count.
                let predicted = found_gold + found_distract;
                if predicted == self.ctx.groups.len() {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

fn group_salience(trace: &StepTrace, group: &[usize], total_len: usize) -> f32 {
    let set: std::collections::HashSet<usize> = group.iter().copied().collect();
    let mut total = 0.0;
    let mut count = 0;
    for (layer_w, layer_p) in trace.attn.iter().zip(&trace.positions) {
        for (head, pos) in layer_w.iter().zip(layer_p) {
            let group_mass: f32 = head
                .iter()
                .zip(pos)
                .filter(|(_, p)| set.contains(p))
                .map(|(w, _)| w)
                .sum();
            // (group mass / group size) / (1 / total_len):
            total += group_mass / group.len().max(1) as f32 * total_len as f32;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{AttentionKind, PrefillMode, SimGeometry, SparsePlan};

    fn model() -> Model {
        Model::new(SimGeometry::tiny(AttentionKind::Gqa), 93)
    }

    fn dense_trace(m: &Model, inst: &TaskInstance) -> StepTrace {
        let (mut kv, _) = m.prefill_embeddings(&inst.ctx.emb, PrefillMode::Exact);
        let n = inst.ctx.emb.rows();
        let q = inst.ctx.emb.row(n - 1).to_vec();
        let plan = SparsePlan::dense(m.geometry().layers);
        m.decode_step_traced(&q, n, &mut kv, &plan).1
    }

    #[test]
    fn dense_attention_scores_high_on_all_tasks() {
        let m = model();
        let b = ContextBuilder::new(&m);
        for kind in TaskKind::all() {
            let task = LongBenchTask {
                kind,
                context_len: 128,
            };
            let mut total = 0.0;
            let n = 6;
            for i in 0..n {
                let inst = task.build(&m, &b, &mut SimRng::seed(100 + i));
                let trace = dense_trace(&m, &inst);
                total += inst.score(&trace);
            }
            let avg = total / n as f32;
            assert!(
                avg > 0.6,
                "{}: dense average score {avg}",
                kind.paper_name()
            );
        }
    }

    #[test]
    fn dropping_evidence_degrades_score() {
        let m = model();
        let b = ContextBuilder::new(&m);
        let task = LongBenchTask {
            kind: TaskKind::TwoWikiMqa,
            context_len: 128,
        };
        let mut dense_total = 0.0;
        let mut broken_total = 0.0;
        let n = 6;
        for i in 0..n {
            let inst = task.build(&m, &b, &mut SimRng::seed(200 + i));
            dense_total += inst.score(&dense_trace(&m, &inst));

            // A selection that excludes all evidence.
            let evid: std::collections::HashSet<usize> =
                inst.ctx.evidence.iter().copied().collect();
            let keep: Vec<usize> = (0..=128).filter(|p| !evid.contains(p)).collect();
            let plan = SparsePlan::uniform(m.geometry().layers, m.geometry().kv_heads, keep);
            let (mut kv, _) = m.prefill_embeddings(&inst.ctx.emb, PrefillMode::Exact);
            let q = inst.ctx.emb.row(127).to_vec();
            let (_, trace) = m.decode_step_traced(&q, 128, &mut kv, &plan);
            broken_total += inst.score(&trace);
        }
        assert!(
            broken_total < 0.5 * dense_total,
            "dense {dense_total} vs evidence-free {broken_total}"
        );
    }

    #[test]
    fn passage_count_counts_exactly() {
        let m = model();
        let b = ContextBuilder::new(&m);
        let task = LongBenchTask {
            kind: TaskKind::PassageCount,
            context_len: 128,
        };
        // With dense attention, the count should frequently be exact.
        let mut hits = 0;
        let n = 8;
        for i in 0..n {
            let inst = task.build(&m, &b, &mut SimRng::seed(300 + i));
            let trace = dense_trace(&m, &inst);
            if inst.score(&trace) == 1.0 {
                hits += 1;
            }
        }
        assert!(hits >= n / 2, "only {hits}/{n} exact counts");
    }

    #[test]
    fn shapes_match_task_definitions() {
        let m = model();
        let b = ContextBuilder::new(&m);
        let mut rng = SimRng::seed(9);
        let inst = LongBenchTask {
            kind: TaskKind::TriviaQa,
            context_len: 128,
        }
        .build(&m, &b, &mut rng);
        assert_eq!(inst.ctx.groups.len(), 1);
        assert_eq!(inst.ctx.distractors.len(), 3);
    }
}
