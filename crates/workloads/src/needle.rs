//! Needle-in-a-haystack: the classic long-context retrieval stress test.
//!
//! Not a paper table, but the standard sanity probe for any KV retrieval
//! system (and the regime the paper's agent motivation — "5M search
//! length" — lives in): a single tiny needle planted at a controlled
//! *depth* in a long distractor context. The sweep over depth exposes
//! positional biases (e.g. sliding windows fail at shallow depths,
//! sink-only policies fail at deep ones).

use crate::context::ContextBuilder;
use serde::{Deserialize, Serialize};
use spec_model::{Model, StepTrace};
use spec_tensor::SimRng;

/// One needle placement.
#[derive(Debug, Clone)]
pub struct NeedleInstance {
    /// Context embeddings (question token last).
    pub emb: spec_tensor::Matrix,
    /// The needle's token positions.
    pub needle: Vec<usize>,
    /// Depth fraction in `[0, 1]` (0 = context start).
    pub depth: f32,
}

/// Result of a depth sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DepthSweep {
    /// Depth fractions probed.
    pub depths: Vec<f32>,
    /// Retrieval success (salience above threshold) per depth, in `[0,1]`.
    pub recall: Vec<f32>,
}

/// Builds needle instances at controlled depths.
#[derive(Debug, Clone)]
pub struct NeedleTask {
    /// Context length in tokens.
    pub context_len: usize,
    /// Needle size in tokens.
    pub needle_len: usize,
}

impl NeedleTask {
    /// Builds one instance at `depth` (fraction of the context).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is outside `[0, 1]` or the needle does not fit.
    pub fn build(
        &self,
        model: &Model,
        builder: &ContextBuilder,
        depth: f32,
        rng: &mut SimRng,
    ) -> NeedleInstance {
        assert!((0.0..=1.0).contains(&depth), "depth must be in [0,1]");
        assert!(
            self.needle_len + 8 < self.context_len,
            "needle does not fit"
        );
        let vocab = model.geometry().vocab;
        let tokens: Vec<usize> = (0..self.context_len).map(|_| rng.below(vocab)).collect();
        let mut emb = model.embed_tokens(&tokens);
        let span = self.context_len - self.needle_len - 4;
        let start = 2 + (depth * span as f32) as usize;
        let needle: Vec<usize> = (start..start + self.needle_len).collect();
        for &p in &needle {
            for (x, m) in emb.row_mut(p).iter_mut().zip(builder.probe()) {
                *x += builder.strength * m;
            }
        }
        let q = self.context_len - 1;
        for (x, m) in emb.row_mut(q).iter_mut().zip(builder.probe()) {
            *x += builder.strength * m;
        }
        NeedleInstance { emb, needle, depth }
    }
}

impl NeedleInstance {
    /// Whether the answer-step trace retrieves the needle: its per-token
    /// salience over the uniform baseline exceeds the threshold.
    pub fn found(&self, trace: &StepTrace, threshold: f32) -> bool {
        self.salience(trace) >= threshold
    }

    /// The needle's salience ratio (see `longbench`).
    pub fn salience(&self, trace: &StepTrace) -> f32 {
        let set: std::collections::HashSet<usize> = self.needle.iter().copied().collect();
        let total_len = self.emb.rows() + 1;
        let mut total = 0.0;
        let mut count = 0;
        for (layer_w, layer_p) in trace.attn.iter().zip(&trace.positions) {
            for (head, pos) in layer_w.iter().zip(layer_p) {
                let mass: f32 = head
                    .iter()
                    .zip(pos)
                    .filter(|(_, p)| set.contains(p))
                    .map(|(w, _)| w)
                    .sum();
                total += mass / self.needle.len().max(1) as f32 * total_len as f32;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{AttentionKind, PrefillMode, SimGeometry, SparsePlan};

    fn model() -> Model {
        Model::new(SimGeometry::tiny(AttentionKind::Gqa), 151)
    }

    fn trace_for(m: &Model, inst: &NeedleInstance) -> StepTrace {
        let (mut kv, _) = m.prefill_embeddings(&inst.emb, PrefillMode::Exact);
        let n = inst.emb.rows();
        let q = inst.emb.row(n - 1).to_vec();
        let plan = SparsePlan::dense(m.geometry().layers);
        m.decode_step_traced(&q, n, &mut kv, &plan).1
    }

    #[test]
    fn dense_attention_finds_needles_at_all_depths() {
        let m = model();
        let b = ContextBuilder::new(&m);
        let task = NeedleTask {
            context_len: 96,
            needle_len: 3,
        };
        for depth in [0.0f32, 0.25, 0.5, 0.75, 1.0] {
            let inst = task.build(&m, &b, depth, &mut SimRng::seed(4 + depth as u64));
            let trace = trace_for(&m, &inst);
            assert!(
                inst.found(&trace, 3.0),
                "depth {depth}: salience {}",
                inst.salience(&trace)
            );
        }
    }

    #[test]
    fn needle_at_requested_depth() {
        let m = model();
        let b = ContextBuilder::new(&m);
        let task = NeedleTask {
            context_len: 100,
            needle_len: 2,
        };
        let shallow = task.build(&m, &b, 0.0, &mut SimRng::seed(1));
        let deep = task.build(&m, &b, 1.0, &mut SimRng::seed(1));
        assert!(shallow.needle[0] < 10);
        assert!(deep.needle[0] > 80);
    }

    #[test]
    fn sliding_window_misses_shallow_needles() {
        // The classic failure: a window over the recent tokens cannot
        // retrieve a needle at the start of the context.
        let m = model();
        let b = ContextBuilder::new(&m);
        let task = NeedleTask {
            context_len: 96,
            needle_len: 3,
        };
        let inst = task.build(&m, &b, 0.05, &mut SimRng::seed(8));
        let (mut kv, _) = m.prefill_embeddings(&inst.emb, PrefillMode::Exact);
        let n = inst.emb.rows();
        let q = inst.emb.row(n - 1).to_vec();
        // Window covering only the last 16 positions.
        let keep: Vec<usize> = (n - 16..=n).collect();
        let plan = SparsePlan::uniform(m.geometry().layers, m.geometry().kv_heads, keep);
        let (_, trace) = m.decode_step_traced(&q, n, &mut kv, &plan);
        assert!(!inst.found(&trace, 3.0), "window must miss the needle");
    }
}
