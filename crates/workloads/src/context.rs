//! Planted-evidence context construction.
//!
//! A context is a long sequence of distractor token embeddings with a few
//! *evidence* positions whose embeddings carry the model's semantic probe
//! direction (see `spec_model::probe`). The final *question* token
//! carries the probe too, so the teacher's attention — computed by its
//! real forward pass — concentrates on the evidence. Retrieval algorithms
//! are then measured by whether they keep those positions.

use spec_model::{probe_direction, Model};
use spec_tensor::{Matrix, SimRng};

/// A built context with its ground truth.
#[derive(Debug, Clone)]
pub struct PlantedContext {
    /// `len x hidden` embeddings; the last row is the question token.
    pub emb: Matrix,
    /// Evidence positions (sorted ascending).
    pub evidence: Vec<usize>,
    /// Evidence grouped by passage/hop.
    pub groups: Vec<Vec<usize>>,
    /// Distractor passages: salient-looking token groups planted along a
    /// direction *independent* of the question's probe. The model should
    /// not focus on them; selections that drop evidence inflate their
    /// relative attention mass, producing genuine false positives.
    pub distractors: Vec<Vec<usize>>,
}

/// Builds planted contexts for one model.
#[derive(Debug, Clone)]
pub struct ContextBuilder {
    probe: Vec<f32>,
    /// Planting strength added to evidence/question embeddings.
    pub strength: f32,
}

impl ContextBuilder {
    /// Derives the probe from the model (power iteration on its QK forms).
    pub fn new(model: &Model) -> Self {
        Self {
            probe: probe_direction(model, 30).direction,
            strength: 5.0,
        }
    }

    /// The probe direction in embedding space.
    pub fn probe(&self) -> &[f32] {
        &self.probe
    }

    /// Builds a context of `len` tokens with `groups` evidence groups of
    /// `group_size` adjacent tokens each. The question token is the last
    /// position and is *not* evidence. Shorthand for
    /// [`build_with_distractors`](Self::build_with_distractors) with no
    /// distractor passages.
    pub fn build(
        &self,
        model: &Model,
        len: usize,
        groups: usize,
        group_size: usize,
        rng: &mut SimRng,
    ) -> PlantedContext {
        self.build_with_distractors(model, len, groups, group_size, 0, rng)
    }

    /// Builds a context with `groups` probe-planted evidence groups and
    /// `distractors` salient-but-irrelevant groups of the same size.
    ///
    /// # Panics
    ///
    /// Panics if the groups cannot fit in the context.
    pub fn build_with_distractors(
        &self,
        model: &Model,
        len: usize,
        groups: usize,
        group_size: usize,
        distractors: usize,
        rng: &mut SimRng,
    ) -> PlantedContext {
        let total = groups + distractors;
        assert!(
            total * group_size + 16 <= len,
            "evidence does not fit in context"
        );
        let vocab = model.geometry().vocab;
        let tokens: Vec<usize> = (0..len).map(|_| rng.below(vocab)).collect();
        let mut emb = model.embed_tokens(&tokens);

        // Place group starts away from the edges and from each other.
        let usable = len - group_size - 8;
        let mut starts: Vec<usize> = Vec::new();
        let mut guard = 0;
        while starts.len() < total && guard < 20_000 {
            guard += 1;
            let s = 4 + rng.below(usable.saturating_sub(4).max(1));
            if starts
                .iter()
                .all(|&t: &usize| s.abs_diff(t) > group_size + 2)
            {
                starts.push(s);
            }
        }
        assert_eq!(starts.len(), total, "failed to place evidence groups");
        rng.shuffle(&mut starts);
        let (gold_starts, distractor_starts) = starts.split_at(groups);
        let mut gold_starts = gold_starts.to_vec();
        gold_starts.sort_unstable();
        let mut distractor_starts = distractor_starts.to_vec();
        distractor_starts.sort_unstable();

        // Distractor salience direction: independent of the probe.
        let mut noise_dir = rng.normal_vec(model.geometry().hidden, 1.0);
        let norm = noise_dir
            .iter()
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt()
            .max(1e-9);
        noise_dir.iter_mut().for_each(|v| *v /= norm);

        let mut group_positions = Vec::with_capacity(groups);
        let mut evidence = Vec::new();
        for &s in &gold_starts {
            let gp: Vec<usize> = (s..s + group_size).collect();
            for &p in &gp {
                self.plant_dir(&mut emb, p, &self.probe.clone());
                evidence.push(p);
            }
            group_positions.push(gp);
        }
        let mut distractor_positions = Vec::with_capacity(distractors);
        for &s in &distractor_starts {
            let gp: Vec<usize> = (s..s + group_size).collect();
            for &p in &gp {
                self.plant_dir(&mut emb, p, &noise_dir);
            }
            distractor_positions.push(gp);
        }
        evidence.sort_unstable();
        // Question token.
        let q = len - 1;
        self.plant_dir(&mut emb, q, &self.probe.clone());

        PlantedContext {
            emb,
            evidence,
            groups: group_positions,
            distractors: distractor_positions,
        }
    }

    fn plant_dir(&self, emb: &mut Matrix, pos: usize, dir: &[f32]) {
        for (x, m) in emb.row_mut(pos).iter_mut().zip(dir) {
            *x += self.strength * m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{AttentionKind, PrefillMode, SimGeometry, SparsePlan};

    fn model() -> Model {
        Model::new(SimGeometry::tiny(AttentionKind::Gqa), 91)
    }

    #[test]
    fn context_has_requested_shape() {
        let m = model();
        let b = ContextBuilder::new(&m);
        let ctx = b.build(&m, 96, 3, 2, &mut SimRng::seed(1));
        assert_eq!(ctx.emb.rows(), 96);
        assert_eq!(ctx.groups.len(), 3);
        assert_eq!(ctx.evidence.len(), 6);
        assert!(ctx.evidence.iter().all(|&p| p < 95));
    }

    #[test]
    fn teacher_attends_to_planted_evidence() {
        // The core validity check of the whole workload design: the
        // model's own dense attention at the question step concentrates
        // on evidence far above the uniform baseline.
        let m = model();
        let b = ContextBuilder::new(&m);
        // Seed picked for a typical instance: most seeds give a 5-15x
        // concentration ratio, with rare outliers near 3.5x.
        let ctx = b.build(&m, 96, 3, 2, &mut SimRng::seed(4));
        let (mut kv, _) = m.prefill_embeddings(&ctx.emb, PrefillMode::Exact);
        let q = ctx.emb.row(95).to_vec();
        let plan = SparsePlan::dense(m.geometry().layers);
        let (_, trace) = m.decode_step_traced(&q, 96, &mut kv, &plan);

        let mut mass = 0.0;
        let mut count = 0;
        for layer in &trace.attn {
            for head in layer {
                mass += ctx.evidence.iter().map(|&e| head[e]).sum::<f32>();
                count += 1;
            }
        }
        let avg = mass / count as f32;
        let uniform = ctx.evidence.len() as f32 / 97.0;
        assert!(
            avg > 4.0 * uniform,
            "evidence mass {avg} vs uniform {uniform}"
        );
    }

    #[test]
    fn groups_are_disjoint() {
        let m = model();
        let b = ContextBuilder::new(&m);
        let ctx = b.build(&m, 128, 4, 3, &mut SimRng::seed(3));
        let mut all: Vec<usize> = ctx.groups.iter().flatten().copied().collect();
        all.sort_unstable();
        let before = all.len();
        all.dedup();
        assert_eq!(all.len(), before, "groups overlap");
    }

    #[test]
    fn deterministic_given_seed() {
        let m = model();
        let b = ContextBuilder::new(&m);
        let a = b.build(&m, 96, 2, 2, &mut SimRng::seed(7));
        let c = b.build(&m, 96, 2, 2, &mut SimRng::seed(7));
        assert_eq!(a.evidence, c.evidence);
        assert_eq!(a.emb, c.emb);
    }
}
