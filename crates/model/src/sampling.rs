//! Token sampling strategies for decode loops.
//!
//! Greedy decoding is the default everywhere in the reproduction (it is
//! what makes sparse-vs-dense output comparisons exact), but the serving
//! engine also supports standard stochastic sampling for realism in
//! long-generation workloads.

use spec_tensor::{ops, SimRng};

/// A sampling strategy over logits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampler {
    /// Argmax.
    Greedy,
    /// Softmax sampling at a temperature.
    Temperature(f32),
    /// Top-k filtering then temperature sampling.
    TopK {
        /// Candidates kept.
        k: usize,
        /// Temperature.
        temperature: f32,
    },
    /// Nucleus (top-p) filtering then temperature sampling.
    TopP {
        /// Cumulative probability mass kept.
        p: f32,
        /// Temperature.
        temperature: f32,
    },
}

impl Sampler {
    /// Draws a token id from `logits`.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is empty or a parameter is out of range
    /// (temperature must be positive, `k >= 1`, `0 < p <= 1`).
    pub fn sample(&self, logits: &[f32], rng: &mut SimRng) -> usize {
        assert!(!logits.is_empty(), "empty logits");
        match *self {
            Sampler::Greedy => argmax(logits),
            Sampler::Temperature(t) => {
                assert!(t > 0.0, "temperature must be positive");
                let mut probs: Vec<f32> = logits.iter().map(|l| l / t).collect();
                ops::softmax_inplace(&mut probs);
                draw(&probs, rng)
            }
            Sampler::TopK { k, temperature } => {
                assert!(k >= 1, "top-k requires k >= 1");
                assert!(temperature > 0.0, "temperature must be positive");
                let keep = spec_tensor::topk::top_k_indices(logits, k);
                let mut probs: Vec<f32> = keep.iter().map(|&i| logits[i] / temperature).collect();
                ops::softmax_inplace(&mut probs);
                keep[draw(&probs, rng)]
            }
            Sampler::TopP { p, temperature } => {
                assert!((0.0..=1.0).contains(&p) && p > 0.0, "p in (0, 1]");
                assert!(temperature > 0.0, "temperature must be positive");
                let mut probs: Vec<f32> = logits.iter().map(|l| l / temperature).collect();
                ops::softmax_inplace(&mut probs);
                let order = spec_tensor::topk::argsort_desc(&probs);
                let mut cum = 0.0;
                let mut keep = Vec::new();
                for &i in &order {
                    keep.push(i);
                    cum += probs[i];
                    if cum >= p {
                        break;
                    }
                }
                let mut kept: Vec<f32> = keep.iter().map(|&i| probs[i]).collect();
                let total: f32 = kept.iter().sum();
                kept.iter_mut().for_each(|v| *v /= total);
                keep[draw(&kept, rng)]
            }
        }
    }
}

fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn draw(probs: &[f32], rng: &mut SimRng) -> usize {
    let u = rng.uniform();
    let mut cum = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        cum += p;
        if u < cum {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits() -> Vec<f32> {
        vec![0.0, 5.0, 1.0, -2.0, 3.0]
    }

    #[test]
    fn greedy_picks_argmax() {
        let mut rng = SimRng::seed(1);
        assert_eq!(Sampler::Greedy.sample(&logits(), &mut rng), 1);
    }

    #[test]
    fn low_temperature_approaches_greedy() {
        let mut rng = SimRng::seed(2);
        let s = Sampler::Temperature(0.05);
        for _ in 0..20 {
            assert_eq!(s.sample(&logits(), &mut rng), 1);
        }
    }

    #[test]
    fn high_temperature_spreads_mass() {
        let mut rng = SimRng::seed(3);
        let s = Sampler::Temperature(50.0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.sample(&logits(), &mut rng));
        }
        assert!(seen.len() >= 4, "high temperature should explore: {seen:?}");
    }

    #[test]
    fn top_k_restricts_support() {
        let mut rng = SimRng::seed(4);
        let s = Sampler::TopK {
            k: 2,
            temperature: 10.0,
        };
        for _ in 0..100 {
            let t = s.sample(&logits(), &mut rng);
            assert!(t == 1 || t == 4, "token {t} outside top-2");
        }
    }

    #[test]
    fn top_p_restricts_to_nucleus() {
        let mut rng = SimRng::seed(5);
        let s = Sampler::TopP {
            p: 0.5,
            temperature: 1.0,
        };
        for _ in 0..100 {
            // Token 1 holds most of the mass at T=1.
            assert_eq!(s.sample(&logits(), &mut rng), 1);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = Sampler::Temperature(2.0);
        let a: Vec<usize> = {
            let mut rng = SimRng::seed(9);
            (0..10).map(|_| s.sample(&logits(), &mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = SimRng::seed(9);
            (0..10).map(|_| s.sample(&logits(), &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_rejected() {
        let mut rng = SimRng::seed(1);
        Sampler::Temperature(0.0).sample(&logits(), &mut rng);
    }
}
