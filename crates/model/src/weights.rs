//! Weight containers and initialization.

use crate::config::{AttentionKind, SimGeometry};
use spec_tensor::{Matrix, SimRng};

/// The built-in semantic channel: a hidden-space direction `m` and a
/// per-KV-head key-space vector `u_h` such that `W_q` and `W_k` both map
/// `m` onto `u_h`. Two tokens whose embeddings carry `m` then attend to
/// each other strongly — the structure trained LLMs acquire and that
/// content-based KV retrieval relies on.
///
/// `u_h` lives on the lowest-frequency RoPE pair so the alignment stays
/// coherent across long distances (the pair's rotation period exceeds the
/// simulated context lengths).
#[derive(Debug, Clone)]
pub struct SemanticChannel {
    /// Unit direction in hidden/embedding space.
    pub direction: Vec<f32>,
    /// Per-KV-head unit vector in head space (energy on the last RoPE pair).
    pub head_vectors: Vec<Vec<f32>>,
    /// Channel strength (outer-product scale added to the projections).
    pub strength: f32,
}

impl SemanticChannel {
    /// Samples a channel for the geometry.
    pub fn sample(geom: &SimGeometry, rng: &mut SimRng) -> Self {
        let mut direction = rng.normal_vec(geom.hidden, 1.0);
        let norm = direction
            .iter()
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt()
            .max(1e-9);
        direction.iter_mut().for_each(|v| *v /= norm);
        let d = geom.head_dim;
        let head_vectors = (0..geom.kv_heads)
            .map(|_| {
                let phi = rng.uniform_range(0.0, std::f32::consts::TAU);
                let mut u = vec![0.0; d];
                u[d - 2] = phi.cos();
                u[d - 1] = phi.sin();
                u
            })
            .collect();
        Self {
            direction,
            head_vectors,
            strength: geom.semantic_strength,
        }
    }

    /// Adds `strength * m ⊗ u` to a `hidden x head_dim` projection.
    fn imprint(&self, w: &mut Matrix, u: &[f32], strength: f32) {
        for (r, m) in self.direction.iter().enumerate() {
            for (c, uc) in u.iter().enumerate() {
                let v = w.get(r, c) + strength * m * uc;
                w.set(r, c, v);
            }
        }
    }
}

/// Per-layer weights of the simulated decoder.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Per query head: `hidden x head_dim` query projection.
    pub wq: Vec<Matrix>,
    /// Per KV head: `hidden x head_dim` key projection
    /// (for MLA: `mla_latent x head_dim` up-projection, per head).
    pub wk: Vec<Matrix>,
    /// Per KV head: value projection, same shapes as `wk`.
    pub wv: Vec<Matrix>,
    /// MLA only: `hidden x mla_latent` shared down-projection.
    pub w_down_latent: Option<Matrix>,
    /// Output projection `q_heads*head_dim x hidden`.
    pub wo: Matrix,
    /// FFN gate `hidden x ffn_dim`.
    pub w_gate: Matrix,
    /// FFN up `hidden x ffn_dim`.
    pub w_up: Matrix,
    /// FFN down `ffn_dim x hidden`.
    pub w_down: Matrix,
    /// Pre-attention RMSNorm weight.
    pub norm_attn: Vec<f32>,
    /// Pre-FFN RMSNorm weight.
    pub norm_ffn: Vec<f32>,
}

impl LayerWeights {
    /// Random initialization scaled for stable residual streams, with the
    /// optional semantic channel imprinted onto the QK projections.
    pub fn init(geom: &SimGeometry, rng: &mut SimRng, channel: Option<&SemanticChannel>) -> Self {
        let h = geom.hidden;
        let d = geom.head_dim;
        let std_qk = 1.0 / (h as f32).sqrt();
        let std_o = 0.5 / ((geom.q_heads * d) as f32).sqrt();
        let std_ffn = 0.5 / (h as f32).sqrt();

        let mut wq: Vec<Matrix> = (0..geom.q_heads)
            .map(|i| rng.fork(i as u64).normal_matrix(h, d, std_qk))
            .collect();
        let group = geom.group_size();
        if let Some(ch) = channel {
            for (q, w) in wq.iter_mut().enumerate() {
                ch.imprint(w, &ch.head_vectors[q / group], ch.strength);
            }
        }
        let (wk, wv, w_down_latent) = if geom.attention == AttentionKind::Mla {
            let lat = geom.mla_latent;
            let std_up = 1.0 / (lat as f32).sqrt();
            let mut wk: Vec<Matrix> = (0..geom.kv_heads)
                .map(|i| rng.fork(100 + i as u64).normal_matrix(lat, d, std_up))
                .collect();
            let wv = (0..geom.kv_heads)
                .map(|i| rng.fork(200 + i as u64).normal_matrix(lat, d, std_up))
                .collect();
            let mut down = rng.fork(300).normal_matrix(h, lat, std_qk);
            if let Some(ch) = channel {
                // Route the channel through the latent bottleneck:
                // W_dc maps m -> e_0, W_uk maps e_0 -> u_h.
                let s = ch.strength.sqrt();
                for (r, m) in ch.direction.iter().enumerate() {
                    let v = down.get(r, 0) + s * m;
                    down.set(r, 0, v);
                }
                for (hh, w) in wk.iter_mut().enumerate() {
                    for (c, uc) in ch.head_vectors[hh].iter().enumerate() {
                        let v = w.get(0, c) + s * uc;
                        w.set(0, c, v);
                    }
                }
            }
            (wk, wv, Some(down))
        } else {
            let mut wk: Vec<Matrix> = (0..geom.kv_heads)
                .map(|i| rng.fork(100 + i as u64).normal_matrix(h, d, std_qk))
                .collect();
            let wv = (0..geom.kv_heads)
                .map(|i| rng.fork(200 + i as u64).normal_matrix(h, d, std_qk))
                .collect();
            if let Some(ch) = channel {
                for (hh, w) in wk.iter_mut().enumerate() {
                    ch.imprint(w, &ch.head_vectors[hh], ch.strength);
                }
            }
            (wk, wv, None)
        };
        Self {
            wq,
            wk,
            wv,
            w_down_latent,
            wo: rng.fork(400).normal_matrix(geom.q_heads * d, h, std_o),
            w_gate: rng.fork(500).normal_matrix(h, geom.ffn_dim, std_ffn),
            w_up: rng.fork(600).normal_matrix(h, geom.ffn_dim, std_ffn),
            w_down: rng.fork(700).normal_matrix(geom.ffn_dim, h, std_ffn),
            norm_attn: vec![1.0; h],
            norm_ffn: vec![1.0; h],
        }
    }
}

/// Full model weights: embedding, decoder layers, final norm and LM head.
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// `vocab x hidden` token embedding.
    pub embedding: Matrix,
    /// Decoder layers.
    pub layers: Vec<LayerWeights>,
    /// Final RMSNorm weight.
    pub norm_final: Vec<f32>,
    /// `hidden x vocab` output head.
    pub lm_head: Matrix,
    /// The semantic channel imprinted on the QK projections, if any.
    pub semantic: Option<SemanticChannel>,
}

impl ModelWeights {
    /// Random initialization from a seed.
    pub fn init(geom: &SimGeometry, rng: &mut SimRng) -> Self {
        let emb_std = 1.0;
        let semantic = if geom.semantic_strength > 0.0 {
            Some(SemanticChannel::sample(geom, &mut rng.fork(3)))
        } else {
            None
        };
        Self {
            embedding: rng.fork(1).normal_matrix(geom.vocab, geom.hidden, emb_std),
            layers: (0..geom.layers)
                .map(|l| {
                    LayerWeights::init(geom, &mut rng.fork(1000 + l as u64), semantic.as_ref())
                })
                .collect(),
            norm_final: vec![1.0; geom.hidden],
            lm_head: rng.fork(2).normal_matrix(
                geom.hidden,
                geom.vocab,
                1.0 / (geom.hidden as f32).sqrt(),
            ),
            semantic,
        }
    }

    /// Approximate parameter count of the simulated model.
    pub fn param_count(&self) -> usize {
        let mut n = self.embedding.len() + self.lm_head.len() + self.norm_final.len();
        for l in &self.layers {
            n += l.wq.iter().map(Matrix::len).sum::<usize>();
            n += l.wk.iter().map(Matrix::len).sum::<usize>();
            n += l.wv.iter().map(Matrix::len).sum::<usize>();
            n += l.w_down_latent.as_ref().map_or(0, Matrix::len);
            n += l.wo.len() + l.w_gate.len() + l.w_up.len() + l.w_down.len();
            n += l.norm_attn.len() + l.norm_ffn.len();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_shapes_match_geometry() {
        let geom = SimGeometry::tiny(AttentionKind::Gqa);
        let mut rng = SimRng::seed(1);
        let w = ModelWeights::init(&geom, &mut rng);
        assert_eq!(w.layers.len(), geom.layers);
        assert_eq!(w.embedding.shape(), (geom.vocab, geom.hidden));
        let l = &w.layers[0];
        assert_eq!(l.wq.len(), geom.q_heads);
        assert_eq!(l.wk.len(), geom.kv_heads);
        assert_eq!(l.wq[0].shape(), (geom.hidden, geom.head_dim));
        assert_eq!(l.wo.shape(), (geom.q_heads * geom.head_dim, geom.hidden));
    }

    #[test]
    fn mla_has_latent_projections() {
        let geom = SimGeometry::tiny(AttentionKind::Mla);
        let mut rng = SimRng::seed(2);
        let w = ModelWeights::init(&geom, &mut rng);
        let l = &w.layers[0];
        let down = l.w_down_latent.as_ref().expect("MLA down projection");
        assert_eq!(down.shape(), (geom.hidden, geom.mla_latent));
        assert_eq!(l.wk[0].shape(), (geom.mla_latent, geom.head_dim));
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let geom = SimGeometry::tiny(AttentionKind::Mha);
        let a = ModelWeights::init(&geom, &mut SimRng::seed(7));
        let b = ModelWeights::init(&geom, &mut SimRng::seed(7));
        assert_eq!(a.embedding, b.embedding);
        assert_eq!(a.layers[1].wo, b.layers[1].wo);
    }

    #[test]
    fn param_count_positive() {
        let geom = SimGeometry::tiny(AttentionKind::Mqa);
        let w = ModelWeights::init(&geom, &mut SimRng::seed(3));
        assert!(w.param_count() > 1000);
    }
}
