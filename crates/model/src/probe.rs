//! Semantic probe directions.
//!
//! The synthetic workloads need a way to *plant* evidence tokens that the
//! teacher model genuinely attends to — without hand-editing attention
//! weights. The trick: for a bilinear attention form
//! `logit(q_tok, k_tok) = (x_q W_q)(x_k W_k)^T / sqrt(d)`, any direction
//! `m` with large `m^T W_q W_k^T m` produces high attention between two
//! tokens that both carry an `m` component in their embeddings.
//!
//! [`probe_direction`] finds such a direction by power iteration on the
//! symmetrized, layer/head-aggregated bilinear form. Workloads add
//! `strength * m` to the embeddings of evidence tokens and of the question
//! token; the model then *discovers* the evidence through its own
//! attention, which is what makes the accuracy experiments earned.

use crate::config::AttentionKind;
use crate::transformer::Model;
use spec_tensor::Matrix;

/// A unit direction in embedding space plus the Rayleigh quotient of the
/// aggregated query-key bilinear form along it (a measure of how strongly
/// two tokens carrying this direction attend to each other).
#[derive(Debug, Clone)]
pub struct Probe {
    /// Unit vector in the hidden/embedding space.
    pub direction: Vec<f32>,
    /// `m^T A m` for the aggregated bilinear form `A`.
    pub alignment: f32,
}

/// Computes the aggregated bilinear form `A = Σ_{l,q} W_q (K_eff)^T`
/// over all layers and query heads, where `K_eff` maps hidden space to
/// the head's key space (through the latent down-projection for MLA).
fn aggregate_bilinear(model: &Model) -> Matrix {
    let geom = model.geometry();
    let h = geom.hidden;
    let mut acc = Matrix::zeros(h, h);
    for lw in &model.weights().layers {
        for q in 0..geom.q_heads {
            let kvh = q / geom.group_size();
            let k_eff: Matrix = match geom.attention {
                AttentionKind::Mla => lw
                    .w_down_latent
                    .as_ref()
                    .expect("MLA weights")
                    .matmul(&lw.wk[kvh]),
                _ => lw.wk[kvh].clone(),
            };
            // W_q: h x d, K_eff: h x d  =>  A_h = W_q K_eff^T : h x h
            let a_h = lw.wq[q].matmul(&k_eff.transposed());
            acc = acc.add(&a_h);
        }
    }
    acc
}

/// Finds the probe direction by power iteration on the symmetrized
/// aggregated bilinear form.
///
/// `iters` controls power-iteration steps (20 is plenty for a clear
/// spectral gap). The returned alignment is per-layer-per-head on
/// average, so workloads can reason about logit magnitudes.
pub fn probe_direction(model: &Model, iters: usize) -> Probe {
    let geom = model.geometry();
    let a = aggregate_bilinear(model);
    // Symmetrize: power iteration needs a symmetric operator, and
    // m^T A m == m^T sym(A) m.
    let sym = a.add(&a.transposed());
    let h = geom.hidden;
    let mut v: Vec<f32> = (0..h)
        .map(|i| ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5)
        .collect();
    normalize(&mut v);
    for _ in 0..iters {
        let mut next = sym.matvec(&v);
        // Shift to favor the most positive eigenvalue rather than the
        // largest magnitude (we need positive alignment).
        let shift = sym_row_bound(&sym);
        for (n, x) in next.iter_mut().zip(&v) {
            *n += shift * x;
        }
        normalize(&mut next);
        v = next;
    }
    let av = a.matvec(&v);
    let alignment =
        v.iter().zip(&av).map(|(x, y)| x * y).sum::<f32>() / (geom.layers * geom.q_heads) as f32;
    Probe {
        direction: v,
        alignment,
    }
}

fn sym_row_bound(m: &Matrix) -> f32 {
    // Gershgorin-style bound so that (M + shift I) is positive definite.
    m.iter_rows()
        .map(|r| r.iter().map(|v| v.abs()).sum::<f32>())
        .fold(0.0f32, f32::max)
}

fn normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
    for x in v.iter_mut() {
        *x /= norm;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimGeometry;

    #[test]
    fn probe_is_unit_norm_with_positive_alignment() {
        for kind in [
            AttentionKind::Mha,
            AttentionKind::Gqa,
            AttentionKind::Mqa,
            AttentionKind::Mla,
        ] {
            let model = Model::new(SimGeometry::tiny(kind), 9);
            let probe = probe_direction(&model, 30);
            let norm: f32 = probe.direction.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "{kind}");
            assert!(
                probe.alignment > 0.0,
                "{kind}: alignment {}",
                probe.alignment
            );
        }
    }

    #[test]
    fn probe_beats_random_direction() {
        let model = Model::new(SimGeometry::tiny(AttentionKind::Gqa), 10);
        let probe = probe_direction(&model, 30);
        let a = aggregate_bilinear(&model);
        // Compare against a few arbitrary unit directions.
        let h = model.geometry().hidden;
        for s in 0..5u64 {
            let mut v: Vec<f32> = (0..h)
                .map(|i| (((i as u64 + 1) * (s + 3) * 2654435761) % 997) as f32 / 997.0 - 0.5)
                .collect();
            normalize(&mut v);
            let av = a.matvec(&v);
            let rq: f32 = v.iter().zip(&av).map(|(x, y)| x * y).sum();
            let probe_rq =
                probe.alignment * (model.geometry().layers * model.geometry().q_heads) as f32;
            assert!(probe_rq >= rq - 1e-3, "probe {probe_rq} vs random {rq}");
        }
    }

    #[test]
    fn probe_deterministic() {
        let model = Model::new(SimGeometry::tiny(AttentionKind::Mha), 11);
        let p1 = probe_direction(&model, 20);
        let p2 = probe_direction(&model, 20);
        assert_eq!(p1.direction, p2.direction);
    }
}
