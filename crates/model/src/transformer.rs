//! The simulated transformer decoder.
//!
//! A from-scratch, CPU-executable decoder-only transformer with RMSNorm,
//! RoPE, SiLU-gated FFN, and all four attention families (MHA/GQA/MQA/MLA).
//! Forward passes run on real `f32` arithmetic, so attention distributions
//! — the object every retrieval algorithm in this workspace studies — are
//! genuine, not scripted.
//!
//! Two ingredients make long-context simulation tractable on CPU:
//!
//! * [`PrefillMode::Windowed`] bounds prefill attention to a local window
//!   (plus attention sinks), reducing prefill from O(S²) to O(S·w). Decode
//!   attention — what the paper's retrieval operates on — remains exact.
//! * [`SparsePlan`] restricts decode attention to a selected position set
//!   per layer and KV head, which is exactly the contract every KV
//!   retrieval algorithm (ours and the baselines) produces.

use crate::config::{AttentionKind, SimGeometry};
use crate::kv::{LayerKv, ModelKv};
use crate::weights::{LayerWeights, ModelWeights};
use spec_tensor::topk::SelectScratch;
use spec_tensor::{ops, Matrix, SimRng};

/// How prefill attention is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefillMode {
    /// Exact causal attention, O(S²). Use for short tests.
    Exact,
    /// Local window of the given width plus `sinks` initial positions
    /// (StreamingLLM-style). KV caches are identical to exact mode; only
    /// hidden-state mixing during prefill is windowed. Documented
    /// substitution: bounds CPU cost for 10k+ contexts.
    Windowed {
        /// Window width.
        window: usize,
        /// Number of always-visible initial positions.
        sinks: usize,
    },
}

impl Default for PrefillMode {
    fn default() -> Self {
        PrefillMode::Windowed {
            window: 128,
            sinks: 4,
        }
    }
}

/// A per-layer, per-KV-head selection of cache positions to attend to.
///
/// `None` for a layer means dense attention in that layer. Position lists
/// must be sorted ascending and in range; [`SparsePlan::validate`] checks.
#[derive(Debug, Clone, Default)]
pub struct SparsePlan {
    /// `layers[l][h]` = sorted positions KV head `h` of layer `l` attends to.
    pub layers: Vec<Option<Vec<Vec<usize>>>>,
}

impl SparsePlan {
    /// A dense plan (no sparsity) for `layers` layers.
    pub fn dense(layers: usize) -> Self {
        Self {
            layers: vec![None; layers],
        }
    }

    /// A plan applying the same position set to every layer and head.
    pub fn uniform(layers: usize, kv_heads: usize, positions: Vec<usize>) -> Self {
        Self {
            layers: vec![Some(vec![positions; kv_heads]); layers],
        }
    }

    /// Checks ordering and bounds against a cache length.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, seq_len: usize, kv_heads: usize) -> Result<(), String> {
        for (l, layer) in self.layers.iter().enumerate() {
            if let Some(heads) = layer {
                if heads.len() != kv_heads {
                    return Err(format!(
                        "layer {l}: expected {kv_heads} head lists, got {}",
                        heads.len()
                    ));
                }
                for (h, pos) in heads.iter().enumerate() {
                    if !pos.windows(2).all(|w| w[0] < w[1]) {
                        return Err(format!("layer {l} head {h}: positions not sorted/unique"));
                    }
                    if pos.last().is_some_and(|&p| p >= seq_len) {
                        return Err(format!("layer {l} head {h}: position out of range"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Layer-wise query-aware KV selection, the retrieval paradigm of the
/// dynamic-selection baselines (paper Section 2.2).
///
/// The model calls [`select`](Self::select) once per layer per decode
/// step, after computing that layer's query vectors, passing the layer's
/// KV state. Returning `None` requests dense attention for the layer;
/// otherwise the per-KV-head position lists (sorted ascending) define the
/// sparse attention set.
///
/// Queries arrive as one flat `q_heads x head_dim` [`Matrix`] (row `q` is
/// query head `q`, post-RoPE), and every call receives the decode loop's
/// [`SelectScratch`] so implementations can run allocation-free — the
/// zero-allocation contract of the selection hot path. Implementations
/// may leave the scratch in any state; callers must not rely on its
/// contents between calls.
pub trait LayerSelector {
    /// Chooses the positions KV head `h` of `layer` attends to.
    fn select(
        &mut self,
        layer: usize,
        queries: &Matrix,
        kv: &LayerKv,
        scratch: &mut SelectScratch,
    ) -> Option<Vec<Vec<usize>>>;
}

/// Attention weights recorded during a traced decode step.
///
/// `attn[layer][q_head]` is the post-softmax distribution over the
/// *attended* positions (dense: every cache position; sparse: the
/// selected set, in the plan's order).
#[derive(Debug, Clone, Default)]
pub struct StepTrace {
    /// Recorded distributions.
    pub attn: Vec<Vec<Vec<f32>>>,
    /// The positions each distribution refers to (shared per layer/KV head,
    /// replicated per query head for uniform indexing).
    pub positions: Vec<Vec<Vec<usize>>>,
}

/// Output of a decode step.
#[derive(Debug, Clone)]
pub struct StepOutput {
    /// Final-hidden-state logits over the vocabulary.
    pub logits: Vec<f32>,
    /// Final hidden state (post final norm).
    pub hidden: Vec<f32>,
}

/// The simulated model: geometry plus weights.
#[derive(Debug, Clone)]
pub struct Model {
    geom: SimGeometry,
    weights: ModelWeights,
    /// YaRN-style positional scale (1.0 = no extension).
    rope_scale: f32,
}

impl Model {
    /// Builds a model with random weights from a seed.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails validation.
    pub fn new(geom: SimGeometry, seed: u64) -> Self {
        geom.validate().expect("invalid geometry");
        let mut rng = SimRng::seed(seed);
        let weights = ModelWeights::init(&geom, &mut rng);
        Self {
            geom,
            weights,
            rope_scale: 1.0,
        }
    }

    /// Builds a model from explicit weights (used by distillation).
    pub fn from_weights(geom: SimGeometry, weights: ModelWeights) -> Self {
        geom.validate().expect("invalid geometry");
        Self {
            geom,
            weights,
            rope_scale: 1.0,
        }
    }

    /// The geometry.
    pub fn geometry(&self) -> &SimGeometry {
        &self.geom
    }

    /// The weights.
    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }

    /// Enables YaRN-style context extension: positions are compressed by
    /// `scale` so the model can address `scale * train_context` tokens.
    /// This mirrors the paper's training-free extension of the DLM's 2k
    /// window (Section 4.3).
    pub fn set_rope_scale(&mut self, scale: f32) {
        assert!(scale >= 1.0, "rope scale must be >= 1");
        self.rope_scale = scale;
    }

    /// Current RoPE position scale.
    pub fn rope_scale(&self) -> f32 {
        self.rope_scale
    }

    /// Embeds a token sequence into a `seq x hidden` matrix.
    ///
    /// # Panics
    ///
    /// Panics if any token id is out of vocabulary.
    pub fn embed_tokens(&self, tokens: &[usize]) -> Matrix {
        self.weights.embedding.gather_rows(tokens)
    }

    /// The KV head that query head `q` reads (GQA group mapping).
    pub fn kv_head_of(&self, q: usize) -> usize {
        q / self.geom.group_size()
    }

    /// Runs prefill over pre-embedded inputs, returning the populated KV
    /// cache and the last position's step output.
    ///
    /// # Panics
    ///
    /// Panics if `emb` is empty or its width differs from `hidden`.
    pub fn prefill_embeddings(&self, emb: &Matrix, mode: PrefillMode) -> (ModelKv, StepOutput) {
        assert!(emb.rows() > 0, "prefill requires at least one token");
        assert_eq!(emb.cols(), self.geom.hidden, "embedding width mismatch");
        let mut kv = ModelKv::empty(&self.geom);
        let mut last = None;
        for pos in 0..emb.rows() {
            let plan = self.prefill_plan(pos, mode);
            let out = self.step_inner(emb.row(pos), pos, &mut kv, &plan, None);
            last = Some(out);
        }
        (kv, last.expect("nonempty prefill"))
    }

    /// Token-level prefill convenience wrapper.
    pub fn prefill_tokens(&self, tokens: &[usize], mode: PrefillMode) -> (ModelKv, StepOutput) {
        let emb = self.embed_tokens(tokens);
        self.prefill_embeddings(&emb, mode)
    }

    fn prefill_plan(&self, pos: usize, mode: PrefillMode) -> SparsePlan {
        match mode {
            PrefillMode::Exact => SparsePlan::dense(self.geom.layers),
            PrefillMode::Windowed { window, sinks } => {
                // Positions [0,sinks) ∪ [pos-window, pos]. `pos` itself is
                // the entry being appended this step.
                let lo = pos.saturating_sub(window);
                let mut positions: Vec<usize> = (0..sinks.min(lo)).collect();
                positions.extend(lo..=pos);
                SparsePlan::uniform(self.geom.layers, self.geom.kv_heads, positions)
            }
        }
    }

    /// One decode step: appends the token at `pos` to the cache and returns
    /// logits. Dense attention.
    pub fn decode_step(&self, x: &[f32], pos: usize, kv: &mut ModelKv) -> StepOutput {
        let plan = SparsePlan::dense(self.geom.layers);
        self.step_inner(x, pos, kv, &plan, None)
    }

    /// One decode step with a sparse attention plan.
    ///
    /// The new token's KV entry is always appended to the cache; the plan
    /// only controls which *existing* positions participate in attention.
    /// The current position is always attended (a query must see itself).
    pub fn decode_step_sparse(
        &self,
        x: &[f32],
        pos: usize,
        kv: &mut ModelKv,
        plan: &SparsePlan,
    ) -> StepOutput {
        self.step_inner(x, pos, kv, plan, None)
    }

    /// One decode step recording per-layer, per-query-head attention.
    pub fn decode_step_traced(
        &self,
        x: &[f32],
        pos: usize,
        kv: &mut ModelKv,
        plan: &SparsePlan,
    ) -> (StepOutput, StepTrace) {
        let mut trace = StepTrace::default();
        let out = self.step_inner(x, pos, kv, plan, Some(&mut trace));
        (out, trace)
    }

    /// One decode step with **layer-wise query-aware selection** — the
    /// paradigm of Quest/ClusterKV/ShadowKV (paper Fig. 2(a)): at each
    /// layer, after this layer's queries are computed, the selector is
    /// consulted for the positions to attend. This models the per-layer
    /// retrieve-and-load data dependency that SpeContext eliminates.
    pub fn decode_step_selected(
        &self,
        x: &[f32],
        pos: usize,
        kv: &mut ModelKv,
        selector: &mut dyn LayerSelector,
    ) -> StepOutput {
        let mut scratch = SelectScratch::new();
        self.step_dyn(x, pos, kv, selector, None, &mut scratch)
    }

    /// As [`decode_step_selected`](Self::decode_step_selected), threading
    /// a caller-owned [`SelectScratch`] so a decode loop reuses one warm
    /// workspace across steps (the zero-allocation hot path).
    pub fn decode_step_selected_scratch(
        &self,
        x: &[f32],
        pos: usize,
        kv: &mut ModelKv,
        selector: &mut dyn LayerSelector,
        scratch: &mut SelectScratch,
    ) -> StepOutput {
        self.step_dyn(x, pos, kv, selector, None, scratch)
    }

    /// Traced variant of [`decode_step_selected`](Self::decode_step_selected).
    pub fn decode_step_selected_traced(
        &self,
        x: &[f32],
        pos: usize,
        kv: &mut ModelKv,
        selector: &mut dyn LayerSelector,
    ) -> (StepOutput, StepTrace) {
        let mut scratch = SelectScratch::new();
        self.decode_step_selected_traced_scratch(x, pos, kv, selector, &mut scratch)
    }

    /// Traced variant threading a caller-owned [`SelectScratch`].
    pub fn decode_step_selected_traced_scratch(
        &self,
        x: &[f32],
        pos: usize,
        kv: &mut ModelKv,
        selector: &mut dyn LayerSelector,
        scratch: &mut SelectScratch,
    ) -> (StepOutput, StepTrace) {
        let mut trace = StepTrace::default();
        let out = self.step_dyn(x, pos, kv, selector, Some(&mut trace), scratch);
        (out, trace)
    }

    /// Greedy sampling from logits.
    pub fn argmax_token(logits: &[f32]) -> usize {
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn step_inner(
        &self,
        x: &[f32],
        pos: usize,
        kv: &mut ModelKv,
        plan: &SparsePlan,
        trace: Option<&mut StepTrace>,
    ) -> StepOutput {
        struct PlanSelector<'a>(&'a SparsePlan);
        impl LayerSelector for PlanSelector<'_> {
            fn select(
                &mut self,
                layer: usize,
                _queries: &Matrix,
                _kv: &LayerKv,
                _scratch: &mut SelectScratch,
            ) -> Option<Vec<Vec<usize>>> {
                self.0.layers.get(layer).and_then(|s| s.clone())
            }
        }
        let mut sel = PlanSelector(plan);
        let mut scratch = SelectScratch::new();
        self.step_dyn(x, pos, kv, &mut sel, trace, &mut scratch)
    }

    fn step_dyn(
        &self,
        x: &[f32],
        pos: usize,
        kv: &mut ModelKv,
        selector: &mut dyn LayerSelector,
        mut trace: Option<&mut StepTrace>,
        scratch: &mut SelectScratch,
    ) -> StepOutput {
        let mut h = x.to_vec();
        // One normalization buffer for the whole stack (two rmsnorms per
        // layer), refilled in place instead of allocated per call.
        let mut normed = Vec::with_capacity(h.len());
        // One flat query matrix for the whole stack, refilled per layer.
        let mut queries = Matrix::zeros(self.geom.q_heads, self.geom.head_dim);
        for (l, lw) in self.weights.layers.iter().enumerate() {
            ops::rmsnorm_into(&mut normed, &h, &lw.norm_attn, 1e-6);
            self.append_kv(lw, &normed, pos, &mut kv.layers[l]);
            // Compute this layer's queries (post-RoPE), then consult the
            // selector — the layer-wise retrieval point of Fig. 2(a).
            self.layer_queries_into(lw, &normed, pos, &mut queries);
            let selection = selector.select(l, &queries, &kv.layers[l], scratch);
            let (attn_out, layer_attn, layer_pos) = self.attention(
                lw,
                &queries,
                pos,
                &kv.layers[l],
                selection.as_ref(),
                trace.is_some(),
            );
            if let Some(t) = trace.as_deref_mut() {
                t.attn.push(layer_attn);
                t.positions.push(layer_pos);
            }
            for (a, b) in h.iter_mut().zip(&attn_out) {
                *a += b;
            }
            ops::rmsnorm_into(&mut normed, &h, &lw.norm_ffn, 1e-6);
            let ffn = self.ffn(lw, &normed);
            for (a, b) in h.iter_mut().zip(&ffn) {
                *a += b;
            }
        }
        let hidden = ops::rmsnorm(&h, &self.weights.norm_final, 1e-6);
        let logits = self.weights.lm_head.vecmat(&hidden);
        StepOutput { logits, hidden }
    }

    /// Per-query-head query vectors for this step (post-RoPE except MLA),
    /// written into the rows of a reused `q_heads x head_dim` matrix.
    fn layer_queries_into(&self, lw: &LayerWeights, normed: &[f32], pos: usize, out: &mut Matrix) {
        for q in 0..self.geom.q_heads {
            let row = out.row_mut(q);
            lw.wq[q].vecmat_into(normed, row);
            if self.geom.attention != AttentionKind::Mla {
                ops::rope_inplace(row, pos, self.geom.rope_base, self.rope_scale);
            }
        }
    }

    fn append_kv(&self, lw: &LayerWeights, normed: &[f32], pos: usize, layer: &mut LayerKv) {
        match layer {
            LayerKv::PerHead { keys, values } => {
                for hh in 0..self.geom.kv_heads {
                    let mut k = lw.wk[hh].vecmat(normed);
                    ops::rope_inplace(&mut k, pos, self.geom.rope_base, self.rope_scale);
                    let v = lw.wv[hh].vecmat(normed);
                    keys[hh].push_row(&k);
                    values[hh].push_row(&v);
                }
            }
            LayerKv::Latent { latent } => {
                let c = lw
                    .w_down_latent
                    .as_ref()
                    .expect("MLA weights")
                    .vecmat(normed);
                latent.push_row(&c);
            }
        }
    }

    /// Attention for one step. Returns (output, per-q-head weights,
    /// per-q-head position lists); the weight/position vectors are empty
    /// unless `record` is true.
    #[allow(clippy::type_complexity)]
    fn attention(
        &self,
        lw: &LayerWeights,
        queries: &Matrix,
        pos: usize,
        layer: &LayerKv,
        selection: Option<&Vec<Vec<usize>>>,
        record: bool,
    ) -> (Vec<f32>, Vec<Vec<f32>>, Vec<Vec<usize>>) {
        let geom = &self.geom;
        let d = geom.head_dim;
        let mut concat = vec![0.0; geom.q_heads * d];
        let mut rec_w = Vec::new();
        let mut rec_p = Vec::new();

        // Per KV head: resolve the attended position list and gather K/V.
        let seq_len = layer.seq_len();
        let mut per_head: Vec<(Vec<usize>, Matrix, Matrix)> = Vec::with_capacity(geom.kv_heads);
        for hh in 0..geom.kv_heads {
            let positions: Vec<usize> = match selection {
                None => (0..seq_len).collect(),
                Some(heads) => {
                    let mut p = heads[hh].clone();
                    // The current position must always be attended.
                    if p.binary_search(&pos).is_err() && pos < seq_len {
                        p.push(pos);
                        p.sort_unstable();
                    }
                    p
                }
            };
            let (k, v) = match layer {
                LayerKv::PerHead { keys, values } => (
                    keys[hh].gather_rows(&positions),
                    values[hh].gather_rows(&positions),
                ),
                LayerKv::Latent { latent } => {
                    let c = latent.gather_rows(&positions);
                    // Up-project only the selected latent rows (Fig. 5(e)).
                    (c.matmul(&lw.wk[hh]), c.matmul(&lw.wv[hh]))
                }
            };
            per_head.push((positions, k, v));
        }

        for q in 0..geom.q_heads {
            let qv = queries.row(q);
            let hh = self.kv_head_of(q);
            let (positions, keys, values) = &per_head[hh];
            let weights = ops::attention_weights(qv, keys);
            let out = ops::weighted_sum(&weights, values);
            concat[q * d..(q + 1) * d].copy_from_slice(&out);
            if record {
                rec_w.push(weights);
                rec_p.push(positions.clone());
            }
        }
        let out = lw.wo.vecmat(&concat);
        (out, rec_w, rec_p)
    }

    fn ffn(&self, lw: &LayerWeights, normed: &[f32]) -> Vec<f32> {
        let mut gate = lw.w_gate.vecmat(normed);
        ops::silu_inplace(&mut gate);
        let up = lw.w_up.vecmat(normed);
        for (g, u) in gate.iter_mut().zip(&up) {
            *g *= u;
        }
        lw.w_down.vecmat(&gate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model(kind: AttentionKind) -> Model {
        Model::new(SimGeometry::tiny(kind), 42)
    }

    fn seq_embeddings(model: &Model, n: usize) -> Matrix {
        let tokens: Vec<usize> = (0..n).map(|i| i % model.geometry().vocab).collect();
        model.embed_tokens(&tokens)
    }

    #[test]
    fn prefill_populates_cache_for_all_kinds() {
        for kind in [
            AttentionKind::Mha,
            AttentionKind::Gqa,
            AttentionKind::Mqa,
            AttentionKind::Mla,
        ] {
            let m = tiny_model(kind);
            let emb = seq_embeddings(&m, 12);
            let (kv, out) = m.prefill_embeddings(&emb, PrefillMode::Exact);
            assert_eq!(kv.seq_len(), 12, "{kind}");
            assert_eq!(out.logits.len(), m.geometry().vocab);
            assert!(out.logits.iter().all(|v| v.is_finite()), "{kind}");
        }
    }

    #[test]
    fn dense_sparse_plan_matches_dense_attention() {
        // A sparse plan selecting every position must reproduce dense
        // attention bit-for-bit.
        for kind in [AttentionKind::Gqa, AttentionKind::Mla] {
            let m = tiny_model(kind);
            let emb = seq_embeddings(&m, 10);
            let (mut kv_a, _) = m.prefill_embeddings(&emb, PrefillMode::Exact);
            let mut kv_b = kv_a.clone();

            let x = emb.row(5).to_vec();
            let dense = m.decode_step(&x, 10, &mut kv_a);
            let all: Vec<usize> = (0..=10).collect();
            let plan = SparsePlan::uniform(m.geometry().layers, m.geometry().kv_heads, all);
            let sparse = m.decode_step_sparse(&x, 10, &mut kv_b, &plan);
            for (a, b) in dense.logits.iter().zip(&sparse.logits) {
                assert!((a - b).abs() < 1e-5, "{kind}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sparse_plan_changes_output_when_dropping_positions() {
        let m = tiny_model(AttentionKind::Gqa);
        let emb = seq_embeddings(&m, 16);
        let (kv, _) = m.prefill_embeddings(&emb, PrefillMode::Exact);
        let x = emb.row(3).to_vec();

        let mut kv_a = kv.clone();
        let dense = m.decode_step(&x, 16, &mut kv_a);

        let mut kv_b = kv.clone();
        let few = vec![0, 1, 16];
        let plan = SparsePlan::uniform(m.geometry().layers, m.geometry().kv_heads, few);
        let sparse = m.decode_step_sparse(&x, 16, &mut kv_b, &plan);
        let diff: f32 = dense
            .logits
            .iter()
            .zip(&sparse.logits)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-3, "dropping most positions should perturb logits");
    }

    #[test]
    fn traced_attention_is_distribution_per_head() {
        let m = tiny_model(AttentionKind::Gqa);
        let emb = seq_embeddings(&m, 8);
        let (mut kv, _) = m.prefill_embeddings(&emb, PrefillMode::Exact);
        let x = emb.row(0).to_vec();
        let plan = SparsePlan::dense(m.geometry().layers);
        let (_, trace) = m.decode_step_traced(&x, 8, &mut kv, &plan);
        assert_eq!(trace.attn.len(), m.geometry().layers);
        for layer in &trace.attn {
            assert_eq!(layer.len(), m.geometry().q_heads);
            for head in layer {
                let sum: f32 = head.iter().sum();
                assert!((sum - 1.0).abs() < 1e-4);
                assert_eq!(head.len(), 9); // 8 prefill + current
            }
        }
    }

    #[test]
    fn windowed_prefill_matches_exact_for_short_sequences() {
        // When the window covers the whole sequence they must agree.
        let m = tiny_model(AttentionKind::Gqa);
        let emb = seq_embeddings(&m, 10);
        let (_, exact) = m.prefill_embeddings(&emb, PrefillMode::Exact);
        let (_, win) = m.prefill_embeddings(
            &emb,
            PrefillMode::Windowed {
                window: 64,
                sinks: 4,
            },
        );
        for (a, b) in exact.logits.iter().zip(&win.logits) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn windowed_prefill_diverges_for_long_sequences() {
        let m = tiny_model(AttentionKind::Gqa);
        let emb = seq_embeddings(&m, 48);
        let (_, exact) = m.prefill_embeddings(&emb, PrefillMode::Exact);
        let (_, win) = m.prefill_embeddings(
            &emb,
            PrefillMode::Windowed {
                window: 8,
                sinks: 2,
            },
        );
        let diff: f32 = exact
            .logits
            .iter()
            .zip(&win.logits)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn kv_cache_grows_one_entry_per_step() {
        let m = tiny_model(AttentionKind::Mqa);
        let emb = seq_embeddings(&m, 4);
        let (mut kv, _) = m.prefill_embeddings(&emb, PrefillMode::Exact);
        assert_eq!(kv.seq_len(), 4);
        m.decode_step(emb.row(0), 4, &mut kv);
        assert_eq!(kv.seq_len(), 5);
    }

    #[test]
    fn plan_validation_catches_errors() {
        let plan = SparsePlan::uniform(2, 2, vec![3, 1]);
        assert!(plan.validate(10, 2).is_err(), "unsorted rejected");
        let plan = SparsePlan::uniform(2, 2, vec![1, 30]);
        assert!(plan.validate(10, 2).is_err(), "out of range rejected");
        let plan = SparsePlan::uniform(2, 2, vec![1, 3]);
        assert!(plan.validate(10, 2).is_ok());
        assert!(plan.validate(10, 3).is_err(), "head count mismatch");
    }

    #[test]
    fn rope_scale_extends_addressable_context() {
        let mut m = tiny_model(AttentionKind::Gqa);
        m.set_rope_scale(4.0);
        assert_eq!(m.rope_scale(), 4.0);
        let emb = seq_embeddings(&m, 6);
        let (_, out) = m.prefill_embeddings(&emb, PrefillMode::Exact);
        assert!(out.logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_across_runs() {
        let a = tiny_model(AttentionKind::Gqa);
        let b = tiny_model(AttentionKind::Gqa);
        let emb = seq_embeddings(&a, 6);
        let (_, oa) = a.prefill_embeddings(&emb, PrefillMode::Exact);
        let (_, ob) = b.prefill_embeddings(&emb, PrefillMode::Exact);
        assert_eq!(oa.logits, ob.logits);
    }

    #[test]
    fn argmax_picks_maximum() {
        assert_eq!(Model::argmax_token(&[0.1, 0.9, 0.5]), 1);
    }
}
