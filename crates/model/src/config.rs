//! Model configurations.
//!
//! Each preset carries the **real** architectural geometry of the models the
//! paper evaluates (layer count, head counts, head dimension, vocabulary).
//! The real geometry drives the memory model of Section 6 and the hardware
//! simulator. For actually *running* forward passes on a CPU, every config
//! can produce a scaled-down [`SimGeometry`] that preserves the properties
//! the algorithms depend on: the attention kind, the query/KV head ratio
//! `α`, and the depth-vs-width proportions.

use serde::{Deserialize, Serialize};

/// The attention mechanism family (paper Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttentionKind {
    /// Multi-Head Attention: one KV head per query head.
    Mha,
    /// Grouped-Query Attention: query heads share KV heads in groups of α.
    Gqa,
    /// Multi-Query Attention: all query heads share a single KV head.
    Mqa,
    /// Multi-Head Latent Attention: a shared low-rank latent cache is
    /// up-projected per head (DeepSeek-V3 style).
    Mla,
}

impl std::fmt::Display for AttentionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AttentionKind::Mha => "MHA",
            AttentionKind::Gqa => "GQA",
            AttentionKind::Mqa => "MQA",
            AttentionKind::Mla => "MLA",
        };
        f.write_str(s)
    }
}

/// Full architectural description of a model.
///
/// # Example
///
/// ```
/// use spec_model::config::ModelConfig;
/// let cfg = ModelConfig::llama3_1_8b();
/// assert_eq!(cfg.layers, 32);
/// assert_eq!(cfg.group_size(), 4); // 32 query heads / 8 KV heads
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name as used in the paper's tables.
    pub name: String,
    /// Attention mechanism.
    pub attention: AttentionKind,
    /// Number of transformer decoder layers (`L` in Table 1).
    pub layers: usize,
    /// Hidden (residual stream) dimension.
    pub hidden: usize,
    /// Number of query heads.
    pub q_heads: usize,
    /// Number of KV heads (`H` in Table 1). For MLA this counts the
    /// up-projected heads; the cached object is the latent vector.
    pub kv_heads: usize,
    /// Per-head dimension (`D` in Table 1).
    pub head_dim: usize,
    /// MLA latent dimension (0 for non-MLA models).
    pub mla_latent: usize,
    /// FFN intermediate dimension.
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// RoPE base frequency.
    pub rope_base: f32,
    /// Pretrained context window (tokens).
    pub train_context: usize,
    /// Parameter-memory footprint in bytes at FP16 (`M_O` in Table 1).
    /// Stored explicitly so presets match the published checkpoint sizes
    /// rather than a formula over the other fields.
    pub param_bytes: u64,
}

impl ModelConfig {
    /// Llama 3.1 8B Instruct (GQA, 32 layers, 32 Q / 8 KV heads).
    pub fn llama3_1_8b() -> Self {
        Self {
            name: "Llama3.1-8B".into(),
            attention: AttentionKind::Gqa,
            layers: 32,
            hidden: 4096,
            q_heads: 32,
            kv_heads: 8,
            head_dim: 128,
            mla_latent: 0,
            ffn_dim: 14336,
            vocab: 128_256,
            rope_base: 500_000.0,
            train_context: 131_072,
            param_bytes: 16_100_000_000,
        }
    }

    /// DeepSeek-R1-Distill-Llama-8B: identical geometry to Llama 3.1 8B
    /// (it is a distill onto that architecture), evaluated as the reasoning
    /// model in the paper's cloud experiments.
    pub fn deepseek_distill_llama_8b() -> Self {
        Self {
            name: "DeepSeek-Distill-Llama-8B".into(),
            ..Self::llama3_1_8b()
        }
    }

    /// Qwen3-8B (GQA, 36 layers, 32 Q / 8 KV heads, 151k vocabulary).
    pub fn qwen3_8b() -> Self {
        Self {
            name: "Qwen3-8B".into(),
            attention: AttentionKind::Gqa,
            layers: 36,
            hidden: 4096,
            q_heads: 32,
            kv_heads: 8,
            head_dim: 128,
            mla_latent: 0,
            ffn_dim: 12288,
            vocab: 151_936,
            rope_base: 1_000_000.0,
            train_context: 131_072,
            param_bytes: 16_400_000_000,
        }
    }

    /// Reasoning-Llama-3.2-1B, the edge model (GQA, 16 layers, 32 Q / 8 KV
    /// heads at head_dim 64).
    pub fn reasoning_llama3_2_1b() -> Self {
        Self {
            name: "Reasoning-Llama-3.2-1B".into(),
            attention: AttentionKind::Gqa,
            layers: 16,
            hidden: 2048,
            q_heads: 32,
            kv_heads: 8,
            head_dim: 64,
            mla_latent: 0,
            ffn_dim: 8192,
            vocab: 128_256,
            rope_base: 500_000.0,
            train_context: 131_072,
            param_bytes: 2_500_000_000,
        }
    }

    /// Llama-2-7B-style MHA geometry, used to exercise the MHA selection
    /// path of the retrieval head (paper Fig. 5(b)).
    pub fn llama2_7b_mha() -> Self {
        Self {
            name: "Llama2-7B (MHA)".into(),
            attention: AttentionKind::Mha,
            layers: 32,
            hidden: 4096,
            q_heads: 32,
            kv_heads: 32,
            head_dim: 128,
            mla_latent: 0,
            ffn_dim: 11008,
            vocab: 32_000,
            rope_base: 10_000.0,
            train_context: 4096,
            param_bytes: 13_500_000_000,
        }
    }

    /// An MQA variant (single shared KV head), exercising Fig. 5(d).
    pub fn mqa_7b() -> Self {
        Self {
            name: "MQA-7B".into(),
            attention: AttentionKind::Mqa,
            layers: 32,
            hidden: 4096,
            q_heads: 32,
            kv_heads: 1,
            head_dim: 128,
            mla_latent: 0,
            ffn_dim: 11008,
            vocab: 32_000,
            rope_base: 10_000.0,
            train_context: 8192,
            param_bytes: 13_000_000_000,
        }
    }

    /// A DeepSeek-V3-style MLA geometry (latent cache), exercising
    /// Fig. 5(e). Scaled to 8B-class for comparability.
    pub fn mla_8b() -> Self {
        Self {
            name: "MLA-8B".into(),
            attention: AttentionKind::Mla,
            layers: 32,
            hidden: 4096,
            q_heads: 32,
            kv_heads: 32,
            head_dim: 128,
            mla_latent: 512,
            ffn_dim: 12288,
            vocab: 128_256,
            rope_base: 10_000.0,
            train_context: 131_072,
            param_bytes: 16_000_000_000,
        }
    }

    /// All presets evaluated anywhere in the paper.
    pub fn paper_presets() -> Vec<ModelConfig> {
        vec![
            Self::llama3_1_8b(),
            Self::deepseek_distill_llama_8b(),
            Self::qwen3_8b(),
            Self::reasoning_llama3_2_1b(),
        ]
    }

    /// The GQA/MQA group size `α` (Table 1): query heads per KV head.
    /// Returns 1 for MHA and MLA.
    pub fn group_size(&self) -> usize {
        match self.attention {
            AttentionKind::Mha | AttentionKind::Mla => 1,
            AttentionKind::Gqa | AttentionKind::Mqa => self.q_heads / self.kv_heads,
        }
    }

    /// Bytes of KV cache per token per layer at FP16
    /// (`2 * H * D * 2 bytes`, or the latent size for MLA).
    pub fn kv_bytes_per_token_layer(&self) -> u64 {
        match self.attention {
            AttentionKind::Mla => 2 * self.mla_latent as u64,
            _ => 2 * 2 * (self.kv_heads * self.head_dim) as u64,
        }
    }

    /// Bytes of KV cache for a full sequence across all layers.
    pub fn kv_bytes_total(&self, seq_len: usize) -> u64 {
        self.kv_bytes_per_token_layer() * self.layers as u64 * seq_len as u64
    }

    /// Analytic non-embedding parameter count of a full EAGLE-3-style DLM
    /// for this model: one decoder layer plus the LM head.
    /// (The embedding is shared with the base model and excluded, matching
    /// how the paper counts the ">90% reduction" of Section 4.)
    pub fn dlm_params_non_embedding(&self) -> u64 {
        let h = self.hidden as u64;
        let qd = (self.q_heads * self.head_dim) as u64;
        let kvd = (self.kv_heads * self.head_dim) as u64;
        let layer = h * qd      // W_q
            + 2 * h * kvd       // W_k, W_v
            + qd * h            // W_o
            + 3 * h * self.ffn_dim as u64; // gate/up/down
        layer + h * self.vocab as u64 // LM head
    }

    /// Analytic parameter count of the pruned retrieval head
    /// (QK projections only; embedding shared, everything else pruned).
    pub fn retrieval_head_params(&self) -> u64 {
        let h = self.hidden as u64;
        let qd = (self.q_heads * self.head_dim) as u64;
        let kvd = (self.kv_heads * self.head_dim) as u64;
        h * qd + h * kvd
    }

    /// The scaled-down geometry used for actual CPU forward passes.
    ///
    /// Preserved: attention kind, group size α, Q/KV head ratio.
    /// Scaled: layers, hidden size, vocabulary.
    pub fn sim_geometry(&self) -> SimGeometry {
        let q_heads = 8;
        let kv_heads = match self.attention {
            AttentionKind::Mha | AttentionKind::Mla => q_heads,
            AttentionKind::Gqa => q_heads / self.group_size().min(q_heads).max(1),
            AttentionKind::Mqa => 1,
        }
        .max(1);
        SimGeometry {
            attention: self.attention,
            layers: 4,
            hidden: 64,
            q_heads,
            kv_heads,
            head_dim: 16,
            mla_latent: if self.attention == AttentionKind::Mla {
                24
            } else {
                0
            },
            ffn_dim: 128,
            vocab: 512,
            rope_base: 500_000.0,
            train_context: 2048,
            semantic_strength: 1.5,
        }
    }
}

/// The small geometry actually executed on the CPU.
///
/// See [`ModelConfig::sim_geometry`]. Tests may also construct these
/// directly for even smaller models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimGeometry {
    /// Attention mechanism (preserved from the full config).
    pub attention: AttentionKind,
    /// Number of decoder layers.
    pub layers: usize,
    /// Residual stream width.
    pub hidden: usize,
    /// Query heads.
    pub q_heads: usize,
    /// KV heads.
    pub kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// MLA latent width (0 unless MLA).
    pub mla_latent: usize,
    /// FFN intermediate width.
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// RoPE base.
    pub rope_base: f32,
    /// Nominal trained context (YaRN extends beyond this).
    pub train_context: usize,
    /// Strength of the built-in semantic channel: a query-key aligned
    /// direction shared across layers and heads. Real LLMs acquire such
    /// structure in training (it is why content-based KV retrieval works);
    /// random-weight simulators must be given it explicitly. 0 disables.
    pub semantic_strength: f32,
}

impl SimGeometry {
    /// A tiny geometry for unit tests.
    pub fn tiny(attention: AttentionKind) -> Self {
        let (q_heads, kv_heads, mla_latent) = match attention {
            AttentionKind::Mha => (2, 2, 0),
            AttentionKind::Gqa => (4, 2, 0),
            AttentionKind::Mqa => (4, 1, 0),
            AttentionKind::Mla => (2, 2, 12),
        };
        Self {
            attention,
            layers: 2,
            hidden: 32,
            q_heads,
            kv_heads,
            head_dim: 8,
            mla_latent,
            ffn_dim: 64,
            vocab: 64,
            rope_base: 10_000.0,
            train_context: 256,
            semantic_strength: 1.5,
        }
    }

    /// Group size α (query heads per KV head); 1 for MHA/MLA.
    pub fn group_size(&self) -> usize {
        match self.attention {
            AttentionKind::Mha | AttentionKind::Mla => 1,
            AttentionKind::Gqa | AttentionKind::Mqa => self.q_heads / self.kv_heads,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.layers == 0 {
            return Err("layers must be positive".into());
        }
        if self.q_heads == 0 || self.kv_heads == 0 {
            return Err("head counts must be positive".into());
        }
        if !self.q_heads.is_multiple_of(self.kv_heads) {
            return Err(format!(
                "q_heads {} must be a multiple of kv_heads {}",
                self.q_heads, self.kv_heads
            ));
        }
        match self.attention {
            AttentionKind::Mha | AttentionKind::Mla => {
                if self.q_heads != self.kv_heads {
                    return Err(format!("{} requires q_heads == kv_heads", self.attention));
                }
            }
            AttentionKind::Mqa => {
                if self.kv_heads != 1 {
                    return Err("MQA requires exactly one KV head".into());
                }
            }
            AttentionKind::Gqa => {}
        }
        if self.attention == AttentionKind::Mla && self.mla_latent == 0 {
            return Err("MLA requires mla_latent > 0".into());
        }
        if !self.head_dim.is_multiple_of(2) {
            return Err("head_dim must be even for RoPE".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama_group_size_is_four() {
        assert_eq!(ModelConfig::llama3_1_8b().group_size(), 4);
    }

    #[test]
    fn mqa_group_size_is_all_heads() {
        assert_eq!(ModelConfig::mqa_7b().group_size(), 32);
    }

    #[test]
    fn mha_and_mla_group_size_is_one() {
        assert_eq!(ModelConfig::llama2_7b_mha().group_size(), 1);
        assert_eq!(ModelConfig::mla_8b().group_size(), 1);
    }

    #[test]
    fn llama_kv_bytes_match_paper_example() {
        // Paper Section 2.2: ~4GB KV for 32K context on Llama3.1-8B.
        let cfg = ModelConfig::llama3_1_8b();
        let gb = cfg.kv_bytes_total(32 * 1024) as f64 / 1e9;
        assert!((3.0..6.0).contains(&gb), "got {gb} GB");
    }

    #[test]
    fn mla_caches_latent_only() {
        let cfg = ModelConfig::mla_8b();
        let full = 2 * 2 * (cfg.kv_heads * cfg.head_dim) as u64;
        assert!(cfg.kv_bytes_per_token_layer() < full / 4);
    }

    #[test]
    fn sim_geometry_preserves_attention_kind_and_alpha() {
        for cfg in ModelConfig::paper_presets() {
            let sim = cfg.sim_geometry();
            assert_eq!(sim.attention, cfg.attention);
            sim.validate().expect("sim geometry must validate");
        }
    }

    #[test]
    fn tiny_geometries_validate() {
        for kind in [
            AttentionKind::Mha,
            AttentionKind::Gqa,
            AttentionKind::Mqa,
            AttentionKind::Mla,
        ] {
            SimGeometry::tiny(kind).validate().unwrap();
        }
    }

    #[test]
    fn validation_rejects_bad_geometries() {
        let mut g = SimGeometry::tiny(AttentionKind::Gqa);
        g.kv_heads = 3;
        assert!(g.validate().is_err());

        let mut g = SimGeometry::tiny(AttentionKind::Mqa);
        g.kv_heads = 2;
        assert!(g.validate().is_err());

        let mut g = SimGeometry::tiny(AttentionKind::Mla);
        g.mla_latent = 0;
        assert!(g.validate().is_err());

        let mut g = SimGeometry::tiny(AttentionKind::Mha);
        g.head_dim = 7;
        assert!(g.validate().is_err());
    }

    #[test]
    fn retrieval_head_prunes_over_90_percent_at_real_scale() {
        // Paper Section 4/7.4: >90% parameter reduction; head ~60MB fp16.
        for cfg in [ModelConfig::llama3_1_8b(), ModelConfig::qwen3_8b()] {
            let dlm = cfg.dlm_params_non_embedding() as f64;
            let head = cfg.retrieval_head_params() as f64;
            assert!(1.0 - head / dlm > 0.9, "{}: {}", cfg.name, 1.0 - head / dlm);
            let head_mb = head * 2.0 / 1e6;
            assert!((30.0..100.0).contains(&head_mb), "head {head_mb} MB");
        }
    }

    #[test]
    fn presets_have_distinct_names() {
        let names: std::collections::HashSet<String> = ModelConfig::paper_presets()
            .into_iter()
            .map(|c| c.name)
            .collect();
        assert_eq!(names.len(), 4);
    }
}
