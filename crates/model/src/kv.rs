//! Model-internal KV state for forward passes.
//!
//! This is the *logical* cache the transformer reads during attention.
//! The system-level tiered cache (GPU/CPU placement, paging, elastic
//! loading) lives in `spec-kvcache`; the runtime keeps the two in sync.

use crate::config::{AttentionKind, SimGeometry};
use spec_tensor::Matrix;

/// KV state for one layer.
///
/// For MHA/GQA/MQA: per-KV-head key and value matrices (`seq x head_dim`).
/// For MLA: a single shared latent matrix (`seq x mla_latent`); keys and
/// values are up-projected on demand.
#[derive(Debug, Clone)]
pub enum LayerKv {
    /// Per-head K/V storage.
    PerHead {
        /// One `seq x head_dim` key matrix per KV head.
        keys: Vec<Matrix>,
        /// One `seq x head_dim` value matrix per KV head.
        values: Vec<Matrix>,
    },
    /// Shared latent storage (MLA).
    Latent {
        /// `seq x mla_latent` latent cache (the `c` of the paper's Fig. 5(e)).
        latent: Matrix,
    },
}

impl LayerKv {
    /// Creates empty storage matching the geometry.
    pub fn empty(geom: &SimGeometry) -> Self {
        match geom.attention {
            AttentionKind::Mla => LayerKv::Latent {
                latent: Matrix::default(),
            },
            _ => LayerKv::PerHead {
                keys: vec![Matrix::default(); geom.kv_heads],
                values: vec![Matrix::default(); geom.kv_heads],
            },
        }
    }

    /// Number of cached positions.
    pub fn seq_len(&self) -> usize {
        match self {
            LayerKv::PerHead { keys, .. } => keys.first().map_or(0, Matrix::rows),
            LayerKv::Latent { latent } => latent.rows(),
        }
    }
}

/// KV state for the whole model.
#[derive(Debug, Clone)]
pub struct ModelKv {
    /// One entry per decoder layer.
    pub layers: Vec<LayerKv>,
}

impl ModelKv {
    /// Creates empty caches for every layer.
    pub fn empty(geom: &SimGeometry) -> Self {
        Self {
            layers: (0..geom.layers).map(|_| LayerKv::empty(geom)).collect(),
        }
    }

    /// Number of cached positions (identical across layers).
    pub fn seq_len(&self) -> usize {
        self.layers.first().map_or(0, LayerKv::seq_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_has_zero_len() {
        let geom = SimGeometry::tiny(AttentionKind::Gqa);
        let kv = ModelKv::empty(&geom);
        assert_eq!(kv.seq_len(), 0);
        assert_eq!(kv.layers.len(), geom.layers);
    }

    #[test]
    fn mla_uses_latent_storage() {
        let geom = SimGeometry::tiny(AttentionKind::Mla);
        let kv = ModelKv::empty(&geom);
        assert!(matches!(kv.layers[0], LayerKv::Latent { .. }));
    }
}
