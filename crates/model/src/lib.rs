//! From-scratch transformer decoder simulator for the SpeContext
//! reproduction.
//!
//! This crate provides:
//!
//! * [`config`] — real architectural geometries of the paper's models and
//!   the scaled-down [`config::SimGeometry`] actually executed on CPU;
//! * [`transformer`] — a decoder-only transformer with MHA/GQA/MQA/MLA
//!   attention, KV-cached decode, sparse attention plans and attention
//!   tracing;
//! * [`dlm`] — EAGLE-3-style distillation of a one-layer draft LM and its
//!   pruning to the lightweight retrieval head (paper Section 4);
//! * [`probe`] — semantic probe directions used by the synthetic workloads
//!   to plant evidence tokens the teacher genuinely attends to.
//!
//! # Example
//!
//! ```
//! use spec_model::config::{AttentionKind, SimGeometry};
//! use spec_model::transformer::{Model, PrefillMode};
//!
//! let model = Model::new(SimGeometry::tiny(AttentionKind::Gqa), 42);
//! let tokens: Vec<usize> = (0..16).collect();
//! let (kv, out) = model.prefill_tokens(&tokens, PrefillMode::Exact);
//! assert_eq!(kv.seq_len(), 16);
//! assert!(out.logits.iter().all(|v| v.is_finite()));
//! ```

pub mod config;
pub mod dlm;
pub mod kv;
pub mod probe;
pub mod sampling;
pub mod transformer;
pub mod weights;

pub use config::{AttentionKind, ModelConfig, SimGeometry};
pub use dlm::{DistillOptions, Dlm, RetrievalHead, RetrievalHeadState};
pub use kv::{LayerKv, ModelKv};
pub use probe::{probe_direction, Probe};
pub use sampling::Sampler;
pub use transformer::{LayerSelector, Model, PrefillMode, SparsePlan, StepOutput, StepTrace};
// Re-exported so `LayerSelector` implementors and callers name the
// scratch type without a direct `spec_tensor` dependency.
pub use spec_tensor::topk::SelectScratch;
