//! Distilled language model (DLM) and the lightweight retrieval head.
//!
//! The paper adopts the EAGLE-3 recipe: a one-layer LM distilled from the
//! teacher, run *before* the LLM to predict which context tokens matter.
//! Section 4 then prunes the DLM down to its embedding and QK projections
//! (the **retrieval head**), a >90% reduction of non-embedding parameters,
//! because only attention *weights* are needed for retrieval.
//!
//! Our distillation is performed, not asserted: per query head we build the
//! teacher's layer-averaged query-key bilinear form and factor it to rank
//! `head_dim` by orthogonal (subspace) iteration — the closed-form optimum
//! of the attention-logit matching objective on whitened inputs. A noise
//! knob degrades fidelity so experiments can sweep alignment quality.

use crate::config::{AttentionKind, SimGeometry};
use crate::transformer::Model;
use crate::weights::{LayerWeights, ModelWeights};
use spec_tensor::{ops, Matrix, SimRng};

/// Options controlling distillation fidelity.
#[derive(Debug, Clone, Copy)]
pub struct DistillOptions {
    /// Relative Gaussian noise added to the fitted projections
    /// (0.0 = best achievable alignment, 1.0 = mostly noise).
    pub noise: f32,
    /// Subspace-iteration rounds for the rank factorization.
    pub iters: usize,
    /// RNG seed for noise.
    pub seed: u64,
}

impl Default for DistillOptions {
    fn default() -> Self {
        Self {
            noise: 0.05,
            iters: 6,
            seed: 0xD15711,
        }
    }
}

/// The distilled LM: a complete one-layer LM (embedding, decoder layer,
/// LM head) in the teacher's hidden space.
#[derive(Debug, Clone)]
pub struct Dlm {
    model: Model,
    teacher_geom: SimGeometry,
}

impl Dlm {
    /// Distills a one-layer LM from the teacher.
    pub fn distill(teacher: &Model, options: DistillOptions) -> Self {
        let tg = *teacher.geometry();
        let mut geom = tg;
        geom.layers = 1;
        // The DLM always uses MHA internally: one KV head per query head,
        // so its attention weights expose a full head-level signal that the
        // mapping stage can reduce per the teacher's grouping.
        geom.attention = AttentionKind::Mha;
        geom.kv_heads = geom.q_heads;
        geom.mla_latent = 0;

        let mut rng = SimRng::seed(options.seed);
        let mut weights = ModelWeights::init(&geom, &mut rng.fork(1));
        // Share the teacher's embedding (EAGLE reuses the base embedding).
        weights.embedding = teacher.weights().embedding.clone();
        weights.norm_final = teacher.weights().norm_final.clone();
        weights.lm_head = teacher.weights().lm_head.clone();

        let layer = Self::fit_layer(teacher, &geom, options, &mut rng);
        weights.layers = vec![layer];

        Self {
            model: Model::from_weights(geom, weights),
            teacher_geom: tg,
        }
    }

    /// Fits the single decoder layer: QK by bilinear-form factorization,
    /// V/O/FFN by layer averaging (they are pruned away in the retrieval
    /// head but keep the DLM a complete LM).
    fn fit_layer(
        teacher: &Model,
        geom: &SimGeometry,
        options: DistillOptions,
        rng: &mut SimRng,
    ) -> LayerWeights {
        let tg = teacher.geometry();
        let h = tg.hidden;
        let d = tg.head_dim;
        // QK will be overwritten by the fit; the proto only seeds V/O/FFN,
        // so no semantic channel is imprinted here.
        let mut proto = LayerWeights::init(geom, &mut rng.fork(2), None);

        for q in 0..tg.q_heads {
            // Teacher's layer-averaged bilinear form for this query head.
            let mut m = Matrix::zeros(h, h);
            for lw in &teacher.weights().layers {
                let kvh = q / tg.group_size();
                let k_eff = match tg.attention {
                    AttentionKind::Mla => lw
                        .w_down_latent
                        .as_ref()
                        .expect("MLA weights")
                        .matmul(&lw.wk[kvh]),
                    _ => lw.wk[kvh].clone(),
                };
                m = m.add(&lw.wq[q].matmul(&k_eff.transposed()));
            }
            m.scale(1.0 / tg.layers as f32);

            let (mut a, mut b) = factor_rank_d(&m, d, options.iters, &mut rng.fork(10 + q as u64));
            if options.noise > 0.0 {
                perturb(&mut a, options.noise, &mut rng.fork(100 + q as u64));
                perturb(&mut b, options.noise, &mut rng.fork(200 + q as u64));
            }
            proto.wq[q] = a;
            proto.wk[q] = b;
        }

        // V/O/FFN: average the teacher layers (adequate for a draft LM;
        // irrelevant to retrieval, which uses QK only).
        let avg = |f: &dyn Fn(&LayerWeights) -> &Matrix| -> Matrix {
            let mut acc = f(&teacher.weights().layers[0]).clone();
            for lw in &teacher.weights().layers[1..] {
                acc = acc.add(f(lw));
            }
            acc.scale(1.0 / tg.layers as f32);
            acc
        };
        for v in 0..geom.kv_heads {
            let src = v % tg.kv_heads;
            proto.wv[v] = match tg.attention {
                // MLA teachers store V as latent->d; the DLM works in
                // hidden space, so compose with the down-projection.
                AttentionKind::Mla => {
                    let mut acc: Option<Matrix> = None;
                    for lw in &teacher.weights().layers {
                        let composed = lw
                            .w_down_latent
                            .as_ref()
                            .expect("MLA weights")
                            .matmul(&lw.wv[src]);
                        acc = Some(match acc {
                            None => composed,
                            Some(a) => a.add(&composed),
                        });
                    }
                    let mut a = acc.expect("teacher has layers");
                    a.scale(1.0 / tg.layers as f32);
                    a
                }
                _ => avg(&|lw| &lw.wv[src]),
            };
        }
        proto.wo = avg(&|lw| &lw.wo);
        proto.w_gate = avg(&|lw| &lw.w_gate);
        proto.w_up = avg(&|lw| &lw.w_up);
        proto.w_down = avg(&|lw| &lw.w_down);
        proto.w_down_latent = None;
        proto
    }

    /// The underlying one-layer model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Geometry of the teacher this DLM was distilled from.
    pub fn teacher_geometry(&self) -> &SimGeometry {
        &self.teacher_geom
    }

    /// Non-embedding parameter count (decoder layer + LM head), the
    /// quantity the paper's ">90% reduction" refers to.
    pub fn param_count_non_embedding(&self) -> usize {
        let w = self.model.weights();
        w.param_count() - w.embedding.len()
    }

    /// Prunes the DLM to the retrieval head: embedding + QK projections.
    pub fn to_retrieval_head(&self) -> RetrievalHead {
        let w = self.model.weights();
        let layer = &w.layers[0];
        RetrievalHead {
            geom: *self.model.geometry(),
            teacher_geom: self.teacher_geom,
            embedding: w.embedding.clone(),
            wq: layer.wq.clone(),
            wk: layer.wk.clone(),
            norm_attn: layer.norm_attn.clone(),
            rope_scale: self.model.rope_scale(),
            use_rope: false,
        }
    }

    /// Enables YaRN-style context extension on the DLM.
    pub fn set_rope_scale(&mut self, scale: f32) {
        self.model.set_rope_scale(scale);
    }
}

/// The pruned retrieval head: embedding + QK projections only.
///
/// During inference it maintains a full Key cache (keys only — no values,
/// no FFN, no LM head) and produces head-level attention weights that the
/// selection mapping (in `spec-retrieval`) converts to KV indices.
#[derive(Debug, Clone)]
pub struct RetrievalHead {
    geom: SimGeometry,
    teacher_geom: SimGeometry,
    embedding: Matrix,
    wq: Vec<Matrix>,
    wk: Vec<Matrix>,
    norm_attn: Vec<f32>,
    rope_scale: f32,
    /// Whether to rotate queries/keys positionally. The fitted projections
    /// live in an SVD basis where the teacher's RoPE pairing does not
    /// apply, so content-only scoring (false, the default) is the faithful
    /// mode; positional scoring is available for ablations.
    use_rope: bool,
}

/// Incremental key-cache state for the retrieval head.
#[derive(Debug, Clone, Default)]
pub struct RetrievalHeadState {
    keys: Vec<Matrix>,
    len: usize,
}

impl RetrievalHeadState {
    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no positions are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl RetrievalHead {
    /// Number of query heads (equals the teacher's query heads).
    pub fn num_heads(&self) -> usize {
        self.geom.q_heads
    }

    /// Parameter count of the head, excluding the (shared) embedding.
    pub fn param_count_non_embedding(&self) -> usize {
        self.wq.iter().map(Matrix::len).sum::<usize>()
            + self.wk.iter().map(Matrix::len).sum::<usize>()
            + self.norm_attn.len()
    }

    /// Sets the YaRN context-extension scale.
    pub fn set_rope_scale(&mut self, scale: f32) {
        assert!(scale >= 1.0, "rope scale must be >= 1");
        self.rope_scale = scale;
    }

    /// Enables positional (RoPE) scoring. See the `use_rope` field note:
    /// content-only scoring is the default and the faithful mode.
    pub fn set_use_rope(&mut self, on: bool) {
        self.use_rope = on;
    }

    /// Embeds tokens through the shared embedding.
    pub fn embed_tokens(&self, tokens: &[usize]) -> Matrix {
        self.embedding.gather_rows(tokens)
    }

    /// Creates an empty incremental state.
    pub fn new_state(&self) -> RetrievalHeadState {
        RetrievalHeadState {
            keys: vec![Matrix::default(); self.geom.q_heads],
            len: 0,
        }
    }

    /// Appends one embedded token to the key cache.
    pub fn append(&self, emb: &[f32], state: &mut RetrievalHeadState) {
        let normed = ops::rmsnorm(emb, &self.norm_attn, 1e-6);
        let pos = state.len;
        for (hh, wk) in self.wk.iter().enumerate() {
            let mut k = wk.vecmat(&normed);
            if self.use_rope {
                ops::rope_inplace(&mut k, pos, self.geom.rope_base, self.rope_scale);
            }
            state.keys[hh].push_row(&k);
        }
        state.len += 1;
    }

    /// Appends a whole embedded context.
    pub fn append_all(&self, emb: &Matrix, state: &mut RetrievalHeadState) {
        for r in 0..emb.rows() {
            self.append(emb.row(r), state);
        }
    }

    /// Head-level attention weights of the query embedding against the
    /// cached keys: one softmax distribution per head over all cached
    /// positions.
    ///
    /// # Panics
    ///
    /// Panics if the state is empty.
    pub fn head_scores(&self, query_emb: &[f32], state: &RetrievalHeadState) -> Vec<Vec<f32>> {
        assert!(state.len > 0, "retrieval head has no cached keys");
        let normed = ops::rmsnorm(query_emb, &self.norm_attn, 1e-6);
        let pos = state.len - 1;
        (0..self.geom.q_heads)
            .map(|h| {
                let mut q = self.wq[h].vecmat(&normed);
                if self.use_rope {
                    ops::rope_inplace(&mut q, pos, self.geom.rope_base, self.rope_scale);
                }
                ops::attention_weights(&q, &state.keys[h])
            })
            .collect()
    }

    /// Convenience: scores a full context in one call, using the last
    /// position as the query.
    pub fn score_context(&self, emb: &Matrix) -> Vec<Vec<f32>> {
        let mut state = self.new_state();
        self.append_all(emb, &mut state);
        self.head_scores(emb.row(emb.rows() - 1), &state)
    }

    /// Bytes of key cache per token held by the head (FP32 in the sim).
    pub fn key_cache_bytes_per_token(&self) -> usize {
        self.geom.q_heads * self.geom.head_dim * 4
    }

    /// The teacher geometry (used by the selection mapping).
    pub fn teacher_geometry(&self) -> &SimGeometry {
        &self.teacher_geom
    }
}

/// Factors `m` (h x h) into `(a, b)` with `a b^T ≈ m`, rank `d`, via
/// orthogonal iteration (converges to the top-`d` singular subspaces).
fn factor_rank_d(m: &Matrix, d: usize, iters: usize, rng: &mut SimRng) -> (Matrix, Matrix) {
    let h = m.rows();
    let mut b = rng.normal_matrix(h, d, 1.0);
    orthonormalize_cols(&mut b);
    let mt = m.transposed();
    let mut a = m.matmul(&b);
    for _ in 0..iters {
        orthonormalize_cols(&mut a);
        b = mt.matmul(&a);
        orthonormalize_cols(&mut b);
        a = m.matmul(&b);
    }
    // a carries the singular values; split them evenly between the two
    // factors so q/k magnitudes stay balanced (as in real checkpoints).
    let (mut a_bal, mut b_bal) = (a, b);
    for c in 0..d {
        let norm: f32 = (0..h).map(|r| a_bal.get(r, c).powi(2)).sum::<f32>().sqrt();
        if norm > 1e-12 {
            let s = norm.sqrt();
            for r in 0..h {
                let va = a_bal.get(r, c);
                a_bal.set(r, c, va / s);
                let vb = b_bal.get(r, c);
                b_bal.set(r, c, vb * s);
            }
        }
    }
    (a_bal, b_bal)
}

/// Gram–Schmidt on columns.
fn orthonormalize_cols(m: &mut Matrix) {
    let (rows, cols) = m.shape();
    for c in 0..cols {
        for prev in 0..c {
            let dot: f32 = (0..rows).map(|r| m.get(r, c) * m.get(r, prev)).sum();
            for r in 0..rows {
                let v = m.get(r, c) - dot * m.get(r, prev);
                m.set(r, c, v);
            }
        }
        let norm: f32 = (0..rows).map(|r| m.get(r, c).powi(2)).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for r in 0..rows {
                let v = m.get(r, c) / norm;
                m.set(r, c, v);
            }
        }
    }
}

fn perturb(m: &mut Matrix, rel_noise: f32, rng: &mut SimRng) {
    let scale = m.frobenius_norm() / (m.len() as f32).sqrt();
    for v in m.as_mut_slice() {
        *v += rng.normal() * rel_noise * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimGeometry;
    use crate::transformer::PrefillMode;
    use spec_tensor::stats;
    use spec_tensor::topk::top_k_indices;

    fn teacher(kind: AttentionKind) -> Model {
        Model::new(SimGeometry::tiny(kind), 77)
    }

    #[test]
    fn factorization_approximates_low_rank_matrix() {
        let mut rng = SimRng::seed(3);
        // Build an exactly rank-4 matrix and recover it.
        let u = rng.normal_matrix(16, 4, 1.0);
        let v = rng.normal_matrix(16, 4, 1.0);
        let m = u.matmul(&v.transposed());
        let (a, b) = factor_rank_d(&m, 4, 12, &mut rng);
        let approx = a.matmul(&b.transposed());
        let err = m
            .as_slice()
            .iter()
            .zip(approx.as_slice())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt();
        let norm = m.frobenius_norm();
        assert!(err / norm < 0.05, "relative error {}", err / norm);
    }

    #[test]
    fn dlm_has_one_layer_and_shared_embedding() {
        let t = teacher(AttentionKind::Gqa);
        let dlm = Dlm::distill(&t, DistillOptions::default());
        assert_eq!(dlm.model().geometry().layers, 1);
        assert_eq!(dlm.model().weights().embedding, t.weights().embedding);
    }

    #[test]
    fn retrieval_head_prunes_most_parameters() {
        // In the tiny sim geometry the FFN/LM-head share is smaller than at
        // 8B scale, so the bound here is 75%; the >90% paper-scale claim is
        // asserted analytically in `config::tests`.
        let t = teacher(AttentionKind::Gqa);
        let dlm = Dlm::distill(&t, DistillOptions::default());
        let head = dlm.to_retrieval_head();
        let full = dlm.param_count_non_embedding() as f32;
        let pruned = head.param_count_non_embedding() as f32;
        let reduction = 1.0 - pruned / full;
        assert!(
            reduction > 0.75,
            "only {:.1}% reduction (head {pruned}, dlm {full})",
            reduction * 100.0
        );
    }

    #[test]
    fn head_scores_are_distributions() {
        let t = teacher(AttentionKind::Mha);
        let head = Dlm::distill(&t, DistillOptions::default()).to_retrieval_head();
        let tokens: Vec<usize> = (0..20).map(|i| i % 60).collect();
        let emb = head.embed_tokens(&tokens);
        let scores = head.score_context(&emb);
        assert_eq!(scores.len(), head.num_heads());
        for s in &scores {
            assert_eq!(s.len(), 20);
            assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    /// The paper's core claim (Sec. 3.2): the DLM's information focus
    /// tracks the teacher's. On inputs with planted salient structure (the
    /// regime of real text, reproduced by the workload generator's probe
    /// planting), both the teacher and the distilled head must focus on
    /// the same evidence positions.
    #[test]
    fn distilled_head_aligns_with_teacher_focus_on_salient_inputs() {
        let t = teacher(AttentionKind::Gqa);
        let head = Dlm::distill(
            &t,
            DistillOptions {
                noise: 0.0,
                ..Default::default()
            },
        )
        .to_retrieval_head();
        let probe = crate::probe::probe_direction(&t, 30);

        let n = 64;
        let evidence = [10usize, 25, 40];
        let tokens: Vec<usize> = (0..n).map(|i| (i * 7) % 60).collect();
        let mut emb = t.embed_tokens(&tokens);
        let strength = 6.0;
        for &e in &evidence {
            for (x, m) in emb.row_mut(e).iter_mut().zip(&probe.direction) {
                *x += strength * m;
            }
        }
        // The question (last) token carries the probe too.
        for (x, m) in emb.row_mut(n - 1).iter_mut().zip(&probe.direction) {
            *x += strength * m;
        }

        // Teacher oracle: layer/head-averaged attention on the last step.
        let (mut kv, _) = t.prefill_embeddings(&emb, PrefillMode::Exact);
        let query = emb.row(n - 1).to_vec();
        let plan = crate::transformer::SparsePlan::dense(t.geometry().layers);
        let (_, trace) = t.decode_step_traced(&query, n, &mut kv, &plan);
        let mut oracle = vec![0.0f32; n];
        for layer in &trace.attn {
            for headw in layer {
                for (i, w) in headw.iter().take(n).enumerate() {
                    oracle[i] += w;
                }
            }
        }
        let teacher_top = top_k_indices(&oracle, 8);
        let teacher_hits = stats::hit_rate(&evidence, &teacher_top);
        assert!(
            teacher_hits > 0.5,
            "teacher should focus on planted evidence (hits {teacher_hits})"
        );

        // Head: max over heads (head-level retrieval pools per head).
        let scores = head.score_context(&emb);
        let mut pooled = vec![0.0f32; n];
        for s in &scores {
            for (p, w) in pooled.iter_mut().zip(s) {
                *p = p.max(*w);
            }
        }
        let head_top = top_k_indices(&pooled, 8);
        let head_hits = stats::hit_rate(&evidence, &head_top);
        assert!(
            head_hits > 0.5,
            "retrieval head should focus on planted evidence (hits {head_hits})"
        );
    }

    #[test]
    fn noise_degrades_alignment() {
        let t = teacher(AttentionKind::Gqa);
        let clean = Dlm::distill(
            &t,
            DistillOptions {
                noise: 0.0,
                ..Default::default()
            },
        )
        .to_retrieval_head();
        let noisy = Dlm::distill(
            &t,
            DistillOptions {
                noise: 3.0,
                ..Default::default()
            },
        )
        .to_retrieval_head();

        let tokens: Vec<usize> = (0..40).map(|i| (i * 11) % 60).collect();
        let emb = t.embed_tokens(&tokens);
        let sc = clean.score_context(&emb);
        let sn = noisy.score_context(&emb);
        // Across heads, the clean head should correlate with itself more
        // than the noisy head correlates with the clean one. Weak but
        // direction-checking assertion: distributions differ materially.
        let mut diff = 0.0;
        for (a, b) in sc.iter().zip(&sn) {
            diff += stats::kl_divergence(a, b, 1e-9);
        }
        assert!(diff > 0.01, "noise should change the focus ({diff})");
    }

    #[test]
    fn incremental_state_matches_batch_scoring() {
        let t = teacher(AttentionKind::Mqa);
        let head = Dlm::distill(&t, DistillOptions::default()).to_retrieval_head();
        let tokens: Vec<usize> = (0..12).collect();
        let emb = head.embed_tokens(&tokens);

        let batch = head.score_context(&emb);

        let mut state = head.new_state();
        for r in 0..emb.rows() {
            self::append_row(&head, &emb, r, &mut state);
        }
        let inc = head.head_scores(emb.row(11), &state);
        for (a, b) in batch.iter().zip(&inc) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    fn append_row(head: &RetrievalHead, emb: &Matrix, r: usize, state: &mut RetrievalHeadState) {
        head.append(emb.row(r), state);
    }

    #[test]
    fn works_for_all_teacher_attention_kinds() {
        for kind in [
            AttentionKind::Mha,
            AttentionKind::Gqa,
            AttentionKind::Mqa,
            AttentionKind::Mla,
        ] {
            let t = teacher(kind);
            let head = Dlm::distill(&t, DistillOptions::default()).to_retrieval_head();
            let tokens: Vec<usize> = (0..10).collect();
            let emb = head.embed_tokens(&tokens);
            let scores = head.score_context(&emb);
            assert_eq!(scores.len(), t.geometry().q_heads, "{kind}");
        }
    }
}
