//! The SpeContext engine and session API.

use spec_model::{DistillOptions, Dlm, Model, ModelKv, PrefillMode, SimGeometry, StepOutput};
use spec_retrieval::common::SelectorConfig;
use spec_retrieval::spec_head::SpecContextRetriever;
use spec_retrieval::MappingLevel;
use spec_runtime::exec::{
    generate_free_running, generate_teacher_forced, DecodeStrategy, GenerationResult,
};
use spec_tensor::Matrix;

/// Configuration of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Simulated geometry of the teacher model.
    pub geometry: SimGeometry,
    /// Weight seed.
    pub seed: u64,
    /// KV retrieval budget `B`.
    pub budget: usize,
    /// Always-kept sink positions (within budget).
    pub sinks: usize,
    /// Always-kept recent positions (within budget).
    pub recent: usize,
    /// Head-level vs batch-level mapping (paper uses head-level).
    pub mapping: MappingLevel,
    /// Distillation options for the DLM.
    pub distill: DistillOptions,
    /// Prefill attention mode.
    pub prefill_mode: PrefillMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            geometry: SimGeometry::tiny(spec_model::AttentionKind::Gqa),
            seed: 0x5EED,
            budget: 64,
            sinks: 4,
            recent: 8,
            mapping: MappingLevel::Head,
            distill: DistillOptions::default(),
            prefill_mode: PrefillMode::Exact,
        }
    }
}

impl EngineConfig {
    /// The selector configuration implied by this engine config.
    pub fn selector_config(&self) -> SelectorConfig {
        SelectorConfig {
            budget: self.budget,
            sinks: self.sinks,
            recent: self.recent,
            ..SelectorConfig::with_budget(self.budget)
        }
    }
}

/// The engine: a teacher model plus its distilled retrieval head.
#[derive(Debug, Clone)]
pub struct Engine {
    model: Model,
    dlm: Dlm,
    config: EngineConfig,
}

impl Engine {
    /// Builds the teacher, distills the DLM and prunes the retrieval head.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails validation.
    pub fn build(config: EngineConfig) -> Self {
        let model = Model::new(config.geometry, config.seed);
        let dlm = Dlm::distill(&model, config.distill);
        Self { model, dlm, config }
    }

    /// The teacher model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The distilled LM.
    pub fn dlm(&self) -> &Dlm {
        &self.dlm
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// A fresh retriever around a freshly pruned head.
    pub fn retriever(&self) -> SpecContextRetriever {
        self.retriever_with_budget(self.config.budget)
    }

    /// A fresh retriever with an overridden KV budget (evaluation sweeps).
    pub fn retriever_with_budget(&self, budget: usize) -> SpecContextRetriever {
        let mut cfg = self.config.selector_config();
        cfg.budget = budget;
        SpecContextRetriever::new(self.dlm.to_retrieval_head(), cfg, self.config.mapping)
    }

    /// Opens a generation session.
    pub fn session(&self) -> Session<'_> {
        Session {
            engine: self,
            kv: ModelKv::empty(self.model.geometry()),
            retriever: self.retriever(),
            last_output: None,
        }
    }
}

/// A generation session: prompt prefill, then speculative-sparse decode.
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e Engine,
    kv: ModelKv,
    retriever: SpecContextRetriever,
    last_output: Option<StepOutput>,
}

impl Session<'_> {
    /// Prefills the session with pre-embedded prompt rows. The retrieval
    /// head observes every prompt token (it runs before the LLM).
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or the session was already prefilled.
    pub fn prefill_embeddings(&mut self, emb: &Matrix) -> StepOutput {
        assert!(emb.rows() > 0, "empty prompt");
        assert_eq!(self.kv.seq_len(), 0, "session already prefilled");
        for r in 0..emb.rows() {
            self.retriever.observe(emb.row(r));
        }
        let (kv, out) = self
            .engine
            .model
            .prefill_embeddings(emb, self.engine.config.prefill_mode);
        self.kv = kv;
        self.last_output = Some(out.clone());
        out
    }

    /// Token-level prefill convenience wrapper.
    pub fn prefill_tokens(&mut self, tokens: &[usize]) -> StepOutput {
        let emb = self.engine.model.embed_tokens(tokens);
        self.prefill_embeddings(&emb)
    }

    /// Current cached sequence length.
    pub fn seq_len(&self) -> usize {
        self.kv.seq_len()
    }

    /// Generates `steps` tokens free-running (greedy) with speculative
    /// context sparsity and elastic-loading accounting.
    ///
    /// # Panics
    ///
    /// Panics if the session has not been prefilled.
    pub fn generate(&mut self, steps: usize) -> GenerationResult {
        self.generate_inner(steps, false)
    }

    /// As [`generate`](Self::generate) but records attention traces.
    pub fn generate_traced(&mut self, steps: usize) -> GenerationResult {
        self.generate_inner(steps, true)
    }

    fn generate_inner(&mut self, steps: usize, traced: bool) -> GenerationResult {
        let last = self.last_output.as_ref().expect("prefill before generate");
        let first_token = Model::argmax_token(&last.logits);
        let first = self
            .engine
            .model
            .embed_tokens(&[first_token])
            .row(0)
            .to_vec();
        let retr = std::mem::replace(&mut self.retriever, self.engine.retriever());
        let mut strategy = DecodeStrategy::SpeContext(Box::new(retr));
        let res = generate_free_running(
            &self.engine.model,
            &mut self.kv,
            &first,
            steps,
            &mut strategy,
            traced,
        );
        if let DecodeStrategy::SpeContext(r) = strategy {
            self.retriever = *r;
        }
        res
    }

    /// Teacher-forced decode over the rows of `inputs` (evaluation mode).
    pub fn decode_teacher_forced(&mut self, inputs: &Matrix, steps: usize) -> GenerationResult {
        let retr = std::mem::replace(&mut self.retriever, self.engine.retriever());
        let mut strategy = DecodeStrategy::SpeContext(Box::new(retr));
        let res = generate_teacher_forced(
            &self.engine.model,
            &mut self.kv,
            inputs,
            steps,
            &mut strategy,
            false,
        );
        if let DecodeStrategy::SpeContext(r) = strategy {
            self.retriever = *r;
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::AttentionKind;

    fn engine() -> Engine {
        Engine::build(EngineConfig {
            budget: 16,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn session_prefill_and_generate() {
        let e = engine();
        let mut s = e.session();
        let prompt: Vec<usize> = (0..24).collect();
        s.prefill_tokens(&prompt);
        assert_eq!(s.seq_len(), 24);
        let out = s.generate(6);
        assert_eq!(out.tokens.len(), 6);
        assert_eq!(s.seq_len(), 30);
        assert!(out.transfer.is_some());
    }

    #[test]
    fn generation_continues_across_calls() {
        let e = engine();
        let mut s = e.session();
        s.prefill_tokens(&(0..16).collect::<Vec<_>>());
        s.generate(4);
        s.generate(4);
        assert_eq!(s.seq_len(), 24);
    }

    #[test]
    #[should_panic(expected = "prefill before generate")]
    fn generate_without_prefill_panics() {
        let e = engine();
        let mut s = e.session();
        s.generate(1);
    }

    #[test]
    #[should_panic(expected = "already prefilled")]
    fn double_prefill_panics() {
        let e = engine();
        let mut s = e.session();
        s.prefill_tokens(&[1, 2, 3]);
        s.prefill_tokens(&[1, 2, 3]);
    }

    #[test]
    fn engine_works_for_all_attention_kinds() {
        for kind in [
            AttentionKind::Mha,
            AttentionKind::Gqa,
            AttentionKind::Mqa,
            AttentionKind::Mla,
        ] {
            let e = Engine::build(EngineConfig {
                geometry: SimGeometry::tiny(kind),
                budget: 12,
                ..EngineConfig::default()
            });
            let mut s = e.session();
            s.prefill_tokens(&(0..20).collect::<Vec<_>>());
            let out = s.generate(3);
            assert_eq!(out.tokens.len(), 3, "{kind}");
        }
    }

    #[test]
    fn traced_generation_records_traces() {
        let e = engine();
        let mut s = e.session();
        s.prefill_tokens(&(0..16).collect::<Vec<_>>());
        let out = s.generate_traced(2);
        assert_eq!(out.traces.len(), 2);
    }
}
