//! Pareto-frontier utilities for the accuracy/throughput plots of Fig. 1.

use serde::{Deserialize, Serialize};

/// One system's operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// System + configuration label.
    pub label: String,
    /// Normalized accuracy (higher is better).
    pub accuracy: f64,
    /// Normalized throughput (higher is better).
    pub throughput: f64,
}

impl ParetoPoint {
    /// True when `self` dominates `other` (at least as good on both axes,
    /// strictly better on one).
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        self.accuracy >= other.accuracy
            && self.throughput >= other.throughput
            && (self.accuracy > other.accuracy || self.throughput > other.throughput)
    }
}

/// Returns the indices of the non-dominated points, sorted by ascending
/// throughput (the order a frontier is plotted in).
pub fn pareto_frontier(points: &[ParetoPoint]) -> Vec<usize> {
    let mut frontier: Vec<usize> = (0..points.len())
        .filter(|&i| !points.iter().any(|p| p.dominates(&points[i])))
        .collect();
    frontier.sort_by(|&a, &b| {
        points[a]
            .throughput
            .partial_cmp(&points[b].throughput)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(label: &str, acc: f64, thr: f64) -> ParetoPoint {
        ParetoPoint {
            label: label.into(),
            accuracy: acc,
            throughput: thr,
        }
    }

    #[test]
    fn dominated_points_are_excluded() {
        let pts = vec![
            p("good", 0.9, 5.0),
            p("dominated", 0.8, 4.0),
            p("fast", 0.7, 9.0),
        ];
        let f = pareto_frontier(&pts);
        assert_eq!(f, vec![0, 2]);
    }

    #[test]
    fn frontier_points_mutually_nondominated() {
        let pts = vec![
            p("a", 0.9, 1.0),
            p("b", 0.8, 2.0),
            p("c", 0.7, 3.0),
            p("d", 0.95, 0.5),
        ];
        let f = pareto_frontier(&pts);
        for &i in &f {
            for &j in &f {
                if i != j {
                    assert!(!pts[i].dominates(&pts[j]));
                }
            }
        }
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn frontier_dominates_all_discarded() {
        let pts = vec![p("a", 0.9, 5.0), p("weak", 0.5, 1.0), p("b", 0.6, 8.0)];
        let f = pareto_frontier(&pts);
        for i in 0..pts.len() {
            if !f.contains(&i) {
                assert!(f.iter().any(|&j| pts[j].dominates(&pts[i])));
            }
        }
    }

    #[test]
    fn equal_points_both_survive() {
        let pts = vec![p("x", 0.5, 0.5), p("y", 0.5, 0.5)];
        assert_eq!(pareto_frontier(&pts).len(), 2);
    }

    #[test]
    fn empty_input_empty_frontier() {
        assert!(pareto_frontier(&[]).is_empty());
    }
}
