//! Experiment report tables: what every bench prints and serializes.

use serde::{Deserialize, Serialize};

/// A printable, serializable results table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `"Table 3: cloud throughput"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Serializes to pretty JSON (for EXPERIMENTS.md artifacts).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serializes")
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with 2 decimals (bench cell helper).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a throughput cell as `tok/s (batch, speedup x)`.
pub fn throughput_cell(tokens_per_s: f64, batch: usize, speedup: f64) -> String {
    if tokens_per_s == 0.0 {
        "OOM".to_string()
    } else {
        format!("{tokens_per_s:.2} ({batch}, {speedup:.2}x)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["sys", "tok/s"]);
        t.push_row(vec!["a".into(), "1.00".into()]);
        t.push_row(vec!["longer-name".into(), "12345.00".into()]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn json_round_trips() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(vec!["1".into()]);
        let back: Table = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn throughput_cell_formats_oom() {
        assert_eq!(throughput_cell(0.0, 4, 1.0), "OOM");
        assert!(throughput_cell(45.3, 4, 2.5).contains("45.30"));
    }
}
