//! Accuracy evaluation harness: any retrieval system over the synthetic
//! LongBench (Fig. 8) and LongWriter (Fig. 9 / Table 4) workloads.

use crate::engine::Engine;
use serde::{Deserialize, Serialize};
use spec_model::{Model, PrefillMode, SparsePlan, StepTrace};
use spec_retrieval::clusterkv::ClusterKvSelector;
use spec_retrieval::quest::QuestSelector;
use spec_retrieval::shadowkv::ShadowKvSelector;
use spec_retrieval::window::StreamingLlm;
use spec_runtime::exec::{generate_free_running, DecodeStrategy};
use spec_tensor::{Matrix, SimRng};
use spec_workloads::context::ContextBuilder;
use spec_workloads::longbench::{LongBenchTask, TaskKind};
use spec_workloads::longwriter::{
    score_generation, GenerationRecord, LongWriterScores, LongWriterTask,
};

/// The systems the accuracy harness can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvalSystem {
    /// Dense attention (the ceiling).
    Full,
    /// StreamingLLM (sinks + window at the budget).
    StreamingLlm,
    /// Quest.
    Quest,
    /// ClusterKV.
    ClusterKv,
    /// ShadowKV.
    ShadowKv,
    /// SpeContext (this paper).
    SpeContext,
}

impl std::fmt::Display for EvalSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EvalSystem::Full => "Full Attn",
            EvalSystem::StreamingLlm => "StreamingLLM",
            EvalSystem::Quest => "Quest",
            EvalSystem::ClusterKv => "ClusterKV",
            EvalSystem::ShadowKv => "ShadowKV",
            EvalSystem::SpeContext => "SpeContext (Ours)",
        };
        f.write_str(s)
    }
}

impl EvalSystem {
    /// The systems of Fig. 8, in plot order.
    pub fn fig8_systems() -> [EvalSystem; 5] {
        [
            EvalSystem::Quest,
            EvalSystem::ClusterKv,
            EvalSystem::ShadowKv,
            EvalSystem::SpeContext,
            EvalSystem::Full,
        ]
    }
}

/// Options for a LongBench evaluation run.
#[derive(Debug, Clone, Copy)]
pub struct LongBenchOptions {
    /// Task family.
    pub kind: TaskKind,
    /// Context length in tokens.
    pub context_len: usize,
    /// KV budget.
    pub budget: usize,
    /// Instances to average over.
    pub instances: usize,
    /// Base RNG seed (instances are shared across systems and budgets).
    pub seed: u64,
    /// Prefill mode (use `Windowed` for long contexts).
    pub prefill_mode: PrefillMode,
    /// Evidence planting strength (see `ContextBuilder::strength`).
    pub strength: f32,
}

impl LongBenchOptions {
    /// Conventional defaults for a task at a context length.
    pub fn new(kind: TaskKind, context_len: usize, budget: usize) -> Self {
        Self {
            kind,
            context_len,
            budget,
            instances: 6,
            seed: 0xBEEF,
            prefill_mode: PrefillMode::Exact,
            strength: 3.0,
        }
    }
}

/// Runs one system on one LongBench task, returning the mean score in
/// `[0, 1]`.
pub fn longbench_accuracy(engine: &Engine, system: EvalSystem, opt: &LongBenchOptions) -> f32 {
    longbench_matrix(engine, &[system], &[opt.budget], opt)[0][0]
}

/// Evaluates a systems × budgets score matrix on a **shared** instance
/// set (same contexts, same prefill) so columns are directly comparable —
/// the structure of Fig. 8.
pub fn longbench_matrix(
    engine: &Engine,
    systems: &[EvalSystem],
    budgets: &[usize],
    opt: &LongBenchOptions,
) -> Vec<Vec<f32>> {
    let model = engine.model();
    let mut builder = ContextBuilder::new(model);
    builder.strength = opt.strength;
    let task = LongBenchTask {
        kind: opt.kind,
        context_len: opt.context_len,
    };
    let mut totals = vec![vec![0.0f32; budgets.len()]; systems.len()];
    for i in 0..opt.instances {
        let mut rng = SimRng::seed(opt.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
        let inst = task.build(model, &builder, &mut rng);
        let emb = &inst.ctx.emb;
        let (kv0, _) = model.prefill_embeddings(emb, opt.prefill_mode);
        for (si, &system) in systems.iter().enumerate() {
            for (bi, &budget) in budgets.iter().enumerate() {
                let trace = answer_trace(engine, system, emb, &kv0, budget, opt);
                totals[si][bi] += inst.score(&trace);
            }
        }
    }
    for row in &mut totals {
        for v in row.iter_mut() {
            *v /= opt.instances.max(1) as f32;
        }
    }
    totals
}

/// Produces the traced answer step for one context under a system,
/// starting from a cloned prefilled cache.
fn answer_trace(
    engine: &Engine,
    system: EvalSystem,
    emb: &Matrix,
    kv0: &spec_model::ModelKv,
    budget: usize,
    opt: &LongBenchOptions,
) -> StepTrace {
    let model = engine.model();
    let n = emb.rows();
    let question = emb.row(n - 1).to_vec();
    let mut kv = kv0.clone();
    let mut sel_cfg = engine.config().selector_config();
    sel_cfg.budget = budget;

    match system {
        EvalSystem::Full => {
            let plan = SparsePlan::dense(model.geometry().layers);
            model.decode_step_traced(&question, n, &mut kv, &plan).1
        }
        EvalSystem::SpeContext => {
            let mut retr = engine.retriever_with_budget(budget);
            for r in 0..emb.rows() {
                retr.observe(emb.row(r));
            }
            let sel = retr.select(&question, model.geometry());
            let plan = sel.to_plan(model.geometry().layers);
            model.decode_step_traced(&question, n, &mut kv, &plan).1
        }
        EvalSystem::StreamingLlm => {
            let mut s = StreamingLlm::new(sel_cfg.sinks, budget);
            model
                .decode_step_selected_traced(&question, n, &mut kv, &mut s)
                .1
        }
        EvalSystem::Quest => {
            let mut s = QuestSelector::preprocess(&kv, sel_cfg);
            model
                .decode_step_selected_traced(&question, n, &mut kv, &mut s)
                .1
        }
        EvalSystem::ClusterKv => {
            let mut s = ClusterKvSelector::preprocess(&kv, sel_cfg, opt.seed);
            model
                .decode_step_selected_traced(&question, n, &mut kv, &mut s)
                .1
        }
        EvalSystem::ShadowKv => {
            let mut s = ShadowKvSelector::preprocess(&kv, sel_cfg);
            model
                .decode_step_selected_traced(&question, n, &mut kv, &mut s)
                .1
        }
    }
}

/// Options for a LongWriter evaluation run.
#[derive(Debug, Clone, Copy)]
pub struct LongWriterOptions {
    /// Prompt length (the paper's instructions are ~100 tokens).
    pub prompt_len: usize,
    /// Tokens to generate.
    pub gen_len: usize,
    /// KV budget.
    pub budget: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Runs one system on a LongWriter-style generation task and scores it
/// against the dense reference.
pub fn longwriter_scores(
    engine: &Engine,
    system: EvalSystem,
    opt: &LongWriterOptions,
) -> LongWriterScores {
    let model = engine.model();
    let task = LongWriterTask::build(
        model,
        opt.prompt_len,
        opt.gen_len,
        &mut SimRng::seed(opt.seed),
    );

    // Dense reference.
    let (ref_tokens, ref_logits) = run_generation(model, engine, EvalSystem::Full, &task, opt);
    // System under test.
    let (tokens, logits) = run_generation(model, engine, system, &task, opt);

    score_generation(&GenerationRecord {
        tokens: &tokens,
        logits: &logits,
        reference_tokens: &ref_tokens,
        reference_logits: &ref_logits,
    })
}

fn run_generation(
    model: &Model,
    engine: &Engine,
    system: EvalSystem,
    task: &LongWriterTask,
    opt: &LongWriterOptions,
) -> (Vec<usize>, Vec<Vec<f32>>) {
    let (mut kv, out) = model.prefill_embeddings(&task.prompt, PrefillMode::Exact);
    let first_tok = Model::argmax_token(&out.logits);
    let first = model.embed_tokens(&[first_tok]).row(0).to_vec();
    let mut sel_cfg = engine.config().selector_config();
    sel_cfg.budget = opt.budget;

    let mut strategy = match system {
        EvalSystem::Full => DecodeStrategy::Dense,
        EvalSystem::SpeContext => {
            let mut retr = engine.retriever_with_budget(opt.budget);
            for r in 0..task.prompt.rows() {
                retr.observe(task.prompt.row(r));
            }
            DecodeStrategy::SpeContext(Box::new(retr))
        }
        EvalSystem::StreamingLlm => {
            DecodeStrategy::LayerWise(Box::new(StreamingLlm::new(sel_cfg.sinks, opt.budget)))
        }
        EvalSystem::Quest => {
            DecodeStrategy::LayerWise(Box::new(QuestSelector::preprocess(&kv, sel_cfg)))
        }
        EvalSystem::ClusterKv => DecodeStrategy::LayerWise(Box::new(
            ClusterKvSelector::preprocess(&kv, sel_cfg, opt.seed),
        )),
        EvalSystem::ShadowKv => {
            DecodeStrategy::LayerWise(Box::new(ShadowKvSelector::preprocess(&kv, sel_cfg)))
        }
    };
    let res = generate_free_running(model, &mut kv, &first, task.gen_len, &mut strategy, false);
    let logits = res.outputs.iter().map(|o| o.logits.clone()).collect();
    (res.tokens, logits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use spec_model::{AttentionKind, SimGeometry};

    fn engine() -> Engine {
        Engine::build(EngineConfig {
            geometry: SimGeometry::tiny(AttentionKind::Gqa),
            budget: 32,
            ..EngineConfig::default()
        })
    }

    fn opts(budget: usize) -> LongBenchOptions {
        LongBenchOptions {
            instances: 4,
            seed: 11,
            strength: 5.0,
            ..LongBenchOptions::new(TaskKind::TriviaQa, 96, budget)
        }
    }

    #[test]
    fn full_attention_is_the_ceiling() {
        let e = engine();
        let full = longbench_accuracy(&e, EvalSystem::Full, &opts(32));
        assert!(full > 0.7, "full {full}");
    }

    #[test]
    fn specontext_tracks_full_at_reasonable_budget() {
        let e = engine();
        let full = longbench_accuracy(&e, EvalSystem::Full, &opts(48));
        let ours = longbench_accuracy(&e, EvalSystem::SpeContext, &opts(48));
        assert!(ours >= full - 0.3, "ours {ours} too far below full {full}");
    }

    #[test]
    fn accuracy_improves_with_budget() {
        // The headline property of Fig. 8.
        let e = engine();
        let small = longbench_accuracy(&e, EvalSystem::SpeContext, &opts(8));
        let large = longbench_accuracy(&e, EvalSystem::SpeContext, &opts(64));
        assert!(
            large >= small,
            "budget 64 ({large}) should not lose to budget 8 ({small})"
        );
    }

    #[test]
    fn all_systems_run_on_longbench() {
        let e = engine();
        for sys in EvalSystem::fig8_systems() {
            let score = longbench_accuracy(&e, sys, &opts(24));
            assert!((0.0..=1.0).contains(&score), "{sys}: {score}");
        }
    }

    #[test]
    fn longwriter_full_scores_perfect_fidelity() {
        let e = engine();
        let opt = LongWriterOptions {
            prompt_len: 16,
            gen_len: 12,
            budget: 24,
            seed: 5,
        };
        let s = longwriter_scores(&e, EvalSystem::Full, &opt);
        assert!((s.relevance - 5.0).abs() < 1e-4);
        assert!((s.accuracy - 5.0).abs() < 1e-3);
    }

    #[test]
    fn longwriter_specontext_close_to_reference() {
        let e = engine();
        let opt = LongWriterOptions {
            prompt_len: 16,
            gen_len: 12,
            budget: 24,
            seed: 5,
        };
        let ours = longwriter_scores(&e, EvalSystem::SpeContext, &opt);
        // Budget 24 covers most of the 16-token prompt + generation:
        // fidelity should be high.
        assert!(ours.average() > 2.0, "avg {}", ours.average());
    }
}
