//! SpeContext: efficient long-context reasoning with speculative context
//! sparsity — the public API of the reproduction.
//!
//! This crate ties the substrates together into the system a downstream
//! user drives:
//!
//! * [`engine`] — [`engine::Engine`]: teacher model + distilled retrieval
//!   head + configuration; [`engine::Session`]: prefill/generate with
//!   speculative sparsity and elastic loading;
//! * [`evaluate`] — accuracy evaluation harness running any retrieval
//!   system over the synthetic LongBench/LongWriter workloads;
//! * [`pareto`] — Pareto-frontier utilities for Fig. 1;
//! * [`ablation`] — the C1/C2/C3 ablation stages of Fig. 11;
//! * [`report`] — table/row types every bench prints and serializes.
//!
//! # Quickstart
//!
//! ```
//! use specontext_core::engine::{Engine, EngineConfig};
//! use spec_model::{AttentionKind, SimGeometry};
//!
//! let engine = Engine::build(EngineConfig {
//!     geometry: SimGeometry::tiny(AttentionKind::Gqa),
//!     budget: 16,
//!     ..EngineConfig::default()
//! });
//! let mut session = engine.session();
//! let prompt: Vec<usize> = (0..32).collect();
//! session.prefill_tokens(&prompt);
//! let out = session.generate(8);
//! assert_eq!(out.tokens.len(), 8);
//! ```

pub mod ablation;
pub mod engine;
pub mod evaluate;
pub mod pareto;
pub mod report;

pub use ablation::AblationStage;
pub use engine::{Engine, EngineConfig, Session};
pub use evaluate::{longbench_accuracy, longwriter_scores, EvalSystem};
pub use pareto::{pareto_frontier, ParetoPoint};
pub use report::Table;
