//! The ablation ladder of Fig. 11: HF → +C1 → +C1+C2 → +C1+C2+C3.
//!
//! * **HF** — HuggingFace eager full attention; whole KV offloaded when
//!   it does not fit (the baseline of the figure).
//! * **+C1** — lightweight retrieval head on the FlashInfer backend:
//!   sparse attention at the budget, but KV fetches are synchronous and
//!   un-deduplicated (no prefetch overlap, no elastic loading).
//! * **+C1+C2** — adds the asynchronous prefetch dataflow with elastic
//!   loading (Fig. 7(e)); memory placement still all-or-nothing.
//! * **+C1+C2+C3** — adds adaptive memory management (Algorithms 1–2).

use serde::{Deserialize, Serialize};
use spec_hwsim::{DeviceSpec, EngineProfile};
use spec_model::ModelConfig;
use spec_runtime::adaptive::Thresholds;
use spec_runtime::costs::CostModel;
use spec_runtime::dataflow::{step_timeline, DataflowKind, StepParams};
use spec_runtime::memory::MemoryModel;
use spec_runtime::serving::{MemoryPolicy, ServingSim, SystemKind, ThroughputReport, Workload};

/// The four stages of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AblationStage {
    /// HuggingFace eager baseline.
    Hf,
    /// + lightweight retrieval head (C1).
    C1,
    /// + asynchronous prefetch dataflow with elastic loading (C2).
    C1C2,
    /// + adaptive memory management (C3) — the full system.
    C1C2C3,
}

impl std::fmt::Display for AblationStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AblationStage::Hf => "HF",
            AblationStage::C1 => "HF+C1",
            AblationStage::C1C2 => "HF+C1+C2",
            AblationStage::C1C2C3 => "HF+C1+C2+C3",
        };
        f.write_str(s)
    }
}

impl AblationStage {
    /// All stages in ladder order.
    pub fn all() -> [AblationStage; 4] {
        [
            AblationStage::Hf,
            AblationStage::C1,
            AblationStage::C1C2,
            AblationStage::C1C2C3,
        ]
    }
}

/// Estimates throughput for one ablation stage.
pub fn ablation_throughput(
    stage: AblationStage,
    cfg: &ModelConfig,
    dev: &DeviceSpec,
    w: &Workload,
    budget: usize,
) -> ThroughputReport {
    let sim = ServingSim::new(cfg.clone(), dev.clone(), budget);
    match stage {
        AblationStage::Hf => {
            sim.throughput_with_policy(SystemKind::FullEager, w, MemoryPolicy::AllGpuOrFullOffload)
        }
        AblationStage::C1 => c1_throughput(cfg, dev, w, budget),
        AblationStage::C1C2 => {
            sim.throughput_with_policy(SystemKind::SpeContext, w, MemoryPolicy::AllGpuOrFullOffload)
        }
        AblationStage::C1C2C3 => {
            sim.throughput_with_policy(SystemKind::SpeContext, w, MemoryPolicy::Adaptive)
        }
    }
}

/// C1 alone: retrieval-head sparsity on FlashInfer, but per-layer fetches
/// are synchronous (`FetchSparseKv` dataflow shape with no elastic reuse)
/// and placement is all-or-nothing.
fn c1_throughput(
    cfg: &ModelConfig,
    dev: &DeviceSpec,
    w: &Workload,
    budget: usize,
) -> ThroughputReport {
    let cm = CostModel::new(cfg.clone());
    let mm = MemoryModel::new(cfg, dev);
    let profile = EngineProfile::flashinfer();
    let s_end = w.input_len + w.output_len;
    // All-or-nothing placement decided up front.
    let offloaded = !mm.fits_all(w.requests, s_end);
    let l_cpu = if offloaded { cfg.layers } else { 0 };

    let mut prefill_s = profile.op_time(cm.prefill(w.requests, w.input_len), dev);
    prefill_s += profile.op_time(cm.retrieval_head_prefill(w.requests, w.input_len), dev);

    let step = |s: usize| {
        let params = StepParams {
            r: w.requests,
            s_total: s,
            s_attended: budget.min(s),
            candidates: 0,
            candidate_bytes: 0.0,
            l_cpu,
            budget,
            reuse: 0.0, // no elastic loading
        };
        // Synchronous per-layer fetch: the FetchSparseKv shape with the
        // retrieval-head cost folded in at step start.
        let (_, mut bd) = step_timeline(DataflowKind::FetchSparseKv, &cm, &profile, dev, &params);
        let head = profile.op_time(cm.retrieval_head_step(w.requests, s), dev);
        bd.total += head;
        bd.retrieval += head;
        bd
    };

    let mut decode_s = 0.0;
    let mut transfer_bytes = 0.0;
    let stride = (w.output_len / 32).max(1);
    let mut prev: Option<(usize, f64, f64)> = None;
    let mut s = w.input_len;
    loop {
        let bd = step(s);
        if let Some((s0, t0, b0)) = prev {
            let n = (s - s0) as f64;
            decode_s += 0.5 * (t0 + bd.total) * n;
            transfer_bytes += 0.5 * (b0 + bd.bytes_transferred) * n;
        }
        prev = Some((s, bd.total, bd.bytes_transferred));
        if s >= s_end {
            break;
        }
        s = (s + stride).min(s_end);
    }
    let mid = step(w.input_len + w.output_len / 2);
    let total = prefill_s + decode_s;
    ThroughputReport {
        tokens_per_s: (w.requests * w.output_len) as f64 / total,
        oom: false,
        prefill_s,
        decode_s,
        transfer_bytes,
        mid_step: mid,
        requests: w.requests,
    }
}

/// Estimates a stage's throughput at its best batch size among
/// `candidates` (the paper runs every stage at its own best batch —
/// the grey numbers of Table 3).
pub fn ablation_best_batch(
    stage: AblationStage,
    cfg: &ModelConfig,
    dev: &DeviceSpec,
    input_len: usize,
    output_len: usize,
    budget: usize,
    candidates: &[usize],
) -> ThroughputReport {
    candidates
        .iter()
        .map(|&r| {
            ablation_throughput(
                stage,
                cfg,
                dev,
                &Workload::new(input_len, output_len, r),
                budget,
            )
        })
        .max_by(|a, b| {
            a.tokens_per_s
                .partial_cmp(&b.tokens_per_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one batch candidate")
}

/// The thresholds SpeContext compiles for a workload (exposed for the
/// Fig. 11 narration and the examples).
pub fn stage3_thresholds(
    cfg: &ModelConfig,
    dev: &DeviceSpec,
    requests: usize,
    budget: usize,
) -> Thresholds {
    Thresholds::compute(&MemoryModel::new(cfg, dev), requests, budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ModelConfig, DeviceSpec, Workload) {
        (
            ModelConfig::deepseek_distill_llama_8b(),
            DeviceSpec::a100_80g(),
            Workload::new(2048, 16 * 1024, 16),
        )
    }

    #[test]
    fn ladder_is_monotone_at_best_batch() {
        // Fig. 11: each contribution adds speedup, every stage at its own
        // best batch size (the paper's method — the grey batch counts).
        let (cfg, dev, w) = setup();
        let batches = [4usize, 8, 16, 32];
        let mut prev = 0.0;
        for stage in AblationStage::all() {
            let rep =
                ablation_best_batch(stage, &cfg, &dev, w.input_len, w.output_len, 2048, &batches);
            assert!(!rep.oom, "{stage} OOM");
            assert!(
                rep.tokens_per_s > prev,
                "{stage}: {} not above previous {prev}",
                rep.tokens_per_s
            );
            prev = rep.tokens_per_s;
        }
    }

    #[test]
    fn full_system_speedup_in_paper_range() {
        // Fig. 11 reports 8.78x-24.89x over HF depending on workload;
        // assert the full system lands within an order-of-magnitude band.
        let (cfg, dev, w) = setup();
        let batches = [4usize, 8, 16, 32];
        let hf = ablation_best_batch(
            AblationStage::Hf,
            &cfg,
            &dev,
            w.input_len,
            w.output_len,
            2048,
            &batches,
        );
        let ours = ablation_best_batch(
            AblationStage::C1C2C3,
            &cfg,
            &dev,
            w.input_len,
            w.output_len,
            2048,
            &batches,
        );
        let speedup = ours.tokens_per_s / hf.tokens_per_s;
        assert!(
            (3.0..60.0).contains(&speedup),
            "end-to-end speedup {speedup}"
        );
    }

    #[test]
    fn c2_reduces_transfer_relative_to_c1_when_offloaded() {
        let (cfg, dev, _) = setup();
        // Force offloading with a long-context many-request workload.
        let w = Workload::new(64 * 1024, 4096, 16);
        let c1 = ablation_throughput(AblationStage::C1, &cfg, &dev, &w, 2048);
        let c2 = ablation_throughput(AblationStage::C1C2, &cfg, &dev, &w, 2048);
        assert!(
            c2.transfer_bytes < c1.transfer_bytes,
            "elastic loading must reduce bytes: {} vs {}",
            c2.transfer_bytes,
            c1.transfer_bytes
        );
    }

    #[test]
    fn thresholds_exposed_for_reporting() {
        let (cfg, dev, _) = setup();
        let th = stage3_thresholds(&cfg, &dev, 16, 2048);
        assert_eq!(th.values.len(), cfg.layers + 1);
    }
}
