//! Shared bench harness: the standard simulated models, budget scaling,
//! and result persistence used by every table/figure regenerator.
//!
//! # Scale mapping
//!
//! Accuracy experiments run on the scaled-down simulated geometry
//! (CPU-executable); contexts and budgets are divided by
//! [`SIM_SCALE`] relative to the paper's, so a paper budget of 2048 at a
//! 16K context becomes a sim budget of 256 at a 2K context. Budget *labels*
//! in the printed tables are the paper's. Throughput experiments use the
//! models' **real** geometry on the hardware simulator — no scaling.

use spec_model::{ModelConfig, PrefillMode, SimGeometry};
use specontext_core::engine::{Engine, EngineConfig};
use specontext_core::report::Table;

/// Paper-to-sim division factor for contexts and budgets.
pub const SIM_SCALE: usize = 8;

/// Converts a paper budget/length to the simulated one.
pub fn to_sim(paper: usize) -> usize {
    (paper / SIM_SCALE).max(4)
}

/// The standard simulated engine for a paper model preset.
pub fn sim_engine(cfg: &ModelConfig, budget: usize, seed: u64) -> Engine {
    Engine::build(EngineConfig {
        geometry: cfg.sim_geometry(),
        seed,
        budget,
        prefill_mode: PrefillMode::Windowed {
            window: 96,
            sinks: 4,
        },
        ..EngineConfig::default()
    })
}

/// A small engine for quick statistics (tiny geometry).
pub fn tiny_engine(budget: usize, seed: u64) -> Engine {
    Engine::build(EngineConfig {
        geometry: SimGeometry::tiny(spec_model::AttentionKind::Gqa),
        seed,
        budget,
        ..EngineConfig::default()
    })
}

/// Prints a table and writes it to `results/<slug>.json`.
pub fn emit(table: &Table, slug: &str) {
    println!("{table}");
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{slug}.json"));
    if let Err(e) = std::fs::write(&path, table.to_json()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[saved {}]\n", path.display());
    }
}

/// Writes a pre-rendered JSON document to `results/<slug>.json` (used by
/// the `kernels` bench for its machine-readable timing summary).
pub fn emit_raw_json(slug: &str, json: &str) {
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{slug}.json"));
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[saved {}]", path.display());
    }
}

fn results_dir() -> std::path::PathBuf {
    // The workspace root's results/ directory.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Standard Table-3 / Fig. 10 workload shapes `[input, output]`.
pub fn paper_shapes() -> [(usize, usize); 4] {
    [
        (2048, 16 * 1024),
        (2048, 32 * 1024),
        (16 * 1024, 2048),
        (32 * 1024, 2048),
    ]
}

/// Formats a shape label as the paper prints it.
pub fn shape_label(inp: usize, out: usize) -> String {
    let k = |v: usize| format!("{}k", v / 1024);
    format!("[{}, {}]", k(inp), k(out))
}
