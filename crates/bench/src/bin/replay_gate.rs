//! Replay-driven performance-regression gate.
//!
//! Replays the committed `results/sample_trace.sptr` through a pinned
//! cluster configuration with telemetry recording on, folds the
//! per-request completion times (enqueue → last token) into streaming
//! log-bucketed histograms per tenant, and compares each against the
//! committed baseline (`results/replay_baseline.json`) with a
//! Kolmogorov–Smirnov-style statistic: the max absolute CDF difference
//! over bucket edges. Any scheduler / router / admission change that
//! shifts the completion-time distribution beyond the tolerance fails
//! the gate (exit 1).
//!
//! Every run also executes a built-in negative check: the measured
//! distribution is perturbed by +20% and must be *rejected* against the
//! baseline — proving the gate can actually fire, not just pass.
//!
//! Usage:
//!   cargo run --release --bin replay_gate             # gate against baseline
//!   cargo run --release --bin replay_gate -- --record # rewrite the baseline

use serde::{Deserialize, Serialize};
use spec_hwsim::{fleet, DeviceSpec};
use spec_model::ModelConfig;
use spec_runtime::{FairConfig, PreemptionPolicy, QueueDiscipline, SchedulerConfig, SystemKind};
use spec_serve::cluster::{Cluster, ClusterConfig};
use spec_serve::router::RouterKind;
use spec_serve::slo::SloSpec;
use spec_serve::trace::ReplayArrivals;
use spec_telemetry::{
    completion_time_histograms, Event, EventKind, LogHistogram, DEFAULT_SUB_BITS,
};
use std::process::ExitCode;

/// Max allowed KS distance between the measured and baseline CDFs. The
/// replay is deterministic, so an unchanged scheduler measures 0.0; the
/// margin absorbs only intentional, reviewed distribution tweaks.
const TOLERANCE: f64 = 0.05;

/// The perturbation the negative self-check applies (and must catch).
const PERTURB_FACTOR: f64 = 1.2;

/// One tenant's pinned completion-time distribution (`u32::MAX` is the
/// all-tenants aggregate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TenantBaseline {
    tenant: u32,
    histogram: LogHistogram,
}

/// The committed gate baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Baseline {
    trace: String,
    requests: u64,
    tolerance: f64,
    tenants: Vec<TenantBaseline>,
}

/// The pinned gate configuration: the `table3_replay` DRR + preemption
/// policy on a 2×A100 fleet, so the replay exercises checkpoints and
/// restores, not just FIFO decode.
fn gate_cluster() -> Cluster {
    let cfg = ClusterConfig::new().scheduler(SchedulerConfig {
        max_batch: 4,
        admission_stride: 4,
        fair: FairConfig {
            discipline: QueueDiscipline::DeficitRoundRobin,
            weights: vec![(0, 4), (1, 1)],
            preemption: PreemptionPolicy::DeficitRoundRobin,
            ..FairConfig::default()
        },
    });
    Cluster::from_fleet(
        &ModelConfig::deepseek_distill_llama_8b(),
        &fleet::homogeneous(DeviceSpec::a100_80g(), 2),
        2048,
        SystemKind::SpeContext,
        cfg,
        RouterKind::LeastOutstanding.build(),
    )
}

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// Replays the committed sample trace and returns the recorded stream.
fn replay() -> Result<(usize, Vec<Event>), String> {
    let path = repo_path("results/sample_trace.sptr");
    let bytes = std::fs::read(&path).map_err(|e| {
        format!(
            "cannot read {}: {e} (is the sample committed?)",
            path.display()
        )
    })?;
    let mut source =
        ReplayArrivals::new(bytes).map_err(|e| format!("sample trace invalid: {e:?}"))?;
    let requests = source.len();
    let (report, events) = gate_cluster().run_source_traced(&mut source, &SloSpec::new(10.0, 0.02));
    if report.completed + report.rejected != requests {
        return Err(format!(
            "conservation broken: {} completed + {} rejected != {requests} replayed",
            report.completed, report.rejected
        ));
    }
    Ok((requests, events))
}

/// The measured per-tenant completion-time histograms as baseline rows.
fn measure(events: &[Event]) -> Vec<TenantBaseline> {
    completion_time_histograms(events, DEFAULT_SUB_BITS)
        .into_iter()
        .map(|(tenant, histogram)| TenantBaseline { tenant, histogram })
        .collect()
}

/// Rebuilds the aggregate completion-time histogram with every latency
/// stretched by `factor` — the synthetic regression the negative
/// self-check must catch.
fn perturbed_aggregate(events: &[Event], factor: f64) -> LogHistogram {
    let mut enqueued = std::collections::BTreeMap::new();
    let mut h = LogHistogram::default();
    for event in events {
        match event.kind {
            EventKind::Enqueued { request, .. } => {
                enqueued.entry(request).or_insert(event.tick);
            }
            EventKind::Completed { request, .. } => {
                if let Some(&start) = enqueued.get(&request) {
                    let latency = event.tick.saturating_sub(start);
                    h.record((latency as f64 * factor).round() as u64);
                }
            }
            _ => {}
        }
    }
    h
}

fn run(record: bool) -> Result<(), String> {
    let t0 = std::time::Instant::now();
    let (requests, events) = replay()?;
    let measured = measure(&events);
    println!(
        "replay_gate: replayed {requests} requests, {} events, {} tenant rows in {:.2?}",
        events.len(),
        measured.len(),
        t0.elapsed()
    );

    let baseline_path = repo_path("results/replay_baseline.json");
    if record {
        let baseline = Baseline {
            trace: "results/sample_trace.sptr".into(),
            requests: requests as u64,
            tolerance: TOLERANCE,
            tenants: measured,
        };
        let json = serde_json::to_string_pretty(&baseline).map_err(|e| e.to_string())?;
        std::fs::write(&baseline_path, json + "\n")
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "replay_gate: baseline recorded to {}",
            baseline_path.display()
        );
        return Ok(());
    }

    let raw = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "cannot read {}: {e}\nrun `cargo run --release --bin replay_gate -- --record` first",
            baseline_path.display()
        )
    })?;
    let baseline: Baseline =
        serde_json::from_str(raw.trim_end()).map_err(|e| format!("baseline is not valid: {e}"))?;
    if baseline.requests != requests as u64 {
        return Err(format!(
            "baseline pins {} requests but the replay produced {requests}",
            baseline.requests
        ));
    }

    // --- the gate: measured vs committed, per tenant --------------------
    for row in &baseline.tenants {
        let measured_row = measured
            .iter()
            .find(|m| m.tenant == row.tenant)
            .ok_or_else(|| format!("tenant {} vanished from the replay", row.tenant))?;
        let deviation = measured_row.histogram.max_cdf_deviation(&row.histogram);
        let label = if row.tenant == u32::MAX {
            "aggregate".to_string()
        } else {
            format!("tenant {}", row.tenant)
        };
        println!(
            "  {label}: {} completions, p50 {:.3}s p95 {:.3}s p99 {:.3}s, KS vs baseline {deviation:.4}",
            measured_row.histogram.count(),
            measured_row.histogram.percentile_seconds(0.50),
            measured_row.histogram.percentile_seconds(0.95),
            measured_row.histogram.percentile_seconds(0.99),
        );
        if deviation > baseline.tolerance {
            return Err(format!(
                "{label} completion-time distribution drifted: KS {deviation:.4} > tolerance {:.4}",
                baseline.tolerance
            ));
        }
    }
    if measured.len() != baseline.tenants.len() {
        return Err(format!(
            "tenant set changed: measured {} rows, baseline {}",
            measured.len(),
            baseline.tenants.len()
        ));
    }

    // --- negative self-check: the gate must catch a +20% shift ----------
    let aggregate = &baseline
        .tenants
        .iter()
        .find(|r| r.tenant == u32::MAX)
        .ok_or("baseline has no aggregate row")?
        .histogram;
    let shifted = perturbed_aggregate(&events, PERTURB_FACTOR);
    let shifted_dev = shifted.max_cdf_deviation(aggregate);
    if shifted_dev <= baseline.tolerance {
        return Err(format!(
            "negative check failed: a {PERTURB_FACTOR}x latency shift only deviates {shifted_dev:.4} — the gate is toothless"
        ));
    }
    println!(
        "  negative check: {PERTURB_FACTOR}x shift deviates {shifted_dev:.4} > {:.4} — gate fires as designed",
        baseline.tolerance
    );
    Ok(())
}

fn main() -> ExitCode {
    let record = std::env::args().any(|a| a == "--record");
    match run(record) {
        Ok(()) => {
            println!("replay_gate: PASS");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("replay_gate: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}
