//! Bench-regression smoke gate for `results/bench_kernels.json`.
//!
//! Run after `cargo bench --bench kernels`. Fails (exit 1) when the
//! summary is missing an expected entry, when any selection or LUT
//! speedup regresses below 1.0x against its kept reference path, when
//! the headline `top_k_indices` partial-select speedup drops under the
//! 3x the zero-allocation selection engine is accountable for, or when
//! the int4 LUT gather kernel drops under the 2x its gather-vs-unpack
//! design is accountable for. (The int8 entries are report-only: at
//! cache-sized dims the 256-entry table thrashes L1 and the widened
//! multiply sits at parity with the already-ILP-bound reference — the
//! bench keeps both sides of that trade measured, not assumed.)

use serde::Value;
use std::process::ExitCode;

/// Bench entries the kernels harness must always produce.
const EXPECTED_ENTRIES: &[&str] = &[
    "top_k_positions/16384->2048",
    "selection/top_k_indices/16384->2048",
    "selection/argsort_topk/16384->2048",
    "page_table_build/16384x64",
    "page_table_extend/16tok@16k",
    "selection/quest/16k->2048",
    "selection/quest_reference/16k->2048",
    "selection/clusterkv/16k->2048",
    "selection/clusterkv_reference/16k->2048",
    "selection/shadowkv/16k->2048",
    "selection/shadowkv_reference/16k->2048",
    "selection/infinigen/16k->2048",
    "selection/infinigen_reference/16k->2048",
    "selection/spec_head/16k->2048",
    "selection/spec_head_reference/16k->2048",
    "page_table_build_reference/16384x64",
    "lut/build_i4/64",
    "lut/dot_i4/16384x64",
    "lut/dot_i4_reference/16384x64",
    "lut/dot_i8_fma/16384x64",
    "lut/dot_i8_table/16384x64",
    "lut/dot_i8_reference/16384x64",
];

/// Keys of the `selection_speedup_vs_reference` map that must be present
/// and at least 1.0 (new path never slower than the kept reference).
const EXPECTED_SPEEDUPS: &[&str] = &[
    "top_k_indices",
    "page_table_extend",
    "page_table_build",
    "quest",
    "clusterkv",
    "shadowkv",
    "infinigen",
    "spec_head",
];

/// Keys of the `lut_speedup_vs_reference` map that must be present and
/// at least 1.0. `dot_i8_fma` and `dot_i8_table` are deliberately
/// absent from the floor set (presence-checked via `EXPECTED_ENTRIES`
/// only): at dim 64 the int8 reference loop is already ILP-bound across
/// keys, so both contenders sit at ~parity — the bench reports that
/// trade instead of pretending a floor.
const EXPECTED_LUT_SPEEDUPS: &[&str] = &["dot_i4"];

/// The acceptance-criteria floor for the partial-select headline.
const TOP_K_MIN_SPEEDUP: f64 = 3.0;

/// The acceptance-criteria floor for the int4 LUT gather kernel against
/// the unpack/convert/multiply reference.
const LUT_I4_MIN_SPEEDUP: f64 = 2.0;

fn check(doc: &Value) -> Result<Vec<String>, String> {
    let entries = match doc.get_field("entries").map_err(|e| e.to_string())? {
        Value::Seq(items) => items,
        _ => return Err("`entries` is not an array".into()),
    };
    let names: Vec<&str> = entries
        .iter()
        .filter_map(|e| match e.get_field("name") {
            Ok(Value::Str(s)) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    for want in EXPECTED_ENTRIES {
        if !names.contains(want) {
            return Err(format!("missing bench entry `{want}`"));
        }
    }

    let speedups = doc
        .get_field("selection_speedup_vs_reference")
        .map_err(|e| e.to_string())?;
    let mut report = Vec::new();
    for key in EXPECTED_SPEEDUPS {
        let v = speedups
            .get_field(key)
            .map_err(|_| format!("missing selection speedup `{key}`"))?;
        let ratio = match v {
            Value::Float(f) => *f,
            Value::Int(i) => *i as f64,
            Value::UInt(u) => *u as f64,
            other => return Err(format!("speedup `{key}` is not numeric: {other:?}")),
        };
        if !ratio.is_finite() || ratio < 1.0 {
            return Err(format!(
                "selection speedup `{key}` regressed: {ratio:.2}x < 1.0x vs reference"
            ));
        }
        if *key == "top_k_indices" && ratio < TOP_K_MIN_SPEEDUP {
            return Err(format!(
                "`top_k_indices` speedup {ratio:.2}x under the {TOP_K_MIN_SPEEDUP}x floor"
            ));
        }
        report.push(format!("{key}: {ratio:.2}x"));
    }

    let lut = doc
        .get_field("lut_speedup_vs_reference")
        .map_err(|e| e.to_string())?;
    for key in EXPECTED_LUT_SPEEDUPS {
        let v = lut
            .get_field(key)
            .map_err(|_| format!("missing lut speedup `{key}`"))?;
        let ratio = match v {
            Value::Float(f) => *f,
            Value::Int(i) => *i as f64,
            Value::UInt(u) => *u as f64,
            other => return Err(format!("lut speedup `{key}` is not numeric: {other:?}")),
        };
        if !ratio.is_finite() || ratio < 1.0 {
            return Err(format!(
                "lut speedup `{key}` regressed: {ratio:.2}x < 1.0x vs reference"
            ));
        }
        if *key == "dot_i4" && ratio < LUT_I4_MIN_SPEEDUP {
            return Err(format!(
                "`dot_i4` LUT speedup {ratio:.2}x under the {LUT_I4_MIN_SPEEDUP}x floor"
            ));
        }
        report.push(format!("lut/{key}: {ratio:.2}x"));
    }
    Ok(report)
}

fn main() -> ExitCode {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results/bench_kernels.json");
    let raw = match std::fs::read_to_string(&path) {
        Ok(raw) => raw,
        Err(e) => {
            eprintln!("check_kernels: cannot read {}: {e}", path.display());
            eprintln!("run `cargo bench --bench kernels` first");
            return ExitCode::FAILURE;
        }
    };
    let doc: Value = match serde_json::from_str(&raw) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("check_kernels: {} is not valid JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    match check(&doc) {
        Ok(report) => {
            println!("check_kernels: all speedup floors hold:");
            for line in report {
                println!("  {line}");
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("check_kernels: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}
