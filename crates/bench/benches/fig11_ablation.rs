//! Fig. 11: ablation of the three contributions on
//! DeepSeek-Distill-Llama-8B (the Table-3 configuration):
//! HF → +C1 (retrieval head) → +C2 (async prefetch + elastic loading)
//! → +C3 (adaptive memory management).
//!
//! Following the paper's setup ("we select the results of
//! DeepSeek-Distill-Llama-8B in Table 3"), all stages run at the batch
//! size the full system serves in Table 3 — the regime where the KV cache
//! no longer fits on the GPU, which is what C2 and C3 address. HF is
//! additionally reported at its own best batch as the 1.00x reference.

use spec_bench::{emit, paper_shapes, shape_label};
use spec_hwsim::DeviceSpec;
use spec_model::ModelConfig;
use spec_runtime::serving::Workload;
use specontext_core::ablation::{ablation_best_batch, ablation_throughput, AblationStage};
use specontext_core::report::{throughput_cell, Table};

fn main() {
    let cfg = ModelConfig::deepseek_distill_llama_8b();
    let dev = DeviceSpec::a100_80g();
    let batches = [4usize, 8, 16, 32, 64];

    // Primary view (the paper's): every stage at its own best batch.
    let mut table = Table::new(
        "Fig. 11 — ablation, best batch per stage (A100-80GB), tokens/s (batch, speedup vs HF)",
        &["[In, Out]", "HF", "HF+C1", "HF+C1+C2", "HF+C1+C2+C3"],
    );
    // Shape rows are independent → sweep them on the worker pool.
    let rows = spec_parallel::par_map(&paper_shapes(), |&(inp, out)| {
        let hf = ablation_best_batch(AblationStage::Hf, &cfg, &dev, inp, out, 2048, &[4]);
        let mut cells = vec![shape_label(inp, out)];
        cells.push(throughput_cell(hf.tokens_per_s, hf.requests, 1.0));
        for stage in [
            AblationStage::C1,
            AblationStage::C1C2,
            AblationStage::C1C2C3,
        ] {
            let rep = ablation_best_batch(stage, &cfg, &dev, inp, out, 2048, &batches);
            let speedup = if hf.tokens_per_s > 0.0 {
                rep.tokens_per_s / hf.tokens_per_s
            } else {
                0.0
            };
            cells.push(throughput_cell(rep.tokens_per_s, rep.requests, speedup));
        }
        cells
    });
    for row in rows {
        table.push_row(row);
    }
    emit(&table, "fig11_ablation");

    // Secondary view: all sparse stages pinned at the full system's batch,
    // where the KV cache no longer fits resident. This isolates what C2
    // (async prefetch + elastic loading) and C3 (adaptive placement)
    // contribute in the offloaded regime they were designed for.
    let mut table2 = Table::new(
        "Fig. 11 (aux) — ablation at the full system's batch (offloaded regime)",
        &["[In, Out]", "batch", "HF+C1", "HF+C1+C2", "HF+C1+C2+C3"],
    );
    let rows = spec_parallel::par_map(&paper_shapes(), |&(inp, out)| {
        let full = ablation_best_batch(AblationStage::C1C2C3, &cfg, &dev, inp, out, 2048, &batches);
        let batch = full.requests;
        let mut cells = vec![shape_label(inp, out), batch.to_string()];
        let mut c1_tput = 0.0;
        for stage in [
            AblationStage::C1,
            AblationStage::C1C2,
            AblationStage::C1C2C3,
        ] {
            let rep = ablation_throughput(stage, &cfg, &dev, &Workload::new(inp, out, batch), 2048);
            if stage == AblationStage::C1 {
                c1_tput = rep.tokens_per_s;
            }
            let speedup = if c1_tput > 0.0 {
                rep.tokens_per_s / c1_tput
            } else {
                0.0
            };
            cells.push(throughput_cell(rep.tokens_per_s, rep.requests, speedup));
        }
        cells
    });
    for row in rows {
        table2.push_row(row);
    }
    emit(&table2, "fig11_ablation_offloaded");
}
