//! Fault-tolerance extension of Table 3: the serving cluster swept over
//! crash rate × straggler severity × routing policy (failure-blind vs
//! health-aware), with capped-backoff retries, checkpoint migration,
//! tenant-weighted shedding and probation on in every cell.
//!
//! Anchoring: the headline robustness claim is asserted, not just
//! printed — under the faulted regime (crashes + severe stragglers) the
//! short tenant's p95 TTFT must be strictly better with health-aware
//! routing than with failure-blind routing, or the bench fails. Every
//! cell additionally asserts terminal-state conservation:
//! completed + rejected + dead-lettered + shed == submitted.

use spec_bench::emit;
use spec_hwsim::{fleet, DeviceSpec};
use spec_model::ModelConfig;
use spec_runtime::{SystemKind, Workload};
use spec_serve::arrivals::{self, ClusterRequest, TenantClass, TraceConfig};
use spec_serve::cluster::{Cluster, ClusterConfig, ClusterReport};
use spec_serve::faults::{FaultPlan, RetryPolicy, ShedPolicy};
use spec_serve::router::RouterKind;
use spec_serve::slo::SloSpec;
use spec_tensor::SimRng;
use specontext_core::report::Table;

const BUDGET: usize = 2048;
const SEED: u64 = 0xFA17;
const REQUESTS: usize = 96;
const RATE: f64 = 2.0;
const REPLICAS: usize = 3;

/// Tenant 0: short interactive requests (weight 3). Tenant 1: long
/// generations (weight 1).
fn mix_trace() -> Vec<ClusterRequest> {
    arrivals::generate(
        &TraceConfig::poisson(RATE)
            .tenants(vec![
                TenantClass::new(0, 3, vec![Workload::new(512, 256, 1)]),
                TenantClass::new(1, 1, vec![Workload::new(2048, 4096, 1)]),
            ])
            .count(REQUESTS),
        &mut SimRng::seed(SEED),
    )
}

/// (label, mtbf seconds; 0 = no crashes). MTTR is long enough that a
/// blind router parks real traffic on a dead replica for a while.
const CRASH_REGIMES: [(&str, f64); 2] = [("none", 0.0), ("mtbf60", 60.0)];
/// (label, straggler slowdown; 1.0 = no stragglers).
const STRAGGLER_REGIMES: [(&str, f64); 3] = [("1.0x", 1.0), ("2.5x", 2.5), ("5.0x", 5.0)];

fn plan(mtbf_s: f64, slowdown: f64, health_aware: bool) -> FaultPlan {
    let mut plan = FaultPlan::none()
        .seed(23)
        .kv_loss(0.05)
        .retry(RetryPolicy::default())
        .shed(ShedPolicy::new(48).weights(vec![(0, 3), (1, 1)]))
        .probation(1.0)
        .health_aware(health_aware);
    if mtbf_s > 0.0 {
        plan = plan.mtbf(mtbf_s, 8.0);
    }
    if slowdown > 1.0 {
        plan = plan.random_stragglers(20.0, 6.0, slowdown);
    }
    plan
}

fn run_cell(mtbf_s: f64, slowdown: f64, health_aware: bool) -> ClusterReport {
    let mut cluster = Cluster::from_fleet(
        &ModelConfig::deepseek_distill_llama_8b(),
        &fleet::homogeneous(DeviceSpec::a100_80g(), REPLICAS),
        BUDGET,
        SystemKind::SpeContext,
        ClusterConfig::new(),
        RouterKind::LeastOutstanding.build(),
    );
    cluster.run_fault_plan(
        &mix_trace(),
        &SloSpec::new(10.0, 0.02),
        &plan(mtbf_s, slowdown, health_aware),
    )
}

fn t0_p95(report: &ClusterReport) -> f64 {
    report
        .slo
        .per_tenant
        .iter()
        .find(|t| t.tenant == 0)
        .map(|t| t.ttft.p95)
        .expect("tenant 0 present")
}

fn main() {
    let mut table = Table::new(
        format!(
            "Table 3 (faults) — {REQUESTS} req @ {RATE}/s, {REPLICAS}xA100, tenant 0 [512,256] w=3 vs tenant 1 [2k,4k] w=1, retries<=3, 5% ckpt loss, SLO: TTFT<=10s TBT<=20ms"
        ),
        &[
            "crashes",
            "stragglers",
            "routing",
            "completed",
            "dead-lettered",
            "shed",
            "retries",
            "crash/recover",
            "t0 TTFT p95 s",
            "t0 attain",
            "attain",
            "goodput tok/s",
        ],
    );

    type Cell<'a> = ((&'a str, f64), (&'a str, f64), (&'a str, bool));
    const POLICIES: [(&str, bool); 2] = [("blind", false), ("health-aware", true)];
    let grid: Vec<Cell> = CRASH_REGIMES
        .iter()
        .flat_map(|&c| {
            STRAGGLER_REGIMES
                .iter()
                .flat_map(move |&s| POLICIES.iter().map(move |&p| (c, s, p)))
        })
        .collect();
    // Each cell builds its own cluster and trace, so the sweep fans out
    // over the worker pool; rows come back in grid order.
    let cells = spec_parallel::par_map(&grid, |&((_, mtbf), (_, slow), (_, aware))| {
        run_cell(mtbf, slow, aware)
    });

    for (((crash, _), (straggle, _), (policy, _)), r) in grid.iter().zip(&cells) {
        assert_eq!(
            r.completed + r.rejected + r.faults.dead_lettered + r.faults.shed,
            REQUESTS,
            "terminal-state conservation ({crash}/{straggle}/{policy})"
        );
        table.push_row(vec![
            crash.to_string(),
            straggle.to_string(),
            policy.to_string(),
            r.completed.to_string(),
            r.faults.dead_lettered.to_string(),
            r.faults.shed.to_string(),
            r.faults.retries.to_string(),
            format!("{}/{}", r.faults.crashes, r.faults.recoveries),
            format!("{:.2}", t0_p95(r)),
            format!(
                "{:.2}",
                r.slo
                    .per_tenant
                    .iter()
                    .find(|t| t.tenant == 0)
                    .map(|t| t.attainment)
                    .unwrap_or(0.0)
            ),
            format!("{:.2}", r.slo.attainment),
            format!("{:.1}", r.slo.goodput_tokens_per_s),
        ]);
    }

    // --- the acceptance anchor -----------------------------------------
    // Under the faulted regime (crashes + severe stragglers) the
    // health-aware router must strictly beat the failure-blind one on
    // short-tenant p95 TTFT; both cells come out of the sweep above.
    let cell = |crash: &str, straggle: &str, policy: &str| {
        grid.iter()
            .zip(&cells)
            .find(|(((c, _), (s, _), (p, _)), _)| *c == crash && *s == straggle && *p == policy)
            .map(|(_, r)| r)
            .expect("anchor cell in grid")
    };
    let blind = cell("mtbf60", "5.0x", "blind");
    let aware = cell("mtbf60", "5.0x", "health-aware");
    assert!(
        t0_p95(aware) < t0_p95(blind),
        "robustness regression: short-tenant p95 TTFT {} (health-aware) vs {} (blind)",
        t0_p95(aware),
        t0_p95(blind)
    );
    println!(
        "[anchor] short-tenant p95 TTFT under mtbf60 + 5.0x stragglers: blind {:.2}s -> health-aware {:.2}s\n",
        t0_p95(blind),
        t0_p95(aware)
    );

    emit(&table, "table3_faults");
}
