//! Fig. 6: (a) KV prefetch latency vs a single LLM layer's inference
//! latency across budgets — the imbalance motivating elastic loading;
//! (b) the overlap rate of selected tokens between adjacent generation
//! steps — the statistic elastic loading exploits (>80% at practical
//! budgets).

use spec_bench::{emit, sim_engine, to_sim};
use spec_hwsim::{DeviceSpec, EngineProfile};
use spec_model::ModelConfig;
use spec_model::PrefillMode;
use spec_runtime::costs::CostModel;
use spec_runtime::exec::{generate_free_running, DecodeStrategy};
use spec_tensor::{stats, SimRng};
use spec_workloads::context::ContextBuilder;
use specontext_core::report::{f2, Table};

fn main() {
    prefetch_vs_compute();
    adjacent_overlap();
}

/// Fig. 6(a): transfer vs compute latency per layer (real geometry).
fn prefetch_vs_compute() {
    let cm = CostModel::new(ModelConfig::llama3_1_8b());
    let dev = DeviceSpec::a100_80g();
    let profile = EngineProfile::flashinfer();
    let mut table = Table::new(
        "Fig. 6(a) — per-layer KV prefetch vs single-layer inference (ms)",
        &["budget", "prefetch ms", "layer inference ms"],
    );
    let layer_ms = {
        let t = profile.op_time(cm.layer_projections(4), &dev)
            + profile.op_time(cm.layer_attention(4, 2048, 1.0), &dev)
            + profile.op_time(cm.layer_ffn(4), &dev);
        t * 1e3
    };
    for b in [32usize, 64, 128, 256, 512, 1024] {
        let bytes = 4.0 * cm.kv_bytes_layer(b);
        let prefetch_ms = dev.pcie_time(bytes) * 1e3;
        table.push_row(vec![b.to_string(), f2(prefetch_ms), f2(layer_ms)]);
    }
    emit(&table, "fig06a_prefetch_latency");
}

/// Fig. 6(b): adjacent-step selection overlap vs budget.
///
/// Decode runs teacher-forced on an AR(1)-correlated embedding stream
/// (`e_t = ρ e_{t-1} + √(1−ρ²) fresh`): natural text is locally coherent,
/// and adjacent hidden states in real LLMs are strongly correlated — the
/// property the paper's overlap statistic rests on. A fully random token
/// stream is the adversarial worst case and is reported as a second
/// column for reference.
fn adjacent_overlap() {
    let cfg = ModelConfig::llama3_1_8b();
    let mut table = Table::new(
        "Fig. 6(b) — adjacent-generation selection overlap vs budget",
        &["budget (paper)", "overlap (coherent)", "overlap (random)"],
    );
    // Budget rows build their own engine and decode sessions — fully
    // independent, so the sweep fans out over the worker pool.
    let paper_budgets = [32usize, 64, 128, 256, 512, 1024, 2048];
    let rows = spec_parallel::par_map(&paper_budgets, |&pb| {
        let b = to_sim(pb);
        let engine = sim_engine(&cfg, b, 0x660);
        let model = engine.model();
        let builder = ContextBuilder::new(model);
        let mut coherent = Vec::new();
        let mut random = Vec::new();
        for i in 0..4u64 {
            let mut rng = SimRng::seed(0x66B ^ i);
            let ctx = builder.build(model, to_sim(8 * 1024), 3, 2, &mut rng);
            let (kv0, _) = model.prefill_embeddings(
                &ctx.emb,
                PrefillMode::Windowed {
                    window: 96,
                    sinks: 4,
                },
            );
            let steps = 24;
            // Coherent AR(1) stream.
            let rho = 0.9f32;
            let mut stream = spec_tensor::Matrix::default();
            let mut prev = ctx.emb.row(ctx.emb.rows() - 1).to_vec();
            for s in 0..steps {
                let tok = rng.below(model.geometry().vocab);
                let fresh = model.embed_tokens(&[tok]);
                let row: Vec<f32> = prev
                    .iter()
                    .zip(fresh.row(0))
                    .map(|(p, f)| rho * p + (1.0 - rho * rho).sqrt() * f)
                    .collect();
                stream.push_row(&row);
                prev = row;
                let _ = s;
            }
            for (inputs, sink) in [(&stream, &mut coherent)] {
                let mut kv = kv0.clone();
                let mut retr = engine.retriever_with_budget(b);
                for r in 0..ctx.emb.rows() {
                    retr.observe(ctx.emb.row(r));
                }
                let mut strat = DecodeStrategy::SpeContext(Box::new(retr));
                let res = spec_runtime::exec::generate_teacher_forced(
                    model, &mut kv, inputs, steps, &mut strat, false,
                );
                sink.extend(res.overlaps);
            }
            // Random stream (worst case).
            let mut kv = kv0.clone();
            let mut retr = engine.retriever_with_budget(b);
            for r in 0..ctx.emb.rows() {
                retr.observe(ctx.emb.row(r));
            }
            let first = ctx.emb.row(0).to_vec();
            let mut strat = DecodeStrategy::SpeContext(Box::new(retr));
            let res = generate_free_running(model, &mut kv, &first, steps, &mut strat, false);
            random.extend(res.overlaps);
        }
        vec![
            pb.to_string(),
            f2(stats::mean(&coherent) as f64),
            f2(stats::mean(&random) as f64),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    emit(&table, "fig06b_overlap_rate");
}
