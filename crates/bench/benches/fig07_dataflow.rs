//! Fig. 7: per-token timelines of the five dataflow paradigms.
//!
//! Prints, for one decode step of an offloaded Llama3.1-8B at 32K context
//! and budget 2048, the per-paradigm makespan, the stream-level busy
//! times, and the retrieval/transfer/attention breakdown — the numbers
//! behind the timeline diagrams.

use spec_bench::emit;
use spec_hwsim::event::{COMPUTE, COPY};
use spec_hwsim::{DeviceSpec, EngineProfile};
use spec_model::ModelConfig;
use spec_runtime::costs::CostModel;
use spec_runtime::dataflow::{step_timeline, DataflowKind, StepParams};
use specontext_core::report::{f2, Table};

fn main() {
    let cm = CostModel::new(ModelConfig::llama3_1_8b());
    let dev = DeviceSpec::a100_80g();
    let profile = EngineProfile::flashinfer();
    let params = StepParams {
        r: 4,
        s_total: 32 * 1024,
        s_attended: 2048,
        candidates: 2048,
        candidate_bytes: 4.0 * 128.0,
        l_cpu: 32,
        budget: 2048,
        reuse: 0.85,
    };

    let kinds = [
        DataflowKind::PrefetchFullKv,
        DataflowKind::FetchSparseKv,
        DataflowKind::PrefetchSparseKv,
        DataflowKind::PrefetchSparseV,
        DataflowKind::SpeContext,
    ];
    let mut table = Table::new(
        "Fig. 7 — one decode step, Llama3.1-8B @32K offloaded, budget 2048 (ms)",
        &[
            "paradigm",
            "step",
            "compute busy",
            "copy busy",
            "retrieval",
            "transfer MB",
            "re+load frac",
        ],
    );
    for kind in kinds {
        let (sim, bd) = step_timeline(kind, &cm, &profile, &dev, &params);
        table.push_row(vec![
            kind.to_string(),
            f2(bd.total * 1e3),
            f2(sim.busy_time(COMPUTE) * 1e3),
            f2(sim.busy_time(COPY) * 1e3),
            f2(bd.retrieval * 1e3),
            f2(bd.bytes_transferred / 1e6),
            f2(bd.retrieval_and_load_fraction()),
        ]);
    }
    emit(&table, "fig07_dataflow");

    // Also dump the SpeContext timeline ops for the first 3 layers, the
    // data behind the Fig. 7(e) diagram.
    let (sim, _) = step_timeline(DataflowKind::SpeContext, &cm, &profile, &dev, &params);
    let mut ops = Table::new(
        "Fig. 7(e) — SpeContext timeline (first ops, µs)",
        &["op", "stream", "start", "end"],
    );
    for r in sim.records().iter().take(12) {
        ops.push_row(vec![
            r.label.clone(),
            format!("{:?}", r.stream),
            f2(r.start * 1e6),
            f2(r.end * 1e6),
        ]);
    }
    emit(&ops, "fig07_timeline_ours");

    // ASCII Gantt charts — the Fig. 7 diagrams themselves.
    for kind in kinds {
        let (sim, bd) = step_timeline(kind, &cm, &profile, &dev, &params);
        println!("--- {kind} ({:.2} ms) ---", bd.total * 1e3);
        print!(
            "{}",
            spec_hwsim::gantt::render(&sim, &[(COMPUTE, "compute"), (COPY, "copy")], 88)
        );
        println!();
    }
}
