//! Fig. 2(a): the three challenges of the layer-wise retrieval paradigm.
//!
//! 1. Retrieval + load share of step latency (up to ~60%) for the
//!    layer-wise paradigm at growing context;
//! 2. Latency growth from complete retention of newly generated KV;
//! 3. The offload cliff: throughput across the fits/spills boundary under
//!    a predetermined policy vs adaptive management (paper: 45.3 → 9.7
//!    tokens/s from 120K to 128K at batch 4).

use spec_bench::emit;
use spec_hwsim::{DeviceSpec, EngineProfile};
use spec_model::ModelConfig;
use spec_runtime::costs::CostModel;
use spec_runtime::dataflow::{step_timeline, DataflowKind, StepParams};
use spec_runtime::serving::{MemoryPolicy, ServingSim, SystemKind, Workload};
use specontext_core::report::{f2, Table};

fn main() {
    retrieval_overhead();
    retention_growth();
    offload_cliff();
}

/// Challenge 1: layer-wise retrieval + load share of the step.
fn retrieval_overhead() {
    let cm = CostModel::new(ModelConfig::llama3_1_8b());
    let dev = DeviceSpec::a100_80g();
    let profile = EngineProfile::flash_attention();
    let mut table = Table::new(
        "Fig. 2(a)-1 — retrieval+load share of step latency (layer-wise paradigm, offloaded)",
        &["context", "step ms", "retrieval ms", "re+load fraction"],
    );
    for s in [8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024] {
        let params = StepParams {
            r: 4,
            s_total: s,
            s_attended: 2048,
            candidates: s / 16,
            candidate_bytes: 4.0 * 128.0,
            l_cpu: 32,
            budget: 2048,
            reuse: 0.0,
        };
        let (_, bd) = step_timeline(DataflowKind::FetchSparseKv, &cm, &profile, &dev, &params);
        table.push_row(vec![
            format!("{}K", s / 1024),
            f2(bd.total * 1e3),
            f2(bd.retrieval * 1e3),
            f2(bd.retrieval_and_load_fraction()),
        ]);
    }
    emit(&table, "fig02_retrieval_overhead");
}

/// Challenge 2: attended length growth from full retention of new KV.
fn retention_growth() {
    let cm = CostModel::new(ModelConfig::llama3_1_8b());
    let dev = DeviceSpec::a100_80g();
    let profile = EngineProfile::flash_attention();
    let mut table = Table::new(
        "Fig. 2(a)-2 — step latency growth with generated tokens (budget 2048)",
        &[
            "generated",
            "baseline ms (B+gen attended)",
            "ours ms (B attended)",
        ],
    );
    for gen in [0usize, 4096, 8192, 16 * 1024, 32 * 1024] {
        let base = StepParams {
            r: 4,
            s_total: 2048 + gen,
            s_attended: 2048 + gen,
            candidates: 128,
            candidate_bytes: 4.0 * 128.0,
            l_cpu: 0,
            budget: 2048,
            reuse: 0.0,
        };
        let (_, bd_base) = step_timeline(DataflowKind::FetchSparseKv, &cm, &profile, &dev, &base);
        let ours = StepParams {
            s_attended: 2048,
            reuse: 0.85,
            ..base
        };
        let (_, bd_ours) = step_timeline(DataflowKind::SpeContext, &cm, &profile, &dev, &ours);
        table.push_row(vec![
            format!("{}", gen),
            f2(bd_base.total * 1e3),
            f2(bd_ours.total * 1e3),
        ]);
    }
    emit(&table, "fig02_retention_growth");
}

/// Challenge 3: the predetermined-offload cliff vs adaptive management.
fn offload_cliff() {
    let sim = ServingSim::new(ModelConfig::llama3_1_8b(), DeviceSpec::a100_80g(), 2048);
    let mut table = Table::new(
        "Fig. 2(a)-3 — offload cliff at batch 4 (tokens/s)",
        &["context", "predetermined", "adaptive (ours)"],
    );
    // Context rows are independent → sweep them on the worker pool.
    let contexts = [
        64 * 1024,
        96 * 1024,
        104 * 1024,
        112 * 1024,
        120 * 1024,
        128 * 1024,
    ];
    let rows = spec_parallel::par_map(&contexts, |&s| {
        let w = Workload::new(s, 2048, 4);
        let pre = sim.throughput_with_policy(
            SystemKind::FullFlashInfer,
            &w,
            MemoryPolicy::AllGpuOrFullOffload,
        );
        let ada = sim.throughput_with_policy(SystemKind::SpeContext, &w, MemoryPolicy::Adaptive);
        vec![
            format!("{}K", s / 1024),
            f2(pre.tokens_per_s),
            f2(ada.tokens_per_s),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    emit(&table, "fig02_offload_cliff");
}
