//! Fig. 9 + Table 4: LongWriter long-generation quality.
//!
//! Average scores for the three cloud models at paper budgets
//! {1024, 2048, 4096}, plus the detailed six-dimension breakdown
//! (Table 4) for each model. The paper's Quest/ClusterKV/ShadowKV have
//! no Qwen3 support; this harness runs them anyway and EXPERIMENTS.md
//! notes the difference.

use spec_bench::{emit, sim_engine, to_sim};
use spec_model::ModelConfig;
use specontext_core::evaluate::{longwriter_scores, EvalSystem, LongWriterOptions};
use specontext_core::report::{f2, Table};

fn main() {
    let budgets = [1024usize, 2048, 4096];
    let systems = [
        EvalSystem::Quest,
        EvalSystem::ClusterKv,
        EvalSystem::ShadowKv,
        EvalSystem::SpeContext,
    ];
    let models = [
        ModelConfig::llama3_1_8b(),
        ModelConfig::deepseek_distill_llama_8b(),
        ModelConfig::qwen3_8b(),
    ];
    for (mi, cfg) in models.iter().enumerate() {
        let engine = sim_engine(cfg, to_sim(2048), 0x900 + mi as u64);
        let mut avg_table = Table::new(
            format!("Fig. 9 — LongWriter average score, {}", cfg.name),
            &["system", "B=1024", "B=2048", "B=4096"],
        );
        let mut detail = Table::new(
            format!("Table 4 — LongWriter detail, {} (B=2048)", cfg.name),
            &[
                "system",
                "Relevance",
                "Accuracy",
                "Coherence",
                "Clarity",
                "Breadth&Depth",
                "Reading Exp.",
                "Average",
            ],
        );
        // Full-attention reference row.
        let full_opt = LongWriterOptions {
            prompt_len: 16,
            gen_len: 192,
            budget: to_sim(2048),
            seed: 0x941 + mi as u64,
        };
        let full = longwriter_scores(&engine, EvalSystem::Full, &full_opt);
        avg_table.push_row(vec![
            "Full".into(),
            f2(full.average() as f64),
            f2(full.average() as f64),
            f2(full.average() as f64),
        ]);
        push_detail(&mut detail, "Full", &full);

        // Each (system, budget) evaluation is independent; fan the whole
        // panel out and assemble rows in system order afterwards.
        let grid: Vec<(usize, usize)> = systems
            .iter()
            .enumerate()
            .flat_map(|(si, _)| budgets.iter().map(move |&pb| (si, pb)))
            .collect();
        let scored = spec_parallel::par_map(&grid, |&(si, pb)| {
            let opt = LongWriterOptions {
                prompt_len: 16,
                gen_len: 192,
                budget: to_sim(pb),
                seed: 0x941 + mi as u64,
            };
            longwriter_scores(&engine, systems[si], &opt)
        });
        for (si, system) in systems.iter().enumerate() {
            let mut cells = vec![system.to_string()];
            for (bi, &pb) in budgets.iter().enumerate() {
                let s = &scored[si * budgets.len() + bi];
                cells.push(f2(s.average() as f64));
                if pb == 2048 {
                    push_detail(&mut detail, &system.to_string(), s);
                }
            }
            avg_table.push_row(cells);
        }
        let slug = cfg.name.to_lowercase().replace(['-', '.'], "_");
        emit(&avg_table, &format!("fig09_{slug}"));
        emit(&detail, &format!("table4_{slug}"));
    }
}

fn push_detail(table: &mut Table, name: &str, s: &spec_workloads::longwriter::LongWriterScores) {
    table.push_row(vec![
        name.to_string(),
        f2(s.relevance as f64),
        f2(s.accuracy as f64),
        f2(s.coherence as f64),
        f2(s.clarity as f64),
        f2(s.breadth_depth as f64),
        f2(s.reading_experience as f64),
        f2(s.average() as f64),
    ]);
}
