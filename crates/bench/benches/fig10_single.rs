//! Fig. 10: end-to-end throughput with a single request
//! (a) in the cloud (A100-80GB), (b) in the edge environment
//! (RTX 4060 Laptop, 4GB usage cap).
//!
//! Cloud compares seven systems including the single-request-only Quest
//! and ClusterKV; edge compares full attention (eager / FlashAttention)
//! and ShadowKV with offloading against SpeContext.

use spec_bench::{emit, paper_shapes, shape_label};
use spec_hwsim::DeviceSpec;
use spec_model::ModelConfig;
use spec_runtime::serving::{MemoryPolicy, ServingSim, SystemKind, Workload};
use specontext_core::report::{f2, Table};

fn main() {
    cloud();
    edge();
}

fn cloud() {
    let sim = ServingSim::new(
        ModelConfig::deepseek_distill_llama_8b(),
        DeviceSpec::a100_80g(),
        2048,
    );
    let systems = SystemKind::all();
    let mut table = Table::new(
        "Fig. 10(a) — single request, cloud (A100-80GB), tokens/s",
        &[
            "[In, Out]",
            "Eager",
            "FlashAttn",
            "FlashInfer",
            "Quest",
            "ClusterKV",
            "ShadowKV",
            "Ours",
        ],
    );
    // Shape rows are independent → sweep them on the worker pool.
    let rows = spec_parallel::par_map(&paper_shapes(), |&(inp, out)| {
        let w = Workload::new(inp, out, 1);
        let mut cells = vec![shape_label(inp, out)];
        for sys in systems {
            let rep = sim.throughput(sys, &w);
            cells.push(if rep.oom {
                "OOM".into()
            } else {
                f2(rep.tokens_per_s)
            });
        }
        cells
    });
    for row in rows {
        table.push_row(row);
    }
    emit(&table, "fig10a_cloud_single");
}

fn edge() {
    let sim = ServingSim::new(
        ModelConfig::reasoning_llama3_2_1b(),
        DeviceSpec::rtx4060_laptop_4g(),
        2048,
    );
    let mut table = Table::new(
        "Fig. 10(b) — single request, edge (RTX4060 Laptop, 4GB cap), tokens/s",
        &["[In, Out]", "Eager", "FlashAttn", "ShadowKV", "Ours"],
    );
    let rows = spec_parallel::par_map(&paper_shapes(), |&(inp, out)| {
        let w = Workload::new(inp, out, 1);
        let mut cells = vec![shape_label(inp, out)];
        // Edge full-attention baselines run with complete offloading
        // (nothing fits in 4GB alongside the model).
        for sys in [SystemKind::FullEager, SystemKind::FullFlash] {
            let rep = sim.throughput_with_policy(sys, &w, MemoryPolicy::AllGpuOrFullOffload);
            cells.push(if rep.oom {
                "OOM".into()
            } else {
                f2(rep.tokens_per_s)
            });
        }
        let shadow = sim.throughput(SystemKind::ShadowKv, &w);
        cells.push(if shadow.oom {
            "OOM".into()
        } else {
            f2(shadow.tokens_per_s)
        });
        let ours = sim.throughput(SystemKind::SpeContext, &w);
        cells.push(if ours.oom {
            "OOM".into()
        } else {
            f2(ours.tokens_per_s)
        });
        cells
    });
    for row in rows {
        table.push_row(row);
    }
    emit(&table, "fig10b_edge_single");
}
