//! Fig. 8: LongBench accuracy vs KV budget on Llama3.1-8B(-sim).
//!
//! Regenerates the four panels (2WikiMQA, TriviaQA, HotpotQA,
//! PassageCount) for Quest, ClusterKV, ShadowKV, SpeContext and full
//! attention at paper budgets {512, 1024, 2048, 4096}. All systems and
//! budgets are evaluated on the same instances with a shared prefill, as
//! in the paper's protocol.

use spec_bench::{emit, sim_engine, to_sim, SIM_SCALE};
use spec_model::{ModelConfig, PrefillMode};
use spec_workloads::longbench::TaskKind;
use specontext_core::evaluate::{longbench_matrix, EvalSystem, LongBenchOptions};
use specontext_core::report::Table;

fn main() {
    let budgets = [512usize, 1024, 2048, 4096];
    let sim_budgets: Vec<usize> = budgets.iter().map(|&b| to_sim(b)).collect();
    let paper_context = 16 * 1024;
    let cfg = ModelConfig::llama3_1_8b();
    let engine = sim_engine(&cfg, to_sim(2048), 0xF18);

    let systems = EvalSystem::fig8_systems();
    // The four task panels are independent full evaluations → run them
    // on the worker pool, then emit in task order.
    let task_scores = spec_parallel::par_map(&TaskKind::all(), |&kind| {
        let opt = LongBenchOptions {
            instances: 8,
            seed: 0xBEEF,
            prefill_mode: PrefillMode::Windowed {
                window: 96,
                sinks: 4,
            },
            strength: 2.5,
            ..LongBenchOptions::new(kind, to_sim(paper_context), 0)
        };
        (
            kind,
            longbench_matrix(&engine, &systems, &sim_budgets, &opt),
        )
    });
    for (kind, scores) in task_scores {
        let mut table = Table::new(
            format!(
                "Fig. 8 — {} on {} (sim 1/{SIM_SCALE} scale, score x100)",
                kind.paper_name(),
                cfg.name
            ),
            &["system", "B=512", "B=1024", "B=2048", "B=4096"],
        );
        for (si, system) in systems.iter().enumerate() {
            let mut cells = vec![system.to_string()];
            for score in scores[si].iter().take(budgets.len()) {
                cells.push(format!("{:.1}", score * 100.0));
            }
            table.push_row(cells);
        }
        emit(
            &table,
            &format!(
                "fig08_{}",
                kind.paper_name().replace(' ', "_").to_lowercase()
            ),
        );
    }
}
