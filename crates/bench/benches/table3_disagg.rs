//! Table 3 (disaggregated): prefill/decode-split fleets under open-loop
//! load, swept over KV system (sparse vs dense) × fleet split ×
//! interconnect class, with goodput-per-dollar per cell.
//!
//! Two anchors before the sweep:
//!
//! 1. **Unified-role fleets add nothing** — an all-`Unified` slot fleet
//!    through `Cluster::from_fleet_slots` reproduces the monolithic
//!    `Cluster::from_fleet` report bit-for-bit, for both systems.
//! 2. **Sparse KV shrinks the hop** — at the paper's sparse budget the
//!    prefill→decode KV-transfer bytes are strictly below the dense-KV
//!    baseline on the identical trace and fleet: the budget caps the
//!    resident KV a handoff moves, which is the disaggregation story's
//!    whole interconnect win.

use spec_bench::emit;
use spec_hwsim::{fleet, DeviceSpec, Fleet, FleetSlot, LinkSpec, ReplicaRole};
use spec_model::ModelConfig;
use spec_runtime::{SystemKind, Workload};
use spec_serve::arrivals::{self, ClusterRequest, TraceConfig};
use spec_serve::cluster::{Cluster, ClusterConfig, DisaggConfig};
use spec_serve::router::RouterKind;
use spec_serve::slo::SloSpec;
use spec_tensor::SimRng;
use specontext_core::report::Table;

/// The paper's sparse KV budget: what SpeContext keeps resident, and
/// therefore what its handoffs move.
const BUDGET: usize = 2048;
const SEED: u64 = 0xD15A66;
const REQUESTS: usize = 24;

fn model() -> ModelConfig {
    ModelConfig::deepseek_distill_llama_8b()
}

/// Prompt-heavy Table-3 mix — long prompts are where dense handoffs
/// hurt: 8k-token prompts hop 4× the sparse budget's bytes.
fn trace() -> Vec<ClusterRequest> {
    arrivals::generate(
        &TraceConfig::poisson(0.5)
            .shapes(vec![
                Workload::new(8192, 2048, 3),
                Workload::new(4096, 1024, 1),
            ])
            .count(REQUESTS),
        &mut SimRng::seed(SEED),
    )
}

fn split_slots(prefill: usize, decode: usize) -> Vec<FleetSlot> {
    Fleet::new()
        .with_role(DeviceSpec::a100_80g(), ReplicaRole::Prefill, prefill)
        .with_role(DeviceSpec::a100_80g(), ReplicaRole::Decode, decode)
        .build_slots()
}

fn disagg_cluster(system: SystemKind, slots: &[FleetSlot], link: LinkSpec) -> Cluster {
    Cluster::from_fleet_slots(
        &model(),
        slots,
        BUDGET,
        system,
        ClusterConfig::new().disagg(DisaggConfig::new().link(link)),
        RouterKind::LeastOutstanding.build(),
    )
}

fn main() {
    let systems = [SystemKind::FullFlashInfer, SystemKind::SpeContext];
    let splits: [(usize, usize); 3] = [(2, 2), (1, 3), (3, 1)];
    let links = [
        ("nvlink", LinkSpec::nvlink()),
        ("infiniband", LinkSpec::infiniband()),
        ("100GbE", LinkSpec::ethernet_100g()),
    ];
    let slo = SloSpec::new(30.0, 0.05);
    let reqs = trace();

    // --- anchor 1: all-Unified slots ≡ monolithic cluster ---------------
    spec_parallel::par_map(&systems, |&system| {
        let slots = Fleet::new().with(DeviceSpec::a100_80g(), 4).build_slots();
        let a = Cluster::from_fleet_slots(
            &model(),
            &slots,
            BUDGET,
            system,
            ClusterConfig::new(),
            RouterKind::LeastOutstanding.build(),
        )
        .run(&reqs, &slo);
        let b = Cluster::from_fleet(
            &model(),
            &fleet::homogeneous(DeviceSpec::a100_80g(), 4),
            BUDGET,
            system,
            ClusterConfig::new(),
            RouterKind::LeastOutstanding.build(),
        )
        .run(&reqs, &slo);
        assert_eq!(
            a, b,
            "unified-role fleet must match Cluster::run ({system})"
        );
        assert_eq!(a.handoffs.count, 0, "unified fleets never hop KV");
    });
    println!(
        "[anchor] all-Unified slot fleet == monolithic cluster (bit-for-bit) for all systems\n"
    );

    let mut table = Table::new(
        format!(
            "Table 3 (disaggregated) — {REQUESTS} req Poisson prompt-heavy mix, A100-80GB fleets, SLO: TTFT<=30s TBT<=50ms"
        ),
        &[
            "system",
            "fleet",
            "link",
            "hop GB",
            "hop s",
            "tokens/s",
            "goodput tok/s",
            "SLO attain",
            "cost $",
            "goodput tok/$",
        ],
    );
    let mut grid: Vec<(SystemKind, (usize, usize), &str, LinkSpec)> = Vec::new();
    for &system in &systems {
        for &split in &splits {
            for (name, link) in &links {
                grid.push((system, split, name, link.clone()));
            }
        }
    }
    let cells = spec_parallel::par_map(&grid, |(system, (p, d), link_name, link)| {
        let slots = split_slots(*p, *d);
        let r = disagg_cluster(*system, &slots, link.clone()).run(&reqs, &slo);
        assert_eq!(
            r.completed + r.rejected,
            REQUESTS,
            "conservation ({system}, {p}P+{d}D, {link_name})"
        );
        let row = vec![
            system.to_string(),
            format!("{p}P+{d}D"),
            link_name.to_string(),
            format!("{:.2}", r.handoffs.bytes / 1e9),
            format!("{:.3}", r.handoffs.transfer_s),
            format!("{:.1}", r.throughput),
            format!("{:.1}", r.slo.goodput_tokens_per_s),
            format!("{:.2}", r.slo.attainment),
            format!("{:.2}", r.cost.cost_usd),
            format!("{:.0}", r.cost.goodput_tokens_per_usd),
        ];
        (*system, (*p, *d), *link_name, r.handoffs.bytes, row)
    });

    // --- anchor 2: the sparse budget shrinks every hop ------------------
    for &(p, d) in &splits {
        for (name, _) in &links {
            let bytes = |system: SystemKind| {
                cells
                    .iter()
                    .find(|(s, sp, l, _, _)| *s == system && *sp == (p, d) && l == name)
                    .map(|(_, _, _, b, _)| *b)
                    .expect("cell present")
            };
            let sparse = bytes(SystemKind::SpeContext);
            let dense = bytes(SystemKind::FullFlashInfer);
            assert!(
                sparse < dense,
                "sparse hop must beat dense: {sparse:.3e} vs {dense:.3e} ({p}P+{d}D, {name})"
            );
        }
    }
    let sparse_gb: f64 = cells
        .iter()
        .filter(|(s, ..)| *s == SystemKind::SpeContext)
        .map(|(_, _, _, b, _)| *b)
        .sum::<f64>()
        / 1e9;
    let dense_gb: f64 = cells
        .iter()
        .filter(|(s, ..)| *s == SystemKind::FullFlashInfer)
        .map(|(_, _, _, b, _)| *b)
        .sum::<f64>()
        / 1e9;
    println!(
        "[anchor] sparse-budget KV hops {sparse_gb:.1} GB vs dense {dense_gb:.1} GB across the sweep ({:.1}x smaller)\n",
        dense_gb / sparse_gb
    );

    for (_, _, _, _, row) in cells {
        table.push_row(row);
    }
    emit(&table, "table3_disagg");
}
