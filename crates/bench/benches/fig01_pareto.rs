//! Fig. 1: accuracy-vs-throughput Pareto frontiers for (a) long-context
//! input and (b) long-context reasoning (budgets 1024 and 2048).
//!
//! Accuracy: normalized to full attention (LongBench 2WikiMQA for the
//! input scenario, LongWriter average for reasoning), from simulated
//! runs. Throughput: normalized to HuggingFace eager, from the hardware
//! simulator at 4 requests × 16K (the paper's Fig. 1 setting).

use spec_bench::{emit, sim_engine, to_sim};
use spec_hwsim::DeviceSpec;
use spec_model::{ModelConfig, PrefillMode};
use spec_runtime::serving::{ServingSim, SystemKind, Workload};
use spec_workloads::longbench::TaskKind;
use specontext_core::evaluate::{
    longbench_matrix, longwriter_scores, EvalSystem, LongBenchOptions, LongWriterOptions,
};
use specontext_core::pareto::{pareto_frontier, ParetoPoint};
use specontext_core::report::{f2, Table};

fn main() {
    let cfg = ModelConfig::llama3_1_8b();
    let engine = sim_engine(&cfg, to_sim(2048), 0x101);
    let sim = ServingSim::new(cfg.clone(), DeviceSpec::a100_80g(), 2048);
    let budgets = [1024usize, 2048];

    // --- accuracy ---------------------------------------------------------
    let systems = [
        EvalSystem::Quest,
        EvalSystem::ClusterKv,
        EvalSystem::ShadowKv,
        EvalSystem::SpeContext,
    ];
    let sim_budgets: Vec<usize> = budgets.iter().map(|&b| to_sim(b)).collect();
    let opt = LongBenchOptions {
        instances: 6,
        prefill_mode: PrefillMode::Windowed {
            window: 96,
            sinks: 4,
        },
        strength: 2.5,
        ..LongBenchOptions::new(TaskKind::TwoWikiMqa, to_sim(16 * 1024), 0)
    };
    let mut all: Vec<EvalSystem> = systems.to_vec();
    all.push(EvalSystem::Full);
    let input_acc = longbench_matrix(&engine, &all, &sim_budgets, &opt);
    let full_input_acc = input_acc[all.len() - 1][0].max(1e-6);

    // Reasoning accuracy: LongWriter average vs full.
    let full_lw = longwriter_scores(
        &engine,
        EvalSystem::Full,
        &LongWriterOptions {
            prompt_len: 16,
            gen_len: 160,
            budget: to_sim(2048),
            seed: 0x1A,
        },
    )
    .average()
    .max(1e-6);

    // --- throughput (normalized to eager) ---------------------------------
    let input_w = Workload::new(16 * 1024, 2048, 4);
    let reason_w = Workload::new(2048, 16 * 1024, 4);
    let tput = |sys: SystemKind, w: &Workload| sim.throughput(sys, w).tokens_per_s;
    let eager_in = tput(SystemKind::FullFlash, &input_w); // eager OOMs at 16K x4
    let eager_re = tput(SystemKind::FullEager, &reason_w);

    let sys_map = [
        (EvalSystem::Quest, SystemKind::Quest),
        (EvalSystem::ClusterKv, SystemKind::ClusterKv),
        (EvalSystem::ShadowKv, SystemKind::ShadowKv),
        (EvalSystem::SpeContext, SystemKind::SpeContext),
    ];

    for (panel, w, acc_norm, base_tput) in [
        ("a) long-context input", &input_w, full_input_acc, eager_in),
        ("b) long-context reasoning", &reason_w, full_lw, eager_re),
    ] {
        let mut points = Vec::new();
        // Full-attention systems (accuracy 1.0 by definition).
        for sys in [
            SystemKind::FullEager,
            SystemKind::FullFlash,
            SystemKind::FullFlashInfer,
        ] {
            let t = tput(sys, w);
            if t > 0.0 {
                points.push(ParetoPoint {
                    label: sys.to_string(),
                    accuracy: 1.0,
                    throughput: t / base_tput,
                });
            }
        }
        // Every (budget, system) point is an independent accuracy +
        // throughput evaluation → fan out, keep grid order.
        let grid: Vec<(usize, usize)> = (0..budgets.len())
            .flat_map(|bi| (0..sys_map.len()).map(move |i| (bi, i)))
            .collect();
        let computed = spec_parallel::par_map(&grid, |&(bi, i)| {
            let pb = budgets[bi];
            let (ei, sk) = sys_map[i];
            let acc = if panel.starts_with("a") {
                let si = all.iter().position(|s| *s == ei).unwrap();
                input_acc[si][bi] / acc_norm
            } else {
                let s = longwriter_scores(
                    &engine,
                    ei,
                    &LongWriterOptions {
                        prompt_len: 16,
                        gen_len: 160,
                        budget: to_sim(pb),
                        seed: 0x1A,
                    },
                );
                s.average() / acc_norm
            };
            let mut sim_b = ServingSim::new(cfg.clone(), DeviceSpec::a100_80g(), pb);
            sim_b.elastic_reuse = 0.85;
            let t = sim_b.throughput(sk, w).tokens_per_s;
            (t > 0.0).then(|| ParetoPoint {
                label: format!("{ei} B={pb}"),
                accuracy: acc as f64,
                throughput: t / base_tput,
            })
        });
        points.extend(computed.into_iter().flatten());
        let frontier = pareto_frontier(&points);
        let mut table = Table::new(
            format!("Fig. 1({panel}) — normalized accuracy vs throughput"),
            &["point", "norm. accuracy", "norm. throughput", "on frontier"],
        );
        for (i, p) in points.iter().enumerate() {
            table.push_row(vec![
                p.label.clone(),
                f2(p.accuracy),
                f2(p.throughput),
                if frontier.contains(&i) {
                    "*".into()
                } else {
                    "".into()
                },
            ]);
        }
        let slug = if panel.starts_with("a") {
            "fig01a_input"
        } else {
            "fig01b_reasoning"
        };
        emit(&table, slug);
    }
}
