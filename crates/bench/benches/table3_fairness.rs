//! Multi-tenant fairness extension of Table 3: per-tenant tail latency
//! and goodput for a 2-tenant mix (a short interactive tenant sharing a
//! fleet with a long-generation batch tenant), swept over tenant mix ×
//! scheduling policy (queue discipline + preemption).
//!
//! Anchoring: the headline fairness claim is asserted, not just
//! printed — under the interactive-heavy mix the short tenant's p95 TTFT
//! must be strictly better with DRR queues + DRR preemption than under
//! the plain FIFO, or the bench fails.

use spec_bench::emit;
use spec_hwsim::{fleet, DeviceSpec};
use spec_model::ModelConfig;
use spec_runtime::{
    FairConfig, PreemptionPolicy, QueueDiscipline, SchedulerConfig, SystemKind, Workload,
};
use spec_serve::arrivals::{self, ClusterRequest, TenantClass, TraceConfig};
use spec_serve::cluster::{Cluster, ClusterConfig};
use spec_serve::router::RouterKind;
use spec_serve::slo::{SloSpec, TenantSlo};
use spec_tensor::SimRng;
use specontext_core::report::Table;

const BUDGET: usize = 2048;
const SEED: u64 = 0xFA1;
const REQUESTS: usize = 48;
const RATE: f64 = 2.0;

/// Tenant 0: short interactive requests. Tenant 1: long generations.
fn mix_trace(interactive_weight: usize, batch_weight: usize) -> Vec<ClusterRequest> {
    arrivals::generate(
        &TraceConfig::poisson(RATE)
            .tenants(vec![
                TenantClass::new(0, interactive_weight, vec![Workload::new(512, 256, 1)]),
                TenantClass::new(1, batch_weight, vec![Workload::new(2048, 8192, 1)]),
            ])
            .count(REQUESTS),
        &mut SimRng::seed(SEED ^ ((interactive_weight as u64) << 8) ^ batch_weight as u64),
    )
}

fn policy_cfg(discipline: QueueDiscipline, preemption: PreemptionPolicy) -> ClusterConfig {
    ClusterConfig::new().scheduler(SchedulerConfig {
        max_batch: 4,
        admission_stride: 4,
        fair: FairConfig {
            discipline,
            weights: vec![(0, 4), (1, 1)],
            preemption,
            ..FairConfig::default()
        },
    })
}

fn run_cell(
    mix: (usize, usize),
    discipline: QueueDiscipline,
    preemption: PreemptionPolicy,
) -> (TenantSlo, TenantSlo, f64, usize) {
    let mut cluster = Cluster::from_fleet(
        &ModelConfig::deepseek_distill_llama_8b(),
        &fleet::homogeneous(DeviceSpec::a100_80g(), 2),
        BUDGET,
        SystemKind::SpeContext,
        policy_cfg(discipline, preemption),
        RouterKind::LeastOutstanding.build(),
    );
    let report = cluster.run(&mix_trace(mix.0, mix.1), &SloSpec::new(10.0, 0.02));
    let tenant = |id: u32| {
        report
            .slo
            .per_tenant
            .iter()
            .find(|t| t.tenant == id)
            .cloned()
            .unwrap_or_else(|| panic!("tenant {id} missing from report"))
    };
    let preemptions: usize = report.slo.per_tenant.iter().map(|t| t.preemptions).sum();
    (tenant(0), tenant(1), report.throughput, preemptions)
}

fn main() {
    let mixes = [(3usize, 1usize), (1usize, 1usize)];
    let policies = [
        ("fifo", QueueDiscipline::Fifo, PreemptionPolicy::None),
        (
            "drr",
            QueueDiscipline::DeficitRoundRobin,
            PreemptionPolicy::None,
        ),
        (
            "drr+longest",
            QueueDiscipline::DeficitRoundRobin,
            PreemptionPolicy::LongestFirst,
        ),
        (
            "drr+drr",
            QueueDiscipline::DeficitRoundRobin,
            PreemptionPolicy::DeficitRoundRobin,
        ),
    ];

    let mut table = Table::new(
        format!(
            "Table 3 (fairness) — {REQUESTS} req @ {RATE}/s, 2xA100, tenant 0 [512,256] vs tenant 1 [2k,8k], weights 4:1, SLO: TTFT<=10s TBT<=20ms"
        ),
        &[
            "mix (t0:t1)",
            "policy",
            "t0 TTFT p50 s",
            "t0 TTFT p95 s",
            "t0 attain",
            "t1 TTFT p95 s",
            "t1 attain",
            "goodput tok/s",
            "tokens/s",
            "preemptions",
        ],
    );
    // Every cell builds its own cluster and trace, so the sweep fans out
    // over the worker pool; rows come back in grid order and the emitted
    // JSON is byte-identical to the serial sweep.
    type Cell<'a> = ((usize, usize), (&'a str, QueueDiscipline, PreemptionPolicy));
    let grid: Vec<Cell> = mixes
        .iter()
        .flat_map(|&m| policies.iter().map(move |&p| (m, p)))
        .collect();
    let cells = spec_parallel::par_map(&grid, |&(mix, (label, discipline, preemption))| {
        let (t0, t1, tokens_per_s, preemptions) = run_cell(mix, discipline, preemption);
        let row = vec![
            format!("{}:{}", mix.0, mix.1),
            label.to_string(),
            format!("{:.2}", t0.ttft.p50),
            format!("{:.2}", t0.ttft.p95),
            format!("{:.2}", t0.attainment),
            format!("{:.2}", t1.ttft.p95),
            format!("{:.2}", t1.attainment),
            format!("{:.1}", t0.goodput_tokens_per_s + t1.goodput_tokens_per_s),
            format!("{tokens_per_s:.1}"),
            preemptions.to_string(),
        ];
        (row, t0, preemptions)
    });

    // --- the acceptance anchor -----------------------------------------
    // Short-tenant p95 TTFT must be strictly better under DRR+preemption
    // than under FIFO for the interactive-heavy mix; both cells come out
    // of the sweep just computed.
    let anchor = |label: &str| {
        grid.iter()
            .zip(&cells)
            .find(|((mix, (l, _, _)), _)| *mix == (3, 1) && *l == label)
            .map(|(_, (_, t0, preemptions))| (t0.clone(), *preemptions))
            .expect("anchor cell in grid")
    };
    let (fifo_t0, _) = anchor("fifo");
    let (fair_t0, fair_preempt) = anchor("drr+drr");
    assert!(
        fair_t0.ttft.p95 < fifo_t0.ttft.p95,
        "fairness regression: short-tenant p95 TTFT {} (drr+preempt) vs {} (fifo)",
        fair_t0.ttft.p95,
        fifo_t0.ttft.p95
    );
    println!(
        "[anchor] short-tenant p95 TTFT: fifo {:.2}s -> drr+preempt {:.2}s ({} preemptions)\n",
        fifo_t0.ttft.p95, fair_t0.ttft.p95, fair_preempt
    );

    for (row, _, _) in cells {
        table.push_row(row);
    }
    emit(&table, "table3_fairness");
}
