//! Trace-replay extension of Table 3: record a bursty multi-tenant
//! trace into the compact binary format, prove the replay is
//! bit-for-bit, then sweep router × scheduling policy under a
//! flash-crowd trace replayed from bytes.
//!
//! Anchoring, before the sweep:
//!  - the recorded bursty trace must fit the 16-bytes/request budget
//!    and decode → re-encode byte-identically;
//!  - streaming the bytes back must yield exactly the requests the
//!    generator produced (arrivals within one 1 µs quantization tick);
//!  - replaying the flash-crowd trace through a cluster twice must
//!    produce identical reports, equal to running the decoded trace
//!    directly.

use spec_bench::emit;
use spec_hwsim::{fleet, DeviceSpec};
use spec_model::ModelConfig;
use spec_runtime::{
    FairConfig, PreemptionPolicy, QueueDiscipline, SchedulerConfig, SystemKind, Workload,
};
use spec_serve::arrivals::{ArrivalSource, TenantClass, TraceConfig};
use spec_serve::cluster::{Cluster, ClusterConfig};
use spec_serve::router::RouterKind;
use spec_serve::slo::SloSpec;
use spec_serve::trace::{decode, encode, sample_trace_config, ReplayArrivals};
use specontext_core::report::Table;

const BUDGET: usize = 2048;
const REQUESTS: usize = 48;

/// Flash-crowd mix: an interactive tenant and a batch tenant at a calm
/// 0.5 req/s base rate, spiking to 8 req/s for 10 s mid-trace.
fn flash_config() -> TraceConfig {
    TraceConfig::flash_crowd(0.5, 8.0, 20.0, 10.0)
        .tenants(vec![
            TenantClass::new(0, 3, vec![Workload::new(512, 256, 1)]),
            TenantClass::new(1, 1, vec![Workload::new(2048, 2048, 1)]),
        ])
        .count(REQUESTS)
        .seed(0xF1A5)
}

fn policy_cfg(discipline: QueueDiscipline, preemption: PreemptionPolicy) -> ClusterConfig {
    ClusterConfig::new().scheduler(SchedulerConfig {
        max_batch: 4,
        admission_stride: 4,
        fair: FairConfig {
            discipline,
            weights: vec![(0, 4), (1, 1)],
            preemption,
            ..FairConfig::default()
        },
    })
}

fn cluster_for(cfg: ClusterConfig, router: RouterKind) -> Cluster {
    Cluster::from_fleet(
        &ModelConfig::deepseek_distill_llama_8b(),
        &fleet::homogeneous(DeviceSpec::a100_80g(), 2),
        BUDGET,
        SystemKind::SpeContext,
        cfg,
        router.build(),
    )
}

fn main() {
    // --- anchor 1: record → size budget → lossless re-encode -----------
    let recorded = encode(sample_trace_config().source());
    let replay = ReplayArrivals::new(recorded.clone()).expect("recorded trace validates");
    assert!(
        replay.bytes_per_request() <= 16.0,
        "bursty multi-tenant trace encodes at {:.2} bytes/request, over the 16-byte budget",
        replay.bytes_per_request()
    );
    let reencoded = encode(decode(&recorded).expect("decodes"));
    assert_eq!(
        recorded, reencoded,
        "decode -> re-encode must be byte-identical"
    );

    // --- anchor 2: the byte stream replays the generator exactly -------
    // Arrivals are quantized to the trace tick (1 µs) at record time, so
    // the replayed clock may differ from the live f64 by up to half a
    // tick; everything else must match bit-for-bit.
    let mut streamed = replay;
    let live = sample_trace_config().source();
    let mut compared = 0usize;
    for want in live {
        let got = streamed.next_request().expect("replay as long as live");
        assert_eq!(got.request.id, want.request.id);
        assert_eq!(got.request.tenant, want.request.tenant);
        assert_eq!(got.request.input_len, want.request.input_len);
        assert_eq!(got.request.output_len, want.request.output_len);
        assert_eq!(got.session, want.session, "request {compared} session");
        assert!(
            (got.request.arrival - want.request.arrival).abs() <= 1e-6,
            "request {compared} arrival off by more than one tick: {} vs {}",
            got.request.arrival,
            want.request.arrival
        );
        compared += 1;
    }
    assert!(
        streamed.next_request().is_none(),
        "replay has extra records"
    );
    println!(
        "[anchor] recorded {} requests at {:.2} bytes/request; replay is bit-for-bit\n",
        compared,
        recorded.len() as f64 / compared as f64,
    );

    // --- anchor 3: replayed cluster runs are deterministic -------------
    let flash_bytes = encode(flash_config().source());
    let flash_trace = decode(&flash_bytes).expect("flash trace decodes");
    let run_replayed = || {
        cluster_for(ClusterConfig::new(), RouterKind::LeastOutstanding).run_source(
            &mut ReplayArrivals::new(flash_bytes.clone()).expect("validates"),
            &SloSpec::new(10.0, 0.02),
        )
    };
    let first = run_replayed();
    let second = run_replayed();
    let direct = cluster_for(ClusterConfig::new(), RouterKind::LeastOutstanding)
        .run(&flash_trace, &SloSpec::new(10.0, 0.02));
    assert_eq!(first, second, "replaying the same bytes twice must match");
    assert_eq!(first, direct, "replay must match running the decoded trace");
    println!("[anchor] flash-crowd replay: two passes and the direct run all agree\n");

    // --- the sweep: router × policy under the flash-crowd replay -------
    let routers = [
        RouterKind::RoundRobin,
        RouterKind::LeastOutstanding,
        RouterKind::LeastKvPressure,
    ];
    let policies = [
        ("fifo", QueueDiscipline::Fifo, PreemptionPolicy::None),
        (
            "drr",
            QueueDiscipline::DeficitRoundRobin,
            PreemptionPolicy::None,
        ),
        (
            "drr+drr",
            QueueDiscipline::DeficitRoundRobin,
            PreemptionPolicy::DeficitRoundRobin,
        ),
    ];
    let mut table = Table::new(
        format!(
            "Table 3 (replay) — flash crowd 0.5->8 req/s for 10s, {REQUESTS} req replayed from {} bytes on 2xA100, SLO: TTFT<=10s TBT<=20ms",
            flash_bytes.len()
        ),
        &[
            "router",
            "policy",
            "tokens/s",
            "goodput tok/s",
            "SLO attain",
            "t0 TTFT p95 s",
            "TTFT p99 s",
            "makespan s",
            "rejected",
        ],
    );
    // Every cell replays the same recorded bytes through its own
    // cluster, so the sweep fans out over the worker pool; rows come
    // back in grid order and the emitted JSON is byte-identical to the
    // serial sweep.
    type Cell<'a> = (RouterKind, (&'a str, QueueDiscipline, PreemptionPolicy));
    let grid: Vec<Cell> = routers
        .iter()
        .flat_map(|&r| policies.iter().map(move |&p| (r, p)))
        .collect();
    let rows = spec_parallel::par_map(&grid, |&(router, (label, discipline, preemption))| {
        let mut source = ReplayArrivals::new(flash_bytes.clone()).expect("validates");
        let mut c = cluster_for(policy_cfg(discipline, preemption), router);
        let r = c.run_source(&mut source, &SloSpec::new(10.0, 0.02));
        let t0_p95 = r
            .slo
            .per_tenant
            .iter()
            .find(|t| t.tenant == 0)
            .map(|t| t.ttft.p95)
            .unwrap_or(0.0);
        vec![
            router.to_string(),
            label.to_string(),
            format!("{:.1}", r.throughput),
            format!("{:.1}", r.slo.goodput_tokens_per_s),
            format!("{:.2}", r.slo.attainment),
            format!("{t0_p95:.2}"),
            format!("{:.1}", r.slo.ttft.p99),
            format!("{:.1}", r.makespan),
            r.rejected.to_string(),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    emit(&table, "table3_replay");
}
