//! Criterion micro-benchmarks of the kernels every retrieval system is
//! built from: top-k selection, softmax, quantized scoring, k-means
//! assignment, elastic set-difference planning, and the small matmuls of
//! the simulated forward pass.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spec_kvcache::{PageTable, ResidentSet};
use spec_tensor::kmeans::nearest_centroid;
use spec_tensor::quant::{BitWidth, QuantVec};
use spec_tensor::topk::top_k_positions;
use spec_tensor::{ops, SimRng};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = SimRng::seed(0xBE7C);
    let scores: Vec<f32> = (0..16_384).map(|_| rng.normal()).collect();

    c.bench_function("top_k_positions/16384->2048", |b| {
        b.iter(|| top_k_positions(black_box(&scores), 2048))
    });

    let mut soft = scores.clone();
    c.bench_function("softmax/16384", |b| {
        b.iter(|| {
            soft.copy_from_slice(&scores);
            ops::softmax_inplace(black_box(&mut soft));
        })
    });

    let key: Vec<f32> = (0..128).map(|_| rng.normal()).collect();
    let q = QuantVec::quantize(&key, BitWidth::Int4);
    let query: Vec<f32> = (0..128).map(|_| rng.normal()).collect();
    c.bench_function("quant_dot/int4/128", |b| {
        b.iter(|| black_box(&q).dot(black_box(&query)))
    });

    let keys = rng.normal_matrix(1024, 128, 1.0);
    c.bench_function("page_table_build/1024x128", |b| {
        b.iter(|| PageTable::build(black_box(&keys), 16))
    });
    let table = PageTable::build(&keys, 16);
    c.bench_function("page_scores/64pages", |b| {
        b.iter(|| black_box(&table).scores(black_box(&query)))
    });

    let centroids = rng.normal_matrix(64, 128, 1.0);
    c.bench_function("kmeans_assign/64x128", |b| {
        b.iter(|| nearest_centroid(black_box(&query), black_box(&centroids)))
    });

    let wanted_a: Vec<usize> = (0..2048).collect();
    let wanted_b: Vec<usize> = (256..2304).collect();
    c.bench_function("elastic_plan/2048_budget", |b| {
        b.iter_batched(
            || {
                let mut rs = ResidentSet::new(2048);
                rs.apply(&rs.plan(&wanted_a));
                rs
            },
            |rs| rs.plan(black_box(&wanted_b)),
            BatchSize::SmallInput,
        )
    });

    let a = rng.normal_matrix(64, 64, 1.0);
    let bm = rng.normal_matrix(64, 64, 1.0);
    c.bench_function("matmul/64x64x64", |b| {
        b.iter(|| black_box(&a).matmul(black_box(&bm)))
    });

    let x: Vec<f32> = (0..64).map(|_| rng.normal()).collect();
    c.bench_function("vecmat/64x64", |b| {
        b.iter(|| black_box(&a).vecmat(black_box(&x)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernels
}
criterion_main!(kernels);
