//! Criterion micro-benchmarks of the kernels every retrieval system is
//! built from: top-k selection, softmax, quantized scoring, k-means
//! assignment, elastic set-difference planning, and the matmuls of the
//! simulated forward pass — including the blocked kernel against the
//! reference triple loop at transformer-forward shapes.
//!
//! Unlike the figure/table regenerators this harness measures wall
//! clock, so its output is *not* expected to be byte-stable; it writes a
//! machine-readable timing summary to `results/bench_kernels.json` so
//! future PRs have a perf trajectory to compare against.

use criterion::{BatchSize, Criterion};
use spec_kvcache::{PageTable, ResidentSet};
use spec_model::LayerSelector;
use spec_model::{AttentionKind, LayerKv, ModelKv, SimGeometry};
use spec_retrieval::clusterkv::ClusterKvSelector;
use spec_retrieval::common::SelectorConfig;
use spec_retrieval::infinigen::InfiniGenSelector;
use spec_retrieval::quest::QuestSelector;
use spec_retrieval::shadowkv::ShadowKvSelector;
use spec_retrieval::spec_head::{MappingLevel, SpecSelection};
use spec_tensor::kmeans::nearest_centroid;
use spec_tensor::lut::{I8Lut, QueryLut};
use spec_tensor::quant::{BitWidth, QuantVec};
use spec_tensor::topk::{top_k_mass, top_k_positions, RankScratch, SelectScratch};
use spec_tensor::{ops, Matrix, SimRng};
use std::hint::black_box;

/// `(label, m, k, n)` for the matmul speedup comparison: the simulated
/// transformer's forward-pass shapes at the sim-scale 16K context
/// (hidden 64, FFN 128, vocab 512; see `ModelConfig::sim_geometry`).
const FORWARD_SHAPES: [(&str, usize, usize, usize); 3] = [
    ("prefill_ffn", 2048, 64, 128),
    ("prefill_logits", 2048, 64, 512),
    ("probe_bilinear", 64, 64, 64),
];

fn bench_kernels(c: &mut Criterion) {
    let mut rng = SimRng::seed(0xBE7C);
    let scores: Vec<f32> = (0..16_384).map(|_| rng.normal()).collect();

    c.bench_function("top_k_positions/16384->2048", |b| {
        b.iter(|| top_k_positions(black_box(&scores), 2048))
    });

    c.bench_function("top_k_mass/16384->2048", |b| {
        b.iter(|| top_k_mass(black_box(&scores), 2048))
    });

    let mut soft = scores.clone();
    c.bench_function("softmax/16384", |b| {
        b.iter(|| {
            soft.copy_from_slice(&scores);
            ops::softmax_inplace(black_box(&mut soft));
        })
    });

    let wide = rng.normal_matrix(256, 2048, 1.0);
    c.bench_function("softmax_rows/256x2048", |b| {
        b.iter(|| ops::softmax_rows(black_box(&wide)))
    });

    let key: Vec<f32> = (0..128).map(|_| rng.normal()).collect();
    let q = QuantVec::quantize(&key, BitWidth::Int4);
    let query: Vec<f32> = (0..128).map(|_| rng.normal()).collect();
    c.bench_function("quant_dot/int4/128", |b| {
        b.iter(|| black_box(&q).dot(black_box(&query)))
    });

    let keys = rng.normal_matrix(1024, 128, 1.0);
    c.bench_function("page_table_build/1024x128", |b| {
        b.iter(|| PageTable::build(black_box(&keys), 16))
    });
    let table = PageTable::build(&keys, 16);
    c.bench_function("page_scores/64pages", |b| {
        b.iter(|| black_box(&table).scores(black_box(&query)))
    });

    let centroids = rng.normal_matrix(64, 128, 1.0);
    c.bench_function("kmeans_assign/64x128", |b| {
        b.iter(|| nearest_centroid(black_box(&query), black_box(&centroids)))
    });

    let wanted_a: Vec<usize> = (0..2048).collect();
    let wanted_b: Vec<usize> = (256..2304).collect();
    c.bench_function("elastic_plan/2048_budget", |b| {
        b.iter_batched(
            || {
                let mut rs = ResidentSet::new(2048);
                rs.apply(&rs.plan(&wanted_a));
                rs
            },
            |rs| rs.plan(black_box(&wanted_b)),
            BatchSize::SmallInput,
        )
    });

    let a = rng.normal_matrix(64, 64, 1.0);
    let x: Vec<f32> = (0..64).map(|_| rng.normal()).collect();
    c.bench_function("vecmat/64x64", |b| {
        b.iter(|| black_box(&a).vecmat(black_box(&x)))
    });
}

/// The selection hot path at the paper's 16K-context decode shape:
/// partial-select vs full-sort top-k, incremental vs rebuilt page
/// tables, and every migrated selector's `select()` against its kept
/// reference implementation. Every pair is asserted bit-equal before it
/// is timed (check, don't trust — the `matmul`/`matmul_naive` contract).
fn bench_selection(c: &mut Criterion) {
    let mut rng = SimRng::seed(0x5E1E);
    const CTX: usize = 16_384;
    const BUDGET: usize = 2_048;
    const HEAD_DIM: usize = 64;
    const KV_HEADS: usize = 2;
    const Q_HEADS: usize = 4;

    // --- top_k_indices (select_nth) vs the argsort full-sort path ------
    let scores: Vec<f32> = (0..CTX).map(|_| rng.normal()).collect();
    let mut rank = RankScratch::default();
    assert_eq!(
        rank.top_k_desc(&scores, BUDGET),
        &spec_tensor::topk::argsort_desc(&scores)[..BUDGET],
        "partial selection diverged from the argsort prefix"
    );
    c.bench_function("selection/top_k_indices/16384->2048", |b| {
        b.iter(|| rank.top_k_desc(black_box(&scores), BUDGET).len())
    });
    c.bench_function("selection/argsort_topk/16384->2048", |b| {
        b.iter(|| {
            let mut idx = spec_tensor::topk::argsort_desc(black_box(&scores));
            idx.truncate(BUDGET);
            idx.len()
        })
    });

    // --- page table: incremental extend vs full rebuild ----------------
    let keys16k = rng.normal_matrix(CTX, HEAD_DIM, 1.0);
    let tail = rng.normal_matrix(16, HEAD_DIM, 1.0);
    {
        let mut incremental = PageTable::build(&keys16k, 16);
        incremental.extend(&tail);
        let mut concat = keys16k.clone();
        for r in 0..tail.rows() {
            concat.push_row(tail.row(r));
        }
        let rebuilt = PageTable::build(&concat, 16);
        assert_eq!(
            incremental.scores(&keys16k.row(0)[..HEAD_DIM]),
            rebuilt.scores(&keys16k.row(0)[..HEAD_DIM]),
            "extended table diverged from rebuild"
        );
    }
    // Row-outer build vs the retained column-outer reference (bit-equal
    // metadata is pinned in the unit/property tests; spot-check scores).
    assert_eq!(
        PageTable::build(&keys16k, 16).scores(&keys16k.row(0)[..HEAD_DIM]),
        PageTable::build_reference(&keys16k, 16).scores(&keys16k.row(0)[..HEAD_DIM]),
        "row-outer build diverged from reference"
    );
    c.bench_function("page_table_build/16384x64", |b| {
        b.iter(|| PageTable::build(black_box(&keys16k), 16))
    });
    c.bench_function("page_table_build_reference/16384x64", |b| {
        b.iter(|| PageTable::build_reference(black_box(&keys16k), 16))
    });
    c.bench_function("page_table_extend/16tok@16k", |b| {
        b.iter_batched(
            || PageTable::build(&keys16k, 16),
            |mut t| {
                t.extend(black_box(&tail));
                t
            },
            BatchSize::SmallInput,
        )
    });

    // --- per-selector select() latency at the 16K decode shape ---------
    // A synthetic per-head KV cache (values are never touched by the
    // selectors, so only keys are materialized).
    let kv = ModelKv {
        layers: vec![LayerKv::PerHead {
            keys: (0..KV_HEADS)
                .map(|_| rng.normal_matrix(CTX, HEAD_DIM, 1.0))
                .collect(),
            values: vec![Matrix::default(); KV_HEADS],
        }],
    };
    let queries = rng.normal_matrix(Q_HEADS, HEAD_DIM, 1.0);
    let cfg = SelectorConfig {
        budget: BUDGET,
        sinks: 4,
        recent: 8,
        page_size: 16,
        tokens_per_cluster: 256,
        ..SelectorConfig::with_budget(BUDGET)
    };
    let mut scratch = SelectScratch::new();

    let mut quest = QuestSelector::preprocess(&kv, cfg);
    assert_eq!(
        quest.select(0, &queries, &kv.layers[0], &mut scratch),
        quest.select_reference(0, &queries, &kv.layers[0]),
        "quest diverged from reference"
    );
    c.bench_function("selection/quest/16k->2048", |b| {
        b.iter(|| quest.select(0, black_box(&queries), &kv.layers[0], &mut scratch))
    });
    c.bench_function("selection/quest_reference/16k->2048", |b| {
        b.iter(|| quest.select_reference(0, black_box(&queries), &kv.layers[0]))
    });

    let mut ckv = ClusterKvSelector::preprocess(&kv, cfg, 0xC1);
    assert_eq!(
        ckv.select(0, &queries, &kv.layers[0], &mut scratch),
        ckv.select_reference(0, &queries, &kv.layers[0]),
        "clusterkv diverged from reference"
    );
    c.bench_function("selection/clusterkv/16k->2048", |b| {
        b.iter(|| ckv.select(0, black_box(&queries), &kv.layers[0], &mut scratch))
    });
    c.bench_function("selection/clusterkv_reference/16k->2048", |b| {
        b.iter(|| ckv.select_reference(0, black_box(&queries), &kv.layers[0]))
    });

    let mut skv = ShadowKvSelector::preprocess(&kv, cfg);
    assert_eq!(
        skv.select(0, &queries, &kv.layers[0], &mut scratch),
        skv.select_reference(0, &queries, &kv.layers[0]),
        "shadowkv diverged from reference"
    );
    c.bench_function("selection/shadowkv/16k->2048", |b| {
        b.iter(|| skv.select(0, black_box(&queries), &kv.layers[0], &mut scratch))
    });
    c.bench_function("selection/shadowkv_reference/16k->2048", |b| {
        b.iter(|| skv.select_reference(0, black_box(&queries), &kv.layers[0]))
    });

    let mut inf = InfiniGenSelector::preprocess(&kv, cfg);
    let mut inf_ref = inf.clone();
    assert_eq!(
        inf.select(0, &queries, &kv.layers[0], &mut scratch),
        inf_ref.select_reference(0, &queries, &kv.layers[0]),
        "infinigen diverged from reference"
    );
    c.bench_function("selection/infinigen/16k->2048", |b| {
        b.iter(|| inf.select(0, black_box(&queries), &kv.layers[0], &mut scratch))
    });
    c.bench_function("selection/infinigen_reference/16k->2048", |b| {
        b.iter(|| inf_ref.select_reference(0, black_box(&queries), &kv.layers[0]))
    });

    // SpeContext head-level mapping over 16K-position head scores.
    let geom = SimGeometry::tiny(AttentionKind::Gqa);
    let head_scores: Vec<Vec<f32>> = (0..geom.q_heads)
        .map(|_| (0..CTX).map(|_| rng.normal()).collect())
        .collect();
    assert_eq!(
        SpecSelection::from_head_scores(&head_scores, &geom, &cfg, MappingLevel::Head),
        SpecSelection::from_head_scores_reference(&head_scores, &geom, &cfg, MappingLevel::Head),
        "spec_head diverged from reference"
    );
    c.bench_function("selection/spec_head/16k->2048", |b| {
        b.iter(|| {
            SpecSelection::from_head_scores_scratch(
                black_box(&head_scores),
                &geom,
                &cfg,
                MappingLevel::Head,
                &mut scratch,
            )
        })
    });
    c.bench_function("selection/spec_head_reference/16k->2048", |b| {
        b.iter(|| {
            SpecSelection::from_head_scores_reference(
                black_box(&head_scores),
                &geom,
                &cfg,
                MappingLevel::Head,
            )
        })
    });

    // The static policies ride along for completeness (no reference pair:
    // their selection was allocation-minimal already).
    let mut window = spec_retrieval::window::StreamingLlm::new(4, BUDGET);
    c.bench_function("selection/streaming_llm/16k", |b| {
        b.iter(|| window.select(0, black_box(&queries), &kv.layers[0], &mut scratch))
    });
    let mut full = spec_retrieval::FullAttention;
    c.bench_function("selection/full/16k", |b| {
        b.iter(|| full.select(0, black_box(&queries), &kv.layers[0], &mut scratch))
    });
}

/// LUT-quantized scoring at the ShadowKV shape: one query scoring a
/// 16K-key int4 shadow (dim 64). The LUT path gathers precomputed
/// products; the reference unpacks/converts/multiplies per element. For
/// int8 both sides of the LUT-vs-arithmetic trade are reported: the
/// widened-multiply kernel (`dot_i8_fma`, the production path behind
/// `QuantVec::dot`) and the 256-entry true LUT (`dot_i8_table`, which
/// thrashes L1 at this dim — kept to keep that claim measured, not
/// assumed). Every pair is asserted bit-equal before timing.
fn bench_lut(c: &mut Criterion) {
    let mut rng = SimRng::seed(0x10_07);
    const CTX: usize = 16_384;
    const HEAD_DIM: usize = 64;
    let query: Vec<f32> = (0..HEAD_DIM).map(|_| rng.normal()).collect();
    let rows = rng.normal_matrix(CTX, HEAD_DIM, 1.0);
    let keys_i4: Vec<QuantVec> = rows
        .iter_rows()
        .map(|r| QuantVec::quantize(r, BitWidth::Int4))
        .collect();
    let keys_i8: Vec<QuantVec> = rows
        .iter_rows()
        .map(|r| QuantVec::quantize(r, BitWidth::Int8))
        .collect();

    let mut lut = QueryLut::build(&query);
    c.bench_function("lut/build_i4/64", |b| {
        b.iter(|| lut.rebuild(black_box(&query)))
    });

    let want_i4: Vec<f32> = keys_i4.iter().map(|k| k.dot_reference(&query)).collect();
    let mut out = Vec::new();
    lut.scores_into(&keys_i4, &mut out);
    assert_eq!(
        out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        want_i4.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "int4 LUT scoring diverged from reference"
    );
    c.bench_function("lut/dot_i4/16384x64", |b| {
        b.iter(|| lut.scores_into(black_box(&keys_i4), &mut out))
    });
    c.bench_function("lut/dot_i4_reference/16384x64", |b| {
        b.iter(|| {
            out.clear();
            out.extend(black_box(&keys_i4).iter().map(|k| k.dot_reference(&query)));
        })
    });

    let i8lut = I8Lut::build(&query);
    let want_i8: Vec<f32> = keys_i8.iter().map(|k| k.dot_reference(&query)).collect();
    spec_tensor::quant::dot_i8_batch_into(&query, &keys_i8, &mut out);
    assert_eq!(
        out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        want_i8.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "int8 widened batch kernel diverged from reference"
    );
    for k in keys_i8.iter().take(64) {
        assert_eq!(
            i8lut.dot_i8(k).to_bits(),
            k.dot_reference(&query).to_bits(),
            "int8 table diverged from reference"
        );
    }
    c.bench_function("lut/dot_i8_fma/16384x64", |b| {
        b.iter(|| spec_tensor::quant::dot_i8_batch_into(&query, black_box(&keys_i8), &mut out))
    });
    c.bench_function("lut/dot_i8_table/16384x64", |b| {
        b.iter(|| {
            out.clear();
            out.extend(black_box(&keys_i8).iter().map(|k| i8lut.dot_i8(k)));
        })
    });
    c.bench_function("lut/dot_i8_reference/16384x64", |b| {
        b.iter(|| {
            out.clear();
            out.extend(black_box(&keys_i8).iter().map(|k| k.dot_reference(&query)));
        })
    });
}

/// Blocked kernel vs the reference triple loop at the forward shapes.
fn bench_matmul(c: &mut Criterion) {
    let mut rng = SimRng::seed(0x6E66);
    for (label, m, k, n) in FORWARD_SHAPES {
        let a = rng.normal_matrix(m, k, 1.0);
        let b = rng.normal_matrix(k, n, 1.0);
        // The speedup claim rests on identical results; check, don't trust.
        let blocked = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        assert_eq!(
            blocked, naive,
            "blocked kernel diverged from reference at {label}"
        );
        c.bench_function(&format!("matmul/{label}/{m}x{k}x{n}"), |bch| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });
        c.bench_function(&format!("matmul_naive/{label}/{m}x{k}x{n}"), |bch| {
            bch.iter(|| black_box(&a).matmul_naive(black_box(&b)))
        });
    }
}

/// Persists every timing plus the naive/blocked speedups to
/// `results/bench_kernels.json`.
fn write_summary(c: &Criterion) {
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"kernels\",\n");
    json.push_str(&format!(
        "  \"spec_threads\": {},\n  \"entries\": [\n",
        spec_parallel::max_threads()
    ));
    let entries: Vec<String> = c
        .summaries()
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"best_ns\": {:.1}}}",
                s.name, s.mean_ns, s.best_ns
            )
        })
        .collect();
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ],\n  \"matmul_speedup_vs_naive\": {\n");
    let speedups: Vec<String> = FORWARD_SHAPES
        .iter()
        .filter_map(|(label, m, k, n)| {
            let blocked = c.mean_ns(&format!("matmul/{label}/{m}x{k}x{n}"))?;
            let naive = c.mean_ns(&format!("matmul_naive/{label}/{m}x{k}x{n}"))?;
            Some(format!("    \"{label}\": {:.2}", naive / blocked))
        })
        .collect();
    json.push_str(&speedups.join(",\n"));
    json.push_str("\n  },\n  \"selection_speedup_vs_reference\": {\n");
    let sel_speedups: Vec<String> = selection_speedups(c)
        .into_iter()
        .map(|(label, s)| format!("    \"{label}\": {s:.2}"))
        .collect();
    json.push_str(&sel_speedups.join(",\n"));
    json.push_str("\n  },\n  \"lut_speedup_vs_reference\": {\n");
    let lut_speedups: Vec<String> = lut_speedups(c)
        .into_iter()
        .map(|(label, s)| format!("    \"{label}\": {s:.2}"))
        .collect();
    json.push_str(&lut_speedups.join(",\n"));
    json.push_str("\n  }\n}\n");
    spec_bench::emit_raw_json("bench_kernels", &json);
    for line in speedups {
        println!("[speedup vs naive]{}", line.replace("    ", " "));
    }
    for line in sel_speedups {
        println!(
            "[selection speedup vs reference]{}",
            line.replace("    ", " ")
        );
    }
    for line in lut_speedups {
        println!("[lut speedup vs reference]{}", line.replace("    ", " "));
    }
}

/// Old-path / new-path ratios for the selection engine: the full-sort
/// top-k vs the partial select, the page-table rebuild vs the
/// incremental extend, and each migrated selector vs its kept reference.
fn selection_speedups(c: &Criterion) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut push = |label: &str, old: Option<f64>, new: Option<f64>| {
        if let (Some(old), Some(new)) = (old, new) {
            out.push((label.to_string(), old / new));
        }
    };
    push(
        "top_k_indices",
        c.mean_ns("selection/argsort_topk/16384->2048"),
        c.mean_ns("selection/top_k_indices/16384->2048"),
    );
    push(
        "page_table_extend",
        c.mean_ns("page_table_build/16384x64"),
        c.mean_ns("page_table_extend/16tok@16k"),
    );
    push(
        "page_table_build",
        c.mean_ns("page_table_build_reference/16384x64"),
        c.mean_ns("page_table_build/16384x64"),
    );
    for sel in ["quest", "clusterkv", "shadowkv", "infinigen", "spec_head"] {
        push(
            sel,
            c.mean_ns(&format!("selection/{sel}_reference/16k->2048")),
            c.mean_ns(&format!("selection/{sel}/16k->2048")),
        );
    }
    out
}

/// LUT-path / reference ratios for quantized scoring at the 16K shadow
/// shape: the int4 gather kernel and both int8 contenders (the widened
/// multiply that production uses, and the L1-thrashing true table).
fn lut_speedups(c: &Criterion) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut push = |label: &str, old: Option<f64>, new: Option<f64>| {
        if let (Some(old), Some(new)) = (old, new) {
            out.push((label.to_string(), old / new));
        }
    };
    push(
        "dot_i4",
        c.mean_ns("lut/dot_i4_reference/16384x64"),
        c.mean_ns("lut/dot_i4/16384x64"),
    );
    push(
        "dot_i8_fma",
        c.mean_ns("lut/dot_i8_reference/16384x64"),
        c.mean_ns("lut/dot_i8_fma/16384x64"),
    );
    push(
        "dot_i8_table",
        c.mean_ns("lut/dot_i8_reference/16384x64"),
        c.mean_ns("lut/dot_i8_table/16384x64"),
    );
    out
}

fn main() {
    let mut c = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    bench_kernels(&mut c);
    bench_selection(&mut c);
    bench_lut(&mut c);
    bench_matmul(&mut c);
    write_summary(&c);
}
