//! Criterion micro-benchmarks of the kernels every retrieval system is
//! built from: top-k selection, softmax, quantized scoring, k-means
//! assignment, elastic set-difference planning, and the matmuls of the
//! simulated forward pass — including the blocked kernel against the
//! reference triple loop at transformer-forward shapes.
//!
//! Unlike the figure/table regenerators this harness measures wall
//! clock, so its output is *not* expected to be byte-stable; it writes a
//! machine-readable timing summary to `results/bench_kernels.json` so
//! future PRs have a perf trajectory to compare against.

use criterion::{BatchSize, Criterion};
use spec_kvcache::{PageTable, ResidentSet};
use spec_tensor::kmeans::nearest_centroid;
use spec_tensor::quant::{BitWidth, QuantVec};
use spec_tensor::topk::{top_k_mass, top_k_positions};
use spec_tensor::{ops, SimRng};
use std::hint::black_box;

/// `(label, m, k, n)` for the matmul speedup comparison: the simulated
/// transformer's forward-pass shapes at the sim-scale 16K context
/// (hidden 64, FFN 128, vocab 512; see `ModelConfig::sim_geometry`).
const FORWARD_SHAPES: [(&str, usize, usize, usize); 3] = [
    ("prefill_ffn", 2048, 64, 128),
    ("prefill_logits", 2048, 64, 512),
    ("probe_bilinear", 64, 64, 64),
];

fn bench_kernels(c: &mut Criterion) {
    let mut rng = SimRng::seed(0xBE7C);
    let scores: Vec<f32> = (0..16_384).map(|_| rng.normal()).collect();

    c.bench_function("top_k_positions/16384->2048", |b| {
        b.iter(|| top_k_positions(black_box(&scores), 2048))
    });

    c.bench_function("top_k_mass/16384->2048", |b| {
        b.iter(|| top_k_mass(black_box(&scores), 2048))
    });

    let mut soft = scores.clone();
    c.bench_function("softmax/16384", |b| {
        b.iter(|| {
            soft.copy_from_slice(&scores);
            ops::softmax_inplace(black_box(&mut soft));
        })
    });

    let wide = rng.normal_matrix(256, 2048, 1.0);
    c.bench_function("softmax_rows/256x2048", |b| {
        b.iter(|| ops::softmax_rows(black_box(&wide)))
    });

    let key: Vec<f32> = (0..128).map(|_| rng.normal()).collect();
    let q = QuantVec::quantize(&key, BitWidth::Int4);
    let query: Vec<f32> = (0..128).map(|_| rng.normal()).collect();
    c.bench_function("quant_dot/int4/128", |b| {
        b.iter(|| black_box(&q).dot(black_box(&query)))
    });

    let keys = rng.normal_matrix(1024, 128, 1.0);
    c.bench_function("page_table_build/1024x128", |b| {
        b.iter(|| PageTable::build(black_box(&keys), 16))
    });
    let table = PageTable::build(&keys, 16);
    c.bench_function("page_scores/64pages", |b| {
        b.iter(|| black_box(&table).scores(black_box(&query)))
    });

    let centroids = rng.normal_matrix(64, 128, 1.0);
    c.bench_function("kmeans_assign/64x128", |b| {
        b.iter(|| nearest_centroid(black_box(&query), black_box(&centroids)))
    });

    let wanted_a: Vec<usize> = (0..2048).collect();
    let wanted_b: Vec<usize> = (256..2304).collect();
    c.bench_function("elastic_plan/2048_budget", |b| {
        b.iter_batched(
            || {
                let mut rs = ResidentSet::new(2048);
                rs.apply(&rs.plan(&wanted_a));
                rs
            },
            |rs| rs.plan(black_box(&wanted_b)),
            BatchSize::SmallInput,
        )
    });

    let a = rng.normal_matrix(64, 64, 1.0);
    let x: Vec<f32> = (0..64).map(|_| rng.normal()).collect();
    c.bench_function("vecmat/64x64", |b| {
        b.iter(|| black_box(&a).vecmat(black_box(&x)))
    });
}

/// Blocked kernel vs the reference triple loop at the forward shapes.
fn bench_matmul(c: &mut Criterion) {
    let mut rng = SimRng::seed(0x6E66);
    for (label, m, k, n) in FORWARD_SHAPES {
        let a = rng.normal_matrix(m, k, 1.0);
        let b = rng.normal_matrix(k, n, 1.0);
        // The speedup claim rests on identical results; check, don't trust.
        let blocked = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        assert_eq!(
            blocked, naive,
            "blocked kernel diverged from reference at {label}"
        );
        c.bench_function(&format!("matmul/{label}/{m}x{k}x{n}"), |bch| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });
        c.bench_function(&format!("matmul_naive/{label}/{m}x{k}x{n}"), |bch| {
            bch.iter(|| black_box(&a).matmul_naive(black_box(&b)))
        });
    }
}

/// Persists every timing plus the naive/blocked speedups to
/// `results/bench_kernels.json`.
fn write_summary(c: &Criterion) {
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"kernels\",\n");
    json.push_str(&format!(
        "  \"spec_threads\": {},\n  \"entries\": [\n",
        spec_parallel::max_threads()
    ));
    let entries: Vec<String> = c
        .summaries()
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"best_ns\": {:.1}}}",
                s.name, s.mean_ns, s.best_ns
            )
        })
        .collect();
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ],\n  \"matmul_speedup_vs_naive\": {\n");
    let speedups: Vec<String> = FORWARD_SHAPES
        .iter()
        .filter_map(|(label, m, k, n)| {
            let blocked = c.mean_ns(&format!("matmul/{label}/{m}x{k}x{n}"))?;
            let naive = c.mean_ns(&format!("matmul_naive/{label}/{m}x{k}x{n}"))?;
            Some(format!("    \"{label}\": {:.2}", naive / blocked))
        })
        .collect();
    json.push_str(&speedups.join(",\n"));
    json.push_str("\n  }\n}\n");
    spec_bench::emit_raw_json("bench_kernels", &json);
    for line in speedups {
        println!("[speedup vs naive]{}", line.replace("    ", " "));
    }
}

fn main() {
    let mut c = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    bench_kernels(&mut c);
    bench_matmul(&mut c);
    write_summary(&c);
}
