//! Table 3: end-to-end throughput (tokens/s) on the high-end GPU with
//! multiple requests in the cloud.
//!
//! Two models (DeepSeek-Distill-Llama-8B, Qwen3-8B), four workload shapes,
//! five systems; every system runs at its best batch among the paper's
//! candidates, and speedups are normalized to Full Attn (Eager) — OOM
//! rows normalize to the first non-OOM baseline, as the paper does with
//! FlashAttention.

use spec_bench::{emit, paper_shapes, shape_label};
use spec_hwsim::DeviceSpec;
use spec_model::ModelConfig;
use spec_runtime::serving::{ServingSim, SystemKind};
use specontext_core::report::{throughput_cell, Table};

fn main() {
    let budget = 2048;
    let batches = [4usize, 6, 8, 16, 32, 64];
    let systems = [
        SystemKind::FullEager,
        SystemKind::FullFlash,
        SystemKind::FullFlashInfer,
        SystemKind::ShadowKv,
        SystemKind::SpeContext,
    ];
    for cfg in [
        ModelConfig::deepseek_distill_llama_8b(),
        ModelConfig::qwen3_8b(),
    ] {
        let sim = ServingSim::new(cfg.clone(), DeviceSpec::a100_80g(), budget);
        let mut table = Table::new(
            format!(
                "Table 3 — {} on A100-80GB, tokens/s (batch, speedup)",
                cfg.name
            ),
            &[
                "[In, Out]",
                "Eager",
                "FlashAttn",
                "FlashInfer",
                "ShadowKV",
                "Ours",
            ],
        );
        // Rows (workload shapes) are independent; the per-row system loop
        // stays serial because later systems normalize to the first
        // non-OOM baseline of the same row.
        let rows = spec_parallel::par_map(&paper_shapes(), |&(inp, out)| {
            let mut cells = vec![shape_label(inp, out)];
            let mut baseline = 0.0;
            for sys in systems {
                let rep = sim.best_batch(sys, inp, out, &batches);
                if baseline == 0.0 && !rep.oom {
                    baseline = rep.tokens_per_s;
                }
                let speedup = if baseline > 0.0 {
                    rep.tokens_per_s / baseline
                } else {
                    0.0
                };
                cells.push(throughput_cell(rep.tokens_per_s, rep.requests, speedup));
            }
            cells
        });
        for row in rows {
            table.push_row(row);
        }
        emit(
            &table,
            &format!(
                "table3_{}",
                cfg.name.to_lowercase().replace(['-', '.'], "_")
            ),
        );
    }
}
