//! Cluster extension of Table 3: goodput and tail latency for a fleet of
//! serving replicas under open-loop Poisson load, swept over replica
//! count × router policy × arrival rate for SpeContext against the
//! strongest batching baselines.
//!
//! Anchoring: before the sweep, the 1-replica/round-robin cell of every
//! (system, rate) pair is checked bit-for-bit against the single-node
//! `Scheduler::run` on the identical trace — the cluster layer adds
//! routing and accounting, never new physics.

use spec_bench::emit;
use spec_hwsim::{fleet, DeviceSpec};
use spec_model::ModelConfig;
use spec_runtime::{Scheduler, SchedulerConfig, ServingSim, SystemKind, Workload};
use spec_serve::arrivals::{self, ClusterRequest, TraceConfig};
use spec_serve::cluster::{Cluster, ClusterConfig};
use spec_serve::router::RouterKind;
use spec_serve::slo::SloSpec;
use spec_tensor::SimRng;
use specontext_core::report::Table;

const BUDGET: usize = 2048;
const SEED: u64 = 0xC1A57E5;
const REQUESTS: usize = 24;

fn trace_at(rate: f64) -> Vec<ClusterRequest> {
    // Table-3 reasoning mix: mostly [2k in, 8k out] long generations
    // with a long-prompt [8k, 2k] tail, spread over sessions for the
    // affinity router. A lone replica sustains ~0.2 req/s of this mix,
    // so the rate sweep spans under- and over-subscription.
    arrivals::generate(
        &TraceConfig::poisson(rate)
            .shapes(vec![
                Workload::new(2048, 8192, 3),
                Workload::new(8192, 2048, 1),
            ])
            .count(REQUESTS),
        &mut SimRng::seed(SEED ^ rate.to_bits()),
    )
}

fn cluster_for(system: SystemKind, replicas: usize, router: RouterKind) -> Cluster {
    Cluster::from_fleet(
        &ModelConfig::deepseek_distill_llama_8b(),
        &fleet::homogeneous(DeviceSpec::a100_80g(), replicas),
        BUDGET,
        system,
        ClusterConfig::new(),
        router.build(),
    )
}

fn sim() -> ServingSim {
    ServingSim::new(
        ModelConfig::deepseek_distill_llama_8b(),
        DeviceSpec::a100_80g(),
        BUDGET,
    )
}

fn main() {
    let systems = [
        SystemKind::FullFlashInfer,
        SystemKind::ShadowKv,
        SystemKind::SpeContext,
    ];
    let rates = [0.25f64, 1.0];
    let replica_counts = [1usize, 2, 4];
    let routers = [
        RouterKind::RoundRobin,
        RouterKind::LeastOutstanding,
        RouterKind::LeastKvPressure,
    ];
    let slo = SloSpec::new(30.0, 0.013);

    // --- single-node anchor: 1×round-robin ≡ Scheduler::run ------------
    let anchor_grid: Vec<(SystemKind, f64)> = systems
        .iter()
        .flat_map(|&s| rates.iter().map(move |&r| (s, r)))
        .collect();
    spec_parallel::par_map(&anchor_grid, |&(system, rate)| {
        let trace = trace_at(rate);
        let requests: Vec<_> = trace.iter().map(|cr| cr.request).collect();
        let single = Scheduler::new(sim(), system, SchedulerConfig::default()).run(&requests);
        let mut c = cluster_for(system, 1, RouterKind::RoundRobin);
        let report = c.run(&trace, &slo);
        assert_eq!(
            report.replicas[0].report, single,
            "1-replica round-robin must match Scheduler::run ({system}, rate {rate})"
        );
    });
    println!("[anchor] 1-replica round-robin == single-node Scheduler::run (bit-for-bit) for all systems and rates\n");

    let mut table = Table::new(
        format!(
            "Table 3 (cluster) — {REQUESTS} req Poisson mix on A100-80GB fleet, SLO: TTFT<=30s TBT<=13ms"
        ),
        &[
            "system",
            "replicas",
            "router",
            "rate req/s",
            "tokens/s",
            "goodput tok/s",
            "SLO attain",
            "TTFT p50 s",
            "TTFT p99 s",
            "TBT p95 s",
            "makespan s",
        ],
    );
    // Every cell builds its own cluster and trace from fixed seeds, so
    // the sweep fans out over the worker pool; rows come back in grid
    // order and the emitted JSON is byte-identical to the serial sweep.
    let mut grid: Vec<(SystemKind, usize, RouterKind, f64)> = Vec::new();
    for system in systems {
        for &replicas in &replica_counts {
            for router in routers {
                for &rate in &rates {
                    grid.push((system, replicas, router, rate));
                }
            }
        }
    }
    let rows = spec_parallel::par_map(&grid, |&(system, replicas, router, rate)| {
        let trace = trace_at(rate);
        let mut c = cluster_for(system, replicas, router);
        let r = c.run(&trace, &slo);
        vec![
            system.to_string(),
            replicas.to_string(),
            router.to_string(),
            format!("{rate:.2}"),
            format!("{:.1}", r.throughput),
            format!("{:.1}", r.slo.goodput_tokens_per_s),
            format!("{:.2}", r.slo.attainment),
            format!("{:.1}", r.slo.ttft.p50),
            format!("{:.1}", r.slo.ttft.p99),
            format!("{:.3}", r.slo.tbt.p95),
            format!("{:.1}", r.makespan),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    emit(&table, "table3_cluster");
}
