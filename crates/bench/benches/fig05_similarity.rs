//! Fig. 5(a): head-level vs batch-level retrieval quality.
//!
//! For budgets spanning the paper's 32..2048 range, measures (i) the
//! attention-weight accumulation (fraction of the LLM's true attention
//! mass captured by the retrieval head's selection) and (ii) the hit rate
//! against the LLM's own top-k tokens — for both mapping levels.
//! Head-level wins, as in the paper.

use spec_bench::{emit, sim_engine, to_sim};
use spec_model::{ModelConfig, PrefillMode, SparsePlan};
use spec_retrieval::common::SelectorConfig;
use spec_retrieval::oracle::{selection_hit_rate, selection_mass};
use spec_retrieval::spec_head::{MappingLevel, SpecSelection};
use spec_tensor::SimRng;
use spec_workloads::context::ContextBuilder;
use specontext_core::report::{f2, Table};

fn main() {
    let cfg = ModelConfig::llama3_1_8b();
    let engine = sim_engine(&cfg, 64, 0x515);
    let model = engine.model();
    let builder = ContextBuilder::new(model);
    let context_len = to_sim(16 * 1024);
    let instances = 6;
    let paper_budgets = [32usize, 64, 128, 256, 512, 1024, 2048];

    let mut table = Table::new(
        "Fig. 5(a) — retrieval-head quality vs budget (attention mass | hit rate)",
        &["budget", "head mass", "batch mass", "head hit", "batch hit"],
    );

    // Shared instances: context + dense trace once per instance. Each
    // instance is an independent prefill + traced decode → worker pool.
    let contexts = spec_parallel::par_map_range(instances, |i| {
        let mut rng = SimRng::seed(0xF5A ^ i as u64);
        let ctx = builder.build(model, context_len, 3, 2, &mut rng);
        let (mut kv, _) = model.prefill_embeddings(
            &ctx.emb,
            PrefillMode::Windowed {
                window: 96,
                sinks: 4,
            },
        );
        let n = ctx.emb.rows();
        let q = ctx.emb.row(n - 1).to_vec();
        let plan = SparsePlan::dense(model.geometry().layers);
        let (_, trace) = model.decode_step_traced(&q, n, &mut kv, &plan);

        // Retrieval-head scores for the same query.
        let head = engine.dlm().to_retrieval_head();
        let mut state = head.new_state();
        for r in 0..ctx.emb.rows() {
            head.append(ctx.emb.row(r), &mut state);
        }
        let scores = head.head_scores(&q, &state);
        (trace, scores)
    });

    let group = model.geometry().group_size();
    for &pb in &paper_budgets {
        let b = to_sim(pb);
        let mut acc = [0.0f32; 4];
        for (trace, scores) in &contexts {
            for (i, level) in [MappingLevel::Head, MappingLevel::Batch].iter().enumerate() {
                let sel = SpecSelection::from_head_scores(
                    scores,
                    model.geometry(),
                    &SelectorConfig {
                        budget: b,
                        sinks: 2,
                        recent: 2,
                        ..SelectorConfig::with_budget(b)
                    },
                    *level,
                );
                acc[i] += selection_mass(trace, &sel.per_head, group);
                acc[2 + i] += selection_hit_rate(trace, &sel.per_head, group, b);
            }
        }
        let n = contexts.len() as f32;
        table.push_row(vec![
            pb.to_string(),
            f2((acc[0] / n) as f64),
            f2((acc[1] / n) as f64),
            f2((acc[2] / n) as f64),
            f2((acc[3] / n) as f64),
        ]);
    }
    emit(&table, "fig05_similarity");
}
