//! Dense row-major `f32` matrix.
//!
//! [`Matrix`] is the only tensor type in the workspace. Higher-rank tensors
//! (per-head attention states, batched activations) are represented as
//! collections of matrices by the callers, which keeps every kernel easy to
//! audit.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f32` values.
///
/// # Example
///
/// ```
/// use spec_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 2);
/// assert_eq!(m.get(1, 0), 3.0);
/// ```
#[derive(Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix shape overflows usize");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the `(rows, cols)` shape pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns a new matrix containing only the rows whose indices appear in
    /// `indices`, in the given order. This is the `torch.gather`-style
    /// primitive used to materialize a sparse KV selection.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "gather index {src} out of bounds");
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Appends a row to the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols` (unless the matrix is empty, in which
    /// case the row defines the column count).
    pub fn push_row(&mut self, row: &[f32]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Matrix product `self * other`.
    ///
    /// Dispatches between a matrix-vector fast path, the reference
    /// triple loop (tiny shapes), and the cache-blocked kernel in
    /// [`gemm`](crate::gemm) — all of which accumulate every output
    /// element over `k` in ascending order, so the result is bit-for-bit
    /// identical across dispatch choices *and* across thread counts (the
    /// blocked kernel parallelizes over disjoint row bands; see
    /// `spec_parallel`).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        crate::gemm::matmul_dispatch(self, other)
    }

    /// The reference matrix product: the plain `i, k, j` triple loop,
    /// accumulating each output element over `k` in ascending order.
    ///
    /// This is the kernel [`matmul`](Self::matmul) is property-tested
    /// against (bit-for-bit, at every thread count) and the baseline the
    /// `kernels` bench reports speedups over. Prefer [`matmul`]
    /// everywhere else.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Returns the transpose as a new matrix.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// In-place scalar multiplication.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Element-wise addition. Returns a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise maximum of two matrices. Used for the GQA group-level
    /// reduction of attention weights (paper Fig. 5(c)).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn elementwise_max(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "max shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.max(*b))
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        self.iter_rows()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Vector-matrix product `x * self` (treating `x` as a row vector):
    /// `out[j] = sum_i x[i] * self[i][j]`. Equivalent to
    /// `self.transposed().matvec(x)` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn vecmat(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        self.vecmat_into(x, &mut out);
        out
    }

    /// As [`vecmat`](Self::vecmat), writing into a caller-provided buffer
    /// (zeroed first) instead of allocating. Bit-identical to `vecmat`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `out.len() != cols`.
    pub fn vecmat_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "vecmat shape mismatch");
        assert_eq!(out.len(), self.cols, "vecmat output length mismatch");
        out.fill(0.0);
        for (xi, row) in x.iter().zip(self.iter_rows()) {
            if *xi == 0.0 {
                continue;
            }
            for (o, w) in out.iter_mut().zip(row) {
                *o += xi * w;
            }
        }
    }

    /// Scores the query against every row — `out[r] = dot(query, row r)`
    /// — into a reused buffer (cleared first), on the
    /// [`dispatch`](crate::dispatch) registry with the tier resolved once
    /// for the whole sweep. Bit-identical to calling [`dot`] per row
    /// (same products, same ascending-index addition order); this is the
    /// batched scoring kernel the InfiniGen selector runs on.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != cols`.
    pub fn dot_rows_into(&self, query: &[f32], out: &mut Vec<f32>) {
        assert_eq!(query.len(), self.cols, "dot_rows shape mismatch");
        out.clear();
        out.reserve(self.rows);
        let tier = crate::dispatch::active_tier();
        out.extend(
            self.iter_rows()
                .map(|row| row_dot::dispatch(tier, query, row)),
        );
    }

    /// Makes `self` a copy of `src`, reusing the existing data buffer
    /// when its capacity suffices (the derived `Clone` always
    /// reallocates).
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Dot product of two equal-length slices (the sequential reference the
/// dispatched [`Matrix::dot_rows_into`] kernel is pinned against).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Elements staged per [`row_dot`] chunk.
const DOT_CHUNK: usize = 64;

crate::dispatch_kernel! {
    /// One f32 dot: stage the products chunk by chunk (element-wise,
    /// lane-parallel at the wide tiers), fold each chunk in ascending
    /// index order — exactly [`dot`]'s addition sequence, so every tier
    /// returns its bits.
    row_dot(query: &[f32], row: &[f32]) -> f32 {
        let mut buf = [0.0f32; DOT_CHUNK];
        let mut acc = 0.0f32;
        let mut i = 0;
        while i < query.len() {
            let c = DOT_CHUNK.min(query.len() - i);
            for ((b, &q), &w) in buf[..c]
                .iter_mut()
                .zip(&query[i..i + c])
                .zip(&row[i..i + c])
            {
                *b = q * w;
            }
            for &v in &buf[..c] {
                acc += v;
            }
            i += c;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent row length")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matmul_identity() {
        let id = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let m = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(id.matmul(&m), m);
        assert_eq!(m.matmul(&id), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[4.0], &[5.0], &[6.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (1, 1));
        assert_eq!(c.get(0, 0), 32.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().get(2, 1), 6.0);
    }

    #[test]
    fn gather_rows_selects_and_orders() {
        let m = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let g = m.gather_rows(&[3, 1]);
        assert_eq!(g.row(0), &[3.0]);
        assert_eq!(g.row(1), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_rows_rejects_oob() {
        let m = Matrix::zeros(2, 1);
        let _ = m.gather_rows(&[2]);
    }

    #[test]
    fn push_row_grows() {
        let mut m = Matrix::default();
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn elementwise_max_picks_larger() {
        let a = Matrix::from_rows(&[&[1.0, 5.0]]);
        let b = Matrix::from_rows(&[&[2.0, 3.0]]);
        let m = a.elementwise_max(&b);
        assert_eq!(m.row(0), &[2.0, 5.0]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = vec![5.0, 6.0];
        let got = m.matvec(&v);
        assert_eq!(got, vec![17.0, 39.0]);
    }

    #[test]
    fn vecmat_into_matches_vecmat() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[3.0, 4.0, -1.0]]);
        let x = [0.5, -2.0];
        let mut out = vec![9.0; 3];
        m.vecmat_into(&x, &mut out);
        assert_eq!(out, m.vecmat(&x));
    }

    #[test]
    fn copy_from_replaces_contents_and_shape() {
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut dst = Matrix::zeros(5, 7);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn scale_multiplies_all() {
        let mut m = Matrix::from_rows(&[&[1.0, -2.0]]);
        m.scale(2.0);
        assert_eq!(m.row(0), &[2.0, -4.0]);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
