//! Top-k selection and sorting helpers.
//!
//! Retrieval algorithms rank KV positions by an importance score and keep
//! the best `k`. These helpers centralize the tie-breaking convention used
//! throughout the workspace: **larger score wins; equal scores break toward
//! the smaller index**, which makes every algorithm deterministic and
//! directly comparable.

/// Returns the indices of the `k` largest values in `scores`,
/// ordered by descending score (ties toward the smaller index).
///
/// If `k >= scores.len()`, all indices are returned.
///
/// # Example
///
/// ```
/// use spec_tensor::topk::top_k_indices;
/// let idx = top_k_indices(&[0.1, 0.9, 0.5], 2);
/// assert_eq!(idx, vec![1, 2]);
/// ```
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let k = k.min(scores.len());
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    // Partial selection: select_nth puts the k largest in the prefix.
    if k < scores.len() {
        idx.select_nth_unstable_by(k, |&a, &b| cmp_desc(scores, a, b));
        idx.truncate(k);
    }
    idx.sort_unstable_by(|&a, &b| cmp_desc(scores, a, b));
    idx
}

/// Returns the indices of the `k` largest values, sorted ascending by
/// index rather than by score. This is the canonical form for KV position
/// sets (position order is what the GPU-resident cache layout uses).
pub fn top_k_positions(scores: &[f32], k: usize) -> Vec<usize> {
    let mut idx = top_k_indices(scores, k);
    idx.sort_unstable();
    idx
}

fn cmp_desc(scores: &[f32], a: usize, b: usize) -> std::cmp::Ordering {
    scores[b]
        .partial_cmp(&scores[a])
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.cmp(&b))
}

/// Full argsort, descending by score with ties toward smaller index.
pub fn argsort_desc(scores: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_unstable_by(|&a, &b| cmp_desc(scores, a, b));
    idx
}

/// Sum of the `k` largest values (the "attention mass" captured by an
/// oracle top-k selection; used for Fig. 5(a)-style accumulation curves).
///
/// Selects the `k` largest with `select_nth_unstable` alone — no
/// O(k log k) sort of the prefix, since only the sum is needed. The
/// prefix is summed in partition order, which is deterministic for a
/// given input but unspecified (it is *not* the descending-score order
/// a sorted implementation would sum in).
pub fn top_k_mass(scores: &[f32], k: usize) -> f32 {
    let k = k.min(scores.len());
    if k == 0 {
        return 0.0;
    }
    if k == scores.len() {
        return scores.iter().sum();
    }
    let mut vals = scores.to_vec();
    vals.select_nth_unstable_by(k, |a, b| {
        b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
    });
    vals[..k].iter().sum()
}

/// The attention mass captured by an arbitrary selection of positions.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn selection_mass(scores: &[f32], selection: &[usize]) -> f32 {
    selection.iter().map(|&i| scores[i]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_largest() {
        let idx = top_k_indices(&[1.0, 5.0, 3.0, 4.0], 2);
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(top_k_indices(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn k_exceeding_len_returns_all() {
        let idx = top_k_indices(&[2.0, 1.0], 10);
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn ties_break_toward_smaller_index() {
        let idx = top_k_indices(&[1.0, 1.0, 1.0], 2);
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn positions_are_sorted_ascending() {
        let pos = top_k_positions(&[0.0, 9.0, 0.0, 8.0, 7.0], 3);
        assert_eq!(pos, vec![1, 3, 4]);
    }

    #[test]
    fn argsort_desc_full_order() {
        let order = argsort_desc(&[0.5, 2.0, 1.0]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn top_k_mass_matches_manual_sum() {
        let scores = [0.1, 0.4, 0.2, 0.3];
        assert!((top_k_mass(&scores, 2) - 0.7).abs() < 1e-6);
    }

    #[test]
    fn selection_mass_counts_selected_only() {
        let scores = [0.25, 0.5, 0.25];
        assert!((selection_mass(&scores, &[0, 2]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn handles_nan_without_panicking() {
        let idx = top_k_indices(&[f32::NAN, 1.0, 2.0], 2);
        assert_eq!(idx.len(), 2);
    }
}
