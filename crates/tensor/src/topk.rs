//! Top-k selection and sorting helpers.
//!
//! Retrieval algorithms rank KV positions by an importance score and keep
//! the best `k`. These helpers centralize the tie-breaking convention used
//! throughout the workspace: **larger score wins; equal scores break toward
//! the smaller index**, which makes every algorithm deterministic and
//! directly comparable.

/// Returns the indices of the `k` largest values in `scores`,
/// ordered by descending score (ties toward the smaller index).
///
/// If `k >= scores.len()`, all indices are returned.
///
/// # Example
///
/// ```
/// use spec_tensor::topk::top_k_indices;
/// let idx = top_k_indices(&[0.1, 0.9, 0.5], 2);
/// assert_eq!(idx, vec![1, 2]);
/// ```
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    // One implementation of the selection contract: the allocating entry
    // point delegates to the scratch kernel.
    let mut rank = RankScratch::default();
    rank.top_k_desc(scores, k).to_vec()
}

/// Returns the indices of the `k` largest values, sorted ascending by
/// index rather than by score. This is the canonical form for KV position
/// sets (position order is what the GPU-resident cache layout uses).
pub fn top_k_positions(scores: &[f32], k: usize) -> Vec<usize> {
    let mut idx = top_k_indices(scores, k);
    idx.sort_unstable();
    idx
}

fn cmp_desc(scores: &[f32], a: usize, b: usize) -> std::cmp::Ordering {
    scores[b]
        .partial_cmp(&scores[a])
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.cmp(&b))
}

/// Full argsort, descending by score with ties toward smaller index.
///
/// This is the *full-sort* path — O(n log n) however small the wanted
/// prefix is. The selection hot path uses [`RankScratch::top_k_desc`]
/// (partial selection, O(n + k log k)) instead; because the comparator is
/// a strict total order for finite scores, the partial result equals the
/// first `k` entries of this argsort, which is what the equivalence
/// property tests pin.
pub fn argsort_desc(scores: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_unstable_by(|&a, &b| cmp_desc(scores, a, b));
    idx
}

// ---------------------------------------------------------------------------
// SelectScratch: the zero-allocation selection workspace
// ---------------------------------------------------------------------------

/// Reusable workspace for the KV-selection hot path.
///
/// Every `LayerSelector` runs per decode step, per layer, per KV head;
/// building that path from `BTreeSet` inserts and per-call `Vec`s made
/// allocation the dominant cost. `SelectScratch` bundles the three
/// arenas the rewritten path needs — pooled score buffers, a
/// partial-select index workspace, and a position bitset — so a decode
/// loop allocates once and every subsequent selection reuses warm,
/// cache-contiguous memory. The three fields are public and independent
/// precisely so callers can destructure and borrow them disjointly:
///
/// ```
/// use spec_tensor::topk::SelectScratch;
/// let mut scratch = SelectScratch::new();
/// let SelectScratch { scores, rank, marks } = &mut scratch;
/// scores.pool_group_max(0..2, |q, buf| {
///     buf.clear();
///     buf.extend([q as f32, 1.0 - q as f32]);
/// });
/// marks.reset(2);
/// for &i in rank.top_k_desc(&scores.pooled, 1) {
///     marks.mark(i);
/// }
/// assert_eq!(marks.collect_sorted(), vec![0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SelectScratch {
    /// Score arenas (pooled group-max scores plus a per-member temporary).
    pub scores: ScoreArena,
    /// Partial-selection index workspace.
    pub rank: RankScratch,
    /// Bitset over cache positions.
    pub marks: PosBitSet,
}

impl SelectScratch {
    /// An empty scratch. No memory is allocated until first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable score buffers for the GQA group-max reduction.
#[derive(Debug, Clone, Default)]
pub struct ScoreArena {
    /// The pooled (element-wise max over the group) scores of the last
    /// [`pool_group_max`](Self::pool_group_max) call.
    pub pooled: Vec<f32>,
    /// Per-member temporary.
    tmp: Vec<f32>,
}

impl ScoreArena {
    /// Fills [`pooled`](Self::pooled) with the element-wise maximum of the
    /// score vectors produced by `score_into` for each member of `members`
    /// (the GQA reduction of paper Fig. 5(c)), without allocating.
    ///
    /// `score_into(m, buf)` must clear `buf` and fill it with member `m`'s
    /// scores; every member must produce the same length. Members are
    /// folded in ascending order with the first as the base, which is the
    /// exact accumulation order of the reference `group_max_scores`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or the lengths disagree.
    pub fn pool_group_max(
        &mut self,
        members: std::ops::Range<usize>,
        mut score_into: impl FnMut(usize, &mut Vec<f32>),
    ) {
        assert!(!members.is_empty(), "need at least one group member");
        let first = members.start;
        score_into(first, &mut self.pooled);
        for m in members.skip(1) {
            score_into(m, &mut self.tmp);
            assert_eq!(self.tmp.len(), self.pooled.len(), "score length mismatch");
            for (a, b) in self.pooled.iter_mut().zip(&self.tmp) {
                *a = a.max(*b);
            }
        }
    }
}

/// Reusable index workspace for descending partial selection.
#[derive(Debug, Clone, Default)]
pub struct RankScratch {
    idx: Vec<usize>,
}

impl RankScratch {
    /// The indices of the `k` largest values in `scores`, ordered by
    /// descending score (ties toward the smaller index) — the same
    /// contract as [`top_k_indices`], but into a reused buffer.
    ///
    /// Built on `select_nth_unstable`: O(n) partition plus an
    /// O(k log k) sort of the prefix, instead of the O(n log n) full
    /// [`argsort_desc`]. For finite scores the comparator is a strict
    /// total order, so the returned slice equals `argsort_desc(scores)`
    /// truncated to `k`.
    pub fn top_k_desc(&mut self, scores: &[f32], k: usize) -> &[usize] {
        let k = k.min(scores.len());
        self.idx.clear();
        self.idx.extend(0..scores.len());
        if k < scores.len() {
            self.idx
                .select_nth_unstable_by(k, |&a, &b| cmp_desc(scores, a, b));
            self.idx.truncate(k);
        }
        self.idx.sort_unstable_by(|&a, &b| cmp_desc(scores, a, b));
        &self.idx[..k]
    }
}

/// A growable bitset over cache positions with a running popcount.
///
/// Replaces the `BTreeSet<usize>` the selectors used to accumulate
/// picked positions in: `mark` is O(1) with no allocation (after the
/// words buffer warms up), and [`collect_sorted`](Self::collect_sorted)
/// walks the words once to emit the ascending position list — the same
/// order `BTreeSet` iteration produced.
#[derive(Debug, Clone, Default)]
pub struct PosBitSet {
    words: Vec<u64>,
    len: usize,
    marked: usize,
}

impl PosBitSet {
    /// Clears all marks and sizes the set for positions `< len`.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
        self.marked = 0;
    }

    /// Marks `pos`; returns `true` if it was not already marked.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    #[inline]
    pub fn mark(&mut self, pos: usize) -> bool {
        assert!(pos < self.len, "position {pos} out of range {}", self.len);
        let (w, bit) = (pos / 64, 1u64 << (pos % 64));
        if self.words[w] & bit != 0 {
            false
        } else {
            self.words[w] |= bit;
            self.marked += 1;
            true
        }
    }

    /// Whether `pos` is marked (out-of-range positions are not).
    #[inline]
    pub fn contains(&self, pos: usize) -> bool {
        pos < self.len && self.words[pos / 64] & (1u64 << (pos % 64)) != 0
    }

    /// Number of marked positions.
    pub fn count(&self) -> usize {
        self.marked
    }

    /// The position capacity set by the last [`reset`](Self::reset).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no position can be marked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The marked positions, ascending, in an exact-size vector (the one
    /// unavoidable allocation: the selection the caller keeps).
    pub fn collect_sorted(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.marked);
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                out.push(wi * 64 + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
        out
    }
}

/// Sum of the `k` largest values (the "attention mass" captured by an
/// oracle top-k selection; used for Fig. 5(a)-style accumulation curves).
///
/// Selects the `k` largest with `select_nth_unstable` alone — no
/// O(k log k) sort of the prefix, since only the sum is needed. The
/// prefix is summed in partition order, which is deterministic for a
/// given input but unspecified (it is *not* the descending-score order
/// a sorted implementation would sum in).
pub fn top_k_mass(scores: &[f32], k: usize) -> f32 {
    let k = k.min(scores.len());
    if k == 0 {
        return 0.0;
    }
    if k == scores.len() {
        return scores.iter().sum();
    }
    let mut vals = scores.to_vec();
    vals.select_nth_unstable_by(k, |a, b| {
        b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
    });
    vals[..k].iter().sum()
}

/// The attention mass captured by an arbitrary selection of positions.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn selection_mass(scores: &[f32], selection: &[usize]) -> f32 {
    selection.iter().map(|&i| scores[i]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_largest() {
        let idx = top_k_indices(&[1.0, 5.0, 3.0, 4.0], 2);
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(top_k_indices(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn k_exceeding_len_returns_all() {
        let idx = top_k_indices(&[2.0, 1.0], 10);
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn ties_break_toward_smaller_index() {
        let idx = top_k_indices(&[1.0, 1.0, 1.0], 2);
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn positions_are_sorted_ascending() {
        let pos = top_k_positions(&[0.0, 9.0, 0.0, 8.0, 7.0], 3);
        assert_eq!(pos, vec![1, 3, 4]);
    }

    #[test]
    fn argsort_desc_full_order() {
        let order = argsort_desc(&[0.5, 2.0, 1.0]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn top_k_mass_matches_manual_sum() {
        let scores = [0.1, 0.4, 0.2, 0.3];
        assert!((top_k_mass(&scores, 2) - 0.7).abs() < 1e-6);
    }

    #[test]
    fn selection_mass_counts_selected_only() {
        let scores = [0.25, 0.5, 0.25];
        assert!((selection_mass(&scores, &[0, 2]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn handles_nan_without_panicking() {
        let idx = top_k_indices(&[f32::NAN, 1.0, 2.0], 2);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn rank_scratch_matches_argsort_prefix() {
        let scores = [0.3, -1.0, 0.3, 2.5, 0.0, 2.5, -0.7];
        let mut rank = RankScratch::default();
        let full = argsort_desc(&scores);
        for k in 0..=scores.len() + 2 {
            let got = rank.top_k_desc(&scores, k);
            assert_eq!(got, &full[..k.min(scores.len())], "k={k}");
        }
    }

    #[test]
    fn rank_scratch_reuses_buffer_across_calls() {
        let mut rank = RankScratch::default();
        assert_eq!(rank.top_k_desc(&[1.0, 3.0, 2.0], 2), &[1, 2]);
        assert_eq!(rank.top_k_desc(&[5.0, 4.0], 1), &[0]);
        assert_eq!(rank.top_k_desc(&[], 3), &[] as &[usize]);
    }

    #[test]
    fn bitset_marks_and_collects_ascending() {
        let mut bs = PosBitSet::default();
        bs.reset(200);
        for p in [130, 3, 64, 3, 199, 0] {
            bs.mark(p);
        }
        assert_eq!(bs.count(), 5);
        assert!(bs.contains(64) && !bs.contains(65));
        assert!(!bs.contains(900), "out of range is simply unmarked");
        assert_eq!(bs.collect_sorted(), vec![0, 3, 64, 130, 199]);
    }

    #[test]
    fn bitset_reset_clears_previous_marks() {
        let mut bs = PosBitSet::default();
        bs.reset(70);
        bs.mark(69);
        bs.reset(10);
        assert_eq!(bs.count(), 0);
        assert!(!bs.contains(69));
        assert!(bs.mark(9), "fresh mark after reset");
    }

    #[test]
    fn mark_reports_freshness() {
        let mut bs = PosBitSet::default();
        bs.reset(8);
        assert!(bs.mark(5));
        assert!(!bs.mark(5));
        assert_eq!(bs.count(), 1);
    }

    #[test]
    fn score_arena_pools_like_group_max() {
        let rows = [vec![1.0f32, 0.0, 3.0], vec![0.0, 2.0, -1.0]];
        let mut arena = ScoreArena::default();
        arena.pool_group_max(0..2, |m, buf| {
            buf.clear();
            buf.extend_from_slice(&rows[m]);
        });
        assert_eq!(arena.pooled, vec![1.0, 2.0, 3.0]);
        // Single-member groups are the identity.
        arena.pool_group_max(1..2, |m, buf| {
            buf.clear();
            buf.extend_from_slice(&rows[m]);
        });
        assert_eq!(arena.pooled, rows[1]);
    }
}
