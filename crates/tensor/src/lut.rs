//! LUT-quantized scoring: per-query lookup tables instead of arithmetic.
//!
//! pLUTo-style kernels (see PAPERS.md) for the quantized scoring hot
//! path. An int4 level can only take 16 values, so for a fixed query the
//! product `query[i] * level` can only take 16 values *per element*:
//! precompute them once into a [`QueryLut`] — a 16-entry table per query
//! element — and scoring a key degrades to nibble-indexed gathers plus
//! the same ascending-index reduction the scalar reference performs. No
//! sign-extension, no int→float conversion, no multiply per element.
//!
//! # Cost model
//!
//! Building the table costs `16 * dim` multiplies; scoring one key saves
//! roughly one unpack+convert+multiply per element. The table therefore
//! amortizes once a query scores on the order of **16 keys or more** —
//! and the retrieval selectors score thousands of keys per query
//! (ShadowKV scores the whole context), so the build cost vanishes.
//! [`QueryLut::scores_into`] is the batched entry point.
//!
//! For int8 the table would need 256 entries per element (`256 * dim`
//! floats — a dim-64 query's table is 64 KiB, the whole L1 cache), so
//! gathers thrash and arithmetic wins: the production int8 path is the
//! widened multiply kernel behind [`QuantVec::dot`], while
//! [`I8Lut`] keeps the true-LUT variant alive so the `kernels` bench can
//! keep reporting both sides of that trade.
//!
//! # Determinism contract
//!
//! Table entries are the *same* f32 products the reference computes
//! (`query[i] * level as f32` — f32 multiplication is deterministic), the
//! fold consumes them in the same ascending element order, and the
//! per-vector scale multiplies the folded sum exactly as the reference
//! does. Every kernel here is therefore bit-identical to
//! [`QuantVec::dot_reference`] at every dispatch tier, pinned by the
//! `simd_dispatch` property suite.

use crate::quant::{BitWidth, QuantVec};

/// The signed value each int4 nibble encoding decodes to (two's
/// complement, matching `QuantVec::level`'s sign extension).
const NIBBLE_VALUES: [f32; 16] = [
    0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, -8.0, -7.0, -6.0, -5.0, -4.0, -3.0, -2.0, -1.0,
];

/// Elements staged per dispatch chunk (even: int4 bytes never straddle).
const LUT_CHUNK: usize = 64;

/// Keys scored together by the blocked batch kernel. A single key's
/// fold is one sequential f32 addition chain — latency-bound at the
/// add's pipeline depth, no matter how wide the registers are. Eight
/// keys give eight *independent* chains (each still folding its own
/// elements in ascending order, so per-key bits never change), which
/// the out-of-order core and the wide tiers overlap freely.
const LUT_LANES: usize = 8;

crate::dispatch_kernel! {
    /// Gathers one key's staged products out of the query table — low
    /// then high nibble per packed byte — and folds them in ascending
    /// element order. Returns the unscaled sum; `len` is the element
    /// count (the last byte holds only a low nibble when odd).
    lut_gather_i4(table: &[f32], packed: &[u8], len: usize) -> f32 {
        let mut buf = [0.0f32; LUT_CHUNK];
        let mut acc = 0.0f32;
        let mut i = 0;
        while i < len {
            let c = LUT_CHUNK.min(len - i);
            let pairs = c / 2;
            for (j, &byte) in packed[i / 2..i / 2 + pairs].iter().enumerate() {
                let e = (i + 2 * j) * 16;
                buf[2 * j] = table[e + (byte & 0x0F) as usize];
                buf[2 * j + 1] = table[e + 16 + (byte >> 4) as usize];
            }
            if c % 2 == 1 {
                // Odd tail: the final element is the low nibble of the
                // last byte; its high nibble is padding and has no table
                // row, so it is never touched.
                let byte = packed[(i + c) / 2];
                buf[c - 1] = table[(i + c - 1) * 16 + (byte & 0x0F) as usize];
            }
            for &v in &buf[..c] {
                acc += v;
            }
            i += c;
        }
        acc
    }
}

crate::dispatch_kernel! {
    /// The blocked batch gather: scores [`LUT_LANES`] keys against one
    /// query table simultaneously. Lane `k` receives exactly the adds
    /// `lut_gather_i4` would give key `k` — low then high nibble per
    /// byte, ascending element order — so results are bit-identical to
    /// the single-key kernel; only the chains interleave across lanes.
    lut_gather_i4_block(
        table: &[f32],
        packed: &[&[u8]; LUT_LANES],
        len: usize,
        acc: &mut [f32; LUT_LANES],
    ) {
        for a in acc.iter_mut() {
            *a = 0.0;
        }
        let pairs = len / 2;
        for i in 0..pairs {
            let e = 2 * i * 16;
            for (a, p) in acc.iter_mut().zip(packed) {
                *a += table[e + (p[i] & 0x0F) as usize];
            }
            for (a, p) in acc.iter_mut().zip(packed) {
                *a += table[e + 16 + (p[i] >> 4) as usize];
            }
        }
        if len % 2 == 1 {
            let e = (len - 1) * 16;
            for (a, p) in acc.iter_mut().zip(packed) {
                *a += table[e + (p[pairs] & 0x0F) as usize];
            }
        }
    }
}

/// A per-query int4 lookup table: entry `v` of row `i` holds
/// `query[i] * decode(v)` for each of the 16 nibble encodings.
///
/// Build (or [`rebuild`](Self::rebuild), allocation-free once warm) per
/// query, then score every int4 [`QuantVec`] against it — see the module
/// docs for when the build cost amortizes.
#[derive(Debug, Clone, Default)]
pub struct QueryLut {
    /// `len x 16` row-major.
    table: Vec<f32>,
    len: usize,
}

impl QueryLut {
    /// Builds the table for `query`.
    pub fn build(query: &[f32]) -> Self {
        let mut lut = Self::default();
        lut.rebuild(query);
        lut
    }

    /// Rebuilds the table for a new query, reusing the allocation.
    pub fn rebuild(&mut self, query: &[f32]) {
        self.len = query.len();
        self.table.clear();
        self.table.reserve(query.len() * 16);
        for &q in query {
            self.table.extend(NIBBLE_VALUES.iter().map(|&lvl| q * lvl));
        }
    }

    /// Number of query elements the table covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when built over an empty query.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// LUT dot of one int4 key against the table's query: gathers
    /// instead of multiplies, bit-identical to
    /// `key.dot_reference(query)`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not int4 or its length differs from the
    /// table's.
    pub fn dot_i4(&self, key: &QuantVec) -> f32 {
        self.dot_i4_at(crate::dispatch::active_tier(), key)
    }

    /// Scores many int4 keys against the table's query into a reused
    /// buffer (cleared first). The dispatch tier is resolved once for
    /// the whole batch, and keys are scored [`LUT_LANES`] at a time so
    /// their (per-key sequential, mutually independent) fold chains
    /// overlap; this is the hot entry point for the retrieval selectors.
    ///
    /// # Panics
    ///
    /// Panics if any key is not int4 or disagrees on length.
    pub fn scores_into(&self, keys: &[QuantVec], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(keys.len());
        let tier = crate::dispatch::active_tier();
        let mut blocks = keys.chunks_exact(LUT_LANES);
        for block in &mut blocks {
            let packed: [&[u8]; LUT_LANES] = std::array::from_fn(|k| {
                let key = &block[k];
                assert_eq!(key.width(), BitWidth::Int4, "QueryLut scores int4 keys");
                assert_eq!(key.len(), self.len, "lut dot length mismatch");
                key.packed()
            });
            let mut acc = [0.0f32; LUT_LANES];
            lut_gather_i4_block::dispatch(tier, &self.table, &packed, self.len, &mut acc);
            out.extend(acc.iter().zip(block).map(|(a, key)| a * key.scale()));
        }
        for key in blocks.remainder() {
            out.push(self.dot_i4_at(tier, key));
        }
    }

    /// As [`scores_into`](Self::scores_into), allocating.
    pub fn scores(&self, keys: &[QuantVec]) -> Vec<f32> {
        let mut out = Vec::new();
        self.scores_into(keys, &mut out);
        out
    }

    fn dot_i4_at(&self, tier: crate::dispatch::SimdTier, key: &QuantVec) -> f32 {
        assert_eq!(key.width(), BitWidth::Int4, "QueryLut scores int4 keys");
        assert_eq!(key.len(), self.len, "lut dot length mismatch");
        lut_gather_i4::dispatch(tier, &self.table, key.packed(), self.len) * key.scale()
    }
}

/// The int8 true-LUT variant: a 256-entry table per query element.
///
/// Kept so the `kernels` bench can report the LUT-vs-arithmetic trade at
/// int8 honestly — the table is 1 KiB *per element*, so on cached CPUs
/// the widened multiply kernel behind [`QuantVec::dot`] wins and is what
/// production scoring uses. Bit-identical to the reference all the same.
#[derive(Debug, Clone, Default)]
pub struct I8Lut {
    /// `len x 256` row-major: `table[i * 256 + byte] = query[i] * (byte as i8)`.
    table: Vec<f32>,
    len: usize,
}

impl I8Lut {
    /// Builds the table for `query` (`256 * len` multiplies — see the
    /// type docs for why this rarely pays off).
    pub fn build(query: &[f32]) -> Self {
        let mut table = Vec::with_capacity(query.len() * 256);
        for &q in query {
            table.extend((0..=255u8).map(|b| q * (b as i8 as f32)));
        }
        Self {
            table,
            len: query.len(),
        }
    }

    /// Number of query elements the table covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when built over an empty query.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// LUT dot of one int8 key: one byte-indexed gather per element,
    /// folded in ascending order; bit-identical to
    /// `key.dot_reference(query)`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not int8 or its length differs from the
    /// table's.
    pub fn dot_i8(&self, key: &QuantVec) -> f32 {
        assert_eq!(key.width(), BitWidth::Int8, "I8Lut scores int8 keys");
        assert_eq!(key.len(), self.len, "lut dot length mismatch");
        let mut acc = 0.0f32;
        for (i, &byte) in key.packed().iter().enumerate() {
            acc += self.table[i * 256 + byte as usize];
        }
        acc * key.scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(n: usize, salt: u32) -> Vec<f32> {
        (0..n)
            .map(|i| {
                (((i as u32).wrapping_mul(2654435761).wrapping_add(salt) % 2000) as f32 / 1000.0)
                    - 1.0
            })
            .collect()
    }

    #[test]
    fn nibble_values_match_level_decoding() {
        // Encode every level the quantizer can produce and check the
        // table decodes its nibble exactly as `level()` does.
        for lvl in -8i8..=7 {
            let nib = (lvl as u8) & 0x0F;
            assert_eq!(NIBBLE_VALUES[nib as usize], lvl as f32, "nibble {nib}");
        }
    }

    #[test]
    fn lut_dot_matches_reference_bits_across_lengths() {
        for n in [0usize, 1, 2, 3, 7, 16, 63, 64, 65, 128, 129] {
            let xs = synth(n, 7);
            let query = synth(n, 1312);
            let key = QuantVec::quantize(&xs, BitWidth::Int4);
            let lut = QueryLut::build(&query);
            assert_eq!(
                lut.dot_i4(&key).to_bits(),
                key.dot_reference(&query).to_bits(),
                "len {n}"
            );
            let key8 = QuantVec::quantize(&xs, BitWidth::Int8);
            let lut8 = I8Lut::build(&query);
            assert_eq!(
                lut8.dot_i8(&key8).to_bits(),
                key8.dot_reference(&query).to_bits(),
                "i8 len {n}"
            );
        }
    }

    #[test]
    fn batched_scores_match_per_key_dots() {
        let query = synth(33, 4);
        let keys: Vec<QuantVec> = (0..40)
            .map(|k| QuantVec::quantize(&synth(33, 100 + k), BitWidth::Int4))
            .collect();
        let lut = QueryLut::build(&query);
        let mut out = vec![1.0; 3];
        lut.scores_into(&keys, &mut out);
        let want: Vec<f32> = keys.iter().map(|k| k.dot_reference(&query)).collect();
        assert_eq!(out.len(), want.len());
        for (a, b) in out.iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        assert_eq!(lut.scores(&keys), out);
    }

    #[test]
    fn rebuild_reuses_and_resizes() {
        let mut lut = QueryLut::default();
        assert!(lut.is_empty());
        lut.rebuild(&synth(16, 1));
        assert_eq!(lut.len(), 16);
        let key = QuantVec::quantize(&synth(5, 2), BitWidth::Int4);
        lut.rebuild(&synth(5, 3));
        assert_eq!(lut.len(), 5);
        let q = synth(5, 3);
        assert_eq!(lut.dot_i4(&key).to_bits(), key.dot_reference(&q).to_bits());
    }
}
