//! Cache-blocked, B-packed matrix-multiply kernel.
//!
//! Layout follows the classic GEBP decomposition: the `k` dimension is
//! processed in [`KC`]-deep panels; each panel of `B` is packed into
//! [`NR`]-column strips (contiguous per `k`, zero-padded at the right
//! edge) so the micro-kernel streams it linearly; rows of the output are
//! computed [`MR`] at a time with an `MR x NR` register-resident
//! accumulator tile, which cuts the `B`-panel traffic by `MR` and keeps
//! the output out of the inner loop entirely.
//!
//! # Determinism contract
//!
//! Every output element accumulates its `k` products in **ascending `k`
//! order** — panel by panel, then element by element inside the panel —
//! which is exactly the order of the reference triple loop
//! ([`Matrix::matmul_naive`]). Parallelism only partitions output rows
//! into disjoint contiguous bands (`spec_parallel::par_bands_mut`), and a
//! band's results do not depend on its boundaries, so the product is
//! bit-for-bit identical to the reference at any thread count, including
//! the serial path. The register tile runs on the workspace
//! [`dispatch`](crate::dispatch) registry (scalar/AVX2/AVX-512/NEON
//! variants of one body), so the same bits also hold at every SIMD tier
//! and under a forced `SPEC_SIMD=scalar`.

use crate::Matrix;

/// Rows per register tile.
const MR: usize = 4;
/// Columns per register tile (and per packed strip).
const NR: usize = 16;
/// Depth of a packed `B` panel.
const KC: usize = 256;

/// Below this many multiply-adds the reference loop wins (no packing,
/// no tile setup).
const BLOCKED_MIN_MULADDS: usize = 16 * 1024;
/// Below this many multiply-adds the scoped-spawn overhead of going
/// parallel outweighs the work.
const PAR_MIN_MULADDS: usize = 1 << 20;

/// Shape-dispatched product; see [`Matrix::matmul`] for the contract.
pub(crate) fn matmul_dispatch(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    if n == 1 {
        return matvec_fast(a, b);
    }
    if m == 1 {
        return vecmat_fast(a, b);
    }
    let muladds = m * n * k;
    if muladds < BLOCKED_MIN_MULADDS {
        return a.matmul_naive(b);
    }
    let mut out = Matrix::zeros(m, n);
    let parallel = muladds >= PAR_MIN_MULADDS && spec_parallel::max_threads() > 1;
    blocked(a, b, &mut out, parallel);
    out
}

/// The blocked product: per KC-deep panel, `B` is packed **once** into a
/// shared read-only buffer, then the output rows are tiled — serially or
/// fanned out over disjoint row bands (workers read the same packed
/// panel, so no packing work is duplicated).
fn blocked(a: &Matrix, b: &Matrix, out: &mut Matrix, parallel: bool) {
    let n = b.cols();
    let k_total = a.cols();
    let strips = n.div_ceil(NR);
    let mut panel = vec![0.0f32; KC * strips * NR];
    let mut kb = 0;
    while kb < k_total {
        let kc = KC.min(k_total - kb);
        pack_b(&mut panel, b, kb, kc);
        if parallel {
            let panel = &panel;
            spec_parallel::par_bands_mut(out.as_mut_slice(), n, |first_row, band| {
                tile_band(a, panel, kb, kc, first_row, band, n);
            });
        } else {
            tile_band(a, &panel, kb, kc, 0, out.as_mut_slice(), n);
        }
        kb += kc;
    }
}

/// `A * b` where `b` is a single column: one ascending-`k` dot product
/// per output row (the column of a `K x 1` matrix is already
/// contiguous).
fn matvec_fast(a: &Matrix, b: &Matrix) -> Matrix {
    let col = b.as_slice();
    let mut out = Matrix::zeros(a.rows(), 1);
    let run = |first: usize, band: &mut [f32]| {
        for (i, slot) in band.iter_mut().enumerate() {
            *slot = crate::matrix::dot(a.row(first + i), col);
        }
    };
    if a.rows() * a.cols() < PAR_MIN_MULADDS {
        run(0, out.as_mut_slice());
    } else {
        spec_parallel::par_bands_mut(out.as_mut_slice(), 1, run);
    }
    out
}

/// `a * B` where `a` is a single row: ascending-`k` axpy over the rows
/// of `B`. Workers own disjoint column segments; each segment still
/// walks `k` in ascending order.
fn vecmat_fast(a: &Matrix, b: &Matrix) -> Matrix {
    let x = a.row(0);
    let n = b.cols();
    let mut out = Matrix::zeros(1, n);
    let run = |first_chunk: usize, seg: &mut [f32]| {
        let first_col = first_chunk * NR;
        for (k, &xv) in x.iter().enumerate() {
            let brow = &b.as_slice()[k * n + first_col..k * n + first_col + seg.len()];
            for (o, &w) in seg.iter_mut().zip(brow) {
                *o += xv * w;
            }
        }
    };
    if a.cols() * n < PAR_MIN_MULADDS {
        run(0, out.as_mut_slice());
    } else {
        spec_parallel::par_bands_mut(out.as_mut_slice(), NR, run);
    }
    out
}

/// Tiles one contiguous band of output rows (starting at `first_row`)
/// against the packed `kc`-deep panel, MR x NR register tiles.
fn tile_band(
    a: &Matrix,
    panel: &[f32],
    kb: usize,
    kc: usize,
    first_row: usize,
    band: &mut [f32],
    n: usize,
) {
    let rows = band.len() / n;
    let strips = n.div_ceil(NR);
    let tier = crate::dispatch::active_tier();
    let mut i0 = 0;
    while i0 < rows {
        let mr = MR.min(rows - i0);
        for s in 0..strips {
            let j0 = s * NR;
            let nr = NR.min(n - j0);
            let strip = &panel[s * kc * NR..(s * kc + kc) * NR];
            if mr == MR && nr == NR {
                micro_full(
                    a,
                    first_row + i0,
                    kb,
                    kc,
                    strip,
                    &mut band[i0 * n..],
                    j0,
                    n,
                    tier,
                );
            } else {
                micro_edge(
                    a,
                    first_row + i0,
                    mr,
                    kb,
                    kc,
                    strip,
                    &mut band[i0 * n..],
                    j0,
                    nr,
                    n,
                );
            }
        }
        i0 += mr;
    }
}

/// Packs the `kc`-deep panel of `B` starting at row `kb` into NR-column
/// strips: strip-major, then `k`-major, zero-padded on the right edge.
fn pack_b(panel: &mut [f32], b: &Matrix, kb: usize, kc: usize) {
    let n = b.cols();
    let data = b.as_slice();
    for s in 0..n.div_ceil(NR) {
        let j0 = s * NR;
        let nr = NR.min(n - j0);
        let base = s * kc * NR;
        for k in 0..kc {
            let src = &data[(kb + k) * n + j0..(kb + k) * n + j0 + nr];
            let dst = &mut panel[base + k * NR..base + (k + 1) * NR];
            dst[..nr].copy_from_slice(src);
            dst[nr..].fill(0.0);
        }
    }
}

/// The full MR x NR register tile: `out[i0..i0+MR][j0..j0+NR] += A-rows *
/// packed strip`, `k` ascending.
///
/// `tier` (resolved once per band from the dispatch registry) selects a
/// variant of the *same* body compiled with that instruction set
/// enabled. Wider registers change only how many lanes one instruction
/// covers — each output element still receives the identical sequence of
/// `+= a*b` operations (no FMA contraction, no reassociation), so every
/// tier produces the same bits.
#[allow(clippy::too_many_arguments)]
fn micro_full(
    a: &Matrix,
    row0: usize,
    kb: usize,
    kc: usize,
    strip: &[f32],
    band: &mut [f32],
    j0: usize,
    n: usize,
    tier: crate::dispatch::SimdTier,
) {
    let a_rows: [&[f32]; MR] = std::array::from_fn(|r| &a.row(row0 + r)[kb..kb + kc]);
    micro_tile::dispatch(tier, &a_rows, kc, strip, band, j0, n);
}

crate::dispatch_kernel! {
    /// The register-tile body shared by every tier (see [`micro_full`]).
    micro_tile(a_rows: &[&[f32]; MR], kc: usize, strip: &[f32], band: &mut [f32], j0: usize, n: usize) {
        let mut acc = [[0.0f32; NR]; MR];
        for (r, acc_r) in acc.iter_mut().enumerate() {
            acc_r.copy_from_slice(&band[r * n + j0..r * n + j0 + NR]);
        }
        for k in 0..kc {
            let bk: &[f32; NR] = strip[k * NR..(k + 1) * NR].try_into().expect("strip row");
            let av: [f32; MR] = std::array::from_fn(|r| a_rows[r][k]);
            for (acc_r, &a) in acc.iter_mut().zip(&av) {
                for (o, &w) in acc_r.iter_mut().zip(bk) {
                    *o += a * w;
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            band[r * n + j0..r * n + j0 + NR].copy_from_slice(acc_r);
        }
    }
}

/// Edge tile (fewer than MR rows and/or NR columns); identical `k`
/// ordering to [`micro_full`].
#[allow(clippy::too_many_arguments)]
fn micro_edge(
    a: &Matrix,
    row0: usize,
    mr: usize,
    kb: usize,
    kc: usize,
    strip: &[f32],
    band: &mut [f32],
    j0: usize,
    nr: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, acc_r) in acc.iter_mut().enumerate().take(mr) {
        acc_r[..nr].copy_from_slice(&band[r * n + j0..r * n + j0 + nr]);
    }
    for k in 0..kc {
        let bk = &strip[k * NR..(k + 1) * NR];
        for (r, acc_r) in acc.iter_mut().enumerate().take(mr) {
            let av = a.row(row0 + r)[kb + k];
            for (o, &w) in acc_r.iter_mut().zip(bk) {
                *o += av * w;
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate().take(mr) {
        band[r * n + j0..r * n + j0 + nr].copy_from_slice(&acc_r[..nr]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    fn assert_bitwise_eq(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_matches_reference_across_shapes() {
        let mut rng = SimRng::seed(0x6E44);
        // Shapes straddling every dispatch boundary and tile edge.
        for (m, k, n) in [
            (1, 7, 9),
            (3, 64, 1),
            (5, 3, 33),
            (4, 256, 16),
            (7, 300, 47),
            (33, 128, 65),
            (64, 64, 64),
            (130, 257, 50),
        ] {
            let a = rng.normal_matrix(m, k, 1.0);
            let b = rng.normal_matrix(k, n, 1.0);
            assert_bitwise_eq(&a.matmul(&b), &a.matmul_naive(&b), &format!("{m}x{k}x{n}"));
        }
    }

    #[test]
    fn blocked_is_thread_count_invariant() {
        let mut rng = SimRng::seed(0x6E45);
        let a = rng.normal_matrix(37, 190, 1.0);
        let b = rng.normal_matrix(190, 53, 1.0);
        let reference = spec_parallel::with_threads(1, || a.matmul(&b));
        for t in [2usize, 3, 7] {
            let got = spec_parallel::with_threads(t, || a.matmul(&b));
            assert_bitwise_eq(&got, &reference, &format!("threads={t}"));
        }
    }

    #[test]
    fn forced_parallel_band_path_matches() {
        // Big enough to clear PAR_MIN_MULADDS with room to spare.
        let mut rng = SimRng::seed(0x6E46);
        let a = rng.normal_matrix(128, 96, 1.0);
        let b = rng.normal_matrix(96, 128, 1.0);
        let reference = a.matmul_naive(&b);
        let got = spec_parallel::with_threads(5, || a.matmul(&b));
        assert_bitwise_eq(&got, &reference, "forced parallel");
    }

    #[test]
    fn zero_k_dimension_gives_zeros() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (3, 4));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pack_b_zero_pads_the_edge_strip() {
        let b = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let mut panel = vec![f32::NAN; 2 * NR];
        pack_b(&mut panel, &b, 0, 2);
        assert_eq!(&panel[..3], &[1.0, 2.0, 3.0]);
        assert!(panel[3..NR].iter().all(|&v| v == 0.0));
        assert_eq!(&panel[NR..NR + 3], &[4.0, 5.0, 6.0]);
        assert!(panel[NR + 3..].iter().all(|&v| v == 0.0));
    }
}
