//! Deterministic random number generation for the simulation.
//!
//! Every stochastic component in the workspace (weight initialization,
//! synthetic workload generation, distillation noise) draws from a
//! [`SimRng`] seeded explicitly, so every experiment is reproducible
//! bit-for-bit from its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source.
///
/// # Example
///
/// ```
/// use spec_tensor::SimRng;
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator. Used to give each model layer
    /// or workload document its own stream without correlation.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s: u64 = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed(s)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1 = self.uniform().max(1e-12);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Fills a vector with normal samples scaled by `std`.
    pub fn normal_vec(&mut self, len: usize, std: f32) -> Vec<f32> {
        (0..len).map(|_| self.normal() * std).collect()
    }

    /// A random normal matrix with entries `N(0, std^2)`.
    pub fn normal_matrix(&mut self, rows: usize, cols: usize, std: f32) -> crate::Matrix {
        crate::Matrix::from_vec(rows, cols, self.normal_vec(rows * cols, std))
    }

    /// Chooses `k` distinct indices from `[0, n)` (Floyd's algorithm),
    /// returned sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        let mut chosen = std::collections::BTreeSet::new();
        for j in n - k..n {
            let t = self.below(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..10 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..16).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn forked_children_are_independent() {
        let mut root = SimRng::seed(5);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.uniform(), c2.uniform());
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = SimRng::seed(11);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SimRng::seed(3);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn sample_distinct_is_distinct_and_sorted() {
        let mut rng = SimRng::seed(9);
        let s = rng.sample_distinct(100, 20);
        assert_eq!(s.len(), 20);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut rng = SimRng::seed(9);
        let s = rng.sample_distinct(5, 5);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed(13);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
