//! Neural-network kernels: softmax, RMSNorm, SiLU, rotary embeddings.

use crate::Matrix;

/// Numerically stable softmax over a single slice, in place.
///
/// An all-`-inf` row becomes the uniform distribution, which matches how a
/// fully masked attention row is conventionally handled.
pub fn softmax_inplace(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        let u = 1.0 / xs.len() as f32;
        xs.iter_mut().for_each(|v| *v = u);
        return;
    }
    let mut sum = 0.0;
    for v in xs.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in xs.iter_mut() {
        *v /= sum;
    }
}

/// Below this many elements the scoped-spawn overhead of parallel
/// row dispatch outweighs the softmax work.
const PAR_SOFTMAX_MIN: usize = 1 << 14;

/// Softmax applied independently to each row of a matrix.
///
/// Large matrices are processed in parallel over disjoint row bands
/// (`spec_parallel`); every row's arithmetic is unchanged, so the result
/// is bit-for-bit identical to the serial loop at any thread count.
///
/// # Example
///
/// ```
/// use spec_tensor::{Matrix, ops};
/// let m = Matrix::from_rows(&[&[0.0, 0.0]]);
/// let s = ops::softmax_rows(&m);
/// assert!((s.get(0, 0) - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    let cols = out.cols();
    if cols == 0 {
        return out;
    }
    if out.len() >= PAR_SOFTMAX_MIN && spec_parallel::max_threads() > 1 {
        spec_parallel::par_chunks_mut(out.as_mut_slice(), cols, |_, row| softmax_inplace(row));
    } else {
        for r in 0..out.rows() {
            softmax_inplace(out.row_mut(r));
        }
    }
    out
}

/// Root-mean-square layer normalization (no bias), as used by Llama-family
/// models. `eps` guards against division by zero.
pub fn rmsnorm(xs: &[f32], weight: &[f32], eps: f32) -> Vec<f32> {
    let mut out = Vec::with_capacity(xs.len());
    rmsnorm_into(&mut out, xs, weight, eps);
    out
}

/// [`rmsnorm`] into a caller-owned buffer, so per-token forward passes
/// (one rmsnorm per attention block, FFN block and final norm) reuse one
/// allocation instead of growing the heap every call.
///
/// `out` is cleared and refilled; its capacity is reused.
///
/// # Panics
///
/// Panics if `xs.len() != weight.len()`.
pub fn rmsnorm_into(out: &mut Vec<f32>, xs: &[f32], weight: &[f32], eps: f32) {
    assert_eq!(xs.len(), weight.len(), "rmsnorm length mismatch");
    let ms = xs.iter().map(|v| v * v).sum::<f32>() / xs.len().max(1) as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    out.clear();
    out.extend(xs.iter().zip(weight).map(|(x, w)| x * inv * w));
}

/// SiLU (sigmoid-weighted linear unit) activation.
#[inline]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Applies SiLU element-wise, in place.
pub fn silu_inplace(xs: &mut [f32]) {
    for v in xs.iter_mut() {
        *v = silu(*v);
    }
}

/// Rotary position embedding applied to one head vector at `pos`.
///
/// `theta_base` is the RoPE base (10 000 for Llama-family models);
/// `scale` is the YaRN-style context-extension factor applied to the
/// position (a scale of `s` lets a model trained to length `T` address
/// positions up to `s*T`). `scale = 1.0` is vanilla RoPE.
///
/// # Panics
///
/// Panics if the vector length is odd.
pub fn rope_inplace(xs: &mut [f32], pos: usize, theta_base: f32, scale: f32) {
    assert!(
        xs.len().is_multiple_of(2),
        "rope requires an even head dimension"
    );
    let half = xs.len() / 2;
    let p = pos as f32 / scale;
    for i in 0..half {
        let freq = theta_base.powf(-2.0 * i as f32 / xs.len() as f32);
        let angle = p * freq;
        let (sin, cos) = angle.sin_cos();
        let (a, b) = (xs[2 * i], xs[2 * i + 1]);
        xs[2 * i] = a * cos - b * sin;
        xs[2 * i + 1] = a * sin + b * cos;
    }
}

/// Causal mask applied to a score row: positions greater than `pos` are set
/// to `-inf` so softmax assigns them zero probability.
pub fn causal_mask_row(scores: &mut [f32], pos: usize) {
    for (i, v) in scores.iter_mut().enumerate() {
        if i > pos {
            *v = f32::NEG_INFINITY;
        }
    }
}

/// Scaled dot-product attention weights for a single query against a key
/// matrix (`keys` is `len x dim`): `softmax(q K^T / sqrt(dim))`.
///
/// # Panics
///
/// Panics if `query.len() != keys.cols()`.
pub fn attention_weights(query: &[f32], keys: &Matrix) -> Vec<f32> {
    assert_eq!(query.len(), keys.cols(), "query/key dim mismatch");
    let scale = 1.0 / (query.len() as f32).sqrt();
    let mut scores: Vec<f32> = keys
        .iter_rows()
        .map(|k| crate::matrix::dot(query, k) * scale)
        .collect();
    softmax_inplace(&mut scores);
    scores
}

/// Weighted sum of value rows: `sum_i w[i] * values.row(i)`.
///
/// # Panics
///
/// Panics if `weights.len() != values.rows()`.
pub fn weighted_sum(weights: &[f32], values: &Matrix) -> Vec<f32> {
    assert_eq!(weights.len(), values.rows(), "weights/values mismatch");
    let mut out = vec![0.0; values.cols()];
    for (w, row) in weights.iter().zip(values.iter_rows()) {
        if *w == 0.0 {
            continue;
        }
        for (o, v) in out.iter_mut().zip(row) {
            *o += w * v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut xs = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = vec![1.0, 2.0, 3.0];
        let mut b = vec![101.0, 102.0, 103.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_all_masked_row() {
        let mut xs = vec![f32::NEG_INFINITY; 4];
        softmax_inplace(&mut xs);
        assert!(xs.iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut xs: Vec<f32> = vec![];
        softmax_inplace(&mut xs);
        assert!(xs.is_empty());
    }

    #[test]
    fn rmsnorm_unit_weight_normalizes() {
        let xs = vec![3.0, 4.0];
        let w = vec![1.0, 1.0];
        let out = rmsnorm(&xs, &w, 1e-6);
        let rms = (out.iter().map(|v| v * v).sum::<f32>() / 2.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-3);
    }

    #[test]
    fn silu_zero_is_zero() {
        assert_eq!(silu(0.0), 0.0);
        assert!(silu(10.0) > 9.9);
        assert!(silu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn rope_preserves_norm() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0];
        let norm_before: f32 = xs.iter().map(|v| v * v).sum();
        rope_inplace(&mut xs, 17, 10_000.0, 1.0);
        let norm_after: f32 = xs.iter().map(|v| v * v).sum();
        assert!((norm_before - norm_after).abs() < 1e-3);
    }

    #[test]
    fn rope_position_zero_is_identity() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0];
        let orig = xs.clone();
        rope_inplace(&mut xs, 0, 10_000.0, 1.0);
        for (a, b) in xs.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rope_scale_stretches_positions() {
        // With scale s, position s*p should equal unscaled position p.
        let mut a = vec![1.0, 0.5, -0.25, 2.0];
        let mut b = a.clone();
        rope_inplace(&mut a, 8, 10_000.0, 4.0);
        rope_inplace(&mut b, 2, 10_000.0, 1.0);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn causal_mask_zeroes_future() {
        let mut scores = vec![1.0; 5];
        causal_mask_row(&mut scores, 2);
        softmax_inplace(&mut scores);
        assert_eq!(scores[3], 0.0);
        assert_eq!(scores[4], 0.0);
        assert!((scores[..3].iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn attention_weights_prefer_aligned_key() {
        let keys = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[-1.0, 0.0]]);
        let w = attention_weights(&[1.0, 0.0], &keys);
        assert!(w[0] > w[1] && w[1] > w[2]);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_sum_selects_row_with_unit_weight() {
        let values = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let out = weighted_sum(&[0.0, 1.0], &values);
        assert_eq!(out, vec![3.0, 4.0]);
    }
}
