//! Statistics over selections and score vectors.
//!
//! These are the measurement tools behind the paper's similarity analyses:
//! overlap rate between adjacent-step selections (Fig. 6b), hit rate of
//! DLM-selected tokens against teacher-important tokens (Fig. 5a), and the
//! usual summary statistics.

use std::collections::HashSet;

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population variance; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// Pearson correlation coefficient. Returns `0.0` when either input is
/// constant (correlation undefined).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f32], ys: &[f32]) -> f32 {
    assert_eq!(xs.len(), ys.len(), "pearson length mismatch");
    let (mx, my) = (mean(xs), mean(ys));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// `|a ∩ b| / |a|`: the fraction of `a` that also appears in `b`.
///
/// This is the paper's **hit rate** (Fig. 5a): the fraction of
/// teacher-important tokens that the retrieval head also selects.
/// Returns `1.0` when `a` is empty (nothing to hit).
pub fn hit_rate(a: &[usize], b: &[usize]) -> f32 {
    if a.is_empty() {
        return 1.0;
    }
    let set: HashSet<usize> = b.iter().copied().collect();
    a.iter().filter(|i| set.contains(i)).count() as f32 / a.len() as f32
}

/// Jaccard index `|a ∩ b| / |a ∪ b|`. Returns `1.0` when both are empty.
pub fn jaccard(a: &[usize], b: &[usize]) -> f32 {
    let sa: HashSet<usize> = a.iter().copied().collect();
    let sb: HashSet<usize> = b.iter().copied().collect();
    let union = sa.union(&sb).count();
    if union == 0 {
        return 1.0;
    }
    sa.intersection(&sb).count() as f32 / union as f32
}

/// Overlap rate between two equal-budget selections:
/// `|a ∩ b| / |a|` with `|a| == |b|` (Fig. 6b's adjacent-generation
/// overlap). Falls back to [`hit_rate`] semantics when budgets differ.
pub fn overlap_rate(a: &[usize], b: &[usize]) -> f32 {
    hit_rate(a, b)
}

/// KL divergence `D(p || q)` between two distributions given as
/// (not necessarily normalized) non-negative weight vectors.
/// Zero entries in `p` contribute nothing; zero entries in `q` where
/// `p > 0` are smoothed by `eps` to keep the result finite.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn kl_divergence(p: &[f32], q: &[f32], eps: f32) -> f32 {
    assert_eq!(p.len(), q.len(), "kl length mismatch");
    let sp: f32 = p.iter().sum();
    let sq: f32 = q.iter().sum();
    if sp <= 0.0 || sq <= 0.0 {
        return 0.0;
    }
    let mut kl = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        let pn = pi / sp;
        if pn <= 0.0 {
            continue;
        }
        let qn = (qi / sq).max(eps);
        kl += pn * (pn / qn).ln();
    }
    kl.max(0.0)
}

/// Nearest-rank percentile of an unsorted sample, `p` in `[0, 1]`.
/// `0.0` for an empty slice. The rank is `⌊n·p⌋` clamped to the last
/// element, matching the serving reports' historical p95 definition so
/// single-node and cluster latency numbers stay comparable.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    rank_sorted(&sorted, p)
}

/// Nearest-rank lookup in an ascending-sorted non-empty sample — the one
/// definition [`percentile`] and [`PercentileSummary`] share.
fn rank_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0, 1]");
    sorted[((sorted.len() as f64 * p) as usize).min(sorted.len() - 1)]
}

/// The standard latency summary (mean + p50/p95/p99) every serving
/// report carries, for TTFT, TBT and end-to-end latency alike.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PercentileSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
}

impl PercentileSummary {
    /// Summarizes an unsorted sample; all zeros for an empty slice.
    pub fn from_samples(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self::default();
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Self {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: rank_sorted(&sorted, 0.50),
            p95: rank_sorted(&sorted, 0.95),
            p99: rank_sorted(&sorted, 0.99),
        }
    }
}

/// Geometric mean of positive values; `0.0` if any value is non-positive
/// or the slice is empty. Used to aggregate normalized scores.
pub fn geometric_mean(xs: &[f32]) -> f32 {
    if xs.is_empty() || xs.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|v| v.ln()).sum::<f32>() / xs.len() as f32).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-6);
        assert!((variance(&xs) - 1.25).abs() < 1e-6);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn pearson_perfect_positive() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn hit_rate_counts_intersection() {
        assert!((hit_rate(&[1, 2, 3, 4], &[3, 4, 5, 6]) - 0.5).abs() < 1e-6);
        assert_eq!(hit_rate(&[], &[1]), 1.0);
        assert_eq!(hit_rate(&[1], &[]), 0.0);
    }

    #[test]
    fn jaccard_extremes() {
        assert_eq!(jaccard(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(jaccard(&[1], &[2]), 0.0);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p, 1e-9) < 1e-6);
    }

    #[test]
    fn kl_positive_for_different() {
        let p = [0.9, 0.1];
        let q = [0.1, 0.9];
        assert!(kl_divergence(&p, &q, 1e-9) > 0.5);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 0.95), 5.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_matches_legacy_p95_indexing() {
        // The scheduler's historical p95: sorted[min(floor(n*0.95), n-1)].
        let xs: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let idx = ((xs.len() as f64 * 0.95) as usize).min(xs.len() - 1);
        assert_eq!(percentile(&xs, 0.95), xs[idx]);
    }

    #[test]
    fn percentile_summary_orders_quantiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = PercentileSummary::from_samples(&xs);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        assert_eq!(s.p99, 100.0);
        assert_eq!(
            PercentileSummary::from_samples(&[]),
            PercentileSummary::default()
        );
    }

    #[test]
    fn geometric_mean_known() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-5);
        assert_eq!(geometric_mean(&[1.0, 0.0]), 0.0);
    }
}
