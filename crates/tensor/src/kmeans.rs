//! K-means clustering over key vectors.
//!
//! This is the preprocessing substrate for the ClusterKV baseline
//! (Liu et al., 2024): keys are clustered in semantic space and retrieval
//! scores are computed against cluster centroids instead of individual keys.

use crate::{Matrix, SimRng};

/// The result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// `k x dim` centroid matrix.
    pub centroids: Matrix,
    /// For each input row, the index of its centroid.
    pub assignments: Vec<usize>,
    /// Members of each cluster, by input row index.
    pub clusters: Vec<Vec<usize>>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f32,
    /// Iterations executed before convergence or cut-off.
    pub iterations: usize,
}

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters. Clamped to the number of points.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Converged when inertia improves by less than this fraction.
    pub tol: f32,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 8,
            max_iters: 25,
            tol: 1e-4,
        }
    }
}

/// Lloyd's algorithm with k-means++ style seeding (greedy farthest-point).
///
/// # Panics
///
/// Panics if `points` is empty or `config.k == 0`.
pub fn kmeans(points: &Matrix, config: KMeansConfig, rng: &mut SimRng) -> KMeans {
    assert!(points.rows() > 0, "kmeans requires at least one point");
    assert!(config.k > 0, "kmeans requires k > 0");
    let n = points.rows();
    let dim = points.cols();
    let k = config.k.min(n);

    // k-means++ seeding: first centroid random, then greedily farthest.
    let mut centroid_rows: Vec<usize> = vec![rng.below(n)];
    let mut dist2: Vec<f32> = (0..n)
        .map(|i| sq_dist(points.row(i), points.row(centroid_rows[0])))
        .collect();
    while centroid_rows.len() < k {
        let next = dist2
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        centroid_rows.push(next);
        for (i, d2) in dist2.iter_mut().enumerate() {
            let d = sq_dist(points.row(i), points.row(next));
            if d < *d2 {
                *d2 = d;
            }
        }
    }
    let mut centroids = points.gather_rows(&centroid_rows);

    let mut assignments = vec![0usize; n];
    let mut inertia = f32::INFINITY;
    let mut iterations = 0;
    for it in 0..config.max_iters {
        iterations = it + 1;
        // Assignment step: each point's nearest centroid is independent,
        // so it fans out over `spec_parallel` (disjoint index bands); the
        // inertia is then folded serially in point order, keeping the sum
        // bit-for-bit identical at any thread count.
        let assigned = assign_all(points, &centroids);
        let mut new_inertia = 0.0;
        for (slot, &(best, d)) in assignments.iter_mut().zip(&assigned) {
            *slot = best;
            new_inertia += d;
        }
        // Update step.
        let mut sums = Matrix::zeros(k, dim);
        let mut counts = vec![0usize; k];
        for (i, &c) in assignments.iter().enumerate() {
            counts[c] += 1;
            let row = points.row(i);
            let dst = sums.row_mut(c);
            for (d, v) in dst.iter_mut().zip(row) {
                *d += v;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Re-seed an empty cluster at the farthest point.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        sq_dist(points.row(a), centroids.row(assignments[a]))
                            .partial_cmp(&sq_dist(points.row(b), centroids.row(assignments[b])))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap_or(0);
                centroids.row_mut(c).copy_from_slice(points.row(far));
                continue;
            }
            let inv = 1.0 / count as f32;
            let src = sums.row(c).to_vec();
            for (d, v) in centroids.row_mut(c).iter_mut().zip(src) {
                *d = v * inv;
            }
        }
        let improved = inertia - new_inertia;
        inertia = new_inertia;
        if improved >= 0.0 && improved <= config.tol * inertia.max(1e-12) {
            break;
        }
    }

    let mut clusters = vec![Vec::new(); k];
    for (i, &c) in assignments.iter().enumerate() {
        clusters[c].push(i);
    }
    KMeans {
        centroids,
        assignments,
        clusters,
        inertia,
        iterations,
    }
}

/// Below this many distance muladds per assignment sweep, the serial
/// loop beats the scoped-spawn overhead.
const PAR_ASSIGN_MIN: usize = 1 << 17;

/// The nearest centroid of every row of `points`, in row order
/// (parallel over disjoint row bands for large sweeps; identical to the
/// serial per-row loop at any thread count).
pub fn assign_all(points: &Matrix, centroids: &Matrix) -> Vec<(usize, f32)> {
    let work = points.rows() * points.cols() * centroids.rows();
    if work < PAR_ASSIGN_MIN || spec_parallel::max_threads() == 1 {
        return (0..points.rows())
            .map(|i| nearest_centroid(points.row(i), centroids))
            .collect();
    }
    spec_parallel::par_map_range(points.rows(), |i| {
        nearest_centroid(points.row(i), centroids)
    })
}

/// Index of the nearest centroid and its squared distance.
pub fn nearest_centroid(point: &[f32], centroids: &Matrix) -> (usize, f32) {
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for (c, row) in centroids.iter_rows().enumerate() {
        let d = sq_dist(point, row);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

#[inline]
fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(rng: &mut SimRng, per: usize) -> Matrix {
        let mut m = Matrix::default();
        for _ in 0..per {
            m.push_row(&[5.0 + rng.normal() * 0.1, 5.0 + rng.normal() * 0.1]);
        }
        for _ in 0..per {
            m.push_row(&[-5.0 + rng.normal() * 0.1, -5.0 + rng.normal() * 0.1]);
        }
        m
    }

    #[test]
    fn separates_two_blobs() {
        let mut rng = SimRng::seed(1);
        let pts = two_blobs(&mut rng, 20);
        let km = kmeans(
            &pts,
            KMeansConfig {
                k: 2,
                ..Default::default()
            },
            &mut rng,
        );
        // All points in the first blob share a cluster; likewise the second.
        let first = km.assignments[0];
        assert!(km.assignments[..20].iter().all(|&a| a == first));
        let second = km.assignments[20];
        assert!(km.assignments[20..].iter().all(|&a| a == second));
        assert_ne!(first, second);
    }

    #[test]
    fn assignments_cover_all_points() {
        let mut rng = SimRng::seed(2);
        let pts = rng.normal_matrix(50, 4, 1.0);
        let km = kmeans(
            &pts,
            KMeansConfig {
                k: 5,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(km.assignments.len(), 50);
        let total: usize = km.clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let mut rng = SimRng::seed(3);
        let pts = rng.normal_matrix(3, 2, 1.0);
        let km = kmeans(
            &pts,
            KMeansConfig {
                k: 10,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(km.centroids.rows(), 3);
    }

    #[test]
    fn inertia_zero_for_duplicate_points() {
        let mut rng = SimRng::seed(4);
        let pts = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]);
        let km = kmeans(
            &pts,
            KMeansConfig {
                k: 1,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(km.inertia < 1e-9);
    }

    #[test]
    fn nearest_centroid_picks_closest() {
        let cents = Matrix::from_rows(&[&[0.0, 0.0], &[10.0, 10.0]]);
        let (c, d) = nearest_centroid(&[9.0, 9.0], &cents);
        assert_eq!(c, 1);
        assert!((d - 2.0).abs() < 1e-6);
    }
}
