//! Block quantization of key vectors.
//!
//! The ShadowKV baseline (Sun et al., 2024) quantizes the key cache to a
//! low bit width and scores queries against the quantized keys. This module
//! provides symmetric per-vector int8 and int4 quantization with an
//! absmax scale, plus a fused quantized dot product so retrieval can score
//! without materializing the dequantized vector.
//!
//! [`QuantVec::dot`] runs on the [`dispatch`](crate::dispatch) registry:
//! the int4 path unpacks a byte (two levels) at a time — no branchy
//! per-element bit-extract even on the scalar tier — and both widths
//! stage one chunk of products in a buffer (the element-wise phase the
//! wide tiers vectorize) before a sequential ascending-index reduction
//! consumes it, which is exactly the addition order of the original
//! per-element loop retained as [`QuantVec::dot_reference`]. Every tier
//! is bit-identical to that reference. For scoring *many* int4 vectors
//! against one query, see [`lut`](crate::lut): a per-query lookup table
//! replaces the multiplies with gathers.

use serde::{Deserialize, Serialize};

/// Elements staged per dispatch chunk. Even, so int4 bytes never
/// straddle a chunk boundary; 64 f32 products fit comfortably in
/// registers + L1 at every tier.
const QUANT_CHUNK: usize = 64;

/// Keys scored together by [`dot_i8_batch_into`]. One key's fold is a
/// single sequential addition chain (latency-bound); eight keys give
/// eight independent chains the core overlaps, without changing any
/// key's own addition order.
const QUANT_LANES: usize = 8;

crate::dispatch_kernel! {
    /// Fused int8 dot: stage `query[i] * level[i]` products chunk by
    /// chunk (element-wise, lane-parallel at the wide tiers), then fold
    /// each chunk in ascending index order — the reference's exact
    /// addition sequence. Returns the unscaled sum.
    quant_dot_i8(query: &[f32], packed: &[u8]) -> f32 {
        let mut buf = [0.0f32; QUANT_CHUNK];
        let mut acc = 0.0f32;
        let mut i = 0;
        while i < query.len() {
            let c = QUANT_CHUNK.min(query.len() - i);
            for ((b, &q), &l) in buf[..c]
                .iter_mut()
                .zip(&query[i..i + c])
                .zip(&packed[i..i + c])
            {
                *b = q * (l as i8 as f32);
            }
            for &v in &buf[..c] {
                acc += v;
            }
            i += c;
        }
        acc
    }
}

crate::dispatch_kernel! {
    /// Fused int4 dot: unpack one byte — two sign-extended nibbles — per
    /// step (chunks start even, so bytes never straddle), multiply the
    /// staged levels by the query element-wise, then fold in ascending
    /// index order. Identical products, identical addition order, so
    /// bit-identical to the per-element reference. Returns the unscaled
    /// sum.
    quant_dot_i4(query: &[f32], packed: &[u8]) -> f32 {
        let mut buf = [0.0f32; QUANT_CHUNK];
        let mut acc = 0.0f32;
        let mut i = 0;
        while i < query.len() {
            let c = QUANT_CHUNK.min(query.len() - i);
            for (j, &byte) in packed[i / 2..(i + c).div_ceil(2)].iter().enumerate() {
                // Low nibble: shift into the sign position, arithmetic
                // shift back; high nibble: arithmetic shift alone. Both
                // match `level()`'s sign-extension bit for bit. An odd
                // tail writes one extra staged level past `c`; the
                // `..c` slices below never read it.
                buf[2 * j] = (((byte << 4) as i8) >> 4) as f32;
                buf[2 * j + 1] = ((byte as i8) >> 4) as f32;
            }
            for (b, &q) in buf[..c].iter_mut().zip(&query[i..i + c]) {
                *b *= q;
            }
            for &v in &buf[..c] {
                acc += v;
            }
            i += c;
        }
        acc
    }
}

crate::dispatch_kernel! {
    /// The blocked int8 batch dot: widened multiply-accumulate for
    /// [`QUANT_LANES`] keys against one query simultaneously. Lane `k`
    /// receives exactly the reference's adds for key `k` — `query[i] *
    /// level[i]` in ascending element order — so results are
    /// bit-identical to [`QuantVec::dot_reference`]; only the chains
    /// interleave across lanes. Accumulators are unscaled.
    quant_dot_i8_block(
        query: &[f32],
        packed: &[&[u8]; QUANT_LANES],
        acc: &mut [f32; QUANT_LANES],
    ) {
        for a in acc.iter_mut() {
            *a = 0.0;
        }
        for (i, &q) in query.iter().enumerate() {
            for (a, p) in acc.iter_mut().zip(packed) {
                *a += q * (p[i] as i8 as f32);
            }
        }
    }
}

/// Scores one query against many int8 keys into a reused buffer
/// (cleared first): the production side of the int8 LUT-vs-arithmetic
/// trade (see [`lut`](crate::lut) for why the true 256-entry table
/// loses at cache-sized dims). The dispatch tier is resolved once, keys
/// run [`QUANT_LANES`] at a time, and each result is bit-identical to
/// `key.dot_reference(query)`.
///
/// # Panics
///
/// Panics if any key is not int8 or disagrees with `query` on length.
pub fn dot_i8_batch_into(query: &[f32], keys: &[QuantVec], out: &mut Vec<f32>) {
    out.clear();
    out.reserve(keys.len());
    let tier = crate::dispatch::active_tier();
    let mut blocks = keys.chunks_exact(QUANT_LANES);
    for block in &mut blocks {
        let packed: [&[u8]; QUANT_LANES] = std::array::from_fn(|k| {
            let key = &block[k];
            assert_eq!(key.width(), BitWidth::Int8, "dot_i8_batch_into wants int8");
            assert_eq!(key.len(), query.len(), "quant dot length mismatch");
            key.packed()
        });
        let mut acc = [0.0f32; QUANT_LANES];
        quant_dot_i8_block::dispatch(tier, query, &packed, &mut acc);
        out.extend(acc.iter().zip(block).map(|(a, key)| a * key.scale()));
    }
    for key in blocks.remainder() {
        assert_eq!(key.width(), BitWidth::Int8, "dot_i8_batch_into wants int8");
        assert_eq!(key.len(), query.len(), "quant dot length mismatch");
        out.push(quant_dot_i8::dispatch(tier, query, key.packed()) * key.scale());
    }
}

/// Bit width of a quantized vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitWidth {
    /// Signed 8-bit, range [-127, 127].
    Int8,
    /// Signed 4-bit, range [-7, 7] packed two per byte.
    Int4,
}

impl BitWidth {
    /// Maximum representable magnitude.
    pub fn max_level(self) -> f32 {
        match self {
            BitWidth::Int8 => 127.0,
            BitWidth::Int4 => 7.0,
        }
    }

    /// Bytes required to store `len` quantized elements (excluding scale).
    pub fn storage_bytes(self, len: usize) -> usize {
        match self {
            BitWidth::Int8 => len,
            BitWidth::Int4 => len.div_ceil(2),
        }
    }
}

/// A symmetrically quantized vector: `value[i] ≈ scale * level[i]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantVec {
    width: BitWidth,
    scale: f32,
    len: usize,
    packed: Vec<u8>,
}

impl QuantVec {
    /// Quantizes `xs` at the given bit width with an absmax scale.
    pub fn quantize(xs: &[f32], width: BitWidth) -> Self {
        let absmax = xs.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let scale = if absmax == 0.0 {
            1.0
        } else {
            absmax / width.max_level()
        };
        let inv = 1.0 / scale;
        let levels: Vec<i8> = xs
            .iter()
            .map(|&v| {
                let q = (v * inv).round();
                q.clamp(-width.max_level(), width.max_level()) as i8
            })
            .collect();
        let packed = match width {
            BitWidth::Int8 => levels.iter().map(|&l| l as u8).collect(),
            BitWidth::Int4 => {
                let mut out = Vec::with_capacity(levels.len().div_ceil(2));
                for pair in levels.chunks(2) {
                    let lo = (pair[0] as u8) & 0x0F;
                    let hi = if pair.len() > 1 {
                        ((pair[1] as u8) & 0x0F) << 4
                    } else {
                        0
                    };
                    out.push(lo | hi);
                }
                out
            }
        };
        Self {
            width,
            scale,
            len: xs.len(),
            packed,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit width used.
    pub fn width(&self) -> BitWidth {
        self.width
    }

    /// Bytes consumed by the packed representation plus scale.
    pub fn storage_bytes(&self) -> usize {
        self.packed.len() + std::mem::size_of::<f32>()
    }

    /// Integer level at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn level(&self, i: usize) -> i8 {
        assert!(i < self.len, "quant index out of bounds");
        match self.width {
            BitWidth::Int8 => self.packed[i] as i8,
            BitWidth::Int4 => {
                let byte = self.packed[i / 2];
                let nib = if i.is_multiple_of(2) {
                    byte & 0x0F
                } else {
                    byte >> 4
                };
                // Sign-extend the 4-bit value.
                ((nib << 4) as i8) >> 4
            }
        }
    }

    /// Reconstructs the approximate f32 vector.
    pub fn dequantize(&self) -> Vec<f32> {
        (0..self.len)
            .map(|i| self.level(i) as f32 * self.scale)
            .collect()
    }

    /// The absmax scale (`value[i] ≈ scale * level[i]`).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The packed level bytes (int8: one level per byte; int4: two
    /// nibbles per byte, low nibble first).
    pub(crate) fn packed(&self) -> &[u8] {
        &self.packed
    }

    /// Dot product of a float query against this quantized vector without
    /// materializing the dequantized values.
    ///
    /// Runs on the [`dispatch`](crate::dispatch) registry (byte-wise
    /// int4 unpacking even on the scalar tier); bit-identical to
    /// [`dot_reference`](Self::dot_reference) at every tier.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.len()`.
    pub fn dot(&self, query: &[f32]) -> f32 {
        assert_eq!(query.len(), self.len, "quant dot length mismatch");
        let tier = crate::dispatch::active_tier();
        let acc = match self.width {
            BitWidth::Int8 => quant_dot_i8::dispatch(tier, query, &self.packed),
            BitWidth::Int4 => quant_dot_i4::dispatch(tier, query, &self.packed),
        };
        acc * self.scale
    }

    /// The original per-element fused dot — one branchy `level(i)`
    /// unpack per element — retained as the pinning reference for
    /// [`dot`](Self::dot) and the `lut` kernels.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.len()`.
    pub fn dot_reference(&self, query: &[f32]) -> f32 {
        assert_eq!(query.len(), self.len, "quant dot length mismatch");
        let mut acc = 0.0;
        for (i, &q) in query.iter().enumerate() {
            acc += q * self.level(i) as f32;
        }
        acc * self.scale
    }
}

/// Maximum absolute round-trip error of absmax quantization for a vector
/// with the given absolute maximum: half a level.
pub fn max_roundtrip_error(absmax: f32, width: BitWidth) -> f32 {
    if absmax == 0.0 {
        0.0
    } else {
        0.5 * absmax / width.max_level()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_roundtrip_is_tight() {
        let xs = vec![0.5, -1.0, 0.25, 0.99, -0.01];
        let q = QuantVec::quantize(&xs, BitWidth::Int8);
        let back = q.dequantize();
        let bound = max_roundtrip_error(1.0, BitWidth::Int8) + 1e-6;
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
    }

    #[test]
    fn int4_roundtrip_within_bound() {
        let xs = vec![0.7, -0.7, 0.1, -0.35, 0.0, 0.349];
        let q = QuantVec::quantize(&xs, BitWidth::Int4);
        let back = q.dequantize();
        let bound = max_roundtrip_error(0.7, BitWidth::Int4) + 1e-6;
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
    }

    #[test]
    fn int4_packs_two_per_byte() {
        let xs = vec![1.0; 8];
        let q = QuantVec::quantize(&xs, BitWidth::Int4);
        assert_eq!(q.storage_bytes(), 4 + 4);
        let q8 = QuantVec::quantize(&xs, BitWidth::Int8);
        assert_eq!(q8.storage_bytes(), 8 + 4);
    }

    #[test]
    fn odd_length_int4_roundtrips() {
        let xs = vec![0.3, -0.6, 0.9];
        let q = QuantVec::quantize(&xs, BitWidth::Int4);
        assert_eq!(q.dequantize().len(), 3);
        assert!(q.level(2) > 0);
    }

    #[test]
    fn negative_levels_sign_extend() {
        let xs = vec![-1.0, 1.0];
        let q = QuantVec::quantize(&xs, BitWidth::Int4);
        assert_eq!(q.level(0), -7);
        assert_eq!(q.level(1), 7);
    }

    #[test]
    fn quantized_dot_close_to_exact() {
        let xs: Vec<f32> = (0..64)
            .map(|i| ((i * 37 % 13) as f32 - 6.0) / 6.0)
            .collect();
        let query: Vec<f32> = (0..64).map(|i| ((i * 17 % 7) as f32 - 3.0) / 3.0).collect();
        let exact: f32 = xs.iter().zip(&query).map(|(a, b)| a * b).sum();
        let q = QuantVec::quantize(&xs, BitWidth::Int8);
        assert!((q.dot(&query) - exact).abs() < 0.15, "{}", q.dot(&query));
    }

    #[test]
    fn zero_vector_quantizes_to_zero() {
        let q = QuantVec::quantize(&[0.0; 5], BitWidth::Int4);
        assert!(q.dequantize().iter().all(|&v| v == 0.0));
        assert_eq!(q.dot(&[1.0; 5]), 0.0);
    }
}
