//! Minimal f32 tensor kernels for the SpeContext reproduction.
//!
//! This crate is the numerical substrate for everything else in the
//! workspace: the transformer simulator (`spec-model`), the retrieval
//! algorithms (`spec-retrieval`) and the workload scorers all run on the
//! dense [`Matrix`] type and the kernels defined here.
//!
//! The kernels are allocation-explicit and deterministic. Hot paths —
//! [`Matrix::matmul`] (cache-blocked, B-packed; see [`gemm`]),
//! [`ops::softmax_rows`] and the k-means assignment sweep — run on the
//! `spec_parallel` worker pool over disjoint output bands, so results
//! are **bit-for-bit identical at any thread count** (`SPEC_THREADS`
//! env var; default: all available cores). Architectural fidelity —
//! which tokens get selected, how much data moves — still comes first;
//! the parallel substrate only makes the sweeps finish sooner.
//!
//! # Example
//!
//! ```
//! use spec_tensor::{Matrix, ops};
//!
//! let q = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
//! let k = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
//! let scores = q.matmul(&k.transposed());
//! let weights = ops::softmax_rows(&scores);
//! assert!((weights.get(0, 0) - weights.get(1, 1)).abs() < 1e-6);
//! ```

pub mod dispatch;
pub mod gemm;
pub mod kmeans;
pub mod lut;
pub mod matrix;
pub mod ops;
pub mod quant;
pub mod rng;
pub mod stats;
pub mod topk;

pub use matrix::Matrix;
pub use rng::SimRng;
pub use stats::PercentileSummary;
