//! Runtime SIMD feature detection and tier dispatch for every
//! hand-dispatched kernel in the workspace.
//!
//! Before this module existed, each accelerated kernel carried its own
//! ad-hoc `is_x86_feature_detected!` site (`gemm`, the Quest page-score
//! bound in `spec_kvcache`). This registry centralizes that: feature
//! detection runs **once per process**, every kernel consults the same
//! [`active_tier`], and the whole stack can be forced onto a lower tier
//! for testing — so the scalar code paths stay exercised on AVX2/AVX-512
//! machines.
//!
//! # Tiers
//!
//! [`SimdTier`] orders the supported instruction-set tiers:
//! `Scalar < Neon < Avx2 < Avx512`. Exactly one tier is *active* at any
//! moment, resolved in priority order:
//!
//! 1. a thread-local [`with_tier`] override (used by the equivalence
//!    property tests to sweep every available tier in one process),
//! 2. the `SPEC_SIMD` environment variable (`scalar`, `neon`, `avx2`,
//!    `avx512`; parsed once, case-insensitive; garbage falls through),
//! 3. the hardware's [`detected_tier`].
//!
//! Requests are always **clamped down** to the detected tier — forcing
//! `SPEC_SIMD=avx512` on an AVX2-only part runs AVX2, and forcing a tier
//! the architecture does not have at all (e.g. `neon` on x86) falls back
//! to the best supported tier at or below it, ultimately scalar. It is
//! therefore impossible to select a tier the CPU cannot execute.
//!
//! # The determinism contract
//!
//! Every dispatched kernel in the workspace compiles **one shared body**
//! per tier (see [`dispatch_kernel!`](crate::dispatch_kernel)): wider
//! registers change how many lanes one instruction covers, never the
//! sequence of floating-point operations each output element receives.
//! All tiers are therefore bit-for-bit identical to the retained scalar
//! `*_reference` implementations, which the `simd_dispatch` property
//! suite pins across every available tier.

use std::cell::Cell;
use std::sync::OnceLock;

/// An instruction-set dispatch tier, ordered from narrowest to widest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdTier {
    /// Portable scalar code — always available, the reference tier.
    Scalar,
    /// AArch64 Advanced SIMD (128-bit).
    Neon,
    /// x86 AVX2 (256-bit).
    Avx2,
    /// x86 AVX-512F (512-bit).
    Avx512,
}

impl SimdTier {
    /// The canonical lower-case name (`scalar`, `neon`, `avx2`,
    /// `avx512`) — what `SPEC_SIMD` accepts and diagnostics print.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Neon => "neon",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
        }
    }

    /// Parses a tier name as accepted by `SPEC_SIMD` (case-insensitive,
    /// surrounding whitespace ignored). `avx512f` is accepted as an
    /// alias for `avx512`.
    pub fn parse(s: &str) -> Option<SimdTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdTier::Scalar),
            "neon" => Some(SimdTier::Neon),
            "avx2" => Some(SimdTier::Avx2),
            "avx512" | "avx512f" => Some(SimdTier::Avx512),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

thread_local! {
    /// Per-thread override installed by [`with_tier`]; `None` = unset.
    static TIER_OVERRIDE: Cell<Option<SimdTier>> = const { Cell::new(None) };
}

/// The widest tier the running CPU supports (detected once per process;
/// `Scalar` on architectures with no accelerated variant).
pub fn detected_tier() -> SimdTier {
    static DETECTED: OnceLock<SimdTier> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return SimdTier::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdTier::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return SimdTier::Neon;
            }
        }
        SimdTier::Scalar
    })
}

/// `SPEC_SIMD`, parsed once per process.
fn env_tier() -> Option<SimdTier> {
    static ENV: OnceLock<Option<SimdTier>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SPEC_SIMD")
            .ok()
            .and_then(|v| SimdTier::parse(&v))
    })
}

/// Clamps a requested tier to the best tier this CPU can actually
/// execute at or below it (`Scalar` in the worst case). This is what
/// makes every tier value safe to hand to a dispatched kernel, wherever
/// it came from.
pub fn clamp(requested: SimdTier) -> SimdTier {
    available_tiers()
        .iter()
        .rev()
        .copied()
        .find(|&t| t <= requested)
        .unwrap_or(SimdTier::Scalar)
}

/// The tiers this CPU can execute, ascending (always starts with
/// [`SimdTier::Scalar`]). The equivalence property tests sweep this
/// list, forcing each entry via [`with_tier`].
pub fn available_tiers() -> &'static [SimdTier] {
    static AVAILABLE: OnceLock<Vec<SimdTier>> = OnceLock::new();
    AVAILABLE.get_or_init(|| {
        let mut out = vec![SimdTier::Scalar];
        let detected = detected_tier();
        #[cfg(target_arch = "aarch64")]
        if detected >= SimdTier::Neon {
            out.push(SimdTier::Neon);
        }
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        {
            if detected >= SimdTier::Avx2 {
                out.push(SimdTier::Avx2);
            }
            if detected >= SimdTier::Avx512 {
                out.push(SimdTier::Avx512);
            }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64", target_arch = "aarch64")))]
        let _ = detected;
        out
    })
}

/// The tier dispatched kernels run at right now: the [`with_tier`]
/// override, else `SPEC_SIMD`, else the detected hardware maximum —
/// always clamped to what the CPU supports.
pub fn active_tier() -> SimdTier {
    if let Some(t) = TIER_OVERRIDE.with(Cell::get) {
        return clamp(t);
    }
    match env_tier() {
        Some(t) => clamp(t),
        None => detected_tier(),
    }
}

/// Runs `f` with [`active_tier`] pinned to (the clamp of) `tier` on the
/// current thread. The override is thread-local, so concurrent tests
/// cannot race on it; the previous value is restored on exit, including
/// on panic.
pub fn with_tier<R>(tier: SimdTier, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SimdTier>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TIER_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(TIER_OVERRIDE.with(|c| c.replace(Some(tier))));
    f()
}

/// Whether the active tier covers AVX2 — the question the pre-registry
/// call sites (`gemm`, Quest page scoring) used to answer with their own
/// `is_x86_feature_detected!` caches.
pub fn has_avx2() -> bool {
    active_tier() >= SimdTier::Avx2
}

/// Defines a runtime-dispatched kernel: one shared `body`, compiled once
/// per instruction-set tier (`#[target_feature]` variants of the exact
/// same code), behind a `dispatch(tier, ...)` entry point.
///
/// ```ignore
/// spec_tensor::dispatch_kernel! {
///     /// One chunk of fused multiply/score work.
///     pub(crate) my_kernel(query: &[f32], out: &mut [f32]) -> f32 { ... }
/// }
/// // Resolve the tier once per batch, then call per item:
/// let tier = spec_tensor::dispatch::active_tier();
/// let score = my_kernel::dispatch(tier, q, out);
/// ```
///
/// Expands to a module named after the kernel containing `scalar(...)`
/// (the reference-tier entry point) and `dispatch(tier, ...)`, which
/// clamps `tier` via [`dispatch::clamp`](crate::dispatch::clamp) and
/// selects the matching variant; tiers the architecture lacks fall back
/// to scalar. Because every tier compiles the identical body — and the
/// bodies are written so each output element sees the same sequence of
/// floating-point operations regardless of lane width — all variants
/// return bit-identical results.
#[macro_export]
macro_rules! dispatch_kernel {
    // Kernels without a return value.
    (
        $(#[$meta:meta])*
        $vis:vis $name:ident($($arg:ident: $ty:ty),* $(,)?)
        $body:block
    ) => {
        $(#[$meta])*
        #[allow(unused_qualifications)]
        $vis mod $name {
            use super::*;

            /// The shared kernel body; every tier compiles exactly this.
            #[inline(always)]
            fn body($($arg: $ty),*) $body

            /// The scalar (reference-tier) variant.
            pub fn scalar($($arg: $ty),*) {
                body($($arg),*)
            }

            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            #[target_feature(enable = "avx2")]
            unsafe fn avx2($($arg: $ty),*) {
                body($($arg),*)
            }

            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            #[target_feature(enable = "avx512f")]
            unsafe fn avx512($($arg: $ty),*) {
                body($($arg),*)
            }

            #[cfg(target_arch = "aarch64")]
            #[target_feature(enable = "neon")]
            unsafe fn neon($($arg: $ty),*) {
                body($($arg),*)
            }

            /// Runs the variant for `tier` (resolve it once per batch
            /// with `active_tier()`); unavailable tiers clamp down.
            pub fn dispatch(tier: $crate::dispatch::SimdTier, $($arg: $ty),*) {
                match $crate::dispatch::clamp(tier) {
                    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
                    // SAFETY: `clamp` only returns runtime-detected tiers.
                    $crate::dispatch::SimdTier::Avx512 => unsafe { avx512($($arg),*) },
                    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
                    // SAFETY: as above.
                    $crate::dispatch::SimdTier::Avx2 => unsafe { avx2($($arg),*) },
                    #[cfg(target_arch = "aarch64")]
                    // SAFETY: as above.
                    $crate::dispatch::SimdTier::Neon => unsafe { neon($($arg),*) },
                    _ => scalar($($arg),*),
                }
            }
        }
    };
    // Kernels returning a value.
    (
        $(#[$meta:meta])*
        $vis:vis $name:ident($($arg:ident: $ty:ty),* $(,)?) -> $ret:ty
        $body:block
    ) => {
        $(#[$meta])*
        #[allow(unused_qualifications)]
        $vis mod $name {
            use super::*;

            /// The shared kernel body; every tier compiles exactly this.
            #[inline(always)]
            fn body($($arg: $ty),*) -> $ret $body

            /// The scalar (reference-tier) variant.
            pub fn scalar($($arg: $ty),*) -> $ret {
                body($($arg),*)
            }

            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            #[target_feature(enable = "avx2")]
            unsafe fn avx2($($arg: $ty),*) -> $ret {
                body($($arg),*)
            }

            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            #[target_feature(enable = "avx512f")]
            unsafe fn avx512($($arg: $ty),*) -> $ret {
                body($($arg),*)
            }

            #[cfg(target_arch = "aarch64")]
            #[target_feature(enable = "neon")]
            unsafe fn neon($($arg: $ty),*) -> $ret {
                body($($arg),*)
            }

            /// Runs the variant for `tier` (resolve it once per batch
            /// with `active_tier()`); unavailable tiers clamp down.
            pub fn dispatch(tier: $crate::dispatch::SimdTier, $($arg: $ty),*) -> $ret {
                match $crate::dispatch::clamp(tier) {
                    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
                    // SAFETY: `clamp` only returns runtime-detected tiers.
                    $crate::dispatch::SimdTier::Avx512 => unsafe { avx512($($arg),*) },
                    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
                    // SAFETY: as above.
                    $crate::dispatch::SimdTier::Avx2 => unsafe { avx2($($arg),*) },
                    #[cfg(target_arch = "aarch64")]
                    // SAFETY: as above.
                    $crate::dispatch::SimdTier::Neon => unsafe { neon($($arg),*) },
                    _ => scalar($($arg),*),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_ordered_narrow_to_wide() {
        assert!(SimdTier::Scalar < SimdTier::Neon);
        assert!(SimdTier::Neon < SimdTier::Avx2);
        assert!(SimdTier::Avx2 < SimdTier::Avx512);
    }

    #[test]
    fn parse_round_trips_every_name() {
        for t in [
            SimdTier::Scalar,
            SimdTier::Neon,
            SimdTier::Avx2,
            SimdTier::Avx512,
        ] {
            assert_eq!(SimdTier::parse(t.name()), Some(t));
            assert_eq!(SimdTier::parse(&t.name().to_uppercase()), Some(t));
        }
        assert_eq!(SimdTier::parse(" avx512f "), Some(SimdTier::Avx512));
        assert_eq!(SimdTier::parse("sse9"), None);
        assert_eq!(SimdTier::parse(""), None);
    }

    #[test]
    fn available_tiers_start_scalar_and_stay_sorted() {
        let tiers = available_tiers();
        assert_eq!(tiers.first(), Some(&SimdTier::Scalar));
        assert!(tiers.windows(2).all(|w| w[0] < w[1]));
        assert!(tiers.contains(&detected_tier()));
    }

    #[test]
    fn clamp_never_exceeds_detected() {
        for req in [
            SimdTier::Scalar,
            SimdTier::Neon,
            SimdTier::Avx2,
            SimdTier::Avx512,
        ] {
            let got = clamp(req);
            assert!(got <= req, "{got} > requested {req}");
            assert!(available_tiers().contains(&got));
        }
        assert_eq!(clamp(SimdTier::Scalar), SimdTier::Scalar);
    }

    #[test]
    fn with_tier_overrides_and_restores() {
        let ambient = active_tier();
        let inner = with_tier(SimdTier::Scalar, active_tier);
        assert_eq!(inner, SimdTier::Scalar);
        assert_eq!(active_tier(), ambient);
        // Nested overrides restore layer by layer.
        with_tier(SimdTier::Scalar, || {
            let wide = with_tier(SimdTier::Avx512, active_tier);
            assert_eq!(wide, clamp(SimdTier::Avx512));
            assert_eq!(active_tier(), SimdTier::Scalar);
        });
    }

    #[test]
    fn active_tier_is_always_executable() {
        assert!(available_tiers().contains(&active_tier()));
    }
}
