//! The determinism contract of the SIMD dispatch registry: every kernel
//! behind `spec_tensor::dispatch` must match its retained scalar
//! reference **bit-for-bit at every available tier** (swept per run via
//! `dispatch::with_tier`, which takes precedence over `SPEC_SIMD`). CI
//! additionally runs the whole test suite under `SPEC_SIMD=scalar`,
//! exercising the env-var path end to end on wide machines.

use proptest::prelude::*;
use spec_tensor::dispatch::{self, SimdTier};
use spec_tensor::lut::{I8Lut, QueryLut};
use spec_tensor::quant::{BitWidth, QuantVec};
use spec_tensor::{matrix, SimRng};

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs ({g} vs {w})"
        );
    }
}

/// Runs `f` once per available tier, labelled for failure messages.
fn for_each_tier(mut f: impl FnMut(SimdTier)) {
    for &tier in dispatch::available_tiers() {
        dispatch::with_tier(tier, || f(tier));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `QuantVec::dot` (both widths) equals the per-element reference at
    /// every tier; lengths straddle the staging chunk and stay odd often
    /// enough to exercise the int4 half-byte tail.
    #[test]
    fn quant_dot_matches_reference_at_every_tier(
        params in (0usize..200, any::<u64>())
    ) {
        let (n, seed) = params;
        let mut rng = SimRng::seed(seed);
        let xs = rng.normal_matrix(1, n, 1.0).as_slice().to_vec();
        let query = rng.normal_matrix(1, n, 1.0).as_slice().to_vec();
        for width in [BitWidth::Int4, BitWidth::Int8] {
            let key = QuantVec::quantize(&xs, width);
            let want = key.dot_reference(&query);
            for_each_tier(|tier| {
                let got = key.dot(&query);
                assert_eq!(
                    got.to_bits(), want.to_bits(),
                    "{width:?} len {n} tier {tier}: {got} vs {want}"
                );
            });
        }
    }

    /// The int4 query LUT — single dots and the batched `scores_into`
    /// (key counts straddle the 8-lane blocking, leaving remainders) —
    /// equals `dot_reference` at every tier.
    #[test]
    fn lut_i4_matches_reference_at_every_tier(
        params in (0usize..150, 1usize..28, any::<u64>())
    ) {
        let (n, nkeys, seed) = params;
        let mut rng = SimRng::seed(seed);
        let query = rng.normal_matrix(1, n, 1.0).as_slice().to_vec();
        let keys: Vec<QuantVec> = (0..nkeys)
            .map(|_| {
                let xs = rng.normal_matrix(1, n, 1.0).as_slice().to_vec();
                QuantVec::quantize(&xs, BitWidth::Int4)
            })
            .collect();
        let lut = QueryLut::build(&query);
        let want: Vec<f32> = keys.iter().map(|k| k.dot_reference(&query)).collect();
        for_each_tier(|tier| {
            let mut out = vec![f32::NAN; 2];
            lut.scores_into(&keys, &mut out);
            assert_bits_eq(&out, &want, &format!("scores_into len {n} tier {tier}"));
            for (k, w) in keys.iter().zip(&want) {
                assert_eq!(lut.dot_i4(k).to_bits(), w.to_bits(), "tier {tier}");
            }
        });
    }

    /// Both int8 batch paths — the true LUT and the blocked widened
    /// multiply (key counts straddle the 8-lane blocking) — equal
    /// `dot_reference` at every tier.
    #[test]
    fn lut_i8_matches_reference_at_every_tier(
        params in (0usize..150, 1usize..28, any::<u64>())
    ) {
        let (n, nkeys, seed) = params;
        let mut rng = SimRng::seed(seed);
        let query = rng.normal_matrix(1, n, 1.0).as_slice().to_vec();
        let keys: Vec<QuantVec> = (0..nkeys)
            .map(|_| {
                let xs = rng.normal_matrix(1, n, 1.0).as_slice().to_vec();
                QuantVec::quantize(&xs, BitWidth::Int8)
            })
            .collect();
        let lut = I8Lut::build(&query);
        let want: Vec<f32> = keys.iter().map(|k| k.dot_reference(&query)).collect();
        for_each_tier(|tier| {
            for (k, w) in keys.iter().zip(&want) {
                assert_eq!(lut.dot_i8(k).to_bits(), w.to_bits(), "table tier {tier}");
            }
            let mut out = vec![f32::NAN; 2];
            spec_tensor::quant::dot_i8_batch_into(&query, &keys, &mut out);
            assert_bits_eq(&out, &want, &format!("batch len {n} tier {tier}"));
        });
    }

    /// The batched row-dot kernel behind the InfiniGen selector equals
    /// the reference `matrix::dot` per row at every tier.
    #[test]
    fn dot_rows_into_matches_reference_at_every_tier(
        params in (0usize..40, 1usize..150, any::<u64>())
    ) {
        let (rows, cols, seed) = params;
        let mut rng = SimRng::seed(seed);
        let keys = rng.normal_matrix(rows, cols, 1.0);
        let query = rng.normal_matrix(1, cols, 1.0).as_slice().to_vec();
        let want: Vec<f32> = keys.iter_rows().map(|k| matrix::dot(&query, k)).collect();
        for_each_tier(|tier| {
            let mut out = vec![f32::NAN; 3];
            keys.dot_rows_into(&query, &mut out);
            assert_bits_eq(&out, &want, &format!("{rows}x{cols} tier {tier}"));
        });
    }

    /// The blocked matmul (whose micro tile is now a dispatched kernel)
    /// equals the naive triple loop at every tier.
    #[test]
    fn matmul_matches_reference_at_every_tier(
        shape in (1usize..32, 1usize..32, 1usize..32, any::<u64>())
    ) {
        let (m, k, n, seed) = shape;
        let mut rng = SimRng::seed(seed);
        let a = rng.normal_matrix(m, k, 1.0);
        let b = rng.normal_matrix(k, n, 1.0);
        let want = a.matmul_naive(&b);
        for_each_tier(|tier| {
            let got = a.matmul(&b);
            assert_bits_eq(
                got.as_slice(),
                want.as_slice(),
                &format!("matmul {m}x{k}x{n} tier {tier}"),
            );
        });
    }
}

/// Lengths pinned at the int4 staging edges: chunk boundary, one over,
/// and odd tails whose final byte carries a padding nibble.
#[test]
fn int4_edge_lengths_match_at_every_tier() {
    for n in [0usize, 1, 2, 3, 63, 64, 65, 127, 128, 129] {
        let mut rng = SimRng::seed(0xC0DE + n as u64);
        let xs = rng.normal_matrix(1, n, 1.0).as_slice().to_vec();
        let query = rng.normal_matrix(1, n, 1.0).as_slice().to_vec();
        let key = QuantVec::quantize(&xs, BitWidth::Int4);
        let lut = QueryLut::build(&query);
        let want = key.dot_reference(&query);
        for_each_tier(|tier| {
            assert_eq!(
                key.dot(&query).to_bits(),
                want.to_bits(),
                "dot len {n} tier {tier}"
            );
            assert_eq!(
                lut.dot_i4(&key).to_bits(),
                want.to_bits(),
                "lut len {n} tier {tier}"
            );
        });
    }
}

/// The `SPEC_SIMD` regression gate: when CI (or a user) forces a tier
/// via the environment, `active_tier` must honor it — clamped to what
/// the CPU supports. With no override the active tier is the detected
/// hardware maximum. Either way it must be executable.
#[test]
fn spec_simd_env_forces_the_active_tier() {
    let active = dispatch::active_tier();
    match std::env::var("SPEC_SIMD")
        .ok()
        .and_then(|v| SimdTier::parse(&v))
    {
        Some(forced) => assert_eq!(
            active,
            dispatch::clamp(forced),
            "SPEC_SIMD={forced} must pin the active tier"
        ),
        None => assert_eq!(active, dispatch::detected_tier()),
    }
    assert!(dispatch::available_tiers().contains(&active));
}
