//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use spec_tensor::quant::{max_roundtrip_error, BitWidth, QuantVec};
use spec_tensor::topk::{selection_mass, top_k_indices, top_k_positions};
use spec_tensor::{ops, Matrix};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..max_len)
}

proptest! {
    #[test]
    fn softmax_is_a_distribution(xs in finite_vec(64)) {
        let mut v = xs.clone();
        ops::softmax_inplace(&mut v);
        let sum: f32 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(v.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
    }

    #[test]
    fn softmax_preserves_order(xs in finite_vec(32)) {
        let mut v = xs.clone();
        ops::softmax_inplace(&mut v);
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if xs[i] > xs[j] {
                    prop_assert!(v[i] >= v[j]);
                }
            }
        }
    }

    #[test]
    fn top_k_indices_unique_and_in_range(xs in finite_vec(128), k in 0usize..64) {
        let idx = top_k_indices(&xs, k);
        prop_assert_eq!(idx.len(), k.min(xs.len()));
        let mut seen = std::collections::HashSet::new();
        for &i in &idx {
            prop_assert!(i < xs.len());
            prop_assert!(seen.insert(i));
        }
    }

    #[test]
    fn top_k_is_optimal_subset(xs in finite_vec(64), k in 1usize..32) {
        // The mass captured by top-k must be >= the mass of any other
        // subset of exactly the same size (a rotation of the index range).
        let k = k.min(xs.len());
        let top = top_k_indices(&xs, k);
        let top_mass = selection_mass(&xs, &top);
        let other: Vec<usize> = (0..k).map(|i| (i + 3) % xs.len()).collect();
        let mut dedup = other;
        dedup.sort_unstable();
        dedup.dedup();
        if dedup.len() == k {
            let other_mass = selection_mass(&xs, &dedup);
            let tol = 1e-3 * (1.0 + top_mass.abs().max(other_mass.abs()));
            prop_assert!(top_mass >= other_mass - tol);
        }
    }

    #[test]
    fn top_k_positions_sorted(xs in finite_vec(64), k in 0usize..64) {
        let pos = top_k_positions(&xs, k);
        prop_assert!(pos.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in prop::collection::vec(-10.0f32..10.0, 12),
        b in prop::collection::vec(-10.0f32..10.0, 12),
        c in prop::collection::vec(-10.0f32..10.0, 12),
    ) {
        let ma = Matrix::from_vec(3, 4, a);
        let mb = Matrix::from_vec(4, 3, b);
        let mc = Matrix::from_vec(4, 3, c);
        let left = ma.matmul(&mb.add(&mc));
        let right = ma.matmul(&mb).add(&ma.matmul(&mc));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn transpose_swaps_matmul(
        a in prop::collection::vec(-5.0f32..5.0, 6),
        b in prop::collection::vec(-5.0f32..5.0, 6),
    ) {
        // (A B)^T == B^T A^T
        let ma = Matrix::from_vec(2, 3, a);
        let mb = Matrix::from_vec(3, 2, b);
        let left = ma.matmul(&mb).transposed();
        let right = mb.transposed().matmul(&ma.transposed());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn int8_quant_error_bounded(xs in finite_vec(64)) {
        let q = QuantVec::quantize(&xs, BitWidth::Int8);
        let absmax = xs.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let bound = max_roundtrip_error(absmax, BitWidth::Int8) + 1e-5;
        for (orig, back) in xs.iter().zip(q.dequantize()) {
            prop_assert!((orig - back).abs() <= bound, "{} vs {}", orig, back);
        }
    }

    #[test]
    fn int4_quant_error_bounded(xs in finite_vec(64)) {
        let q = QuantVec::quantize(&xs, BitWidth::Int4);
        let absmax = xs.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let bound = max_roundtrip_error(absmax, BitWidth::Int4) + 1e-5;
        for (orig, back) in xs.iter().zip(q.dequantize()) {
            prop_assert!((orig - back).abs() <= bound);
        }
    }

    #[test]
    fn quant_dot_matches_dequant_dot(xs in finite_vec(32)) {
        let q = QuantVec::quantize(&xs, BitWidth::Int8);
        let query: Vec<f32> = (0..xs.len()).map(|i| (i as f32 * 0.37).sin()).collect();
        let fused = q.dot(&query);
        let manual: f32 = q.dequantize().iter().zip(&query).map(|(a, b)| a * b).sum();
        prop_assert!((fused - manual).abs() < 1e-3 * (1.0 + fused.abs()));
    }

    #[test]
    fn gather_rows_matches_manual(rows in 1usize..20, picks in prop::collection::vec(0usize..20, 0..10)) {
        let m = Matrix::from_vec(rows, 3, (0..rows * 3).map(|i| i as f32).collect());
        let picks: Vec<usize> = picks.into_iter().map(|p| p % rows).collect();
        let g = m.gather_rows(&picks);
        for (dst, &src) in picks.iter().enumerate() {
            prop_assert_eq!(g.row(dst), m.row(src));
        }
    }

    #[test]
    fn hit_rate_bounds(a in prop::collection::vec(0usize..50, 0..30), b in prop::collection::vec(0usize..50, 0..30)) {
        let h = spec_tensor::stats::hit_rate(&a, &b);
        prop_assert!((0.0..=1.0).contains(&h));
    }

    #[test]
    fn kl_nonnegative(p in finite_vec(16), q in finite_vec(16)) {
        let n = p.len().min(q.len());
        let p: Vec<f32> = p[..n].iter().map(|v| v.abs()).collect();
        let q: Vec<f32> = q[..n].iter().map(|v| v.abs()).collect();
        prop_assert!(spec_tensor::stats::kl_divergence(&p, &q, 1e-9) >= 0.0);
    }
}
