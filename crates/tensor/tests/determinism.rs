//! The determinism contract of the parallel kernels: `matmul`,
//! `softmax_rows` and the k-means assignment sweep must match their
//! serial references **bit-for-bit** across random shapes and
//! `SPEC_THREADS ∈ {1, 2, 7}` (pinned per run via
//! `spec_parallel::with_threads`, which takes precedence over the env
//! var). CI runs this suite under several `SPEC_THREADS` values as well,
//! exercising the env-var path end to end.

use proptest::prelude::*;
use spec_tensor::kmeans::{self, KMeansConfig};
use spec_tensor::{ops, SimRng};

/// The thread counts the contract is checked at: serial, even, and an
/// odd count that leaves ragged band remainders.
const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs ({g} vs {w})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `matmul` equals the reference triple loop at every thread count,
    /// across shapes that straddle the naive/blocked dispatch boundary
    /// and every tile edge case.
    #[test]
    fn matmul_matches_reference_bitwise(
        shape in (1usize..48, 1usize..48, 1usize..48, any::<u64>())
    ) {
        let (m, k, n, seed) = shape;
        let mut rng = SimRng::seed(seed);
        let a = rng.normal_matrix(m, k, 1.0);
        let b = rng.normal_matrix(k, n, 1.0);
        let reference = a.matmul_naive(&b);
        for t in THREAD_COUNTS {
            let got = spec_parallel::with_threads(t, || a.matmul(&b));
            assert_bits_eq(
                got.as_slice(),
                reference.as_slice(),
                &format!("matmul {m}x{k}x{n} threads={t}"),
            );
        }
    }

    /// `softmax_rows` equals the serial per-row loop at every thread
    /// count (sizes cross the parallel-dispatch threshold).
    #[test]
    fn softmax_rows_matches_serial_bitwise(
        shape in (1usize..96, 1usize..300, any::<u64>())
    ) {
        let (rows, cols, seed) = shape;
        let m = SimRng::seed(seed).normal_matrix(rows, cols, 2.0);
        let mut reference = m.clone();
        for r in 0..reference.rows() {
            ops::softmax_inplace(reference.row_mut(r));
        }
        for t in THREAD_COUNTS {
            let got = spec_parallel::with_threads(t, || ops::softmax_rows(&m));
            assert_bits_eq(
                got.as_slice(),
                reference.as_slice(),
                &format!("softmax_rows {rows}x{cols} threads={t}"),
            );
        }
    }

    /// The k-means assignment sweep (`assign_all`) equals the serial
    /// per-point `nearest_centroid` loop at every thread count.
    #[test]
    fn nearest_centroid_sweep_matches_serial(
        shape in (1usize..200, 1usize..40, 1usize..24, any::<u64>())
    ) {
        let (points, dim, k, seed) = shape;
        let mut rng = SimRng::seed(seed);
        let pts = rng.normal_matrix(points, dim, 1.0);
        let cents = rng.normal_matrix(k, dim, 1.0);
        let reference: Vec<(usize, f32)> = (0..pts.rows())
            .map(|i| kmeans::nearest_centroid(pts.row(i), &cents))
            .collect();
        for t in THREAD_COUNTS {
            let got = spec_parallel::with_threads(t, || kmeans::assign_all(&pts, &cents));
            assert_eq!(got.len(), reference.len());
            for (i, (g, w)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(g.0, w.0, "assignment {i} threads={t}");
                assert_eq!(
                    g.1.to_bits(),
                    w.1.to_bits(),
                    "distance {i} threads={t} ({} vs {})",
                    g.1,
                    w.1
                );
            }
        }
    }
}

/// Shapes big enough to force the parallel row-band matmul path
/// (`>= 2^20` mul-adds), so multi-worker banding really runs under the
/// non-unit thread counts.
#[test]
fn large_matmul_takes_parallel_path_and_matches() {
    let mut rng = SimRng::seed(0xD0_0D);
    let a = rng.normal_matrix(160, 128, 1.0);
    let b = rng.normal_matrix(128, 80, 1.0);
    let reference = a.matmul_naive(&b);
    for t in THREAD_COUNTS {
        let got = spec_parallel::with_threads(t, || a.matmul(&b));
        assert_bits_eq(
            got.as_slice(),
            reference.as_slice(),
            &format!("threads={t}"),
        );
    }
}

/// A whole Lloyd run — seeding, assignment sweeps, centroid updates,
/// inertia — is identical at every thread count (same RNG seed per run).
#[test]
fn full_kmeans_is_thread_count_invariant() {
    let run = |threads: usize| {
        spec_parallel::with_threads(threads, || {
            let mut rng = SimRng::seed(0x1EAF);
            let pts = rng.normal_matrix(300, 24, 1.0);
            kmeans::kmeans(
                &pts,
                KMeansConfig {
                    k: 12,
                    ..KMeansConfig::default()
                },
                &mut rng,
            )
        })
    };
    let reference = run(1);
    for t in [2usize, 7] {
        let got = run(t);
        assert_eq!(got.assignments, reference.assignments, "threads={t}");
        assert_eq!(got.iterations, reference.iterations, "threads={t}");
        assert_eq!(
            got.inertia.to_bits(),
            reference.inertia.to_bits(),
            "threads={t}"
        );
        assert_bits_eq(
            got.centroids.as_slice(),
            reference.centroids.as_slice(),
            &format!("centroids threads={t}"),
        );
    }
}

/// `Matrix` equality on the empty/degenerate edges of the dispatch.
#[test]
fn degenerate_shapes_match() {
    for (m, k, n) in [(1usize, 1usize, 1usize), (1, 17, 1), (2, 0, 3), (1, 5, 40)] {
        let mut rng = SimRng::seed((m * 31 + k * 7 + n) as u64);
        let a = rng.normal_matrix(m, k, 1.0);
        let b = rng.normal_matrix(k, n, 1.0);
        let reference = a.matmul_naive(&b);
        for t in THREAD_COUNTS {
            let got = spec_parallel::with_threads(t, || a.matmul(&b));
            assert_bits_eq(
                got.as_slice(),
                reference.as_slice(),
                &format!("{m}x{k}x{n} threads={t}"),
            );
        }
    }
}
