//! The cluster event loop.
//!
//! A [`Cluster`] owns N [`Replica`]s and a routing policy.
//! [`Cluster::run_source`] pulls from a streaming
//! [`ArrivalSource`] one request at a time — a million-request trace is
//! never materialized. For *open-loop* sources, before each arrival it
//! advances every replica's engine to the arrival instant (replicas run
//! independently — a decode iteration may overshoot, exactly as on a
//! real engine), takes an autoscaling decision on queue depth, snapshots
//! the fleet, routes the request, and finally drains all replicas.
//! Because replicas are driven through the runtime scheduler's own
//! micro-steps, a 1-replica cluster reproduces `Scheduler::run`
//! bit-for-bit, which pins the whole subsystem to the single-node
//! Table-3 ground truth. ([`Cluster::run`] is the same loop over a
//! pre-materialized slice.)
//!
//! *Closed-loop* sources need finer event interleaving — a session's
//! next request departs only after its previous response — so the loop
//! micro-steps the laggard replica one scheduler decision at a time,
//! feeding completions (and rejections) back into the source between
//! steps in a deterministic `(finish, id)` order. That path is serial by
//! construction, so closed-loop runs are `SPEC_THREADS`-invariant for
//! free.

use crate::arrivals::{ArrivalSource, ClusterRequest, SliceSource};
use crate::faults::{FaultAction, FaultEvent, FaultLedger, FaultPlan, FaultRun, FaultSummary};
use crate::replica::Replica;
use crate::router::{ReplicaSnapshot, RoutePolicy, RouterKind};
use crate::slo::{self, CostReport, SloReport, SloSpec};
use serde::{Deserialize, Serialize};
use spec_hwsim::{DeviceSpec, FleetSlot, LinkSpec, ReplicaRole};
use spec_model::ModelConfig;
use spec_runtime::{
    CompletedRequest, HandoffRecord, ScheduleReport, SchedulerConfig, ServingSim, SystemKind,
};
use spec_telemetry::{
    merge_streams, seconds_to_ticks, Event, EventKind, RecordingSink, TelemetrySink,
};
use std::collections::HashMap;

/// Queue-depth-driven scale-up/down.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Replicas kept active at all times.
    pub min_replicas: usize,
    /// Activate a parked replica when every active replica's outstanding
    /// count reaches this depth.
    pub scale_up_outstanding: usize,
    /// Park an idle replica when the fleet's total outstanding count is
    /// at or below this depth.
    pub scale_down_outstanding: usize,
    /// Seconds a freshly woken replica spends booting before it serves —
    /// charged by jumping its clock past the wake instant. `0.0` (the
    /// default) reproduces the instant-wake autoscaler exactly.
    pub spin_up_s: f64,
    /// KV tokens a freshly woken replica warms over the interconnect
    /// before serving (cold-start cache warmup, priced by the cluster's
    /// [`DisaggConfig`] link). `0` (the default) skips the transfer.
    pub warmup_kv_tokens: usize,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            min_replicas: 1,
            scale_up_outstanding: 4,
            scale_down_outstanding: 1,
            spin_up_s: 0.0,
            warmup_kv_tokens: 0,
        }
    }
}

/// Disaggregated prefill/decode serving knobs. Only consulted when the
/// fleet declares [`ReplicaRole::Prefill`]/[`ReplicaRole::Decode`] slots
/// (see [`Cluster::from_fleet_slots`]); an all-`Unified` fleet never
/// reads it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisaggConfig {
    /// The interconnect pricing each prefill→decode KV hop: a handoff
    /// emitted at `t` with `b` resident bytes reaches its decode target
    /// at `t + link.time(b)`.
    pub link: LinkSpec,
    /// Stage-2 policy picking the decode target at handoff-delivery time
    /// (stage 1 is the cluster's main router, restricted to non-decode
    /// replicas).
    pub decode_router: RouterKind,
}

impl Default for DisaggConfig {
    /// InfiniBand-class interconnect, least-outstanding decode picks.
    fn default() -> Self {
        Self {
            link: LinkSpec::infiniband(),
            decode_router: RouterKind::LeastOutstanding,
        }
    }
}

impl DisaggConfig {
    /// The default configuration; chain the builder methods.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the interconnect class pricing the KV hop.
    pub fn link(mut self, link: LinkSpec) -> Self {
        self.link = link;
        self
    }

    /// Sets the stage-2 decode-target policy.
    pub fn decode_router(mut self, kind: RouterKind) -> Self {
        self.decode_router = kind;
        self
    }
}

/// Cluster-wide configuration, built fluently:
///
/// ```
/// use spec_serve::cluster::{AutoscaleConfig, ClusterConfig};
///
/// let cfg = ClusterConfig::new().autoscale(AutoscaleConfig::default());
/// assert!(cfg.autoscale.is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Per-replica continuous-batching configuration.
    pub scheduler: SchedulerConfig,
    /// Autoscaling; `None` keeps the whole fleet active throughout.
    pub autoscale: Option<AutoscaleConfig>,
    /// Disaggregated prefill/decode serving; `None` falls back to the
    /// defaults when the fleet declares split roles and is ignored
    /// entirely otherwise.
    pub disagg: Option<DisaggConfig>,
}

impl ClusterConfig {
    /// The default configuration; chain the builder methods.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-replica scheduler configuration.
    pub fn scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Enables queue-depth autoscaling.
    pub fn autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    /// Configures the disaggregated prefill/decode path (interconnect
    /// class and decode-target policy).
    pub fn disagg(mut self, disagg: DisaggConfig) -> Self {
        self.disagg = Some(disagg);
        self
    }
}

/// Interconnect traffic of the prefill→decode KV hops in one run; all
/// zeros when no replica ran a split role.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HandoffSummary {
    /// Handoffs delivered to decode replicas.
    pub count: usize,
    /// KV bytes moved over the interconnect.
    pub bytes: f64,
    /// Seconds the handoffs spent on the wire (sum over hops).
    pub transfer_s: f64,
}

/// One replica's slice of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaReport {
    /// Device name.
    pub device: String,
    /// Requests routed to this replica.
    pub assigned: usize,
    /// The replica's own serving report — identical in shape to a
    /// single-node `Scheduler::run` result.
    pub report: ScheduleReport,
}

/// The outcome of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Per-replica reports, in fleet order.
    pub replicas: Vec<ReplicaReport>,
    /// Completed requests across the fleet.
    pub completed: usize,
    /// Rejected requests across the fleet.
    pub rejected: usize,
    /// Latest replica clock — the run's wall time.
    pub makespan: f64,
    /// Output tokens/s across the fleet over the makespan.
    pub throughput: f64,
    /// SLO accounting over all completions.
    pub slo: SloReport,
    /// `(arrival_time, fleet outstanding)` after each routing decision.
    pub queue_depth: Vec<(f64, usize)>,
    /// Peak simultaneously-active replicas (autoscaling high-water mark).
    pub peak_active: usize,
    /// Fault and recovery counters; all zeros for fault-free runs, so
    /// no-fault reports stay bit-identical to pre-fault ones.
    pub faults: FaultSummary,
    /// Prefill→decode handoff traffic; all zeros on unified fleets.
    pub handoffs: HandoffSummary,
    /// Dollar accounting: fleet price, billed replica-hours, and
    /// goodput per dollar.
    pub cost: CostReport,
}

/// A fleet of serving replicas behind a router.
pub struct Cluster {
    replicas: Vec<Replica>,
    router: Box<dyn RoutePolicy>,
    cfg: ClusterConfig,
    peak_active: usize,
    /// Cluster-scope event buffer (routing and autoscaling decisions);
    /// `None` = untraced. Only the serial routing path writes here, so
    /// its stream is deterministic at any `SPEC_THREADS`.
    telemetry: Option<RecordingSink>,
    /// Set for the duration of a health-aware faulted run: non-healthy
    /// replicas are folded out of routing candidate sets.
    health_aware: bool,
    /// Whether any replica runs a split role — the single gate on every
    /// disaggregation code path, so an all-`Unified` fleet walks exactly
    /// the pre-disaggregation event sequence.
    two_stage: bool,
    /// Stage-2 router picking decode targets at handoff-delivery time.
    decode_router: Box<dyn RoutePolicy>,
    /// The interconnect pricing prefill→decode hops and cold-start
    /// warmup transfers.
    link: LinkSpec,
    /// Handoffs on the wire, kept sorted by `(ready, request id)`.
    pending_handoffs: Vec<PendingHandoff>,
    /// Request id → session, so stage-2 routing of a handoff sees the
    /// same session key stage 1 saw (populated on split fleets only).
    sessions: HashMap<usize, u64>,
    /// Request id → original arrival, for handed-off requests whose
    /// engine-side arrival was restamped to the delivery instant (the
    /// report patches latency metrics back to first submission).
    origins: HashMap<usize, f64>,
    /// Interconnect traffic accounting.
    handoffs: HandoffSummary,
    /// Billing: when each replica's current active window opened
    /// (`None` = parked, not billing).
    active_since: Vec<Option<f64>>,
    /// Billing: closed active-window seconds per replica.
    billed_s: Vec<f64>,
}

/// One prefill→decode handoff in flight on the interconnect.
#[derive(Debug, Clone, Copy)]
struct PendingHandoff {
    /// Delivery instant: emission + link transfer time.
    ready: f64,
    /// Seconds the hop spends on the wire.
    transfer_s: f64,
    record: HandoffRecord,
}

impl Cluster {
    /// Builds a cluster with one replica per serving simulator. With
    /// autoscaling, replicas beyond `min_replicas` start parked;
    /// `min_replicas` is clamped to at least 1, so a fleet can never
    /// start (or scale) to zero active replicas.
    ///
    /// # Panics
    ///
    /// Panics if `sims` is empty.
    pub fn new(
        sims: Vec<ServingSim>,
        system: SystemKind,
        cfg: ClusterConfig,
        router: Box<dyn RoutePolicy>,
    ) -> Self {
        assert!(!sims.is_empty(), "a cluster needs at least one replica");
        let mut replicas: Vec<Replica> = sims
            .into_iter()
            .map(|sim| Replica::new(sim, system, cfg.scheduler.clone()))
            .collect();
        if let Some(auto) = &cfg.autoscale {
            let min = auto.min_replicas.max(1);
            for (i, rep) in replicas.iter_mut().enumerate() {
                rep.set_active(i < min);
            }
        }
        let peak_active = replicas.iter().filter(|r| r.is_active()).count();
        let disagg = cfg.disagg.clone().unwrap_or_default();
        let active_since = replicas
            .iter()
            .map(|r| r.is_active().then_some(0.0))
            .collect();
        let billed_s = vec![0.0; replicas.len()];
        Self {
            replicas,
            router,
            cfg,
            peak_active,
            telemetry: None,
            health_aware: false,
            two_stage: false,
            decode_router: disagg.decode_router.build(),
            link: disagg.link,
            pending_handoffs: Vec::new(),
            sessions: HashMap::new(),
            origins: HashMap::new(),
            handoffs: HandoffSummary::default(),
            active_since,
            billed_s,
        }
    }

    /// Builds a homogeneous-or-mixed cluster from a device fleet (see
    /// `spec_hwsim::Fleet`), one replica per device, all sharing the
    /// model and per-request KV budget.
    pub fn from_fleet(
        model: &ModelConfig,
        devices: &[DeviceSpec],
        budget: usize,
        system: SystemKind,
        cfg: ClusterConfig,
        router: Box<dyn RoutePolicy>,
    ) -> Self {
        let sims = devices
            .iter()
            .map(|dev| ServingSim::new(model.clone(), dev.clone(), budget))
            .collect();
        Self::new(sims, system, cfg, router)
    }

    /// Builds a role-typed cluster from fleet slots
    /// (`spec_hwsim::Fleet::build_slots`): one replica per slot, prefill
    /// slots running requests only to their first token and handing the
    /// resident KV off to decode slots over `cfg.disagg`'s interconnect.
    /// A fleet of all-[`Unified`](ReplicaRole::Unified) slots behaves
    /// exactly like [`Cluster::from_fleet`] over the same devices.
    pub fn from_fleet_slots(
        model: &ModelConfig,
        slots: &[FleetSlot],
        budget: usize,
        system: SystemKind,
        cfg: ClusterConfig,
        router: Box<dyn RoutePolicy>,
    ) -> Self {
        let sims = slots
            .iter()
            .map(|s| ServingSim::new(model.clone(), s.device.clone(), budget))
            .collect();
        let mut cluster = Self::new(sims, system, cfg, router);
        for (i, slot) in slots.iter().enumerate() {
            cluster.replicas[i].set_role(slot.role);
        }
        cluster.two_stage = slots.iter().any(|s| s.role != ReplicaRole::Unified);
        if cluster.two_stage && cluster.cfg.autoscale.is_some() {
            // `min_replicas` parking in `new` is role-blind; a split
            // fleet must keep at least one routable replica per present
            // role or both routing stages would wedge on an all-parked
            // candidate set.
            for role in [
                ReplicaRole::Prefill,
                ReplicaRole::Decode,
                ReplicaRole::Unified,
            ] {
                let of_role: Vec<usize> = (0..cluster.replicas.len())
                    .filter(|&i| cluster.replicas[i].role() == role)
                    .collect();
                if !of_role.is_empty() && !of_role.iter().any(|&i| cluster.replicas[i].is_active())
                {
                    cluster.replicas[of_role[0]].set_active(true);
                }
            }
            cluster.peak_active = cluster.replicas.iter().filter(|r| r.is_active()).count();
            cluster.active_since = cluster
                .replicas
                .iter()
                .map(|r| r.is_active().then_some(0.0))
                .collect();
        }
        cluster
    }

    /// The fleet, in replica order.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// The routing policy's name.
    pub fn router_name(&self) -> &'static str {
        self.router.name()
    }

    /// Runs an arrival-ordered trace to completion under `slo` — the
    /// same event loop as [`Cluster::run_source`] over a
    /// pre-materialized slice.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival time.
    pub fn run(&mut self, trace: &[ClusterRequest], slo: &SloSpec) -> ClusterReport {
        self.run_source(&mut SliceSource::new(trace), slo)
    }

    /// Runs a streaming [`ArrivalSource`] to completion under `slo`.
    ///
    /// Open-loop sources walk the exact event sequence [`Cluster::run`]
    /// always walked (advance fleet → autoscale → snapshot → route →
    /// push, then drain), so existing traces replay bit-for-bit and a
    /// 1-replica cluster still reproduces `Scheduler::run`. Closed-loop
    /// sources get the fine-grained path: micro-step the laggard
    /// replica, feed completions back, re-peek — so a completion can
    /// release a session's next turn before the fleet moves past it.
    ///
    /// Untraced (the [`Cluster::run_source_traced`] instrumentation
    /// compiles down to no-ops on this path), so existing reports stay
    /// bit-identical.
    pub fn run_source<S: ArrivalSource + ?Sized>(
        &mut self,
        source: &mut S,
        slo: &SloSpec,
    ) -> ClusterReport {
        let mut queue_depth = Vec::with_capacity(source.remaining_hint().unwrap_or(0));
        if source.closed_loop() {
            assert!(
                !self.two_stage,
                "disaggregated fleets drive open-loop sources (closed-loop \
                 handoff pumping is not wired)"
            );
            self.run_closed_loop(source, &mut queue_depth);
        } else {
            while let Some(cr) = source.next_request() {
                self.advance_delivering(cr.request.arrival);
                self.route_arrived(&cr, &mut queue_depth);
            }
        }
        self.drain_delivering();
        self.report(queue_depth, slo)
    }

    /// Advances every replica's engine to `t`. Replicas run
    /// independently between cluster events, so their micro-stepping
    /// fans out over the worker pool. Each replica's state depends only
    /// on its own trace slice, so the cluster outcome is identical at
    /// any thread count — which is what keeps the 1-replica anchor
    /// bit-for-bit on `Scheduler::run`. Idle replicas return from
    /// `advance_until` immediately, so only spawn workers when several
    /// have stepping to do.
    fn advance_all(&mut self, t: f64) {
        if self.replicas.iter().filter(|r| r.has_work()).count() > 1 {
            spec_parallel::par_for_each_mut(&mut self.replicas, |_, rep| rep.advance_until(t));
        } else {
            for rep in &mut self.replicas {
                rep.advance_until(t);
            }
        }
    }

    /// Runs every replica's remaining work to completion (crashed
    /// replicas stay frozen; the fault loop restarts them first).
    fn drain_all(&mut self) {
        if self.replicas.iter().filter(|r| r.has_work()).count() > 1 {
            spec_parallel::par_for_each_mut(&mut self.replicas, |_, rep| rep.drain());
        } else {
            for rep in &mut self.replicas {
                rep.drain();
            }
        }
    }

    /// [`Cluster::advance_all`] with the prefill→decode handoff pump:
    /// the fleet advances to each delivery instant on the way to `t` in
    /// order, the handoff is admitted on its stage-2-routed decode
    /// target, and the advance resumes — so a decode engine never steps
    /// past the instant its KV came on board. Degenerates to a plain
    /// `advance_all` (no pump state touched) on unified fleets.
    fn advance_delivering(&mut self, t: f64) {
        if !self.two_stage {
            self.advance_all(t);
            return;
        }
        loop {
            self.collect_handoffs();
            match self.next_ready().filter(|&r| r <= t) {
                Some(r) => {
                    self.advance_all(r);
                    self.collect_handoffs();
                    self.deliver_ready(r);
                }
                None => {
                    self.advance_all(t);
                    // Advancing to `t` may itself have emitted handoffs
                    // whose transfer completes before `t`; deliver those
                    // too (delivery pushes work but never steps engines,
                    // so no further handoffs can appear).
                    self.collect_handoffs();
                    self.deliver_ready(t);
                    break;
                }
            }
        }
    }

    /// [`Cluster::drain_all`] with the handoff pump: alternates draining
    /// the fleet with delivering completed transfers until no work and
    /// no in-flight handoffs remain. Plain `drain_all` on unified
    /// fleets.
    fn drain_delivering(&mut self) {
        if !self.two_stage {
            self.drain_all();
            return;
        }
        loop {
            self.collect_handoffs();
            if let Some(r) = self.next_ready() {
                self.advance_all(r);
                self.collect_handoffs();
                self.deliver_ready(r);
            } else if self.replicas.iter().any(Replica::has_work) {
                self.drain_all();
            } else {
                break;
            }
        }
    }

    /// Moves freshly emitted handoff records from prefill engines onto
    /// the interconnect, stamping each with its delivery instant.
    fn collect_handoffs(&mut self) {
        if !self.two_stage {
            return;
        }
        for i in 0..self.replicas.len() {
            if !self.replicas[i].has_handoffs() {
                continue;
            }
            for record in self.replicas[i].take_handoffs() {
                let transfer_s = self.link.time(record.kv_bytes);
                self.pending_handoffs.push(PendingHandoff {
                    ready: record.emitted + transfer_s,
                    transfer_s,
                    record,
                });
            }
        }
        self.pending_handoffs.sort_by(|a, b| {
            a.ready
                .partial_cmp(&b.ready)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    a.record
                        .restorable
                        .request
                        .id
                        .cmp(&b.record.restorable.request.id),
                )
        });
    }

    /// The earliest in-flight handoff's delivery instant.
    fn next_ready(&self) -> Option<f64> {
        self.pending_handoffs.first().map(|p| p.ready)
    }

    /// Delivers every handoff whose transfer completed by `t`, in
    /// `(ready, id)` order — so each decode replica sees nondecreasing
    /// arrival stamps.
    fn deliver_ready(&mut self, t: f64) {
        while self.pending_handoffs.first().is_some_and(|p| p.ready <= t) {
            let p = self.pending_handoffs.remove(0);
            self.deliver_one(p);
        }
    }

    /// Stage-2 routing: picks the decode target for one delivered
    /// handoff and admits it there, preloaded (the link already priced
    /// the hop). Health folding composes on top exactly as in stage 1.
    fn deliver_one(&mut self, p: PendingHandoff) {
        let req = p.record.restorable.request;
        let session = self.sessions.get(&req.id).copied().unwrap_or(req.id as u64);
        let cr = ClusterRequest {
            request: spec_runtime::Request {
                arrival: p.ready,
                ..req
            },
            session,
        };
        let mut snapshots: Vec<ReplicaSnapshot> = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| r.snapshot(i))
            .collect();
        for snap in &mut snapshots {
            if self.replicas[snap.index].role() != ReplicaRole::Decode
                || (self.health_aware && !snap.health.routable())
            {
                snap.active = false;
            }
        }
        let idx = self.decode_router.route(&cr, &snapshots);
        assert!(
            idx < snapshots.len() && (snapshots[idx].active || snapshots.iter().all(|s| !s.active)),
            "decode router {} picked an unavailable replica {idx}",
            self.decode_router.name()
        );
        // Latency metrics must span from first submission; remember the
        // original arrival before the engine-side restamp to `ready`.
        self.origins.entry(req.id).or_insert(req.arrival);
        self.replicas[idx].push_preloaded(p.record.restorable, p.ready);
        self.handoffs.count += 1;
        self.handoffs.bytes += p.record.kv_bytes;
        self.handoffs.transfer_s += p.transfer_s;
        self.emit_cluster_event(
            p.ready,
            idx,
            EventKind::HandoffDelivered {
                request: req.id as u64,
                tenant: req.tenant,
                bytes: p.record.kv_bytes as u64,
            },
        );
    }

    /// [`Cluster::run`] with request-lifecycle telemetry: runs the trace
    /// while recording, then returns the merged event stream.
    pub fn run_traced(
        &mut self,
        trace: &[ClusterRequest],
        slo: &SloSpec,
    ) -> (ClusterReport, Vec<Event>) {
        self.run_source_traced(&mut SliceSource::new(trace), slo)
    }

    /// [`Cluster::run_source`] with request-lifecycle telemetry.
    ///
    /// Every replica records into its own tagged buffer (events stamped
    /// with the replica index) and the cluster's routing/scaling
    /// decisions into a cluster-scope buffer; afterwards the streams are
    /// merged on `(tick, stream)` with per-stream emission order
    /// preserved. Replica micro-stepping between arrivals only mutates
    /// per-replica state, and the cluster buffer is only written on the
    /// serial routing path, so the merged stream — like the report — is
    /// identical at any `SPEC_THREADS`.
    pub fn run_source_traced<S: ArrivalSource + ?Sized>(
        &mut self,
        source: &mut S,
        slo: &SloSpec,
    ) -> (ClusterReport, Vec<Event>) {
        self.telemetry = Some(RecordingSink::new());
        for (i, rep) in self.replicas.iter_mut().enumerate() {
            rep.enable_telemetry(i as u32);
        }
        let report = self.run_source(source, slo);
        // Cluster-scope stream first so that at equal ticks the routing
        // decision (Arrived, scale events) sorts before the engine's
        // reaction to it, replica streams in fleet order after.
        let mut streams = Vec::with_capacity(self.replicas.len() + 1);
        streams.push(
            self.telemetry
                .take()
                .map(RecordingSink::into_events)
                .unwrap_or_default(),
        );
        for rep in &mut self.replicas {
            streams.push(rep.take_telemetry());
        }
        (report, merge_streams(streams))
    }

    /// [`Cluster::run`] under a [`FaultPlan`] — the same trace walked
    /// while the plan's crash/straggler timeline perturbs the fleet.
    pub fn run_fault_plan(
        &mut self,
        trace: &[ClusterRequest],
        slo: &SloSpec,
        plan: &FaultPlan,
    ) -> ClusterReport {
        self.run_faulted(&mut SliceSource::new(trace), slo, plan)
    }

    /// [`Cluster::run_fault_plan`] with request-lifecycle telemetry.
    pub fn run_fault_plan_traced(
        &mut self,
        trace: &[ClusterRequest],
        slo: &SloSpec,
        plan: &FaultPlan,
    ) -> (ClusterReport, Vec<Event>) {
        self.run_faulted_traced(&mut SliceSource::new(trace), slo, plan)
    }

    /// Runs a streaming open-loop source under a [`FaultPlan`].
    ///
    /// The loop repeatedly takes the earliest of (next fault event, next
    /// ready retry, next arrival) — ties resolve fault → retry → arrival
    /// — advancing the fleet to the event instant first. The whole path
    /// is serial, so faulted runs are `SPEC_THREADS`-invariant by
    /// construction; the empty plan takes the exact event sequence of
    /// [`Cluster::run_source`] and stays bit-identical to it (pinned by
    /// `tests/faults.rs`).
    ///
    /// Recovery semantics: a crash tears out the replica's in-flight
    /// work — requests with decode progress surface as host-side
    /// checkpoints and restore onto the healthiest surviving replica
    /// (paying the Eq.-6 KV re-transfer there) unless the plan's
    /// `kv_loss_prob` draw fails; everything else re-enters the router
    /// after capped exponential backoff with seeded jitter. Every
    /// crash-driven re-entry (retry *or* migration) consumes one unit of
    /// the request's retry budget, so a request bouncing between crashing
    /// replicas always terminates; an exhausted budget dead-letters the
    /// request, attributed per tenant in the SLO report. Arrivals are
    /// shed at the plan's tenant-weighted watermark before routing, and
    /// health-aware plans eject down/straggling/probation replicas from
    /// routing candidate sets.
    ///
    /// # Panics
    ///
    /// Panics on closed-loop sources — fault injection needs the
    /// open-loop event grid.
    pub fn run_faulted<S: ArrivalSource + ?Sized>(
        &mut self,
        source: &mut S,
        slo: &SloSpec,
        plan: &FaultPlan,
    ) -> ClusterReport {
        assert!(
            !source.closed_loop(),
            "fault injection drives open-loop sources only"
        );
        let mut queue_depth = Vec::with_capacity(source.remaining_hint().unwrap_or(0));
        let mut run = FaultRun::new(plan, self.replicas.len());
        self.health_aware = plan.health_aware;
        loop {
            self.collect_handoffs();
            let arrival = source.peek_arrival();
            let retry = run.next_retry_time();
            let handoff = self.next_ready();
            if arrival.is_none()
                && retry.is_none()
                && handoff.is_none()
                && !self.replicas.iter().any(Replica::has_work)
            {
                break;
            }
            let fault = run.injector.peek_time();
            // Earliest event wins; at equal instants faults apply before
            // retries, retries before handoff deliveries, and all of
            // them before fresh arrivals. (Unified fleets never have a
            // handoff candidate, so the pre-disaggregation ordering is
            // untouched.)
            let mut best: Option<(f64, u8)> = None;
            for (t, priority) in [(fault, 0u8), (retry, 1), (handoff, 2), (arrival, 3)] {
                if let Some(t) = t {
                    let better = best.is_none_or(|(bt, bp)| t < bt || (t == bt && priority < bp));
                    if better {
                        best = Some((t, priority));
                    }
                }
            }
            let Some((t, which)) = best else {
                // No events left but work remains: run the fleet dry.
                self.drain_all();
                continue;
            };
            match which {
                0 => {
                    if arrival.is_none() && retry.is_none() && handoff.is_none() {
                        // Only fault events remain. Advance to the event
                        // first: if that drains the fleet there is nothing
                        // left to perturb, and injecting further (an MTBF
                        // timeline is endless) would stall termination.
                        self.advance_delivering(t);
                        if !self.replicas.iter().any(Replica::has_work)
                            && self.pending_handoffs.is_empty()
                        {
                            break;
                        }
                    }
                    let ev = run.injector.pop().expect("peeked fault vanished");
                    self.apply_fault(ev, &mut run);
                }
                1 => {
                    self.advance_delivering(t);
                    let ready = run.pop_retry().expect("peeked retry vanished");
                    let mut req = ready.req;
                    req.arrival = ready.ready;
                    let session = run.sessions.get(&req.id).copied().unwrap_or(req.id as u64);
                    let cr = ClusterRequest {
                        request: req,
                        session,
                    };
                    // Re-entries skip shedding (their admission already
                    // happened) and emit no second `Arrived`.
                    self.route_in(&cr, &mut queue_depth, false);
                }
                2 => {
                    self.advance_all(t);
                    self.collect_handoffs();
                    self.deliver_ready(t);
                }
                _ => {
                    let cr = source.next_request().expect("peeked arrival vanished");
                    self.advance_delivering(t);
                    run.sessions.insert(cr.request.id, cr.session);
                    if let Some(shed) = &plan.shed {
                        let outstanding: usize =
                            self.replicas.iter().map(Replica::outstanding).sum();
                        if outstanding >= shed.threshold(cr.request.tenant) {
                            run.record_shed(&cr.request);
                            self.emit_cluster_event(
                                t,
                                0,
                                EventKind::RequestShed {
                                    request: cr.request.id as u64,
                                    tenant: cr.request.tenant,
                                },
                            );
                            continue;
                        }
                    }
                    self.route_in(&cr, &mut queue_depth, true);
                }
            }
        }
        self.health_aware = false;
        self.report_faulted(queue_depth, slo, &run.ledger)
    }

    /// [`Cluster::run_faulted`] with request-lifecycle telemetry: the
    /// same recording scheme as [`Cluster::run_source_traced`], with the
    /// fault lifecycle (crashes, recoveries, retries, sheds, straggler
    /// windows) landing in the cluster-scope stream.
    pub fn run_faulted_traced<S: ArrivalSource + ?Sized>(
        &mut self,
        source: &mut S,
        slo: &SloSpec,
        plan: &FaultPlan,
    ) -> (ClusterReport, Vec<Event>) {
        self.telemetry = Some(RecordingSink::new());
        for (i, rep) in self.replicas.iter_mut().enumerate() {
            rep.enable_telemetry(i as u32);
        }
        let report = self.run_faulted(source, slo, plan);
        let mut streams = Vec::with_capacity(self.replicas.len() + 1);
        streams.push(
            self.telemetry
                .take()
                .map(RecordingSink::into_events)
                .unwrap_or_default(),
        );
        for rep in &mut self.replicas {
            streams.push(rep.take_telemetry());
        }
        (report, merge_streams(streams))
    }

    /// Applies one fault-timeline event to the fleet.
    fn apply_fault(&mut self, ev: FaultEvent, run: &mut FaultRun) {
        let r = ev.replica;
        match ev.action {
            FaultAction::Crash => {
                // The replica computes up to the crash instant, then its
                // remaining work is torn out.
                self.replicas[r].advance_until(ev.at);
                let work = self.replicas[r].crash();
                run.ledger.summary.crashes += 1;
                run.ledger.summary.lost_in_flight += work.lost.len();
                self.emit_cluster_event(
                    ev.at,
                    r,
                    EventKind::ReplicaCrashed {
                        lost: work.lost.len() as u32,
                        checkpointed: work.checkpointed.len() as u32,
                    },
                );
                for req in work.lost {
                    self.bounce(req, ev.at, r, run);
                }
                for ck in work.checkpointed {
                    let Some(attempt) = run.consume_attempt(&ck.request) else {
                        run.dead_letter(&ck.request);
                        self.emit_cluster_event(
                            ev.at,
                            r,
                            EventKind::DeadLettered {
                                request: ck.request.id as u64,
                                tenant: ck.request.tenant,
                            },
                        );
                        continue;
                    };
                    // The migration transfer draw happens on the serial
                    // event path in crash-dump order, so it is
                    // deterministic at any thread count.
                    let transfer_failed = run.rng.chance(run.kv_loss_prob);
                    let target = self.pick_restore_target(r);
                    match target {
                        Some(target) if !transfer_failed => {
                            self.replicas[target].push_restored(ck, ev.at);
                            run.ledger.summary.checkpoints_migrated += 1;
                        }
                        _ => {
                            // Failed transfer (or nowhere to go): degrade
                            // to a from-scratch retry.
                            let bytes = self.replicas[r].checkpoint_bytes(&ck.request, ck.produced);
                            run.ledger.summary.checkpoints_lost += 1;
                            self.emit_cluster_event(
                                ev.at,
                                r,
                                EventKind::CheckpointLost {
                                    request: ck.request.id as u64,
                                    bytes,
                                },
                            );
                            run.schedule_retry(ck.request, ev.at, attempt);
                            self.emit_cluster_event(
                                ev.at,
                                r,
                                EventKind::RetryScheduled {
                                    request: ck.request.id as u64,
                                    tenant: ck.request.tenant,
                                    attempt,
                                },
                            );
                        }
                    }
                }
            }
            FaultAction::Restart => {
                let probation = (run.probation_s > 0.0).then_some(ev.at + run.probation_s);
                self.replicas[r].restart(ev.at, probation);
                run.ledger.summary.recoveries += 1;
                self.emit_cluster_event(ev.at, r, EventKind::ReplicaRecovered);
            }
            FaultAction::StragglerStart(slowdown) => {
                let slowdown = slowdown.max(1.0);
                self.replicas[r].advance_until(ev.at);
                self.replicas[r].set_slowdown(slowdown);
                run.ledger.summary.straggler_windows += 1;
                self.emit_cluster_event(
                    ev.at,
                    r,
                    EventKind::StragglerStarted {
                        permille: (slowdown * 1000.0).round() as u32,
                    },
                );
            }
            FaultAction::StragglerEnd => {
                // Steps started inside the window still pay the slowed
                // price up to the boundary, then costs return to nominal.
                self.replicas[r].advance_until(ev.at);
                self.replicas[r].set_slowdown(1.0);
                self.emit_cluster_event(ev.at, r, EventKind::StragglerEnded);
            }
            FaultAction::ProbationEnd => {
                self.replicas[r].end_probation(ev.at);
            }
        }
    }

    /// Sends one crash-torn request through the retry path: consume
    /// budget, schedule with backoff, or dead-letter.
    fn bounce(&mut self, req: spec_runtime::Request, at: f64, origin: usize, run: &mut FaultRun) {
        match run.consume_attempt(&req) {
            Some(attempt) => {
                run.schedule_retry(req, at, attempt);
                self.emit_cluster_event(
                    at,
                    origin,
                    EventKind::RetryScheduled {
                        request: req.id as u64,
                        tenant: req.tenant,
                        attempt,
                    },
                );
            }
            None => {
                run.dead_letter(&req);
                self.emit_cluster_event(
                    at,
                    origin,
                    EventKind::DeadLettered {
                        request: req.id as u64,
                        tenant: req.tenant,
                    },
                );
            }
        }
    }

    /// The surviving replica a checkpoint restores onto: the
    /// least-outstanding healthy replica other than the crashed one,
    /// falling back to any up replica when none is healthy. `None` only
    /// when every other replica is down. On split fleets the primary
    /// pick skips prefill replicas — a restored checkpoint resumes
    /// *decoding*, and a prefill engine would immediately hand it off
    /// again, paying a pointless second hop.
    fn pick_restore_target(&self, crashed: usize) -> Option<usize> {
        let up = |i: &usize| *i != crashed && !self.replicas[*i].is_down();
        let by_load = |i: &usize| (self.replicas[*i].outstanding(), *i);
        (0..self.replicas.len())
            .filter(up)
            .filter(|&i| !self.health_aware || self.replicas[i].health().routable())
            .filter(|&i| !self.two_stage || self.replicas[i].role() != ReplicaRole::Prefill)
            .min_by_key(by_load)
            .or_else(|| (0..self.replicas.len()).filter(up).min_by_key(by_load))
    }

    /// The closed-loop event path: one replica micro-step per iteration,
    /// completions fed back between steps. Serial by construction, so
    /// the outcome is identical at any `SPEC_THREADS`.
    fn run_closed_loop<S: ArrivalSource + ?Sized>(
        &mut self,
        source: &mut S,
        queue_depth: &mut Vec<(f64, usize)>,
    ) {
        let mut flushed_done = vec![0usize; self.replicas.len()];
        let mut flushed_rejects = vec![0usize; self.replicas.len()];
        loop {
            self.flush_feedback(source, &mut flushed_done, &mut flushed_rejects);
            let Some(t) = source.peek_arrival() else {
                // Nothing ready to depart: either turns are in flight
                // (step the laggard so a completion can unlock one) or
                // the source is exhausted / every session ended.
                let Some(i) = self.laggard_below(f64::INFINITY) else {
                    break;
                };
                self.replicas[i].step_once();
                continue;
            };
            if let Some(i) = self.laggard_below(t) {
                // A working replica is still behind the departure
                // instant; step it and re-peek — its completion may
                // release an *earlier* turn than the one we just saw.
                self.replicas[i].step_once();
                continue;
            }
            let cr = source.next_request().expect("peeked arrival vanished");
            self.route_arrived(&cr, queue_depth);
        }
    }

    /// The lowest-clock working replica strictly behind `t` (ties to the
    /// lowest index), or `None` when the whole fleet has caught up.
    fn laggard_below(&self, t: f64) -> Option<usize> {
        (0..self.replicas.len())
            .filter(|&i| self.replicas[i].has_work() && self.replicas[i].now() < t)
            .min_by(|&a, &b| {
                self.replicas[a]
                    .now()
                    .partial_cmp(&self.replicas[b].now())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
    }

    /// Feeds completions and rejections the source has not seen yet back
    /// into it, completions in `(finish, id)` order so the stream is
    /// deterministic regardless of replica interleaving.
    fn flush_feedback<S: ArrivalSource + ?Sized>(
        &self,
        source: &mut S,
        flushed_done: &mut [usize],
        flushed_rejects: &mut [usize],
    ) {
        let mut fresh: Vec<CompletedRequest> = Vec::new();
        for (i, rep) in self.replicas.iter().enumerate() {
            let all = rep.completed();
            fresh.extend_from_slice(&all[flushed_done[i]..]);
            flushed_done[i] = all.len();
        }
        fresh.sort_by(|a, b| {
            a.finish
                .partial_cmp(&b.finish)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.request.id.cmp(&b.request.id))
        });
        for done in &fresh {
            source.on_complete(done);
        }
        for (i, rep) in self.replicas.iter().enumerate() {
            let all = rep.rejected_requests();
            for req in &all[flushed_rejects[i]..] {
                source.on_reject(req);
            }
            flushed_rejects[i] = all.len();
        }
    }

    /// The routing block every arrival goes through: scale decision,
    /// fleet snapshot, route, hand over, record queue depth.
    fn route_arrived(&mut self, cr: &ClusterRequest, queue_depth: &mut Vec<(f64, usize)>) {
        self.route_in(cr, queue_depth, true);
    }

    /// Routes one request into the fleet. `fresh` arrivals emit the
    /// `Arrived` lifecycle edge; crash-driven re-entries already did on
    /// first arrival and announce themselves via `RetryScheduled`
    /// instead. Under health-aware fault routing, non-healthy replicas
    /// are folded out of the candidate set by clearing their snapshot's
    /// `active` flag, so every policy ejects them unchanged.
    fn route_in(&mut self, cr: &ClusterRequest, queue_depth: &mut Vec<(f64, usize)>, fresh: bool) {
        self.autoscale(cr.request.arrival);
        let mut snapshots: Vec<ReplicaSnapshot> = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| r.snapshot(i))
            .collect();
        if self.health_aware {
            for snap in &mut snapshots {
                if !snap.health.routable() {
                    snap.active = false;
                }
            }
        }
        if self.two_stage {
            // Stage 1: fresh work starts with its prompt phase, so
            // decode-only replicas leave the candidate set the same way
            // unhealthy ones do; the decode target is picked later, at
            // handoff-delivery time.
            for snap in &mut snapshots {
                if self.replicas[snap.index].role() == ReplicaRole::Decode {
                    snap.active = false;
                }
            }
            self.sessions.insert(cr.request.id, cr.session);
        }
        let idx = self.router.route(cr, &snapshots);
        assert!(
            idx < snapshots.len() && (snapshots[idx].active || snapshots.iter().all(|s| !s.active)),
            "router {} picked an unavailable replica {idx}",
            self.router.name()
        );
        if fresh {
            if let Some(sink) = &mut self.telemetry {
                sink.emit(Event {
                    tick: seconds_to_ticks(cr.request.arrival),
                    replica: idx as u32,
                    kind: EventKind::Arrived {
                        request: cr.request.id as u64,
                        tenant: cr.request.tenant,
                    },
                });
            }
        }
        self.replicas[idx].push(cr.request);
        let outstanding: usize = self.replicas.iter().map(Replica::outstanding).sum();
        queue_depth.push((cr.request.arrival, outstanding));
    }

    /// One scale decision, taken at an arrival instant: scale up when
    /// every active replica of some role is backed up, scale down an
    /// idle replica when the fleet is nearly empty.
    ///
    /// The wake pick is cost-aware — among parked candidates of a
    /// backed-up role, the cheapest device wins, ties to the lowest
    /// index — and charges the cold start (spin-up latency plus the
    /// warmup KV transfer over the interconnect) by jumping the woken
    /// replica's clock. On an all-`Unified` homogeneous fleet with the
    /// default zero cold-start this is exactly the original
    /// wake-first-parked-by-index autoscaler.
    fn autoscale(&mut self, now: f64) {
        let Some(auto) = self.cfg.autoscale else {
            return;
        };
        let min_replicas = auto.min_replicas.max(1);
        let active: Vec<usize> = (0..self.replicas.len())
            .filter(|&i| self.replicas[i].is_active())
            .collect();
        let total_outstanding: usize = self.replicas.iter().map(Replica::outstanding).sum();
        // Crashed replicas neither veto a scale-up (their outstanding
        // count is frozen, not low) nor qualify as wake/park candidates
        // — the restart path owns their state.
        let backed_up = |role: ReplicaRole| {
            active
                .iter()
                .filter(|&&i| !self.replicas[i].is_down() && self.replicas[i].role() == role)
                .all(|&i| self.replicas[i].outstanding() >= auto.scale_up_outstanding)
        };
        let wake = (0..self.replicas.len())
            .filter(|&i| !self.replicas[i].is_active() && !self.replicas[i].is_down())
            .filter(|&i| backed_up(self.replicas[i].role()))
            .min_by(|&a, &b| {
                self.replicas[a]
                    .hourly_cost()
                    .partial_cmp(&self.replicas[b].hourly_cost())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
        if let Some(parked) = wake {
            self.replicas[parked].set_active(true);
            let warmup_bytes =
                auto.warmup_kv_tokens as f64 * self.replicas[parked].kv_bytes_per_token() as f64;
            let cold_start = auto.spin_up_s
                + if auto.warmup_kv_tokens > 0 {
                    self.link.time(warmup_bytes)
                } else {
                    0.0
                };
            if cold_start > 0.0 {
                self.replicas[parked].warm_until(now + cold_start);
            }
            self.peak_active = self.peak_active.max(active.len() + 1);
            if self.active_since[parked].is_none() {
                self.active_since[parked] = Some(now);
            }
            self.emit_cluster_event(now, parked, EventKind::ReplicaScaledUp);
            return;
        }
        if active.len() > min_replicas && total_outstanding <= auto.scale_down_outstanding {
            // Park the highest-index active replica that is fully
            // drained: a replica still holding queued or running work is
            // never parked mid-flight — it stays a candidate for when it
            // runs dry. On split fleets the last active replica of a
            // role is never parked, so both routing stages always keep a
            // candidate.
            let last_of_role = |i: usize| {
                self.two_stage
                    && !active
                        .iter()
                        .any(|&j| j != i && self.replicas[j].role() == self.replicas[i].role())
            };
            if let Some(&idle) = active.iter().rev().find(|&&i| {
                self.replicas[i].outstanding() == 0
                    && !self.replicas[i].is_down()
                    && !last_of_role(i)
            }) {
                self.replicas[idle].set_active(false);
                if let Some(start) = self.active_since[idle].take() {
                    self.billed_s[idle] += now - start;
                }
                self.emit_cluster_event(now, idle, EventKind::ReplicaScaledDown);
            }
        }
    }

    /// Records a cluster-scope decision (scaling, fault lifecycle) into
    /// the cluster event buffer.
    fn emit_cluster_event(&mut self, now: f64, replica: usize, kind: EventKind) {
        if let Some(sink) = &mut self.telemetry {
            sink.emit(Event {
                tick: seconds_to_ticks(now),
                replica: replica as u32,
                kind,
            });
        }
    }

    fn report(&self, queue_depth: Vec<(f64, usize)>, slo: &SloSpec) -> ClusterReport {
        self.report_faulted(queue_depth, slo, &FaultLedger::default())
    }

    fn report_faulted(
        &self,
        queue_depth: Vec<(f64, usize)>,
        slo: &SloSpec,
        ledger: &FaultLedger,
    ) -> ClusterReport {
        // Retried, migrated and handed-off requests were restamped to
        // their re-injection/delivery instant (the engines'
        // arrival-order invariant); latency metrics must span from first
        // submission, so patch the original arrival back in — the
        // earliest origin either map recorded. No-fault unified runs
        // have both maps empty and every completion passes through
        // unchanged.
        let patch = |mut c: CompletedRequest| {
            let origin = match (
                ledger.origins.get(&c.request.id),
                self.origins.get(&c.request.id),
            ) {
                (Some(&a), Some(&b)) => Some(a.min(b)),
                (Some(&a), None) | (None, Some(&a)) => Some(a),
                (None, None) => None,
            };
            if let Some(origin) = origin {
                c.request.arrival = origin;
            }
            c
        };
        let replicas: Vec<ReplicaReport> = self
            .replicas
            .iter()
            .map(|r| ReplicaReport {
                device: r.device().to_string(),
                assigned: r.assigned(),
                report: ScheduleReport::from_completed(
                    r.completed().iter().copied().map(patch).collect(),
                    r.now(),
                    r.rejected(),
                ),
            })
            .collect();
        let makespan = self
            .replicas
            .iter()
            .map(Replica::now)
            .fold(0.0f64, f64::max);
        let mut all: Vec<CompletedRequest> = self
            .replicas
            .iter()
            .flat_map(|r| r.completed().iter().copied().map(patch))
            .collect();
        all.sort_by(|a, b| {
            a.finish
                .partial_cmp(&b.finish)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.request.id.cmp(&b.request.id))
        });
        let rejected: usize = self.replicas.iter().map(Replica::rejected).sum();
        // Attribute rejections to tenants for the per-tenant SLO slices.
        let mut rejected_by_tenant: std::collections::BTreeMap<u32, usize> =
            std::collections::BTreeMap::new();
        for rep in &self.replicas {
            for req in rep.rejected_requests() {
                *rejected_by_tenant.entry(req.tenant).or_insert(0) += 1;
            }
        }
        let rejected_by_tenant: Vec<(u32, usize)> = rejected_by_tenant.into_iter().collect();
        let total_tokens: usize = all.iter().map(|c| c.request.output_len).sum();
        let slo_report = slo::evaluate_faulted(
            &all,
            rejected,
            &rejected_by_tenant,
            &ledger.outcomes(),
            makespan,
            slo,
        );
        // Billing: closed windows plus any window still open at the end
        // of the run, priced per replica at its device's hourly rate. A
        // provisioned-but-parked replica bills nothing.
        let mut billed_hours = 0.0;
        let mut cost_usd = 0.0;
        for (i, rep) in self.replicas.iter().enumerate() {
            let open = self.active_since[i].map_or(0.0, |s| (makespan - s).max(0.0));
            let hours = (self.billed_s[i] + open) / 3600.0;
            billed_hours += hours;
            cost_usd += hours * rep.hourly_cost();
        }
        let per_usd = |tokens_per_s: f64| {
            if cost_usd > 0.0 {
                tokens_per_s * makespan / cost_usd
            } else {
                0.0
            }
        };
        let cost = CostReport {
            fleet_hourly_usd: self.replicas.iter().map(Replica::hourly_cost).sum(),
            billed_hours,
            cost_usd,
            goodput_tokens_per_usd: per_usd(slo_report.goodput_tokens_per_s),
            throughput_tokens_per_usd: per_usd(slo_report.throughput_tokens_per_s),
        };
        ClusterReport {
            completed: all.len(),
            rejected,
            makespan,
            throughput: if makespan > 0.0 {
                total_tokens as f64 / makespan
            } else {
                0.0
            },
            slo: slo_report,
            queue_depth,
            peak_active: self.peak_active,
            faults: ledger.summary,
            handoffs: self.handoffs,
            cost,
            replicas,
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("replicas", &self.replicas.len())
            .field("router", &self.router.name())
            .field("cfg", &self.cfg)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{self, ClosedLoopConfig, TraceConfig};
    use crate::router::RouterKind;
    use spec_hwsim::{fleet, DeviceSpec, Fleet};
    use spec_runtime::Workload;
    use spec_tensor::SimRng;

    fn model() -> ModelConfig {
        ModelConfig::deepseek_distill_llama_8b()
    }

    fn trace(rate: f64, count: usize, seed: u64) -> Vec<ClusterRequest> {
        arrivals::generate(
            &TraceConfig::poisson(rate)
                .shapes(vec![Workload::new(2048, 1024, 1)])
                .count(count),
            &mut SimRng::seed(seed),
        )
    }

    fn cluster(n: usize, kind: RouterKind, autoscale: Option<AutoscaleConfig>) -> Cluster {
        let cfg = match autoscale {
            Some(auto) => ClusterConfig::new().autoscale(auto),
            None => ClusterConfig::new(),
        };
        Cluster::from_fleet(
            &model(),
            &fleet::homogeneous(DeviceSpec::a100_80g(), n),
            2048,
            SystemKind::SpeContext,
            cfg,
            kind.build(),
        )
    }

    #[test]
    fn every_request_completes_once() {
        for kind in RouterKind::all() {
            let mut c = cluster(3, kind, None);
            let report = c.run(&trace(2.0, 24, 11), &SloSpec::default());
            assert_eq!(report.completed, 24, "router {kind}");
            assert_eq!(report.rejected, 0);
            let assigned: usize = report.replicas.iter().map(|r| r.assigned).sum();
            assert_eq!(assigned, 24);
        }
    }

    #[test]
    fn more_replicas_cut_latency_under_load() {
        let reqs = trace(1.0, 32, 5);
        let one = cluster(1, RouterKind::LeastOutstanding, None).run(&reqs, &SloSpec::default());
        let four = cluster(4, RouterKind::LeastOutstanding, None).run(&reqs, &SloSpec::default());
        assert!(four.slo.latency.p95 < one.slo.latency.p95);
        assert!(four.makespan <= one.makespan);
        assert!(four.slo.attainment >= one.slo.attainment);
    }

    #[test]
    fn heterogeneous_fleet_routes_more_load_to_bigger_gpus() {
        let devices = Fleet::new()
            .with(DeviceSpec::a100_80g(), 1)
            .with(DeviceSpec::rtx4090(), 1)
            .build();
        let mut c = Cluster::from_fleet(
            &model(),
            &devices,
            2048,
            SystemKind::SpeContext,
            ClusterConfig::default(),
            RouterKind::LeastKvPressure.build(),
        );
        let report = c.run(&trace(4.0, 48, 23), &SloSpec::default());
        assert_eq!(report.completed, 48);
        assert_eq!(report.replicas[0].device, "A100-80GB");
        assert!(
            report.replicas[0].assigned > report.replicas[1].assigned,
            "A100 {} vs 4090 {}",
            report.replicas[0].assigned,
            report.replicas[1].assigned
        );
    }

    #[test]
    fn autoscaler_activates_under_burst_and_reports_peak() {
        let auto = AutoscaleConfig {
            min_replicas: 1,
            scale_up_outstanding: 2,
            scale_down_outstanding: 1,
            ..AutoscaleConfig::default()
        };
        let mut c = cluster(4, RouterKind::LeastOutstanding, Some(auto));
        let report = c.run(&trace(8.0, 40, 7), &SloSpec::default());
        assert_eq!(report.completed, 40);
        assert!(
            report.peak_active > 1,
            "burst should trigger scale-up, peak {}",
            report.peak_active
        );
    }

    #[test]
    fn multi_replica_run_is_thread_count_invariant() {
        // The one parallelization that mutates stateful objects (replica
        // engines) must honour the determinism contract at replicas > 1,
        // where the per-arrival fan-out really runs multi-worker.
        let reqs = trace(4.0, 24, 29);
        let run = |threads: usize| {
            spec_parallel::with_threads(threads, || {
                cluster(3, RouterKind::LeastOutstanding, None).run(&reqs, &SloSpec::default())
            })
        };
        let reference = run(1);
        for t in [2usize, 7] {
            assert_eq!(run(t), reference, "threads={t}");
        }
    }

    #[test]
    fn queue_depth_timeline_matches_trace_length() {
        let reqs = trace(2.0, 16, 3);
        let mut c = cluster(2, RouterKind::RoundRobin, None);
        let report = c.run(&reqs, &SloSpec::default());
        assert_eq!(report.queue_depth.len(), 16);
        assert!(report.queue_depth.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn zero_min_replicas_is_clamped_and_never_panics() {
        // Regression: min_replicas 0 used to leave every replica parked,
        // and RoundRobin divided by zero on the empty active set.
        let auto = AutoscaleConfig {
            min_replicas: 0,
            scale_up_outstanding: 1000,
            scale_down_outstanding: 0,
            ..AutoscaleConfig::default()
        };
        let mut c = cluster(3, RouterKind::RoundRobin, Some(auto));
        let report = c.run(&trace(2.0, 12, 13), &SloSpec::default());
        assert_eq!(report.completed, 12);
        assert!(report.peak_active >= 1);
    }

    #[test]
    fn scale_down_skips_replicas_still_holding_work() {
        // Decision-point pin for the park rule: a replica is parked only
        // once fully drained. Replica 1 is the scan's first candidate
        // (highest index) but holds an in-flight request, so the
        // autoscaler must skip it and park the drained replica 0 instead.
        let auto = AutoscaleConfig {
            min_replicas: 1,
            scale_up_outstanding: 1000,
            scale_down_outstanding: 1000, // park-eligible at every arrival
            ..AutoscaleConfig::default()
        };
        let mut c = cluster(2, RouterKind::LeastOutstanding, Some(auto));
        let mk = |id: usize, arrival: f64| ClusterRequest {
            request: spec_runtime::Request {
                id,
                tenant: 0,
                input_len: 2048,
                output_len: 1024,
                arrival,
            },
            session: id as u64,
        };
        c.replicas[1].set_active(true);
        c.replicas[1].push(mk(0, 0.0).request);
        let report = c.run(&[mk(1, 0.001)], &SloSpec::default());
        assert!(
            c.replicas[1].is_active(),
            "a replica holding outstanding work must never be parked"
        );
        assert!(
            !c.replicas[0].is_active(),
            "the drained replica is the one that parks"
        );
        assert_eq!(report.completed, 2);
    }

    #[test]
    fn session_affinity_repins_when_target_parks_mid_trace() {
        let mut c = cluster(2, RouterKind::SessionAffinity, None);
        let mk = |id: usize, arrival: f64| ClusterRequest {
            request: spec_runtime::Request {
                id,
                tenant: 0,
                input_len: 1024,
                output_len: 256,
                arrival,
            },
            session: 42,
        };
        c.run(&[mk(0, 0.0), mk(1, 0.1)], &SloSpec::default());
        let pinned = (0..2)
            .find(|&i| c.replicas[i].assigned() > 0)
            .expect("session routed somewhere");
        assert_eq!(c.replicas[pinned].assigned(), 2, "session pinned");
        let other = 1 - pinned;
        // Park the pinned replica mid-trace: the next request must fall
        // back AND move the pin.
        c.replicas[pinned].set_active(false);
        let t = c.replicas.iter().map(Replica::now).fold(0.0f64, f64::max) + 1.0;
        c.run(&[mk(2, t)], &SloSpec::default());
        assert_eq!(c.replicas[other].assigned(), 1, "fallback target");
        // Unpark the old target and make it strictly more attractive: a
        // stale pin would route back, a moved pin stays on the fallback.
        c.replicas[pinned].set_active(true);
        let t = c.replicas.iter().map(Replica::now).fold(0.0f64, f64::max) + 1.0;
        c.run(&[mk(3, t)], &SloSpec::default());
        assert_eq!(
            c.replicas[other].assigned(),
            2,
            "session must stay re-pinned to its fallback target"
        );
    }

    #[test]
    fn run_source_over_a_slice_matches_run() {
        let reqs = trace(2.0, 24, 41);
        let a = cluster(3, RouterKind::LeastOutstanding, None).run(&reqs, &SloSpec::default());
        let b = cluster(3, RouterKind::LeastOutstanding, None)
            .run_source(&mut arrivals::SliceSource::new(&reqs), &SloSpec::default());
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_generator_matches_materialized_trace() {
        let cfg = TraceConfig::bursty(1.0, 10.0, 0.1)
            .shapes(vec![Workload::new(2048, 1024, 1)])
            .count(32)
            .seed(19);
        let eager = arrivals::generate(&cfg, &mut SimRng::seed(19));
        let a = cluster(2, RouterKind::LeastKvPressure, None).run(&eager, &SloSpec::default());
        let b = cluster(2, RouterKind::LeastKvPressure, None)
            .run_source(&mut cfg.source(), &SloSpec::default());
        assert_eq!(a, b);
    }

    #[test]
    fn closed_loop_sessions_run_to_completion() {
        let cfg = ClosedLoopConfig::new(4, 3)
            .think(0.5)
            .shapes(vec![Workload::new(1024, 256, 1)])
            .seed(2);
        let mut c = cluster(2, RouterKind::LeastOutstanding, None);
        let report = c.run_source(&mut cfg.source(), &SloSpec::default());
        assert_eq!(report.completed, 12, "4 sessions × 3 turns");
        assert_eq!(report.rejected, 0);
        assert_eq!(report.queue_depth.len(), 12);
        assert!(report.queue_depth.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn closed_loop_turns_depart_after_the_previous_response() {
        // With one session there is never more than one request in the
        // system: each turn's arrival must be at or after the previous
        // turn's finish.
        let cfg = ClosedLoopConfig::new(1, 4)
            .think(0.1)
            .shapes(vec![Workload::new(1024, 256, 1)]);
        let mut c = cluster(1, RouterKind::LeastOutstanding, None);
        let report = c.run_source(&mut cfg.source(), &SloSpec::default());
        assert_eq!(report.completed, 4);
        let done = &report.replicas[0].report.completed;
        for w in done.windows(2) {
            assert!(
                w[1].request.arrival >= w[0].finish,
                "turn at {} departed before the previous finish {}",
                w[1].request.arrival,
                w[0].finish
            );
        }
    }

    #[test]
    fn closed_loop_runs_are_deterministic_and_thread_invariant() {
        let cfg = ClosedLoopConfig::new(6, 2)
            .think(0.2)
            .ramp(1.0)
            .shapes(vec![Workload::new(2048, 512, 1)])
            .seed(5);
        let run = |threads: usize| {
            spec_parallel::with_threads(threads, || {
                cluster(3, RouterKind::LeastOutstanding, None)
                    .run_source(&mut cfg.source(), &SloSpec::default())
            })
        };
        let reference = run(1);
        assert_eq!(reference.completed, 12);
        for t in [2usize, 7] {
            assert_eq!(run(t), reference, "threads={t}");
        }
    }

    fn split_cluster(prefill: usize, decode: usize, link: LinkSpec) -> Cluster {
        let slots = Fleet::new()
            .with_role(DeviceSpec::a100_80g(), ReplicaRole::Prefill, prefill)
            .with_role(DeviceSpec::a100_80g(), ReplicaRole::Decode, decode)
            .build_slots();
        Cluster::from_fleet_slots(
            &model(),
            &slots,
            2048,
            SystemKind::SpeContext,
            ClusterConfig::new().disagg(DisaggConfig::new().link(link)),
            RouterKind::LeastOutstanding.build(),
        )
    }

    #[test]
    fn unified_slots_match_from_fleet_exactly() {
        let reqs = trace(2.0, 24, 11);
        let slots = Fleet::new().with(DeviceSpec::a100_80g(), 3).build_slots();
        let a = Cluster::from_fleet_slots(
            &model(),
            &slots,
            2048,
            SystemKind::SpeContext,
            ClusterConfig::new(),
            RouterKind::LeastOutstanding.build(),
        )
        .run(&reqs, &SloSpec::default());
        let b = cluster(3, RouterKind::LeastOutstanding, None).run(&reqs, &SloSpec::default());
        assert_eq!(a, b);
    }

    #[test]
    fn split_fleet_completes_everything_and_counts_the_hops() {
        let reqs = trace(2.0, 16, 11);
        let mut c = split_cluster(1, 1, LinkSpec::infiniband());
        let report = c.run(&reqs, &SloSpec::default());
        assert_eq!(report.completed, 16);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.handoffs.count, 16, "one hop per request");
        assert!(report.handoffs.bytes > 0.0);
        assert!(report.handoffs.transfer_s > 0.0);
        assert!(
            report.replicas[0].report.completed.is_empty(),
            "prefill replicas retire at first token"
        );
        assert_eq!(report.replicas[1].report.completed.len(), 16);
        // Delivered requests were restamped on the decode engine; the
        // report must span latency from first submission.
        for (c, orig) in report.replicas[1].report.completed.iter().zip(&reqs) {
            assert_eq!(c.request.arrival, orig.request.arrival, "origin patched");
            assert!(c.first_token < c.finish);
        }
    }

    #[test]
    fn pricier_links_stretch_decode_latency_not_bytes() {
        let reqs = trace(1.0, 8, 5);
        let fast = split_cluster(1, 1, LinkSpec::nvlink()).run(&reqs, &SloSpec::default());
        let slow = split_cluster(1, 1, LinkSpec::ethernet_100g()).run(&reqs, &SloSpec::default());
        assert_eq!(fast.completed, 8);
        assert_eq!(slow.completed, 8);
        assert_eq!(
            slow.handoffs.bytes, fast.handoffs.bytes,
            "the link prices the hop, it does not resize it"
        );
        assert!(slow.handoffs.transfer_s > fast.handoffs.transfer_s);
        assert!(
            slow.slo.latency.p50 > fast.slo.latency.p50,
            "slow {} vs fast {}",
            slow.slo.latency.p50,
            fast.slo.latency.p50
        );
    }

    #[test]
    fn billing_charges_active_windows_at_device_rates() {
        let reqs = trace(2.0, 8, 3);
        let mut c = cluster(2, RouterKind::LeastOutstanding, None);
        let r = c.run(&reqs, &SloSpec::default());
        let a100 = DeviceSpec::a100_80g().hourly_cost;
        assert!((r.cost.fleet_hourly_usd - 2.0 * a100).abs() < 1e-12);
        // Fixed fleet: both replicas bill the whole run.
        assert!((r.cost.billed_hours - 2.0 * r.makespan / 3600.0).abs() < 1e-9);
        assert!((r.cost.cost_usd - r.cost.billed_hours * a100).abs() < 1e-9);
        assert!(r.cost.goodput_tokens_per_usd > 0.0);
        assert!(r.cost.throughput_tokens_per_usd >= r.cost.goodput_tokens_per_usd);
        // An autoscaled fleet that never wakes its second replica bills
        // roughly half the replica-hours.
        let auto = AutoscaleConfig {
            min_replicas: 1,
            scale_up_outstanding: 1_000_000,
            scale_down_outstanding: 0,
            ..AutoscaleConfig::default()
        };
        let r2 =
            cluster(2, RouterKind::LeastOutstanding, Some(auto)).run(&reqs, &SloSpec::default());
        assert_eq!(r2.completed, 8);
        assert!(
            r2.cost.billed_hours < r.cost.billed_hours,
            "parked time must be free: {} vs {}",
            r2.cost.billed_hours,
            r.cost.billed_hours
        );
    }

    #[test]
    fn cold_start_pricing_delays_woken_replicas() {
        let reqs = trace(8.0, 24, 7);
        let base = AutoscaleConfig {
            min_replicas: 1,
            scale_up_outstanding: 2,
            scale_down_outstanding: 0,
            ..AutoscaleConfig::default()
        };
        let free =
            cluster(3, RouterKind::LeastOutstanding, Some(base)).run(&reqs, &SloSpec::default());
        let cold_cfg = AutoscaleConfig {
            spin_up_s: 20.0,
            warmup_kv_tokens: 2048,
            ..base
        };
        let cold = cluster(3, RouterKind::LeastOutstanding, Some(cold_cfg))
            .run(&reqs, &SloSpec::default());
        assert_eq!(free.completed, 24);
        assert_eq!(cold.completed, 24);
        assert!(free.peak_active > 1, "burst must trigger a wake");
        assert!(
            cold.slo.latency.p95 > free.slo.latency.p95,
            "cold starts must show up in the tail: {} vs {}",
            cold.slo.latency.p95,
            free.slo.latency.p95
        );
    }

    #[test]
    fn session_affinity_keeps_sessions_on_one_replica() {
        let mut c = cluster(3, RouterKind::SessionAffinity, None);
        let reqs = trace(2.0, 30, 17);
        c.run(&reqs, &SloSpec::default());
        // Re-route the same trace through a fresh router and check the
        // mapping is a function of session id.
        let mut seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let c2 = cluster(3, RouterKind::SessionAffinity, None);
        let mut router = RouterKind::SessionAffinity.build();
        for cr in &reqs {
            let snaps: Vec<ReplicaSnapshot> = c2
                .replicas()
                .iter()
                .enumerate()
                .map(|(i, r)| r.snapshot(i))
                .collect();
            let idx = router.route(cr, &snaps);
            if let Some(&prev) = seen.get(&cr.session) {
                assert_eq!(prev, idx, "session {} moved", cr.session);
            }
            seen.insert(cr.session, idx);
        }
    }
}
