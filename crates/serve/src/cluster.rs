//! The cluster event loop.
//!
//! A [`Cluster`] owns N [`Replica`]s and a routing policy.
//! [`Cluster::run_source`] pulls from a streaming
//! [`ArrivalSource`] one request at a time — a million-request trace is
//! never materialized. For *open-loop* sources, before each arrival it
//! advances every replica's engine to the arrival instant (replicas run
//! independently — a decode iteration may overshoot, exactly as on a
//! real engine), takes an autoscaling decision on queue depth, snapshots
//! the fleet, routes the request, and finally drains all replicas.
//! Because replicas are driven through the runtime scheduler's own
//! micro-steps, a 1-replica cluster reproduces `Scheduler::run`
//! bit-for-bit, which pins the whole subsystem to the single-node
//! Table-3 ground truth. ([`Cluster::run`] is the same loop over a
//! pre-materialized slice.)
//!
//! *Closed-loop* sources need finer event interleaving — a session's
//! next request departs only after its previous response — so the loop
//! micro-steps the laggard replica one scheduler decision at a time,
//! feeding completions (and rejections) back into the source between
//! steps in a deterministic `(finish, id)` order. That path is serial by
//! construction, so closed-loop runs are `SPEC_THREADS`-invariant for
//! free.

use crate::arrivals::{ArrivalSource, ClusterRequest, SliceSource};
use crate::replica::Replica;
use crate::router::{ReplicaSnapshot, RoutePolicy};
use crate::slo::{self, SloReport, SloSpec};
use serde::{Deserialize, Serialize};
use spec_hwsim::DeviceSpec;
use spec_model::ModelConfig;
use spec_runtime::{CompletedRequest, ScheduleReport, SchedulerConfig, ServingSim, SystemKind};
use spec_telemetry::{
    merge_streams, seconds_to_ticks, Event, EventKind, RecordingSink, TelemetrySink,
};

/// Queue-depth-driven scale-up/down.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Replicas kept active at all times.
    pub min_replicas: usize,
    /// Activate a parked replica when every active replica's outstanding
    /// count reaches this depth.
    pub scale_up_outstanding: usize,
    /// Park an idle replica when the fleet's total outstanding count is
    /// at or below this depth.
    pub scale_down_outstanding: usize,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            min_replicas: 1,
            scale_up_outstanding: 4,
            scale_down_outstanding: 1,
        }
    }
}

/// Cluster-wide configuration, built fluently:
///
/// ```
/// use spec_serve::cluster::{AutoscaleConfig, ClusterConfig};
///
/// let cfg = ClusterConfig::new().autoscale(AutoscaleConfig::default());
/// assert!(cfg.autoscale.is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Per-replica continuous-batching configuration.
    pub scheduler: SchedulerConfig,
    /// Autoscaling; `None` keeps the whole fleet active throughout.
    pub autoscale: Option<AutoscaleConfig>,
}

impl ClusterConfig {
    /// The default configuration; chain the builder methods.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-replica scheduler configuration.
    pub fn scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Enables queue-depth autoscaling.
    pub fn autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = Some(autoscale);
        self
    }
}

/// One replica's slice of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaReport {
    /// Device name.
    pub device: String,
    /// Requests routed to this replica.
    pub assigned: usize,
    /// The replica's own serving report — identical in shape to a
    /// single-node `Scheduler::run` result.
    pub report: ScheduleReport,
}

/// The outcome of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Per-replica reports, in fleet order.
    pub replicas: Vec<ReplicaReport>,
    /// Completed requests across the fleet.
    pub completed: usize,
    /// Rejected requests across the fleet.
    pub rejected: usize,
    /// Latest replica clock — the run's wall time.
    pub makespan: f64,
    /// Output tokens/s across the fleet over the makespan.
    pub throughput: f64,
    /// SLO accounting over all completions.
    pub slo: SloReport,
    /// `(arrival_time, fleet outstanding)` after each routing decision.
    pub queue_depth: Vec<(f64, usize)>,
    /// Peak simultaneously-active replicas (autoscaling high-water mark).
    pub peak_active: usize,
}

/// A fleet of serving replicas behind a router.
pub struct Cluster {
    replicas: Vec<Replica>,
    router: Box<dyn RoutePolicy>,
    cfg: ClusterConfig,
    peak_active: usize,
    /// Cluster-scope event buffer (routing and autoscaling decisions);
    /// `None` = untraced. Only the serial routing path writes here, so
    /// its stream is deterministic at any `SPEC_THREADS`.
    telemetry: Option<RecordingSink>,
}

impl Cluster {
    /// Builds a cluster with one replica per serving simulator. With
    /// autoscaling, replicas beyond `min_replicas` start parked;
    /// `min_replicas` is clamped to at least 1, so a fleet can never
    /// start (or scale) to zero active replicas.
    ///
    /// # Panics
    ///
    /// Panics if `sims` is empty.
    pub fn new(
        sims: Vec<ServingSim>,
        system: SystemKind,
        cfg: ClusterConfig,
        router: Box<dyn RoutePolicy>,
    ) -> Self {
        assert!(!sims.is_empty(), "a cluster needs at least one replica");
        let mut replicas: Vec<Replica> = sims
            .into_iter()
            .map(|sim| Replica::new(sim, system, cfg.scheduler.clone()))
            .collect();
        if let Some(auto) = &cfg.autoscale {
            let min = auto.min_replicas.max(1);
            for (i, rep) in replicas.iter_mut().enumerate() {
                rep.set_active(i < min);
            }
        }
        let peak_active = replicas.iter().filter(|r| r.is_active()).count();
        Self {
            replicas,
            router,
            cfg,
            peak_active,
            telemetry: None,
        }
    }

    /// Builds a homogeneous-or-mixed cluster from a device fleet (see
    /// `spec_hwsim::Fleet`), one replica per device, all sharing the
    /// model and per-request KV budget.
    pub fn from_fleet(
        model: &ModelConfig,
        devices: &[DeviceSpec],
        budget: usize,
        system: SystemKind,
        cfg: ClusterConfig,
        router: Box<dyn RoutePolicy>,
    ) -> Self {
        let sims = devices
            .iter()
            .map(|dev| ServingSim::new(model.clone(), dev.clone(), budget))
            .collect();
        Self::new(sims, system, cfg, router)
    }

    /// The fleet, in replica order.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// The routing policy's name.
    pub fn router_name(&self) -> &'static str {
        self.router.name()
    }

    /// Runs an arrival-ordered trace to completion under `slo` — the
    /// same event loop as [`Cluster::run_source`] over a
    /// pre-materialized slice.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival time.
    pub fn run(&mut self, trace: &[ClusterRequest], slo: &SloSpec) -> ClusterReport {
        self.run_source(&mut SliceSource::new(trace), slo)
    }

    /// Runs a streaming [`ArrivalSource`] to completion under `slo`.
    ///
    /// Open-loop sources walk the exact event sequence [`Cluster::run`]
    /// always walked (advance fleet → autoscale → snapshot → route →
    /// push, then drain), so existing traces replay bit-for-bit and a
    /// 1-replica cluster still reproduces `Scheduler::run`. Closed-loop
    /// sources get the fine-grained path: micro-step the laggard
    /// replica, feed completions back, re-peek — so a completion can
    /// release a session's next turn before the fleet moves past it.
    ///
    /// Untraced (the [`Cluster::run_source_traced`] instrumentation
    /// compiles down to no-ops on this path), so existing reports stay
    /// bit-identical.
    pub fn run_source<S: ArrivalSource + ?Sized>(
        &mut self,
        source: &mut S,
        slo: &SloSpec,
    ) -> ClusterReport {
        let mut queue_depth = Vec::with_capacity(source.remaining_hint().unwrap_or(0));
        if source.closed_loop() {
            self.run_closed_loop(source, &mut queue_depth);
        } else {
            while let Some(cr) = source.next_request() {
                let t = cr.request.arrival;
                // Replicas run independently between cluster events, so
                // their micro-stepping fans out over the worker pool.
                // Each replica's state depends only on its own trace
                // slice, so the cluster outcome is identical at any
                // thread count — which is what keeps the 1-replica
                // anchor bit-for-bit on `Scheduler::run`. Idle replicas
                // return from `advance_until` immediately, so only spawn
                // workers when several have stepping to do.
                if self.replicas.iter().filter(|r| r.has_work()).count() > 1 {
                    spec_parallel::par_for_each_mut(&mut self.replicas, |_, rep| {
                        rep.advance_until(t)
                    });
                } else {
                    for rep in &mut self.replicas {
                        rep.advance_until(t);
                    }
                }
                self.route_arrived(&cr, &mut queue_depth);
            }
        }
        if self.replicas.iter().filter(|r| r.has_work()).count() > 1 {
            spec_parallel::par_for_each_mut(&mut self.replicas, |_, rep| rep.drain());
        } else {
            for rep in &mut self.replicas {
                rep.drain();
            }
        }
        self.report(queue_depth, slo)
    }

    /// [`Cluster::run`] with request-lifecycle telemetry: runs the trace
    /// while recording, then returns the merged event stream.
    pub fn run_traced(
        &mut self,
        trace: &[ClusterRequest],
        slo: &SloSpec,
    ) -> (ClusterReport, Vec<Event>) {
        self.run_source_traced(&mut SliceSource::new(trace), slo)
    }

    /// [`Cluster::run_source`] with request-lifecycle telemetry.
    ///
    /// Every replica records into its own tagged buffer (events stamped
    /// with the replica index) and the cluster's routing/scaling
    /// decisions into a cluster-scope buffer; afterwards the streams are
    /// merged on `(tick, stream)` with per-stream emission order
    /// preserved. Replica micro-stepping between arrivals only mutates
    /// per-replica state, and the cluster buffer is only written on the
    /// serial routing path, so the merged stream — like the report — is
    /// identical at any `SPEC_THREADS`.
    pub fn run_source_traced<S: ArrivalSource + ?Sized>(
        &mut self,
        source: &mut S,
        slo: &SloSpec,
    ) -> (ClusterReport, Vec<Event>) {
        self.telemetry = Some(RecordingSink::new());
        for (i, rep) in self.replicas.iter_mut().enumerate() {
            rep.enable_telemetry(i as u32);
        }
        let report = self.run_source(source, slo);
        // Cluster-scope stream first so that at equal ticks the routing
        // decision (Arrived, scale events) sorts before the engine's
        // reaction to it, replica streams in fleet order after.
        let mut streams = Vec::with_capacity(self.replicas.len() + 1);
        streams.push(
            self.telemetry
                .take()
                .map(RecordingSink::into_events)
                .unwrap_or_default(),
        );
        for rep in &mut self.replicas {
            streams.push(rep.take_telemetry());
        }
        (report, merge_streams(streams))
    }

    /// The closed-loop event path: one replica micro-step per iteration,
    /// completions fed back between steps. Serial by construction, so
    /// the outcome is identical at any `SPEC_THREADS`.
    fn run_closed_loop<S: ArrivalSource + ?Sized>(
        &mut self,
        source: &mut S,
        queue_depth: &mut Vec<(f64, usize)>,
    ) {
        let mut flushed_done = vec![0usize; self.replicas.len()];
        let mut flushed_rejects = vec![0usize; self.replicas.len()];
        loop {
            self.flush_feedback(source, &mut flushed_done, &mut flushed_rejects);
            let Some(t) = source.peek_arrival() else {
                // Nothing ready to depart: either turns are in flight
                // (step the laggard so a completion can unlock one) or
                // the source is exhausted / every session ended.
                let Some(i) = self.laggard_below(f64::INFINITY) else {
                    break;
                };
                self.replicas[i].step_once();
                continue;
            };
            if let Some(i) = self.laggard_below(t) {
                // A working replica is still behind the departure
                // instant; step it and re-peek — its completion may
                // release an *earlier* turn than the one we just saw.
                self.replicas[i].step_once();
                continue;
            }
            let cr = source.next_request().expect("peeked arrival vanished");
            self.route_arrived(&cr, queue_depth);
        }
    }

    /// The lowest-clock working replica strictly behind `t` (ties to the
    /// lowest index), or `None` when the whole fleet has caught up.
    fn laggard_below(&self, t: f64) -> Option<usize> {
        (0..self.replicas.len())
            .filter(|&i| self.replicas[i].has_work() && self.replicas[i].now() < t)
            .min_by(|&a, &b| {
                self.replicas[a]
                    .now()
                    .partial_cmp(&self.replicas[b].now())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
    }

    /// Feeds completions and rejections the source has not seen yet back
    /// into it, completions in `(finish, id)` order so the stream is
    /// deterministic regardless of replica interleaving.
    fn flush_feedback<S: ArrivalSource + ?Sized>(
        &self,
        source: &mut S,
        flushed_done: &mut [usize],
        flushed_rejects: &mut [usize],
    ) {
        let mut fresh: Vec<CompletedRequest> = Vec::new();
        for (i, rep) in self.replicas.iter().enumerate() {
            let all = rep.completed();
            fresh.extend_from_slice(&all[flushed_done[i]..]);
            flushed_done[i] = all.len();
        }
        fresh.sort_by(|a, b| {
            a.finish
                .partial_cmp(&b.finish)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.request.id.cmp(&b.request.id))
        });
        for done in &fresh {
            source.on_complete(done);
        }
        for (i, rep) in self.replicas.iter().enumerate() {
            let all = rep.rejected_requests();
            for req in &all[flushed_rejects[i]..] {
                source.on_reject(req);
            }
            flushed_rejects[i] = all.len();
        }
    }

    /// The routing block every arrival goes through: scale decision,
    /// fleet snapshot, route, hand over, record queue depth.
    fn route_arrived(&mut self, cr: &ClusterRequest, queue_depth: &mut Vec<(f64, usize)>) {
        self.autoscale(cr.request.arrival);
        let snapshots: Vec<ReplicaSnapshot> = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| r.snapshot(i))
            .collect();
        let idx = self.router.route(cr, &snapshots);
        assert!(
            self.replicas.get(idx).is_some_and(Replica::is_active),
            "router {} picked an unavailable replica {idx}",
            self.router.name()
        );
        if let Some(sink) = &mut self.telemetry {
            sink.emit(Event {
                tick: seconds_to_ticks(cr.request.arrival),
                replica: idx as u32,
                kind: EventKind::Arrived {
                    request: cr.request.id as u64,
                    tenant: cr.request.tenant,
                },
            });
        }
        self.replicas[idx].push(cr.request);
        let outstanding: usize = self.replicas.iter().map(Replica::outstanding).sum();
        queue_depth.push((cr.request.arrival, outstanding));
    }

    /// One scale decision, taken at an arrival instant: scale up when
    /// every active replica is backed up, scale down an idle replica
    /// when the fleet is nearly empty.
    fn autoscale(&mut self, now: f64) {
        let Some(auto) = self.cfg.autoscale else {
            return;
        };
        let min_replicas = auto.min_replicas.max(1);
        let active: Vec<usize> = (0..self.replicas.len())
            .filter(|&i| self.replicas[i].is_active())
            .collect();
        let total_outstanding: usize = self.replicas.iter().map(Replica::outstanding).sum();
        let all_backed_up = active
            .iter()
            .all(|&i| self.replicas[i].outstanding() >= auto.scale_up_outstanding);
        if all_backed_up {
            if let Some(parked) = (0..self.replicas.len()).find(|&i| !self.replicas[i].is_active())
            {
                self.replicas[parked].set_active(true);
                self.peak_active = self.peak_active.max(active.len() + 1);
                self.emit_scale(now, parked, EventKind::ReplicaScaledUp);
                return;
            }
        }
        if active.len() > min_replicas && total_outstanding <= auto.scale_down_outstanding {
            // Park the highest-index active replica that has run dry.
            if let Some(&idle) = active.iter().rev().find(|&&i| !self.replicas[i].has_work()) {
                self.replicas[idle].set_active(false);
                self.emit_scale(now, idle, EventKind::ReplicaScaledDown);
            }
        }
    }

    /// Records a scale decision into the cluster-scope buffer.
    fn emit_scale(&mut self, now: f64, replica: usize, kind: EventKind) {
        if let Some(sink) = &mut self.telemetry {
            sink.emit(Event {
                tick: seconds_to_ticks(now),
                replica: replica as u32,
                kind,
            });
        }
    }

    fn report(&self, queue_depth: Vec<(f64, usize)>, slo: &SloSpec) -> ClusterReport {
        let replicas: Vec<ReplicaReport> = self
            .replicas
            .iter()
            .map(|r| ReplicaReport {
                device: r.device().to_string(),
                assigned: r.assigned(),
                report: ScheduleReport::from_completed(
                    r.completed().to_vec(),
                    r.now(),
                    r.rejected(),
                ),
            })
            .collect();
        let makespan = self
            .replicas
            .iter()
            .map(Replica::now)
            .fold(0.0f64, f64::max);
        let mut all: Vec<CompletedRequest> = self
            .replicas
            .iter()
            .flat_map(|r| r.completed().iter().copied())
            .collect();
        all.sort_by(|a, b| {
            a.finish
                .partial_cmp(&b.finish)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.request.id.cmp(&b.request.id))
        });
        let rejected: usize = self.replicas.iter().map(Replica::rejected).sum();
        // Attribute rejections to tenants for the per-tenant SLO slices.
        let mut rejected_by_tenant: std::collections::BTreeMap<u32, usize> =
            std::collections::BTreeMap::new();
        for rep in &self.replicas {
            for req in rep.rejected_requests() {
                *rejected_by_tenant.entry(req.tenant).or_insert(0) += 1;
            }
        }
        let rejected_by_tenant: Vec<(u32, usize)> = rejected_by_tenant.into_iter().collect();
        let total_tokens: usize = all.iter().map(|c| c.request.output_len).sum();
        ClusterReport {
            completed: all.len(),
            rejected,
            makespan,
            throughput: if makespan > 0.0 {
                total_tokens as f64 / makespan
            } else {
                0.0
            },
            slo: slo::evaluate_tenanted(&all, rejected, &rejected_by_tenant, makespan, slo),
            queue_depth,
            peak_active: self.peak_active,
            replicas,
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("replicas", &self.replicas.len())
            .field("router", &self.router.name())
            .field("cfg", &self.cfg)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{self, ClosedLoopConfig, TraceConfig};
    use crate::router::RouterKind;
    use spec_hwsim::{fleet, DeviceSpec, Fleet};
    use spec_runtime::Workload;
    use spec_tensor::SimRng;

    fn model() -> ModelConfig {
        ModelConfig::deepseek_distill_llama_8b()
    }

    fn trace(rate: f64, count: usize, seed: u64) -> Vec<ClusterRequest> {
        arrivals::generate(
            &TraceConfig::poisson(rate)
                .shapes(vec![Workload::new(2048, 1024, 1)])
                .count(count),
            &mut SimRng::seed(seed),
        )
    }

    fn cluster(n: usize, kind: RouterKind, autoscale: Option<AutoscaleConfig>) -> Cluster {
        let cfg = match autoscale {
            Some(auto) => ClusterConfig::new().autoscale(auto),
            None => ClusterConfig::new(),
        };
        Cluster::from_fleet(
            &model(),
            &fleet::homogeneous(DeviceSpec::a100_80g(), n),
            2048,
            SystemKind::SpeContext,
            cfg,
            kind.build(),
        )
    }

    #[test]
    fn every_request_completes_once() {
        for kind in RouterKind::all() {
            let mut c = cluster(3, kind, None);
            let report = c.run(&trace(2.0, 24, 11), &SloSpec::default());
            assert_eq!(report.completed, 24, "router {kind}");
            assert_eq!(report.rejected, 0);
            let assigned: usize = report.replicas.iter().map(|r| r.assigned).sum();
            assert_eq!(assigned, 24);
        }
    }

    #[test]
    fn more_replicas_cut_latency_under_load() {
        let reqs = trace(1.0, 32, 5);
        let one = cluster(1, RouterKind::LeastOutstanding, None).run(&reqs, &SloSpec::default());
        let four = cluster(4, RouterKind::LeastOutstanding, None).run(&reqs, &SloSpec::default());
        assert!(four.slo.latency.p95 < one.slo.latency.p95);
        assert!(four.makespan <= one.makespan);
        assert!(four.slo.attainment >= one.slo.attainment);
    }

    #[test]
    fn heterogeneous_fleet_routes_more_load_to_bigger_gpus() {
        let devices = Fleet::new()
            .with(DeviceSpec::a100_80g(), 1)
            .with(DeviceSpec::rtx4090(), 1)
            .build();
        let mut c = Cluster::from_fleet(
            &model(),
            &devices,
            2048,
            SystemKind::SpeContext,
            ClusterConfig::default(),
            RouterKind::LeastKvPressure.build(),
        );
        let report = c.run(&trace(4.0, 48, 23), &SloSpec::default());
        assert_eq!(report.completed, 48);
        assert_eq!(report.replicas[0].device, "A100-80GB");
        assert!(
            report.replicas[0].assigned > report.replicas[1].assigned,
            "A100 {} vs 4090 {}",
            report.replicas[0].assigned,
            report.replicas[1].assigned
        );
    }

    #[test]
    fn autoscaler_activates_under_burst_and_reports_peak() {
        let auto = AutoscaleConfig {
            min_replicas: 1,
            scale_up_outstanding: 2,
            scale_down_outstanding: 1,
        };
        let mut c = cluster(4, RouterKind::LeastOutstanding, Some(auto));
        let report = c.run(&trace(8.0, 40, 7), &SloSpec::default());
        assert_eq!(report.completed, 40);
        assert!(
            report.peak_active > 1,
            "burst should trigger scale-up, peak {}",
            report.peak_active
        );
    }

    #[test]
    fn multi_replica_run_is_thread_count_invariant() {
        // The one parallelization that mutates stateful objects (replica
        // engines) must honour the determinism contract at replicas > 1,
        // where the per-arrival fan-out really runs multi-worker.
        let reqs = trace(4.0, 24, 29);
        let run = |threads: usize| {
            spec_parallel::with_threads(threads, || {
                cluster(3, RouterKind::LeastOutstanding, None).run(&reqs, &SloSpec::default())
            })
        };
        let reference = run(1);
        for t in [2usize, 7] {
            assert_eq!(run(t), reference, "threads={t}");
        }
    }

    #[test]
    fn queue_depth_timeline_matches_trace_length() {
        let reqs = trace(2.0, 16, 3);
        let mut c = cluster(2, RouterKind::RoundRobin, None);
        let report = c.run(&reqs, &SloSpec::default());
        assert_eq!(report.queue_depth.len(), 16);
        assert!(report.queue_depth.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn zero_min_replicas_is_clamped_and_never_panics() {
        // Regression: min_replicas 0 used to leave every replica parked,
        // and RoundRobin divided by zero on the empty active set.
        let auto = AutoscaleConfig {
            min_replicas: 0,
            scale_up_outstanding: 1000,
            scale_down_outstanding: 0,
        };
        let mut c = cluster(3, RouterKind::RoundRobin, Some(auto));
        let report = c.run(&trace(2.0, 12, 13), &SloSpec::default());
        assert_eq!(report.completed, 12);
        assert!(report.peak_active >= 1);
    }

    #[test]
    fn session_affinity_repins_when_target_parks_mid_trace() {
        let mut c = cluster(2, RouterKind::SessionAffinity, None);
        let mk = |id: usize, arrival: f64| ClusterRequest {
            request: spec_runtime::Request {
                id,
                tenant: 0,
                input_len: 1024,
                output_len: 256,
                arrival,
            },
            session: 42,
        };
        c.run(&[mk(0, 0.0), mk(1, 0.1)], &SloSpec::default());
        let pinned = (0..2)
            .find(|&i| c.replicas[i].assigned() > 0)
            .expect("session routed somewhere");
        assert_eq!(c.replicas[pinned].assigned(), 2, "session pinned");
        let other = 1 - pinned;
        // Park the pinned replica mid-trace: the next request must fall
        // back AND move the pin.
        c.replicas[pinned].set_active(false);
        let t = c.replicas.iter().map(Replica::now).fold(0.0f64, f64::max) + 1.0;
        c.run(&[mk(2, t)], &SloSpec::default());
        assert_eq!(c.replicas[other].assigned(), 1, "fallback target");
        // Unpark the old target and make it strictly more attractive: a
        // stale pin would route back, a moved pin stays on the fallback.
        c.replicas[pinned].set_active(true);
        let t = c.replicas.iter().map(Replica::now).fold(0.0f64, f64::max) + 1.0;
        c.run(&[mk(3, t)], &SloSpec::default());
        assert_eq!(
            c.replicas[other].assigned(),
            2,
            "session must stay re-pinned to its fallback target"
        );
    }

    #[test]
    fn run_source_over_a_slice_matches_run() {
        let reqs = trace(2.0, 24, 41);
        let a = cluster(3, RouterKind::LeastOutstanding, None).run(&reqs, &SloSpec::default());
        let b = cluster(3, RouterKind::LeastOutstanding, None)
            .run_source(&mut arrivals::SliceSource::new(&reqs), &SloSpec::default());
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_generator_matches_materialized_trace() {
        let cfg = TraceConfig::bursty(1.0, 10.0, 0.1)
            .shapes(vec![Workload::new(2048, 1024, 1)])
            .count(32)
            .seed(19);
        let eager = arrivals::generate(&cfg, &mut SimRng::seed(19));
        let a = cluster(2, RouterKind::LeastKvPressure, None).run(&eager, &SloSpec::default());
        let b = cluster(2, RouterKind::LeastKvPressure, None)
            .run_source(&mut cfg.source(), &SloSpec::default());
        assert_eq!(a, b);
    }

    #[test]
    fn closed_loop_sessions_run_to_completion() {
        let cfg = ClosedLoopConfig::new(4, 3)
            .think(0.5)
            .shapes(vec![Workload::new(1024, 256, 1)])
            .seed(2);
        let mut c = cluster(2, RouterKind::LeastOutstanding, None);
        let report = c.run_source(&mut cfg.source(), &SloSpec::default());
        assert_eq!(report.completed, 12, "4 sessions × 3 turns");
        assert_eq!(report.rejected, 0);
        assert_eq!(report.queue_depth.len(), 12);
        assert!(report.queue_depth.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn closed_loop_turns_depart_after_the_previous_response() {
        // With one session there is never more than one request in the
        // system: each turn's arrival must be at or after the previous
        // turn's finish.
        let cfg = ClosedLoopConfig::new(1, 4)
            .think(0.1)
            .shapes(vec![Workload::new(1024, 256, 1)]);
        let mut c = cluster(1, RouterKind::LeastOutstanding, None);
        let report = c.run_source(&mut cfg.source(), &SloSpec::default());
        assert_eq!(report.completed, 4);
        let done = &report.replicas[0].report.completed;
        for w in done.windows(2) {
            assert!(
                w[1].request.arrival >= w[0].finish,
                "turn at {} departed before the previous finish {}",
                w[1].request.arrival,
                w[0].finish
            );
        }
    }

    #[test]
    fn closed_loop_runs_are_deterministic_and_thread_invariant() {
        let cfg = ClosedLoopConfig::new(6, 2)
            .think(0.2)
            .ramp(1.0)
            .shapes(vec![Workload::new(2048, 512, 1)])
            .seed(5);
        let run = |threads: usize| {
            spec_parallel::with_threads(threads, || {
                cluster(3, RouterKind::LeastOutstanding, None)
                    .run_source(&mut cfg.source(), &SloSpec::default())
            })
        };
        let reference = run(1);
        assert_eq!(reference.completed, 12);
        for t in [2usize, 7] {
            assert_eq!(run(t), reference, "threads={t}");
        }
    }

    #[test]
    fn session_affinity_keeps_sessions_on_one_replica() {
        let mut c = cluster(3, RouterKind::SessionAffinity, None);
        let reqs = trace(2.0, 30, 17);
        c.run(&reqs, &SloSpec::default());
        // Re-route the same trace through a fresh router and check the
        // mapping is a function of session id.
        let mut seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let c2 = cluster(3, RouterKind::SessionAffinity, None);
        let mut router = RouterKind::SessionAffinity.build();
        for cr in &reqs {
            let snaps: Vec<ReplicaSnapshot> = c2
                .replicas()
                .iter()
                .enumerate()
                .map(|(i, r)| r.snapshot(i))
                .collect();
            let idx = router.route(cr, &snaps);
            if let Some(&prev) = seen.get(&cr.session) {
                assert_eq!(prev, idx, "session {} moved", cr.session);
            }
            seen.insert(cr.session, idx);
        }
    }
}
