//! Request arrival generation behind the streaming [`ArrivalSource`] API.
//!
//! The single-node experiments drive the scheduler closed-loop: a fixed
//! batch of requests, all present from the start. Cluster serving claims
//! only hold up under *open-loop* load — requests keep arriving whether
//! or not the fleet keeps up — and under realistic arrival processes, so
//! this module generates Poisson, bursty (Markov-modulated), diurnal and
//! flash-crowd traffic over the runtime's [`Workload`] shapes, plus
//! closed-loop sessions whose next request departs only after the
//! previous response. Everything draws from a seeded
//! [`SimRng`], so every trace is reproducible bit-for-bit.
//!
//! # The `ArrivalSource` contract
//!
//! Arrivals are *streamed*, never materialized: an [`ArrivalSource`] is a
//! peekable queue of future requests the cluster event loop pulls from
//! one decision at a time, so million-request runs hold O(1) requests in
//! memory. The contract:
//!
//! * [`peek_arrival`](ArrivalSource::peek_arrival) reports the arrival
//!   instant of the next pending request without consuming it;
//!   [`next_request`](ArrivalSource::next_request) consumes it. Emitted
//!   arrival stamps are nondecreasing (closed-loop sources clamp, see
//!   below), which is what lets every consumer — routers, autoscaling,
//!   SLO accounting — process arrivals as one ordered event stream.
//! * A source may answer `peek_arrival() == None` while still expecting
//!   to emit more requests later: a *closed-loop* source
//!   ([`closed_loop`](ArrivalSource::closed_loop) returns `true`) releases
//!   a session's next request only once
//!   [`on_complete`](ArrivalSource::on_complete) observes the previous
//!   response. The cluster event loop keeps stepping replicas and
//!   feeding completions back until the source runs dry.
//! * The eager [`generate`] helper drains a [`GeneratedArrivals`] source,
//!   so the streaming API and the historical `Vec<ClusterRequest>` path
//!   produce byte-identical traces from the same seed (pinned by tests).

use crate::trace::TraceError;
use serde::{Deserialize, Serialize};
use spec_runtime::{CompletedRequest, Request, Workload};
use spec_tensor::SimRng;
use std::collections::BinaryHeap;

/// A cluster-level request: the runtime request plus the session it
/// belongs to (the affinity key routers may exploit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterRequest {
    /// The underlying serving request.
    pub request: Request,
    /// Session (user/conversation) id; requests of one session share
    /// prefix state, so affinity routing keeps them on one replica.
    pub session: u64,
}

/// The arrival process shaping request inter-arrival times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals: exponential inter-arrival times at
    /// `rate` requests/second.
    Poisson {
        /// Mean arrival rate, requests/second.
        rate: f64,
    },
    /// Markov-modulated on/off Poisson: before each arrival the process
    /// flips between a calm and a burst phase with probability
    /// `switch_prob`, then samples the inter-arrival time at the active
    /// phase's rate. Models flash crowds and diurnal spikes.
    Bursty {
        /// Calm-phase arrival rate, requests/second.
        base_rate: f64,
        /// Burst-phase arrival rate, requests/second.
        burst_rate: f64,
        /// Per-arrival probability of switching phase.
        switch_prob: f32,
    },
    /// Diurnal cycle: a nonhomogeneous Poisson process whose rate swings
    /// sinusoidally between `base_rate` (trough) and `peak_rate` (crest)
    /// with period `period_s` — the multi-hour day/night traffic shape.
    /// Each inter-arrival is sampled at the rate in effect at the
    /// previous arrival (a step-wise approximation that stays exact in
    /// the limit of rates ≫ 1/period).
    Diurnal {
        /// Trough arrival rate, requests/second (rate at t = 0).
        base_rate: f64,
        /// Crest arrival rate, requests/second (rate at t = period/2).
        peak_rate: f64,
        /// Cycle length, seconds.
        period_s: f64,
    },
    /// Flash crowd: steady `base_rate` except for one window
    /// `[start_s, start_s + duration_s)` served at `flash_rate` — the
    /// retweeted-link / product-launch stampede.
    FlashCrowd {
        /// Steady-state arrival rate, requests/second.
        base_rate: f64,
        /// In-window arrival rate, requests/second.
        flash_rate: f64,
        /// Window start, seconds.
        start_s: f64,
        /// Window length, seconds.
        duration_s: f64,
    },
}

/// One tenant class in a multi-tenant mix: who sends, how often
/// relative to the others, and what their requests look like.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantClass {
    /// Tenant id stamped on the generated requests.
    pub tenant: u32,
    /// Mixture weight: the fraction of arrivals billed to this tenant is
    /// `weight / Σ weights`.
    pub weight: usize,
    /// Shape mixture for this tenant's requests (each [`Workload`]'s
    /// `requests` field is its weight within the class). Must be
    /// non-empty.
    pub shapes: Vec<Workload>,
}

impl TenantClass {
    /// Convenience constructor.
    pub fn new(tenant: u32, weight: usize, shapes: Vec<Workload>) -> Self {
        Self {
            tenant,
            weight,
            shapes,
        }
    }
}

/// The default session assignment: one session per four requests — the
/// single helper every constructor and generator shares (it used to be
/// duplicated across three constructors).
pub fn default_sessions(count: usize) -> usize {
    (count / 4).max(1)
}

/// An open-loop trace generator configuration, built fluently:
///
/// ```
/// use spec_runtime::Workload;
/// use spec_serve::arrivals::TraceConfig;
///
/// let cfg = TraceConfig::poisson(2.0)
///     .shapes(vec![Workload::new(2048, 1024, 1)])
///     .count(64)
///     .seed(7);
/// let trace: Vec<_> = cfg.source().collect();
/// assert_eq!(trace.len(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Request-shape mixture; each [`Workload`]'s `requests` field is its
    /// mixture weight (Table-3 shapes reused verbatim have weight equal
    /// to their batch size).
    pub shapes: Vec<Workload>,
    /// Multi-tenant mix. Empty (the default) stamps every request with
    /// tenant 0 and draws shapes from `shapes`, leaving the RNG stream —
    /// and therefore every pre-tenant trace — byte-identical. Non-empty
    /// draws each arrival's tenant class by weight, then its shape from
    /// that class's own mixture (`shapes` above is ignored).
    pub tenants: Vec<TenantClass>,
    /// Number of distinct sessions to spread requests over; `None`
    /// falls back to [`default_sessions`].
    pub sessions: Option<usize>,
    /// Number of requests to generate.
    pub count: usize,
    /// Seed for [`TraceConfig::source`] (callers that thread their own
    /// [`SimRng`] through [`generate`] / [`TraceConfig::source_with`]
    /// ignore it).
    pub seed: u64,
}

impl TraceConfig {
    /// A config over the given process with everything else defaulted;
    /// chain the builder methods to fill it in.
    pub fn new(process: ArrivalProcess) -> Self {
        Self {
            process,
            shapes: Vec::new(),
            tenants: Vec::new(),
            sessions: None,
            count: 0,
            seed: 0,
        }
    }

    /// Open-loop Poisson arrivals at `rate` requests/second.
    pub fn poisson(rate: f64) -> Self {
        Self::new(ArrivalProcess::Poisson { rate })
    }

    /// Markov-modulated bursty arrivals (see [`ArrivalProcess::Bursty`]).
    pub fn bursty(base_rate: f64, burst_rate: f64, switch_prob: f32) -> Self {
        Self::new(ArrivalProcess::Bursty {
            base_rate,
            burst_rate,
            switch_prob,
        })
    }

    /// Sinusoidal diurnal-cycle arrivals (see [`ArrivalProcess::Diurnal`]).
    pub fn diurnal(base_rate: f64, peak_rate: f64, period_s: f64) -> Self {
        Self::new(ArrivalProcess::Diurnal {
            base_rate,
            peak_rate,
            period_s,
        })
    }

    /// Steady arrivals with one flash-crowd window (see
    /// [`ArrivalProcess::FlashCrowd`]).
    pub fn flash_crowd(base_rate: f64, flash_rate: f64, start_s: f64, duration_s: f64) -> Self {
        Self::new(ArrivalProcess::FlashCrowd {
            base_rate,
            flash_rate,
            start_s,
            duration_s,
        })
    }

    /// Sets the request-shape mixture.
    pub fn shapes(mut self, shapes: Vec<Workload>) -> Self {
        self.shapes = shapes;
        self
    }

    /// Sets the multi-tenant mix (shapes then come from each class).
    pub fn tenants(mut self, tenants: Vec<TenantClass>) -> Self {
        self.tenants = tenants;
        self
    }

    /// Overrides the session count ([`default_sessions`] otherwise).
    pub fn sessions(mut self, sessions: usize) -> Self {
        self.sessions = Some(sessions);
        self
    }

    /// Sets the number of requests to generate.
    pub fn count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Sets the seed [`TraceConfig::source`] builds its RNG from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The session count in effect: the explicit override or
    /// [`default_sessions`].
    pub fn effective_sessions(&self) -> usize {
        self.sessions
            .unwrap_or_else(|| default_sessions(self.count))
    }

    /// A streaming source over this config, seeded from `self.seed`.
    pub fn source(&self) -> GeneratedArrivals {
        self.source_with(SimRng::seed(self.seed))
    }

    /// A streaming source over this config drawing from an explicit RNG
    /// (continuing whatever stream the caller owns).
    pub fn source_with(&self, rng: SimRng) -> GeneratedArrivals {
        GeneratedArrivals::new(self.clone(), rng)
    }
}

/// A streaming, peekable queue of future requests: the arrivals API the
/// cluster event loop consumes (see the [module docs](self) for the
/// contract).
pub trait ArrivalSource {
    /// Arrival instant of the next pending request, or `None` when no
    /// request is currently pending (which for a
    /// [closed-loop](ArrivalSource::closed_loop) source may mean
    /// "waiting on a completion", not "exhausted").
    fn peek_arrival(&mut self) -> Option<f64>;

    /// Consumes and returns the next pending request.
    fn next_request(&mut self) -> Option<ClusterRequest>;

    /// Observes a completion. Closed-loop sources use this to release
    /// the session's next request after think time; open-loop sources
    /// ignore it (and the cluster skips the calls entirely).
    fn on_complete(&mut self, _done: &CompletedRequest) {}

    /// Observes a rejection (a request the fleet can never admit).
    /// Closed-loop sources end the session — a user whose request was
    /// refused does not keep typing follow-ups.
    fn on_reject(&mut self, _req: &Request) {}

    /// Whether [`on_complete`](ArrivalSource::on_complete) can release
    /// new arrivals. Drives the cluster's fine-grained event loop;
    /// `false` (the default) lets it batch replica advancement exactly
    /// like the historical trace walk.
    fn closed_loop(&self) -> bool {
        false
    }

    /// Requests still to come, when the source knows.
    fn remaining_hint(&self) -> Option<usize> {
        None
    }
}

/// Streaming generator over a [`TraceConfig`]: Poisson / bursty /
/// diurnal / flash-crowd arrivals, optionally multi-tenant. Produces the
/// byte-identical request stream (same RNG draw order) as the eager
/// [`generate`] helper.
#[derive(Debug, Clone)]
pub struct GeneratedArrivals {
    cfg: TraceConfig,
    rng: SimRng,
    tenant_weights: Vec<usize>,
    tenant_total: usize,
    base_table: (Vec<usize>, usize),
    class_tables: Vec<(Vec<usize>, usize)>,
    sessions: usize,
    t: f64,
    in_burst: bool,
    generated: usize,
    lookahead: Option<ClusterRequest>,
}

impl GeneratedArrivals {
    /// Builds the source; draws nothing until first peeked/pulled.
    ///
    /// # Panics
    ///
    /// Panics if the shape mixture is empty (`shapes` when `tenants` is
    /// empty, any class's `shapes` otherwise), if a tenant mix has zero
    /// total weight, or if any rate is non-positive.
    pub fn new(cfg: TraceConfig, rng: SimRng) -> Self {
        if cfg.tenants.is_empty() {
            assert!(!cfg.shapes.is_empty(), "no request shapes");
        } else {
            assert!(
                cfg.tenants.iter().all(|c| !c.shapes.is_empty()),
                "every tenant class needs request shapes"
            );
            assert!(
                cfg.tenants.iter().map(|c| c.weight).sum::<usize>() > 0,
                "tenant mix has zero total weight"
            );
        }
        match cfg.process {
            ArrivalProcess::Poisson { rate } => assert!(rate > 0.0, "rate must be positive"),
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                ..
            } => assert!(
                base_rate > 0.0 && burst_rate > 0.0,
                "rates must be positive"
            ),
            ArrivalProcess::Diurnal {
                base_rate,
                peak_rate,
                period_s,
            } => assert!(
                base_rate > 0.0 && peak_rate > 0.0 && period_s > 0.0,
                "rates and period must be positive"
            ),
            ArrivalProcess::FlashCrowd {
                base_rate,
                flash_rate,
                duration_s,
                ..
            } => assert!(
                base_rate > 0.0 && flash_rate > 0.0 && duration_s >= 0.0,
                "rates must be positive"
            ),
        }
        let tenant_weights: Vec<usize> = cfg.tenants.iter().map(|c| c.weight).collect();
        let tenant_total: usize = tenant_weights.iter().sum();
        // Shape mixtures are fixed per class, so hoist the weight tables
        // out of the per-request path.
        let shape_table = |shapes: &[Workload]| -> (Vec<usize>, usize) {
            let w: Vec<usize> = shapes.iter().map(|x| x.requests.max(1)).collect();
            let total = w.iter().sum();
            (w, total)
        };
        let base_table = shape_table(&cfg.shapes);
        let class_tables: Vec<(Vec<usize>, usize)> =
            cfg.tenants.iter().map(|c| shape_table(&c.shapes)).collect();
        let sessions = cfg.effective_sessions().max(1);
        Self {
            cfg,
            rng,
            tenant_weights,
            tenant_total,
            base_table,
            class_tables,
            sessions,
            t: 0.0,
            in_burst: false,
            generated: 0,
            lookahead: None,
        }
    }

    /// Consumes the source, returning the RNG so a caller-threaded
    /// stream continues exactly where generation left off.
    pub fn into_rng(self) -> SimRng {
        self.rng
    }

    /// The rate in effect for the next inter-arrival draw. Bursty phase
    /// switching draws from the RNG, exactly as the historical eager
    /// generator did (one `chance` per arrival, before the exponential).
    fn next_rate(&mut self) -> f64 {
        match self.cfg.process {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                switch_prob,
            } => {
                if self.rng.chance(switch_prob) {
                    self.in_burst = !self.in_burst;
                }
                if self.in_burst {
                    burst_rate
                } else {
                    base_rate
                }
            }
            ArrivalProcess::Diurnal {
                base_rate,
                peak_rate,
                period_s,
            } => {
                let phase = std::f64::consts::TAU * self.t / period_s;
                base_rate + (peak_rate - base_rate) * 0.5 * (1.0 - phase.cos())
            }
            ArrivalProcess::FlashCrowd {
                base_rate,
                flash_rate,
                start_s,
                duration_s,
            } => {
                if self.t >= start_s && self.t < start_s + duration_s {
                    flash_rate
                } else {
                    base_rate
                }
            }
        }
    }

    fn fill_lookahead(&mut self) {
        if self.lookahead.is_some() || self.generated >= self.cfg.count {
            return;
        }
        let id = self.generated;
        let rate = self.next_rate();
        // Inverse-CDF exponential sample; uniform() is in [0, 1), so the
        // argument of ln is in (0, 1] and dt is finite.
        let u = self.rng.uniform() as f64;
        self.t += -(1.0 - u).ln() / rate;
        // The class draw only happens for tenanted configs, so
        // tenant-free traces keep their historical RNG stream.
        let (tenant, shapes, table) = if self.cfg.tenants.is_empty() {
            (0u32, self.cfg.shapes.as_slice(), &self.base_table)
        } else {
            let i = weighted_pick(&mut self.rng, &self.tenant_weights, self.tenant_total);
            (
                self.cfg.tenants[i].tenant,
                self.cfg.tenants[i].shapes.as_slice(),
                &self.class_tables[i],
            )
        };
        let shape = shapes[weighted_pick(&mut self.rng, &table.0, table.1)];
        let session = self.rng.below(self.sessions) as u64;
        self.generated += 1;
        self.lookahead = Some(ClusterRequest {
            request: Request::with_shape(id, tenant, &shape, self.t),
            session,
        });
    }
}

impl ArrivalSource for GeneratedArrivals {
    fn peek_arrival(&mut self) -> Option<f64> {
        self.fill_lookahead();
        self.lookahead.map(|cr| cr.request.arrival)
    }

    fn next_request(&mut self) -> Option<ClusterRequest> {
        self.fill_lookahead();
        self.lookahead.take()
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.cfg.count - self.generated + usize::from(self.lookahead.is_some()))
    }
}

impl Iterator for GeneratedArrivals {
    type Item = ClusterRequest;

    fn next(&mut self) -> Option<ClusterRequest> {
        self.next_request()
    }
}

/// An [`ArrivalSource`] view over a pre-materialized, arrival-sorted
/// slice — the adapter that keeps `Cluster::run(&[ClusterRequest])`
/// running through the same streaming event loop as everything else.
#[derive(Debug)]
pub struct SliceSource<'a> {
    items: &'a [ClusterRequest],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Wraps a sorted slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is not sorted by arrival time.
    pub fn new(items: &'a [ClusterRequest]) -> Self {
        assert!(
            items
                .windows(2)
                .all(|w| w[0].request.arrival <= w[1].request.arrival),
            "trace must be sorted by arrival"
        );
        Self { items, pos: 0 }
    }
}

impl ArrivalSource for SliceSource<'_> {
    fn peek_arrival(&mut self) -> Option<f64> {
        self.items.get(self.pos).map(|cr| cr.request.arrival)
    }

    fn next_request(&mut self) -> Option<ClusterRequest> {
        let cr = self.items.get(self.pos).copied();
        self.pos += cr.is_some() as usize;
        cr
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.items.len() - self.pos)
    }
}

/// Closed-loop session driving: `sessions` users each issue `turns`
/// requests, and a user's next request departs only `think_time_s`
/// (exponentially distributed) after their previous response finished.
/// Built fluently like [`TraceConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopConfig {
    /// Concurrent user sessions.
    pub sessions: usize,
    /// Requests per session.
    pub turns: usize,
    /// Mean think time between a response and the session's next
    /// request, seconds (exponentially distributed; 0 pipelines turns
    /// back to back).
    pub think_time_s: f64,
    /// Request-shape mixture (weights as in [`TraceConfig::shapes`]).
    pub shapes: Vec<Workload>,
    /// Multi-tenant mix; each session is billed to one class drawn by
    /// weight at start (empty = all tenant 0, shapes from `shapes`).
    pub tenants: Vec<TenantClass>,
    /// First-turn departures spread uniformly over `[0, ramp_s)`;
    /// 0 starts every session at t = 0.
    pub ramp_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ClosedLoopConfig {
    /// `sessions` users of `turns` requests each; chain the builders.
    pub fn new(sessions: usize, turns: usize) -> Self {
        Self {
            sessions,
            turns,
            think_time_s: 0.0,
            shapes: Vec::new(),
            tenants: Vec::new(),
            ramp_s: 0.0,
            seed: 0,
        }
    }

    /// Sets the mean think time, seconds.
    pub fn think(mut self, think_time_s: f64) -> Self {
        self.think_time_s = think_time_s;
        self
    }

    /// Sets the request-shape mixture.
    pub fn shapes(mut self, shapes: Vec<Workload>) -> Self {
        self.shapes = shapes;
        self
    }

    /// Sets the multi-tenant mix (one class drawn per session).
    pub fn tenants(mut self, tenants: Vec<TenantClass>) -> Self {
        self.tenants = tenants;
        self
    }

    /// Spreads first-turn departures over `[0, ramp_s)`.
    pub fn ramp(mut self, ramp_s: f64) -> Self {
        self.ramp_s = ramp_s;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the closed-loop source.
    pub fn source(&self) -> ClosedLoopSource {
        ClosedLoopSource::new(self.clone())
    }
}

/// A session ready to depart: ordered by (arrival, session) in the ready
/// heap. Arrival times are non-negative, so their IEEE-754 bit patterns
/// order exactly like the floats and give us a total order for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ReadySession {
    arrival_bits: u64,
    session: u64,
}

/// The closed-loop [`ArrivalSource`]: a ready-heap of sessions whose
/// next departure instant is known, plus in-flight requests whose
/// completion will schedule the follow-up turn.
///
/// Emitted arrival stamps are clamped to be nondecreasing: when a
/// lagging replica's completion releases a turn whose departure instant
/// precedes an arrival the cluster already routed, the turn enters the
/// event stream at the later instant (counted in
/// [`clamped`](ClosedLoopSource::clamped); rare, because the cluster's
/// closed-loop event path interleaves replica micro-steps with
/// completion feedback).
#[derive(Debug, Clone)]
pub struct ClosedLoopSource {
    cfg: ClosedLoopConfig,
    rng: SimRng,
    ready: BinaryHeap<std::cmp::Reverse<ReadySession>>,
    /// Request id → session, for routing completions back.
    in_flight: std::collections::HashMap<usize, u64>,
    /// Turns left per session (including any in-flight one).
    remaining: Vec<usize>,
    session_tenant: Vec<u32>,
    class_tables: Vec<(Vec<usize>, usize)>,
    base_table: (Vec<usize>, usize),
    last_emitted: f64,
    next_id: usize,
    clamped: usize,
    aborted_sessions: usize,
}

impl ClosedLoopSource {
    /// Builds the source and schedules every session's first departure.
    ///
    /// # Panics
    ///
    /// Panics if `sessions` or `turns` is 0, the active shape mixture is
    /// empty, or `think_time_s`/`ramp_s` is negative.
    pub fn new(cfg: ClosedLoopConfig) -> Self {
        assert!(cfg.sessions > 0, "closed loop needs at least one session");
        assert!(cfg.turns > 0, "closed loop needs at least one turn");
        assert!(
            cfg.think_time_s >= 0.0 && cfg.ramp_s >= 0.0,
            "times must be non-negative"
        );
        if cfg.tenants.is_empty() {
            assert!(!cfg.shapes.is_empty(), "no request shapes");
        } else {
            assert!(
                cfg.tenants.iter().all(|c| !c.shapes.is_empty()),
                "every tenant class needs request shapes"
            );
            assert!(
                cfg.tenants.iter().map(|c| c.weight).sum::<usize>() > 0,
                "tenant mix has zero total weight"
            );
        }
        let mut rng = SimRng::seed(cfg.seed);
        let shape_table = |shapes: &[Workload]| -> (Vec<usize>, usize) {
            let w: Vec<usize> = shapes.iter().map(|x| x.requests.max(1)).collect();
            let total = w.iter().sum();
            (w, total)
        };
        let base_table = shape_table(&cfg.shapes);
        let class_tables: Vec<(Vec<usize>, usize)> =
            cfg.tenants.iter().map(|c| shape_table(&c.shapes)).collect();
        let tenant_weights: Vec<usize> = cfg.tenants.iter().map(|c| c.weight).collect();
        let tenant_total: usize = tenant_weights.iter().sum();
        let mut ready = BinaryHeap::with_capacity(cfg.sessions);
        let mut session_tenant = Vec::with_capacity(cfg.sessions);
        for s in 0..cfg.sessions {
            let class = if cfg.tenants.is_empty() {
                u32::MAX // sentinel: draw from the base mixture
            } else {
                weighted_pick(&mut rng, &tenant_weights, tenant_total) as u32
            };
            session_tenant.push(class);
            let depart = if cfg.ramp_s > 0.0 {
                self::ramp_sample(&mut rng, cfg.ramp_s)
            } else {
                0.0
            };
            ready.push(std::cmp::Reverse(ReadySession {
                arrival_bits: depart.to_bits(),
                session: s as u64,
            }));
        }
        let remaining = vec![cfg.turns; cfg.sessions];
        Self {
            cfg,
            rng,
            ready,
            in_flight: std::collections::HashMap::new(),
            remaining,
            session_tenant,
            class_tables,
            base_table,
            last_emitted: 0.0,
            next_id: 0,
            clamped: 0,
            aborted_sessions: 0,
        }
    }

    /// Arrivals whose stamp was clamped forward to keep the emitted
    /// stream sorted.
    pub fn clamped(&self) -> usize {
        self.clamped
    }

    /// Sessions ended early because a request was rejected.
    pub fn aborted_sessions(&self) -> usize {
        self.aborted_sessions
    }

    fn shape_for(&mut self, session: usize) -> (u32, Workload) {
        let class = self.session_tenant[session];
        if class == u32::MAX {
            let i = weighted_pick(&mut self.rng, &self.base_table.0, self.base_table.1);
            (0, self.cfg.shapes[i])
        } else {
            let table = &self.class_tables[class as usize];
            let i = weighted_pick(&mut self.rng, &table.0, table.1);
            let c = &self.cfg.tenants[class as usize];
            (c.tenant, c.shapes[i])
        }
    }
}

/// Uniform sample in `[0, hi)` in f64 (kept out of the impl so the
/// constructor can call it while `ready` is partially built).
fn ramp_sample(rng: &mut SimRng, hi: f64) -> f64 {
    rng.uniform() as f64 * hi
}

impl ArrivalSource for ClosedLoopSource {
    fn peek_arrival(&mut self) -> Option<f64> {
        self.ready
            .peek()
            .map(|r| f64::from_bits(r.0.arrival_bits).max(self.last_emitted))
    }

    fn next_request(&mut self) -> Option<ClusterRequest> {
        let std::cmp::Reverse(ready) = self.ready.pop()?;
        let session = ready.session as usize;
        let scheduled = f64::from_bits(ready.arrival_bits);
        let arrival = if scheduled < self.last_emitted {
            self.clamped += 1;
            self.last_emitted
        } else {
            scheduled
        };
        self.last_emitted = arrival;
        let (tenant, shape) = self.shape_for(session);
        let id = self.next_id;
        self.next_id += 1;
        self.remaining[session] -= 1;
        self.in_flight.insert(id, ready.session);
        Some(ClusterRequest {
            request: Request::with_shape(id, tenant, &shape, arrival),
            session: ready.session,
        })
    }

    fn on_complete(&mut self, done: &CompletedRequest) {
        let Some(session) = self.in_flight.remove(&done.request.id) else {
            return;
        };
        if self.remaining[session as usize] == 0 {
            return;
        }
        let think = if self.cfg.think_time_s > 0.0 {
            let u = self.rng.uniform() as f64;
            -(1.0 - u).ln() * self.cfg.think_time_s
        } else {
            0.0
        };
        self.ready.push(std::cmp::Reverse(ReadySession {
            arrival_bits: (done.finish + think).to_bits(),
            session,
        }));
    }

    fn on_reject(&mut self, req: &Request) {
        if let Some(session) = self.in_flight.remove(&req.id) {
            if self.remaining[session as usize] > 0 {
                self.remaining[session as usize] = 0;
                self.aborted_sessions += 1;
            }
        }
    }

    fn closed_loop(&self) -> bool {
        true
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.remaining.iter().sum())
    }
}

/// Generates a trace sorted by arrival time, ids `0..count`, by draining
/// a [`GeneratedArrivals`] source (the streaming and eager paths share
/// one implementation, so they are byte-identical by construction).
///
/// # Panics
///
/// Panics on the invalid configs [`GeneratedArrivals::new`] rejects.
pub fn generate(cfg: &TraceConfig, rng: &mut SimRng) -> Vec<ClusterRequest> {
    let mut source = GeneratedArrivals::new(cfg.clone(), rng.clone());
    let mut out = Vec::with_capacity(cfg.count);
    while let Some(cr) = source.next_request() {
        out.push(cr);
    }
    *rng = source.into_rng();
    out
}

/// One weighted index draw: the standard cumulative-weight walk.
fn weighted_pick(rng: &mut SimRng, weights: &[usize], total: usize) -> usize {
    let mut pick = rng.below(total);
    for (i, w) in weights.iter().enumerate() {
        if pick < *w {
            return i;
        }
        pick -= w;
    }
    weights.len() - 1
}

/// Builds a trace from explicit `(arrival, input_len, output_len)`
/// tuples (replaying a measured workload); each request is its own
/// session. Returns [`TraceError::Unsorted`] when arrivals are not
/// nondecreasing (it used to panic).
pub fn from_trace(items: &[(f64, usize, usize)]) -> Result<Vec<ClusterRequest>, TraceError> {
    if let Some(i) = items.windows(2).position(|w| w[0].0 > w[1].0) {
        return Err(TraceError::Unsorted { index: i + 1 });
    }
    Ok(items
        .iter()
        .enumerate()
        .map(|(id, &(arrival, input_len, output_len))| ClusterRequest {
            request: Request::new(id, 0, input_len, output_len, arrival),
            session: id as u64,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<Workload> {
        vec![Workload::new(2048, 1024, 3), Workload::new(8192, 512, 1)]
    }

    fn poisson_cfg(rate: f64, count: usize) -> TraceConfig {
        TraceConfig::poisson(rate).shapes(shapes()).count(count)
    }

    #[test]
    fn poisson_trace_is_sorted_and_deterministic() {
        let cfg = poisson_cfg(2.0, 64);
        let a = generate(&cfg, &mut SimRng::seed(1));
        let b = generate(&cfg, &mut SimRng::seed(1));
        assert_eq!(a, b);
        assert!(a
            .windows(2)
            .all(|w| w[0].request.arrival <= w[1].request.arrival));
        assert_eq!(a.len(), 64);
        assert!(a.iter().enumerate().all(|(i, r)| r.request.id == i));
    }

    #[test]
    fn streaming_source_matches_eager_generate() {
        let cfg = TraceConfig::bursty(0.5, 20.0, 0.05)
            .shapes(shapes())
            .count(200)
            .seed(31);
        let eager = generate(&cfg, &mut SimRng::seed(31));
        let streamed: Vec<ClusterRequest> = cfg.source().collect();
        assert_eq!(eager, streamed);
        // The RNG the eager path hands back matches a drained streaming
        // source's final state (no hidden extra draws).
        let mut rng = SimRng::seed(31);
        generate(&cfg, &mut rng);
        let mut src = cfg.source();
        while src.next_request().is_some() {}
        let mut src_rng = src.into_rng();
        assert_eq!(rng.uniform(), src_rng.uniform());
    }

    #[test]
    fn peek_does_not_consume() {
        let cfg = poisson_cfg(2.0, 4);
        let mut src = cfg.source();
        let t0 = src.peek_arrival().unwrap();
        assert_eq!(src.peek_arrival().unwrap(), t0);
        let first = src.next_request().unwrap();
        assert_eq!(first.request.arrival, t0);
        assert_eq!(src.remaining_hint(), Some(3));
        let mut n = 0;
        while src.next_request().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
        assert_eq!(src.peek_arrival(), None);
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let trace = generate(&poisson_cfg(4.0, 2000), &mut SimRng::seed(9));
        let span = trace.last().unwrap().request.arrival;
        let rate = trace.len() as f64 / span;
        assert!((rate - 4.0).abs() < 0.5, "empirical rate {rate}");
    }

    #[test]
    fn shape_mixture_follows_weights() {
        let trace = generate(&poisson_cfg(1.0, 4000), &mut SimRng::seed(3));
        let long = trace.iter().filter(|r| r.request.input_len == 8192).count();
        let frac = long as f64 / trace.len() as f64;
        assert!((frac - 0.25).abs() < 0.05, "8k fraction {frac}");
    }

    #[test]
    fn bursty_interarrivals_are_more_variable_than_poisson() {
        let n = 4000;
        let poisson = generate(&poisson_cfg(2.0, n), &mut SimRng::seed(5));
        let bursty = generate(
            &TraceConfig::bursty(0.5, 20.0, 0.05)
                .shapes(shapes())
                .count(n),
            &mut SimRng::seed(5),
        );
        let cv2 = |trace: &[ClusterRequest]| {
            let dts: Vec<f64> = trace
                .windows(2)
                .map(|w| w[1].request.arrival - w[0].request.arrival)
                .collect();
            let mean = dts.iter().sum::<f64>() / dts.len() as f64;
            let var = dts.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / dts.len() as f64;
            var / (mean * mean)
        };
        assert!(
            cv2(&bursty) > 1.5 * cv2(&poisson),
            "bursty CV² {} vs poisson {}",
            cv2(&bursty),
            cv2(&poisson)
        );
    }

    #[test]
    fn diurnal_rate_swings_with_the_cycle() {
        // One full day-cycle: the crest half must hold far more arrivals
        // than the trough half.
        let period = 1000.0;
        let cfg = TraceConfig::diurnal(0.5, 20.0, period)
            .shapes(shapes())
            .count(6000);
        let trace = generate(&cfg, &mut SimRng::seed(77));
        let in_crest = trace
            .iter()
            .filter(|r| {
                let phase = (r.request.arrival % period) / period;
                (0.25..0.75).contains(&phase)
            })
            .count();
        let frac = in_crest as f64 / trace.len() as f64;
        assert!(frac > 0.75, "crest fraction {frac}");
    }

    #[test]
    fn flash_crowd_concentrates_arrivals_in_the_window() {
        // The rate is sampled at the previous arrival, so entering the
        // window lags by one base-rate inter-arrival (mean 2 s here) —
        // use a window comfortably wider than that lag.
        let cfg = TraceConfig::flash_crowd(0.5, 50.0, 10.0, 10.0)
            .shapes(shapes())
            .count(400);
        let trace = generate(&cfg, &mut SimRng::seed(13));
        let in_window = trace
            .iter()
            .filter(|r| (10.0..20.0).contains(&r.request.arrival))
            .count();
        let frac = in_window as f64 / trace.len() as f64;
        assert!(frac > 0.5, "flash-window fraction {frac}");
    }

    #[test]
    fn trace_replay_keeps_ordering_and_shapes() {
        let trace = from_trace(&[(0.0, 100, 10), (1.5, 200, 20), (1.5, 300, 30)]).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[1].request.input_len, 200);
        assert_eq!(trace[2].request.arrival, 1.5);
    }

    #[test]
    fn unsorted_trace_is_an_error_not_a_panic() {
        let err = from_trace(&[(1.0, 100, 10), (0.5, 100, 10)]).unwrap_err();
        assert_eq!(err, TraceError::Unsorted { index: 1 });
        assert!(err.to_string().contains("sorted"));
    }

    #[test]
    fn tenant_free_configs_stamp_tenant_zero() {
        let trace = generate(&poisson_cfg(2.0, 32), &mut SimRng::seed(4));
        assert!(trace.iter().all(|r| r.request.tenant == 0));
    }

    #[test]
    fn sessions_default_to_one_per_four_requests() {
        assert_eq!(default_sessions(64), 16);
        assert_eq!(default_sessions(3), 1);
        assert_eq!(default_sessions(0), 1);
        assert_eq!(poisson_cfg(1.0, 64).effective_sessions(), 16);
        assert_eq!(poisson_cfg(1.0, 64).sessions(5).effective_sessions(), 5);
        let trace = generate(&poisson_cfg(2.0, 400), &mut SimRng::seed(6));
        assert!(trace.iter().all(|r| r.session < 100));
    }

    #[test]
    fn tenant_mix_follows_class_weights_and_shapes() {
        let classes = vec![
            TenantClass::new(0, 3, vec![Workload::new(512, 128, 1)]),
            TenantClass::new(1, 1, vec![Workload::new(2048, 8192, 1)]),
        ];
        let cfg = TraceConfig::poisson(2.0).tenants(classes).count(4000);
        let trace = generate(&cfg, &mut SimRng::seed(21));
        let t0 = trace.iter().filter(|r| r.request.tenant == 0).count();
        let frac = t0 as f64 / trace.len() as f64;
        assert!((frac - 0.75).abs() < 0.05, "tenant-0 fraction {frac}");
        for r in &trace {
            match r.request.tenant {
                0 => assert_eq!(r.request.input_len, 512),
                1 => assert_eq!(r.request.output_len, 8192),
                t => panic!("unexpected tenant {t}"),
            }
        }
    }

    #[test]
    fn tenanted_and_plain_traces_share_arrival_times() {
        // The tenant draw must not perturb the arrival process itself for
        // the plain config (gated draws), and the tenanted config's
        // arrivals are deterministic per seed.
        let plain = generate(&poisson_cfg(2.0, 16), &mut SimRng::seed(8));
        let plain2 = generate(&poisson_cfg(2.0, 16), &mut SimRng::seed(8));
        assert_eq!(plain, plain2);
        let classes = vec![TenantClass::new(7, 1, shapes())];
        let ten_cfg = TraceConfig::poisson(2.0).tenants(classes).count(16);
        let ten = generate(&ten_cfg, &mut SimRng::seed(8));
        let ten2 = generate(&ten_cfg, &mut SimRng::seed(8));
        assert_eq!(ten, ten2);
        assert!(ten.iter().all(|r| r.request.tenant == 7));
    }

    #[test]
    fn closed_loop_waits_for_completions() {
        let cfg = ClosedLoopConfig::new(2, 3).think(1.0).shapes(shapes());
        let mut src = cfg.source();
        assert_eq!(src.remaining_hint(), Some(6));
        assert!(src.closed_loop());
        // Both sessions' first turns are ready at t=0; the follow-ups are
        // not released until completions arrive.
        let a = src.next_request().unwrap();
        let b = src.next_request().unwrap();
        assert_ne!(a.session, b.session);
        assert_eq!(src.peek_arrival(), None);
        assert_eq!(src.remaining_hint(), Some(4));
        let done = CompletedRequest {
            request: a.request,
            start: 1.0,
            first_token: 1.2,
            finish: 5.0,
            preemptions: 0,
        };
        src.on_complete(&done);
        let t = src.peek_arrival().expect("turn released");
        assert!(t >= 5.0, "next turn departs after finish + think, got {t}");
        let follow = src.next_request().unwrap();
        assert_eq!(follow.session, a.session);
    }

    #[test]
    fn closed_loop_emission_is_nondecreasing_and_deterministic() {
        let cfg = ClosedLoopConfig::new(4, 2)
            .think(0.5)
            .ramp(2.0)
            .shapes(shapes())
            .seed(3);
        let drive = || {
            let mut src = cfg.source();
            let mut out = Vec::new();
            while let Some(cr) = src.next_request() {
                // Complete immediately with a fixed latency so every turn
                // unlocks; emulates a trivially fast cluster.
                let done = CompletedRequest {
                    request: cr.request,
                    start: cr.request.arrival,
                    first_token: cr.request.arrival + 0.1,
                    finish: cr.request.arrival + 0.2,
                    preemptions: 0,
                };
                out.push(cr);
                src.on_complete(&done);
            }
            out
        };
        let a = drive();
        let b = drive();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a
            .windows(2)
            .all(|w| w[0].request.arrival <= w[1].request.arrival));
    }

    #[test]
    fn closed_loop_rejection_ends_the_session() {
        let cfg = ClosedLoopConfig::new(1, 5).shapes(shapes());
        let mut src = cfg.source();
        let first = src.next_request().unwrap();
        src.on_reject(&first.request);
        assert_eq!(src.aborted_sessions(), 1);
        assert_eq!(src.remaining_hint(), Some(0));
        assert_eq!(src.peek_arrival(), None);
        assert!(src.next_request().is_none());
    }
}
