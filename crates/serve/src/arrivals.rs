//! Open-loop request generation.
//!
//! The single-node experiments drive the scheduler closed-loop: a fixed
//! batch of requests, all present from the start. Cluster serving claims
//! only hold up under *open-loop* load — requests keep arriving whether
//! or not the fleet keeps up — and under realistic arrival processes, so
//! this module generates Poisson and bursty (Markov-modulated) traces
//! over the runtime's [`Workload`] shapes, plus trace replay. Everything
//! draws from a seeded [`SimRng`], so every trace is reproducible
//! bit-for-bit.

use serde::{Deserialize, Serialize};
use spec_runtime::{Request, Workload};
use spec_tensor::SimRng;

/// A cluster-level request: the runtime request plus the session it
/// belongs to (the affinity key routers may exploit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterRequest {
    /// The underlying serving request.
    pub request: Request,
    /// Session (user/conversation) id; requests of one session share
    /// prefix state, so affinity routing keeps them on one replica.
    pub session: u64,
}

/// The arrival process shaping request inter-arrival times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals: exponential inter-arrival times at
    /// `rate` requests/second.
    Poisson {
        /// Mean arrival rate, requests/second.
        rate: f64,
    },
    /// Markov-modulated on/off Poisson: before each arrival the process
    /// flips between a calm and a burst phase with probability
    /// `switch_prob`, then samples the inter-arrival time at the active
    /// phase's rate. Models flash crowds and diurnal spikes.
    Bursty {
        /// Calm-phase arrival rate, requests/second.
        base_rate: f64,
        /// Burst-phase arrival rate, requests/second.
        burst_rate: f64,
        /// Per-arrival probability of switching phase.
        switch_prob: f32,
    },
}

/// A trace generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Request-shape mixture; each [`Workload`]'s `requests` field is its
    /// mixture weight (Table-3 shapes reused verbatim have weight equal
    /// to their batch size).
    pub shapes: Vec<Workload>,
    /// Number of distinct sessions to spread requests over.
    pub sessions: usize,
    /// Number of requests to generate.
    pub count: usize,
}

impl ArrivalConfig {
    /// A Poisson trace over `shapes` with one session per four requests.
    pub fn poisson(rate: f64, shapes: Vec<Workload>, count: usize) -> Self {
        Self {
            process: ArrivalProcess::Poisson { rate },
            shapes,
            sessions: (count / 4).max(1),
            count,
        }
    }

    /// A bursty trace over `shapes` with one session per four requests.
    pub fn bursty(
        base_rate: f64,
        burst_rate: f64,
        switch_prob: f32,
        shapes: Vec<Workload>,
        count: usize,
    ) -> Self {
        Self {
            process: ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                switch_prob,
            },
            shapes,
            sessions: (count / 4).max(1),
            count,
        }
    }
}

/// Generates a trace sorted by arrival time, ids `0..count`.
///
/// # Panics
///
/// Panics if `shapes` is empty or any rate is non-positive.
pub fn generate(cfg: &ArrivalConfig, rng: &mut SimRng) -> Vec<ClusterRequest> {
    assert!(!cfg.shapes.is_empty(), "no request shapes");
    match cfg.process {
        ArrivalProcess::Poisson { rate } => assert!(rate > 0.0, "rate must be positive"),
        ArrivalProcess::Bursty {
            base_rate,
            burst_rate,
            ..
        } => assert!(
            base_rate > 0.0 && burst_rate > 0.0,
            "rates must be positive"
        ),
    }
    let weights: Vec<usize> = cfg.shapes.iter().map(|w| w.requests.max(1)).collect();
    let total_weight: usize = weights.iter().sum();
    let sessions = cfg.sessions.max(1);
    let mut t = 0.0f64;
    let mut in_burst = false;
    (0..cfg.count)
        .map(|id| {
            let rate = match cfg.process {
                ArrivalProcess::Poisson { rate } => rate,
                ArrivalProcess::Bursty {
                    base_rate,
                    burst_rate,
                    switch_prob,
                } => {
                    if rng.chance(switch_prob) {
                        in_burst = !in_burst;
                    }
                    if in_burst {
                        burst_rate
                    } else {
                        base_rate
                    }
                }
            };
            // Inverse-CDF exponential sample; uniform() is in [0, 1), so
            // the argument of ln is in (0, 1] and dt is finite.
            let u = rng.uniform() as f64;
            t += -(1.0 - u).ln() / rate;
            let mut pick = rng.below(total_weight);
            let mut shape = cfg.shapes[0];
            for (w, s) in weights.iter().zip(&cfg.shapes) {
                if pick < *w {
                    shape = *s;
                    break;
                }
                pick -= w;
            }
            ClusterRequest {
                request: Request {
                    id,
                    input_len: shape.input_len,
                    output_len: shape.output_len,
                    arrival: t,
                },
                session: rng.below(sessions) as u64,
            }
        })
        .collect()
}

/// Builds a trace from explicit `(arrival, input_len, output_len)`
/// tuples (replaying a measured workload); each request is its own
/// session.
///
/// # Panics
///
/// Panics if arrivals are not sorted nondecreasing.
pub fn from_trace(items: &[(f64, usize, usize)]) -> Vec<ClusterRequest> {
    assert!(
        items.windows(2).all(|w| w[0].0 <= w[1].0),
        "trace must be sorted by arrival"
    );
    items
        .iter()
        .enumerate()
        .map(|(id, &(arrival, input_len, output_len))| ClusterRequest {
            request: Request {
                id,
                input_len,
                output_len,
                arrival,
            },
            session: id as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<Workload> {
        vec![Workload::new(2048, 1024, 3), Workload::new(8192, 512, 1)]
    }

    #[test]
    fn poisson_trace_is_sorted_and_deterministic() {
        let cfg = ArrivalConfig::poisson(2.0, shapes(), 64);
        let a = generate(&cfg, &mut SimRng::seed(1));
        let b = generate(&cfg, &mut SimRng::seed(1));
        assert_eq!(a, b);
        assert!(a
            .windows(2)
            .all(|w| w[0].request.arrival <= w[1].request.arrival));
        assert_eq!(a.len(), 64);
        assert!(a.iter().enumerate().all(|(i, r)| r.request.id == i));
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let cfg = ArrivalConfig::poisson(4.0, shapes(), 2000);
        let trace = generate(&cfg, &mut SimRng::seed(9));
        let span = trace.last().unwrap().request.arrival;
        let rate = trace.len() as f64 / span;
        assert!((rate - 4.0).abs() < 0.5, "empirical rate {rate}");
    }

    #[test]
    fn shape_mixture_follows_weights() {
        let cfg = ArrivalConfig::poisson(1.0, shapes(), 4000);
        let trace = generate(&cfg, &mut SimRng::seed(3));
        let long = trace.iter().filter(|r| r.request.input_len == 8192).count();
        let frac = long as f64 / trace.len() as f64;
        assert!((frac - 0.25).abs() < 0.05, "8k fraction {frac}");
    }

    #[test]
    fn bursty_interarrivals_are_more_variable_than_poisson() {
        let n = 4000;
        let poisson = generate(
            &ArrivalConfig::poisson(2.0, shapes(), n),
            &mut SimRng::seed(5),
        );
        let bursty = generate(
            &ArrivalConfig::bursty(0.5, 20.0, 0.05, shapes(), n),
            &mut SimRng::seed(5),
        );
        let cv2 = |trace: &[ClusterRequest]| {
            let dts: Vec<f64> = trace
                .windows(2)
                .map(|w| w[1].request.arrival - w[0].request.arrival)
                .collect();
            let mean = dts.iter().sum::<f64>() / dts.len() as f64;
            let var = dts.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / dts.len() as f64;
            var / (mean * mean)
        };
        assert!(
            cv2(&bursty) > 1.5 * cv2(&poisson),
            "bursty CV² {} vs poisson {}",
            cv2(&bursty),
            cv2(&poisson)
        );
    }

    #[test]
    fn trace_replay_keeps_ordering_and_shapes() {
        let trace = from_trace(&[(0.0, 100, 10), (1.5, 200, 20), (1.5, 300, 30)]);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[1].request.input_len, 200);
        assert_eq!(trace[2].request.arrival, 1.5);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_panics() {
        from_trace(&[(1.0, 100, 10), (0.5, 100, 10)]);
    }
}
