//! Open-loop request generation.
//!
//! The single-node experiments drive the scheduler closed-loop: a fixed
//! batch of requests, all present from the start. Cluster serving claims
//! only hold up under *open-loop* load — requests keep arriving whether
//! or not the fleet keeps up — and under realistic arrival processes, so
//! this module generates Poisson and bursty (Markov-modulated) traces
//! over the runtime's [`Workload`] shapes, plus trace replay. Everything
//! draws from a seeded [`SimRng`], so every trace is reproducible
//! bit-for-bit.

use serde::{Deserialize, Serialize};
use spec_runtime::{Request, Workload};
use spec_tensor::SimRng;

/// A cluster-level request: the runtime request plus the session it
/// belongs to (the affinity key routers may exploit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterRequest {
    /// The underlying serving request.
    pub request: Request,
    /// Session (user/conversation) id; requests of one session share
    /// prefix state, so affinity routing keeps them on one replica.
    pub session: u64,
}

/// The arrival process shaping request inter-arrival times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals: exponential inter-arrival times at
    /// `rate` requests/second.
    Poisson {
        /// Mean arrival rate, requests/second.
        rate: f64,
    },
    /// Markov-modulated on/off Poisson: before each arrival the process
    /// flips between a calm and a burst phase with probability
    /// `switch_prob`, then samples the inter-arrival time at the active
    /// phase's rate. Models flash crowds and diurnal spikes.
    Bursty {
        /// Calm-phase arrival rate, requests/second.
        base_rate: f64,
        /// Burst-phase arrival rate, requests/second.
        burst_rate: f64,
        /// Per-arrival probability of switching phase.
        switch_prob: f32,
    },
}

/// One tenant class in a multi-tenant mix: who sends, how often
/// relative to the others, and what their requests look like.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantClass {
    /// Tenant id stamped on the generated requests.
    pub tenant: u32,
    /// Mixture weight: the fraction of arrivals billed to this tenant is
    /// `weight / Σ weights`.
    pub weight: usize,
    /// Shape mixture for this tenant's requests (each [`Workload`]'s
    /// `requests` field is its weight within the class). Must be
    /// non-empty.
    pub shapes: Vec<Workload>,
}

impl TenantClass {
    /// Convenience constructor.
    pub fn new(tenant: u32, weight: usize, shapes: Vec<Workload>) -> Self {
        Self {
            tenant,
            weight,
            shapes,
        }
    }
}

/// A trace generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Request-shape mixture; each [`Workload`]'s `requests` field is its
    /// mixture weight (Table-3 shapes reused verbatim have weight equal
    /// to their batch size).
    pub shapes: Vec<Workload>,
    /// Multi-tenant mix. Empty (the default) stamps every request with
    /// tenant 0 and draws shapes from `shapes`, leaving the RNG stream —
    /// and therefore every pre-tenant trace — byte-identical. Non-empty
    /// draws each arrival's tenant class by weight, then its shape from
    /// that class's own mixture (`shapes` above is ignored).
    pub tenants: Vec<TenantClass>,
    /// Number of distinct sessions to spread requests over.
    pub sessions: usize,
    /// Number of requests to generate.
    pub count: usize,
}

impl ArrivalConfig {
    /// A Poisson trace over `shapes` with one session per four requests.
    pub fn poisson(rate: f64, shapes: Vec<Workload>, count: usize) -> Self {
        Self {
            process: ArrivalProcess::Poisson { rate },
            shapes,
            tenants: Vec::new(),
            sessions: (count / 4).max(1),
            count,
        }
    }

    /// A Poisson trace over a multi-tenant mix with one session per four
    /// requests.
    pub fn poisson_tenanted(rate: f64, tenants: Vec<TenantClass>, count: usize) -> Self {
        Self {
            process: ArrivalProcess::Poisson { rate },
            shapes: Vec::new(),
            tenants,
            sessions: (count / 4).max(1),
            count,
        }
    }

    /// A bursty trace over `shapes` with one session per four requests.
    pub fn bursty(
        base_rate: f64,
        burst_rate: f64,
        switch_prob: f32,
        shapes: Vec<Workload>,
        count: usize,
    ) -> Self {
        Self {
            process: ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                switch_prob,
            },
            shapes,
            tenants: Vec::new(),
            sessions: (count / 4).max(1),
            count,
        }
    }
}

/// Generates a trace sorted by arrival time, ids `0..count`.
///
/// # Panics
///
/// Panics if the shape mixture is empty (`shapes` when `tenants` is
/// empty, any class's `shapes` otherwise), if a tenant class has zero
/// total weight, or if any rate is non-positive.
pub fn generate(cfg: &ArrivalConfig, rng: &mut SimRng) -> Vec<ClusterRequest> {
    if cfg.tenants.is_empty() {
        assert!(!cfg.shapes.is_empty(), "no request shapes");
    } else {
        assert!(
            cfg.tenants.iter().all(|c| !c.shapes.is_empty()),
            "every tenant class needs request shapes"
        );
        assert!(
            cfg.tenants.iter().map(|c| c.weight).sum::<usize>() > 0,
            "tenant mix has zero total weight"
        );
    }
    match cfg.process {
        ArrivalProcess::Poisson { rate } => assert!(rate > 0.0, "rate must be positive"),
        ArrivalProcess::Bursty {
            base_rate,
            burst_rate,
            ..
        } => assert!(
            base_rate > 0.0 && burst_rate > 0.0,
            "rates must be positive"
        ),
    }
    let tenant_weights: Vec<usize> = cfg.tenants.iter().map(|c| c.weight).collect();
    let tenant_total: usize = tenant_weights.iter().sum();
    // Shape mixtures are fixed per class, so hoist the weight tables out
    // of the per-request loop.
    let shape_table = |shapes: &[Workload]| -> (Vec<usize>, usize) {
        let w: Vec<usize> = shapes.iter().map(|x| x.requests.max(1)).collect();
        let total = w.iter().sum();
        (w, total)
    };
    let base_table = shape_table(&cfg.shapes);
    let class_tables: Vec<(Vec<usize>, usize)> =
        cfg.tenants.iter().map(|c| shape_table(&c.shapes)).collect();
    let sessions = cfg.sessions.max(1);
    let mut t = 0.0f64;
    let mut in_burst = false;
    (0..cfg.count)
        .map(|id| {
            let rate = match cfg.process {
                ArrivalProcess::Poisson { rate } => rate,
                ArrivalProcess::Bursty {
                    base_rate,
                    burst_rate,
                    switch_prob,
                } => {
                    if rng.chance(switch_prob) {
                        in_burst = !in_burst;
                    }
                    if in_burst {
                        burst_rate
                    } else {
                        base_rate
                    }
                }
            };
            // Inverse-CDF exponential sample; uniform() is in [0, 1), so
            // the argument of ln is in (0, 1] and dt is finite.
            let u = rng.uniform() as f64;
            t += -(1.0 - u).ln() / rate;
            // The class draw only happens for tenanted configs, so
            // tenant-free traces keep their historical RNG stream.
            let (tenant, shapes, table) = if cfg.tenants.is_empty() {
                (0u32, cfg.shapes.as_slice(), &base_table)
            } else {
                let i = weighted_pick(rng, &tenant_weights, tenant_total);
                (
                    cfg.tenants[i].tenant,
                    cfg.tenants[i].shapes.as_slice(),
                    &class_tables[i],
                )
            };
            let shape = shapes[weighted_pick(rng, &table.0, table.1)];
            ClusterRequest {
                request: Request {
                    id,
                    tenant,
                    input_len: shape.input_len,
                    output_len: shape.output_len,
                    arrival: t,
                },
                session: rng.below(sessions) as u64,
            }
        })
        .collect()
}

/// One weighted index draw: the standard cumulative-weight walk.
fn weighted_pick(rng: &mut SimRng, weights: &[usize], total: usize) -> usize {
    let mut pick = rng.below(total);
    for (i, w) in weights.iter().enumerate() {
        if pick < *w {
            return i;
        }
        pick -= w;
    }
    weights.len() - 1
}

/// Builds a trace from explicit `(arrival, input_len, output_len)`
/// tuples (replaying a measured workload); each request is its own
/// session.
///
/// # Panics
///
/// Panics if arrivals are not sorted nondecreasing.
pub fn from_trace(items: &[(f64, usize, usize)]) -> Vec<ClusterRequest> {
    assert!(
        items.windows(2).all(|w| w[0].0 <= w[1].0),
        "trace must be sorted by arrival"
    );
    items
        .iter()
        .enumerate()
        .map(|(id, &(arrival, input_len, output_len))| ClusterRequest {
            request: Request {
                id,
                tenant: 0,
                input_len,
                output_len,
                arrival,
            },
            session: id as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<Workload> {
        vec![Workload::new(2048, 1024, 3), Workload::new(8192, 512, 1)]
    }

    #[test]
    fn poisson_trace_is_sorted_and_deterministic() {
        let cfg = ArrivalConfig::poisson(2.0, shapes(), 64);
        let a = generate(&cfg, &mut SimRng::seed(1));
        let b = generate(&cfg, &mut SimRng::seed(1));
        assert_eq!(a, b);
        assert!(a
            .windows(2)
            .all(|w| w[0].request.arrival <= w[1].request.arrival));
        assert_eq!(a.len(), 64);
        assert!(a.iter().enumerate().all(|(i, r)| r.request.id == i));
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let cfg = ArrivalConfig::poisson(4.0, shapes(), 2000);
        let trace = generate(&cfg, &mut SimRng::seed(9));
        let span = trace.last().unwrap().request.arrival;
        let rate = trace.len() as f64 / span;
        assert!((rate - 4.0).abs() < 0.5, "empirical rate {rate}");
    }

    #[test]
    fn shape_mixture_follows_weights() {
        let cfg = ArrivalConfig::poisson(1.0, shapes(), 4000);
        let trace = generate(&cfg, &mut SimRng::seed(3));
        let long = trace.iter().filter(|r| r.request.input_len == 8192).count();
        let frac = long as f64 / trace.len() as f64;
        assert!((frac - 0.25).abs() < 0.05, "8k fraction {frac}");
    }

    #[test]
    fn bursty_interarrivals_are_more_variable_than_poisson() {
        let n = 4000;
        let poisson = generate(
            &ArrivalConfig::poisson(2.0, shapes(), n),
            &mut SimRng::seed(5),
        );
        let bursty = generate(
            &ArrivalConfig::bursty(0.5, 20.0, 0.05, shapes(), n),
            &mut SimRng::seed(5),
        );
        let cv2 = |trace: &[ClusterRequest]| {
            let dts: Vec<f64> = trace
                .windows(2)
                .map(|w| w[1].request.arrival - w[0].request.arrival)
                .collect();
            let mean = dts.iter().sum::<f64>() / dts.len() as f64;
            let var = dts.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / dts.len() as f64;
            var / (mean * mean)
        };
        assert!(
            cv2(&bursty) > 1.5 * cv2(&poisson),
            "bursty CV² {} vs poisson {}",
            cv2(&bursty),
            cv2(&poisson)
        );
    }

    #[test]
    fn trace_replay_keeps_ordering_and_shapes() {
        let trace = from_trace(&[(0.0, 100, 10), (1.5, 200, 20), (1.5, 300, 30)]);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[1].request.input_len, 200);
        assert_eq!(trace[2].request.arrival, 1.5);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_panics() {
        from_trace(&[(1.0, 100, 10), (0.5, 100, 10)]);
    }

    #[test]
    fn tenant_free_configs_stamp_tenant_zero() {
        let cfg = ArrivalConfig::poisson(2.0, shapes(), 32);
        let trace = generate(&cfg, &mut SimRng::seed(4));
        assert!(trace.iter().all(|r| r.request.tenant == 0));
    }

    #[test]
    fn tenant_mix_follows_class_weights_and_shapes() {
        let classes = vec![
            TenantClass::new(0, 3, vec![Workload::new(512, 128, 1)]),
            TenantClass::new(1, 1, vec![Workload::new(2048, 8192, 1)]),
        ];
        let cfg = ArrivalConfig::poisson_tenanted(2.0, classes, 4000);
        let trace = generate(&cfg, &mut SimRng::seed(21));
        let t0 = trace.iter().filter(|r| r.request.tenant == 0).count();
        let frac = t0 as f64 / trace.len() as f64;
        assert!((frac - 0.75).abs() < 0.05, "tenant-0 fraction {frac}");
        for r in &trace {
            match r.request.tenant {
                0 => assert_eq!(r.request.input_len, 512),
                1 => assert_eq!(r.request.output_len, 8192),
                t => panic!("unexpected tenant {t}"),
            }
        }
    }

    #[test]
    fn tenanted_and_plain_traces_share_arrival_times() {
        // The tenant draw must not perturb the arrival process itself for
        // the plain config (gated draws), and the tenanted config's
        // arrivals are deterministic per seed.
        let plain = generate(
            &ArrivalConfig::poisson(2.0, shapes(), 16),
            &mut SimRng::seed(8),
        );
        let plain2 = generate(
            &ArrivalConfig::poisson(2.0, shapes(), 16),
            &mut SimRng::seed(8),
        );
        assert_eq!(plain, plain2);
        let classes = vec![TenantClass::new(7, 1, shapes())];
        let ten = generate(
            &ArrivalConfig::poisson_tenanted(2.0, classes.clone(), 16),
            &mut SimRng::seed(8),
        );
        let ten2 = generate(
            &ArrivalConfig::poisson_tenanted(2.0, classes, 16),
            &mut SimRng::seed(8),
        );
        assert_eq!(ten, ten2);
        assert!(ten.iter().all(|r| r.request.tenant == 7));
    }
}
