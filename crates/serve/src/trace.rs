//! Compact binary traces: record any [`ArrivalSource`], replay it
//! bit-for-bit, at ~10 bytes/request.
//!
//! Million-request workloads are only practical to commit and share if
//! the on-disk format is tight and the replay path never materializes
//! the whole trace. The format here delta-encodes arrival times on an
//! integer tick grid and LEB128-varint-encodes everything else:
//!
//! ```text
//! header: "SPTR" magic (4 bytes) · version u8 (=1) · varint tick_ns
//! record: varint Δticks · varint input_len · varint output_len
//!         · varint tenant · varint session          (until end of buffer)
//! ```
//!
//! There is no record-count field — the stream ends at the end of the
//! buffer, so a recorder can append forever and a replayer can stream
//! from the front. Request ids are not stored; replay re-assigns
//! `0..n`, which is what generation produced in the first place.
//!
//! The canonical arrival representation is *integer ticks* (default
//! 1 µs): [`TraceWriter`] quantizes once at record time, and from then
//! on encode → decode → re-encode is lossless, which is what makes
//! "replays bit-for-bit" a checkable property rather than a float-
//! rounding hope.
//!
//! [`ReplayArrivals`] is the [`ArrivalSource`] over a recorded buffer —
//! it validates the whole buffer once up front (so a corrupt byte is an
//! error at load, not a panic mid-simulation), then streams requests
//! with O(1) memory. [`RecordingSource`] is the tee: it wraps any
//! source and records what the cluster actually consumed.

use crate::arrivals::{ArrivalSource, ClusterRequest, TraceConfig};
use spec_runtime::{CompletedRequest, Request, Workload};

/// Trace-format version this build reads and writes.
pub const VERSION: u8 = 1;

/// The four magic bytes opening every trace.
pub const MAGIC: [u8; 4] = *b"SPTR";

/// Default arrival-time grid: 1 µs ticks. At serving timescales
/// (milliseconds per token) this is far below measurement noise, and it
/// keeps typical inter-arrival deltas in 2–3 varint bytes.
pub const DEFAULT_TICK_NS: u64 = 1_000;

/// Everything that can be wrong with a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// Arrivals are not nondecreasing; `index` is the first offending
    /// request.
    Unsorted {
        /// Index of the first request that arrives before its
        /// predecessor.
        index: usize,
    },
    /// The buffer does not start with the `SPTR` magic.
    BadMagic,
    /// The format version is one this build cannot read.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// The buffer ends mid-record (or mid-header); `offset` is where
    /// decoding stopped.
    Truncated {
        /// Byte offset at which the buffer ran out.
        offset: usize,
    },
    /// A varint ran past 10 bytes (or overflowed u64) at `offset`.
    Overflow {
        /// Byte offset of the offending varint.
        offset: usize,
    },
    /// The header declares a zero tick size.
    ZeroTick,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Unsorted { index } => {
                write!(
                    f,
                    "trace must be sorted by arrival (request {index} regresses)"
                )
            }
            TraceError::BadMagic => write!(f, "not a trace: missing SPTR magic"),
            TraceError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported trace version {found} (this build reads {VERSION})"
                )
            }
            TraceError::Truncated { offset } => {
                write!(f, "trace truncated mid-record at byte {offset}")
            }
            TraceError::Overflow { offset } => {
                write!(f, "varint overflow at byte {offset}")
            }
            TraceError::ZeroTick => write!(f, "trace header declares a zero tick size"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Converts an arrival in seconds to grid ticks (round-to-nearest;
/// monotone, so sorted seconds stay sorted ticks).
pub fn seconds_to_ticks(seconds: f64, tick_ns: u64) -> u64 {
    (seconds * 1e9 / tick_ns as f64).round() as u64
}

/// Converts grid ticks back to seconds.
pub fn ticks_to_seconds(ticks: u64, tick_ns: u64) -> f64 {
    ticks as f64 * tick_ns as f64 * 1e-9
}

/// Appends `v` as a LEB128 varint (low 7 bits first, high bit =
/// continuation).
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one varint at `*pos`, advancing it.
fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let start = *pos;
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(TraceError::Truncated { offset: start });
        };
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err(TraceError::Overflow { offset: start });
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Overflow { offset: start });
        }
    }
}

/// One decoded trace record, arrivals in absolute grid ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Absolute arrival time, grid ticks.
    pub ticks: u64,
    /// Prompt length, tokens.
    pub input_len: usize,
    /// Generation length, tokens.
    pub output_len: usize,
    /// Tenant id.
    pub tenant: u32,
    /// Session id.
    pub session: u64,
}

impl TraceRecord {
    /// The record as a [`ClusterRequest`] with the given id, arrival
    /// mapped back to seconds on the `tick_ns` grid.
    pub fn to_request(&self, id: usize, tick_ns: u64) -> ClusterRequest {
        ClusterRequest {
            request: Request::new(
                id,
                self.tenant,
                self.input_len,
                self.output_len,
                ticks_to_seconds(self.ticks, tick_ns),
            ),
            session: self.session,
        }
    }
}

/// Streaming trace encoder: feed it requests in arrival order, take the
/// bytes at the end. Appending is O(1) per request; nothing but the
/// output buffer is retained.
#[derive(Debug, Clone)]
pub struct TraceWriter {
    buf: Vec<u8>,
    tick_ns: u64,
    last_ticks: u64,
    recorded: usize,
}

impl Default for TraceWriter {
    fn default() -> Self {
        Self::new(DEFAULT_TICK_NS)
    }
}

impl TraceWriter {
    /// A writer on the given arrival grid (use
    /// [`DEFAULT_TICK_NS`] unless you know better).
    ///
    /// # Panics
    ///
    /// Panics if `tick_ns` is zero.
    pub fn new(tick_ns: u64) -> Self {
        assert!(tick_ns > 0, "tick size must be positive");
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        put_varint(&mut buf, tick_ns);
        Self {
            buf,
            tick_ns,
            last_ticks: 0,
            recorded: 0,
        }
    }

    /// Appends one request.
    ///
    /// # Panics
    ///
    /// Panics if the request arrives (on the tick grid) before the
    /// previously recorded one — the [`ArrivalSource`] contract
    /// guarantees nondecreasing emission, so a regression here is a
    /// recorder bug, not bad input data (that case is
    /// [`crate::arrivals::from_trace`]'s, which returns an error).
    pub fn record(&mut self, cr: &ClusterRequest) {
        let ticks = seconds_to_ticks(cr.request.arrival, self.tick_ns);
        assert!(
            ticks >= self.last_ticks,
            "trace must be sorted by arrival (request {} regresses)",
            self.recorded
        );
        put_varint(&mut self.buf, ticks - self.last_ticks);
        put_varint(&mut self.buf, cr.request.input_len as u64);
        put_varint(&mut self.buf, cr.request.output_len as u64);
        put_varint(&mut self.buf, u64::from(cr.request.tenant));
        put_varint(&mut self.buf, cr.session);
        self.last_ticks = ticks;
        self.recorded += 1;
    }

    /// Requests recorded so far.
    pub fn recorded(&self) -> usize {
        self.recorded
    }

    /// Encoded size so far, bytes (header included).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet (the header alone does not
    /// count).
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Average payload bytes per recorded request (header excluded).
    pub fn bytes_per_request(&self) -> f64 {
        if self.recorded == 0 {
            return 0.0;
        }
        (self.buf.len() - header_len(&self.buf)) as f64 / self.recorded as f64
    }

    /// Finishes recording and returns the encoded trace.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Byte length of the header at the front of `buf` (magic + version +
/// the tick varint). Only called on buffers this module wrote.
fn header_len(buf: &[u8]) -> usize {
    let mut pos = MAGIC.len() + 1;
    let _ = get_varint(buf, &mut pos);
    pos
}

/// Streaming trace decoder: an iterator of [`TraceRecord`]s over an
/// encoded buffer. Each `next()` decodes one record; memory use is O(1)
/// regardless of trace length.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    tick_ns: u64,
    ticks: u64,
    decoded: usize,
}

impl<'a> TraceCursor<'a> {
    /// Opens a trace, checking magic and version.
    pub fn new(bytes: &'a [u8]) -> Result<Self, TraceError> {
        if bytes.len() < MAGIC.len() + 1 {
            return Err(
                if bytes.get(..bytes.len().min(4)) == Some(&MAGIC[..bytes.len().min(4)])
                    && !bytes.is_empty()
                {
                    TraceError::Truncated {
                        offset: bytes.len(),
                    }
                } else {
                    TraceError::BadMagic
                },
            );
        }
        if bytes[..4] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = bytes[4];
        if version != VERSION {
            return Err(TraceError::BadVersion { found: version });
        }
        let mut pos = 5;
        let tick_ns = get_varint(bytes, &mut pos)?;
        if tick_ns == 0 {
            return Err(TraceError::ZeroTick);
        }
        Ok(Self {
            bytes,
            pos,
            tick_ns,
            ticks: 0,
            decoded: 0,
        })
    }

    /// The arrival grid declared in the header, nanoseconds per tick.
    pub fn tick_ns(&self) -> u64 {
        self.tick_ns
    }

    /// Records decoded so far.
    pub fn decoded(&self) -> usize {
        self.decoded
    }

    /// Decodes the next record, `Ok(None)` at a clean end of buffer.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        if self.pos == self.bytes.len() {
            return Ok(None);
        }
        let delta = get_varint(self.bytes, &mut self.pos)?;
        let input_len = get_varint(self.bytes, &mut self.pos)? as usize;
        let output_len = get_varint(self.bytes, &mut self.pos)? as usize;
        let tenant = u32::try_from(get_varint(self.bytes, &mut self.pos)?)
            .map_err(|_| TraceError::Overflow { offset: self.pos })?;
        let session = get_varint(self.bytes, &mut self.pos)?;
        self.ticks += delta;
        self.decoded += 1;
        Ok(Some(TraceRecord {
            ticks: self.ticks,
            input_len,
            output_len,
            tenant,
            session,
        }))
    }
}

impl Iterator for TraceCursor<'_> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Encodes a stream of requests into a fresh trace buffer on the
/// default grid.
pub fn encode<I: IntoIterator<Item = ClusterRequest>>(requests: I) -> Vec<u8> {
    let mut w = TraceWriter::default();
    for cr in requests {
        w.record(&cr);
    }
    w.into_bytes()
}

/// Decodes a whole trace into materialized requests, ids `0..n`.
/// Convenience for tests and small traces — million-request replays
/// should stream through [`ReplayArrivals`] instead.
pub fn decode(bytes: &[u8]) -> Result<Vec<ClusterRequest>, TraceError> {
    let mut cursor = TraceCursor::new(bytes)?;
    let tick_ns = cursor.tick_ns();
    let mut out = Vec::new();
    while let Some(rec) = cursor.next_record()? {
        out.push(rec.to_request(out.len(), tick_ns));
    }
    Ok(out)
}

/// The [`ArrivalSource`] over a recorded trace: validates the whole
/// buffer once at construction (corruption is a load-time error), then
/// replays with O(1) memory. Replays of the same buffer are identical
/// by construction — the bytes *are* the trace.
#[derive(Debug, Clone)]
pub struct ReplayArrivals {
    bytes: Vec<u8>,
    count: usize,
    body: usize,
    tick_ns: u64,
    pos: usize,
    ticks: u64,
    next_id: usize,
}

impl ReplayArrivals {
    /// Opens and fully validates a trace buffer.
    pub fn new(bytes: Vec<u8>) -> Result<Self, TraceError> {
        let mut cursor = TraceCursor::new(&bytes)?;
        let tick_ns = cursor.tick_ns();
        let body = cursor.pos;
        let mut count = 0;
        while cursor.next_record()?.is_some() {
            count += 1;
        }
        Ok(Self {
            bytes,
            count,
            body,
            tick_ns,
            pos: body,
            ticks: 0,
            next_id: 0,
        })
    }

    /// Total requests in the trace.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Average payload bytes per request (header excluded).
    pub fn bytes_per_request(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        (self.bytes.len() - self.body) as f64 / self.count as f64
    }

    /// Rewinds to the start of the trace (replay it again).
    pub fn rewind(&mut self) {
        self.pos = self.body;
        self.ticks = 0;
        self.next_id = 0;
    }

    /// Decodes the record at the cursor without advancing the stream
    /// state. Validation at construction makes the unwraps safe.
    fn peek_record(&self) -> Option<TraceRecord> {
        if self.pos == self.bytes.len() {
            return None;
        }
        let mut pos = self.pos;
        let delta = get_varint(&self.bytes, &mut pos).unwrap();
        let input_len = get_varint(&self.bytes, &mut pos).unwrap() as usize;
        let output_len = get_varint(&self.bytes, &mut pos).unwrap() as usize;
        let tenant = get_varint(&self.bytes, &mut pos).unwrap() as u32;
        let session = get_varint(&self.bytes, &mut pos).unwrap();
        Some(TraceRecord {
            ticks: self.ticks + delta,
            input_len,
            output_len,
            tenant,
            session,
        })
    }
}

impl ArrivalSource for ReplayArrivals {
    fn peek_arrival(&mut self) -> Option<f64> {
        self.peek_record()
            .map(|r| ticks_to_seconds(r.ticks, self.tick_ns))
    }

    fn next_request(&mut self) -> Option<ClusterRequest> {
        if self.pos == self.bytes.len() {
            return None;
        }
        let delta = get_varint(&self.bytes, &mut self.pos).unwrap();
        let input_len = get_varint(&self.bytes, &mut self.pos).unwrap() as usize;
        let output_len = get_varint(&self.bytes, &mut self.pos).unwrap() as usize;
        let tenant = get_varint(&self.bytes, &mut self.pos).unwrap() as u32;
        let session = get_varint(&self.bytes, &mut self.pos).unwrap();
        self.ticks += delta;
        let id = self.next_id;
        self.next_id += 1;
        Some(ClusterRequest {
            request: Request::new(
                id,
                tenant,
                input_len,
                output_len,
                ticks_to_seconds(self.ticks, self.tick_ns),
            ),
            session,
        })
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.count - self.next_id)
    }
}

/// A recording tee: wraps any [`ArrivalSource`] and records every
/// request the consumer actually pulls. Closed-loop behaviour passes
/// straight through, so recording a closed-loop run captures the
/// *realized* open-loop trace — which is exactly what makes closed-loop
/// experiments replayable on different fleets.
#[derive(Debug)]
pub struct RecordingSource<S> {
    inner: S,
    writer: TraceWriter,
}

impl<S: ArrivalSource> RecordingSource<S> {
    /// Tees `inner` into a fresh default-grid recorder.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            writer: TraceWriter::default(),
        }
    }

    /// The recorder so far (size/rate inspection mid-run).
    pub fn writer(&self) -> &TraceWriter {
        &self.writer
    }

    /// Finishes, returning the encoded trace of everything consumed.
    pub fn into_bytes(self) -> Vec<u8> {
        self.writer.into_bytes()
    }
}

impl<S: ArrivalSource> ArrivalSource for RecordingSource<S> {
    fn peek_arrival(&mut self) -> Option<f64> {
        self.inner.peek_arrival()
    }

    fn next_request(&mut self) -> Option<ClusterRequest> {
        let cr = self.inner.next_request()?;
        self.writer.record(&cr);
        Some(cr)
    }

    fn on_complete(&mut self, done: &CompletedRequest) {
        self.inner.on_complete(done);
    }

    fn on_reject(&mut self, req: &Request) {
        self.inner.on_reject(req);
    }

    fn closed_loop(&self) -> bool {
        self.inner.closed_loop()
    }

    fn remaining_hint(&self) -> Option<usize> {
        self.inner.remaining_hint()
    }
}

/// The pinned config behind `results/sample_trace.sptr`: a bursty
/// two-tenant mix. The golden-file test regenerates the trace from this
/// config and compares bytes, so any codec or generator drift fails
/// loudly instead of silently invalidating the committed sample.
pub fn sample_trace_config() -> TraceConfig {
    TraceConfig::bursty(2.0, 40.0, 0.05)
        .tenants(vec![
            crate::arrivals::TenantClass::new(
                0,
                3,
                vec![Workload::new(2048, 1024, 3), Workload::new(8192, 512, 1)],
            ),
            crate::arrivals::TenantClass::new(1, 1, vec![Workload::new(512, 4096, 1)]),
        ])
        .count(4096)
        .seed(0x5EED_7ACE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{generate, TraceConfig};
    use spec_tensor::SimRng;

    fn small_trace() -> Vec<ClusterRequest> {
        let cfg = TraceConfig::poisson(3.0)
            .shapes(vec![
                Workload::new(2048, 1024, 3),
                Workload::new(256, 64, 1),
            ])
            .count(200)
            .seed(11);
        generate(&cfg, &mut SimRng::seed(11))
    }

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn encode_decode_round_trips_on_the_tick_grid() {
        let trace = small_trace();
        let bytes = encode(trace.iter().copied());
        let back = decode(&bytes).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(&back) {
            assert_eq!(a.request.id, b.request.id);
            assert_eq!(a.request.tenant, b.request.tenant);
            assert_eq!(a.request.input_len, b.request.input_len);
            assert_eq!(a.request.output_len, b.request.output_len);
            assert_eq!(a.session, b.session);
            // Arrivals land on the 1 µs grid.
            assert!((a.request.arrival - b.request.arrival).abs() < 1e-6);
        }
        // Re-encoding the decoded trace is lossless: the grid is the
        // canonical representation.
        assert_eq!(encode(back), bytes);
    }

    #[test]
    fn replay_matches_decode_and_is_rewindable() {
        let bytes = encode(small_trace());
        let eager = decode(&bytes).unwrap();
        let mut replay = ReplayArrivals::new(bytes).unwrap();
        assert_eq!(replay.len(), eager.len());
        let mut streamed = Vec::new();
        while let Some(cr) = replay.next_request() {
            streamed.push(cr);
        }
        assert_eq!(streamed, eager);
        replay.rewind();
        assert_eq!(replay.peek_arrival(), Some(eager[0].request.arrival));
        assert_eq!(replay.remaining_hint(), Some(eager.len()));
    }

    #[test]
    fn recording_tee_captures_what_was_consumed() {
        let cfg = TraceConfig::poisson(2.0)
            .shapes(vec![Workload::new(1024, 256, 1)])
            .count(50)
            .seed(5);
        let mut tee = RecordingSource::new(cfg.source());
        let mut consumed = Vec::new();
        while let Some(cr) = tee.next_request() {
            consumed.push(cr);
        }
        assert_eq!(tee.writer().recorded(), 50);
        let bytes = tee.into_bytes();
        let replayed = decode(&bytes).unwrap();
        assert_eq!(replayed.len(), consumed.len());
        for (a, b) in consumed.iter().zip(&replayed) {
            assert_eq!(a.request.input_len, b.request.input_len);
            assert_eq!(a.session, b.session);
        }
    }

    #[test]
    fn corrupt_traces_fail_at_load() {
        assert_eq!(TraceCursor::new(b"").unwrap_err(), TraceError::BadMagic);
        assert_eq!(
            TraceCursor::new(b"NOPE\x01\x00").unwrap_err(),
            TraceError::BadMagic
        );
        let mut wrong_version = encode(small_trace());
        wrong_version[4] = 9;
        assert_eq!(
            TraceCursor::new(&wrong_version).unwrap_err(),
            TraceError::BadVersion { found: 9 }
        );
        let mut truncated = encode(small_trace());
        truncated.pop();
        // Force a continuation bit so the final varint is incomplete.
        let end = truncated.len();
        truncated[end - 1] |= 0x80;
        let err = ReplayArrivals::new(truncated).unwrap_err();
        assert!(matches!(err, TraceError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn sample_trace_stays_under_the_size_budget() {
        let trace = generate(
            &sample_trace_config(),
            &mut SimRng::seed(sample_trace_config().seed),
        );
        let mut w = TraceWriter::default();
        for cr in &trace {
            w.record(cr);
        }
        assert!(
            w.bytes_per_request() <= 16.0,
            "{:.2} bytes/request breaks the format's budget",
            w.bytes_per_request()
        );
    }
}
