//! Latency-SLO accounting.
//!
//! Cluster throughput alone is a vanity metric under open-loop load: a
//! saturated fleet completes requests at full throughput while every
//! user waits minutes for a first token. What the serving literature
//! holds systems to is *goodput* — tokens delivered by requests whose
//! time-to-first-token (TTFT) and time-between-tokens (TBT) both met
//! their service-level objectives — and tail percentiles. This module
//! turns raw completions into that accounting, reusing the same
//! [`PercentileSummary`] the single-node `ScheduleReport` carries so the
//! two layers stay comparable.

use serde::{Deserialize, Serialize};
use spec_runtime::CompletedRequest;
use spec_tensor::PercentileSummary;

/// The per-request latency targets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Max acceptable time-to-first-token, seconds (queueing + prefill).
    pub ttft_s: f64,
    /// Max acceptable mean time between output tokens, seconds.
    pub tbt_s: f64,
}

impl SloSpec {
    /// An SLO with the given TTFT and TBT bounds.
    pub fn new(ttft_s: f64, tbt_s: f64) -> Self {
        Self { ttft_s, tbt_s }
    }
}

impl Default for SloSpec {
    /// An interactive-serving default: first token within 30 s, then at
    /// least ~6.7 tokens/s sustained.
    fn default() -> Self {
        Self {
            ttft_s: 30.0,
            tbt_s: 0.15,
        }
    }
}

/// One tenant's slice of the SLO accounting — same definitions as the
/// fleet-level [`SloReport`], restricted to that tenant's requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSlo {
    /// The tenant id.
    pub tenant: u32,
    /// Time-to-first-token percentiles, seconds.
    pub ttft: PercentileSummary,
    /// Time-between-tokens percentiles, seconds.
    pub tbt: PercentileSummary,
    /// End-to-end latency percentiles, seconds.
    pub latency: PercentileSummary,
    /// Fraction of the tenant's submitted requests that attained the SLO.
    pub attainment: f64,
    /// The tenant's SLO-attaining output tokens/s over the makespan.
    pub goodput_tokens_per_s: f64,
    /// The tenant's completed-request output tokens/s over the makespan.
    pub throughput_tokens_per_s: f64,
    /// Completed requests.
    pub completed: usize,
    /// Rejected (never-admissible) requests.
    pub rejected: usize,
    /// Requests that exhausted their retry budget after crashes.
    pub dead_lettered: usize,
    /// Requests dropped by overload shedding before routing.
    pub shed: usize,
    /// Retry attempts the tenant's requests went through (attempts, not
    /// requests: one request crashed twice counts two retries here but
    /// once everywhere else).
    pub retries: usize,
    /// Checkpoint/restore round-trips the tenant's requests paid.
    pub preemptions: usize,
}

/// SLO accounting over a set of completions.
///
/// # Denominators
///
/// *Submitted* = `completed + rejected + dead_lettered + shed` — every
/// distinct request the cluster accepted responsibility for, each
/// counted exactly once no matter how many crash-driven retries it went
/// through (`retries` counts the attempts separately and never enters a
/// denominator). Attainment divides SLO-attaining completions by
/// submitted, so every terminal failure mode — rejection, dead-letter,
/// shed — drags attainment the same way. Goodput and throughput divide
/// token counts by the makespan; only completed requests contribute
/// tokens, so lost work never inflates either rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Time-to-first-token percentiles, seconds.
    pub ttft: PercentileSummary,
    /// Time-between-tokens percentiles, seconds.
    pub tbt: PercentileSummary,
    /// End-to-end latency percentiles, seconds.
    pub latency: PercentileSummary,
    /// Fraction of *submitted* requests (completed + rejected +
    /// dead-lettered + shed) that completed with both TTFT and TBT
    /// within the SLO.
    pub attainment: f64,
    /// Output tokens/s delivered by SLO-attaining requests over the
    /// makespan — the headline "goodput under SLO" number.
    pub goodput_tokens_per_s: f64,
    /// Output tokens/s of all completed requests over the makespan.
    pub throughput_tokens_per_s: f64,
    /// Completed requests.
    pub completed: usize,
    /// Rejected (never-admissible) requests.
    pub rejected: usize,
    /// Requests that exhausted their retry budget after crashes.
    pub dead_lettered: usize,
    /// Requests dropped by overload shedding before routing.
    pub shed: usize,
    /// Crash-driven retry attempts across the run (informational — a
    /// retried request still counts once in every denominator).
    pub retries: usize,
    /// Per-tenant breakdown, in tenant-id order. Tenant goodput sums to
    /// the fleet goodput (same makespan denominator, disjoint token
    /// sets); rejected requests are attributed to their tenants when the
    /// caller provides the per-tenant counts ([`evaluate_tenanted`]).
    pub per_tenant: Vec<TenantSlo>,
}

/// Dollar accounting for a cluster run. Goodput-per-dollar is the
/// cost-aware headline: SLO-attaining output tokens divided by the
/// dollars actually billed, so an over-provisioned fleet that idles
/// expensive replicas scores worse than a right-sized one at the same
/// goodput. All zeros when nothing was billed (zero-length run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Σ hourly rental price over every provisioned replica, USD/h —
    /// what the fleet would cost fully active.
    pub fleet_hourly_usd: f64,
    /// Replica-hours actually billed (active windows only; parked time
    /// is free).
    pub billed_hours: f64,
    /// Dollars billed over the run, per replica at its device's rate.
    pub cost_usd: f64,
    /// SLO-attaining output tokens per dollar billed.
    pub goodput_tokens_per_usd: f64,
    /// All completed output tokens per dollar billed.
    pub throughput_tokens_per_usd: f64,
}

/// Per-tenant fault dispositions feeding [`evaluate_faulted`]: each list
/// is `(tenant, count)` pairs in any order. `dead_lettered` and `shed`
/// are terminal — they join rejections in the submitted denominator —
/// while `retries` counts attempts and stays informational.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultOutcomes {
    /// Requests that exhausted their retry budget, per tenant.
    pub dead_lettered: Vec<(u32, usize)>,
    /// Requests dropped by overload shedding, per tenant.
    pub shed: Vec<(u32, usize)>,
    /// Retry attempts, per tenant.
    pub retries: Vec<(u32, usize)>,
}

/// `failed` is the slice's terminal non-completions — rejected +
/// dead-lettered + shed — the other half of the submitted denominator.
fn slice_report(
    completed: &[&CompletedRequest],
    failed: usize,
    makespan: f64,
    slo: &SloSpec,
) -> (
    PercentileSummary,
    PercentileSummary,
    PercentileSummary,
    f64,
    f64,
    f64,
) {
    let ttfts: Vec<f64> = completed.iter().map(|c| c.time_to_first_token()).collect();
    let tbts: Vec<f64> = completed.iter().map(|c| c.time_between_tokens()).collect();
    let latencies: Vec<f64> = completed.iter().map(|c| c.latency()).collect();
    let attains = |c: &CompletedRequest| {
        c.time_to_first_token() <= slo.ttft_s && c.time_between_tokens() <= slo.tbt_s
    };
    let good_tokens: usize = completed
        .iter()
        .filter(|c| attains(c))
        .map(|c| c.request.output_len)
        .sum();
    let all_tokens: usize = completed.iter().map(|c| c.request.output_len).sum();
    let submitted = completed.len() + failed;
    let per_s = |tokens: usize| {
        if makespan > 0.0 {
            tokens as f64 / makespan
        } else {
            0.0
        }
    };
    (
        PercentileSummary::from_samples(&ttfts),
        PercentileSummary::from_samples(&tbts),
        PercentileSummary::from_samples(&latencies),
        if submitted > 0 {
            completed.iter().filter(|c| attains(c)).count() as f64 / submitted as f64
        } else {
            0.0
        },
        per_s(good_tokens),
        per_s(all_tokens),
    )
}

/// Evaluates completions against an SLO over a run of length `makespan`.
/// Rejected requests drag fleet attainment but are not attributed to any
/// tenant; use [`evaluate_tenanted`] when per-tenant rejection counts are
/// known.
pub fn evaluate(
    completed: &[CompletedRequest],
    rejected: usize,
    makespan: f64,
    slo: &SloSpec,
) -> SloReport {
    evaluate_tenanted(completed, rejected, &[], makespan, slo)
}

/// [`evaluate`] with rejected requests attributed per tenant:
/// `rejected_by_tenant` is `(tenant, count)` pairs whose counts must sum
/// to at most `rejected` (tenants of untracked rejections stay
/// unattributed at fleet level).
pub fn evaluate_tenanted(
    completed: &[CompletedRequest],
    rejected: usize,
    rejected_by_tenant: &[(u32, usize)],
    makespan: f64,
    slo: &SloSpec,
) -> SloReport {
    evaluate_faulted(
        completed,
        rejected,
        rejected_by_tenant,
        &FaultOutcomes::default(),
        makespan,
        slo,
    )
}

fn tenant_count(pairs: &[(u32, usize)], tenant: u32) -> usize {
    pairs
        .iter()
        .filter(|(t, _)| *t == tenant)
        .map(|&(_, n)| n)
        .sum()
}

/// [`evaluate_tenanted`] with fault dispositions: dead-lettered and shed
/// requests join rejections in the submitted denominator (fleet-wide and
/// per tenant), so attainment honestly reflects every terminal failure;
/// retry attempts are carried through as counters. With the default
/// [`FaultOutcomes`] this *is* `evaluate_tenanted` — same numbers, zero
/// fault fields — which keeps no-fault reports bit-identical.
pub fn evaluate_faulted(
    completed: &[CompletedRequest],
    rejected: usize,
    rejected_by_tenant: &[(u32, usize)],
    outcomes: &FaultOutcomes,
    makespan: f64,
    slo: &SloSpec,
) -> SloReport {
    let dead_lettered: usize = outcomes.dead_lettered.iter().map(|&(_, n)| n).sum();
    let shed: usize = outcomes.shed.iter().map(|&(_, n)| n).sum();
    let retries: usize = outcomes.retries.iter().map(|&(_, n)| n).sum();
    let all: Vec<&CompletedRequest> = completed.iter().collect();
    let (ttft, tbt, latency, attainment, goodput, throughput) =
        slice_report(&all, rejected + dead_lettered + shed, makespan, slo);
    let mut tenants: std::collections::BTreeMap<u32, Vec<&CompletedRequest>> =
        std::collections::BTreeMap::new();
    for c in completed {
        tenants.entry(c.request.tenant).or_default().push(c);
    }
    for &(t, _) in rejected_by_tenant
        .iter()
        .chain(&outcomes.dead_lettered)
        .chain(&outcomes.shed)
        .chain(&outcomes.retries)
    {
        tenants.entry(t).or_default();
    }
    let per_tenant: Vec<TenantSlo> = tenants
        .iter()
        .map(|(&tenant, slice)| {
            let t_rejected = tenant_count(rejected_by_tenant, tenant);
            let t_dead = tenant_count(&outcomes.dead_lettered, tenant);
            let t_shed = tenant_count(&outcomes.shed, tenant);
            let (ttft, tbt, latency, attainment, goodput, throughput) =
                slice_report(slice, t_rejected + t_dead + t_shed, makespan, slo);
            TenantSlo {
                tenant,
                ttft,
                tbt,
                latency,
                attainment,
                goodput_tokens_per_s: goodput,
                throughput_tokens_per_s: throughput,
                completed: slice.len(),
                rejected: t_rejected,
                dead_lettered: t_dead,
                shed: t_shed,
                retries: tenant_count(&outcomes.retries, tenant),
                preemptions: slice.iter().map(|c| c.preemptions).sum(),
            }
        })
        .collect();
    SloReport {
        ttft,
        tbt,
        latency,
        attainment,
        goodput_tokens_per_s: goodput,
        throughput_tokens_per_s: throughput,
        completed: completed.len(),
        rejected,
        dead_lettered,
        shed,
        retries,
        per_tenant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_runtime::Request;

    fn done(
        id: usize,
        arrival: f64,
        start: f64,
        finish: f64,
        output_len: usize,
    ) -> CompletedRequest {
        tenant_done(id, 0, arrival, start, finish, output_len)
    }

    fn tenant_done(
        id: usize,
        tenant: u32,
        arrival: f64,
        start: f64,
        finish: f64,
        output_len: usize,
    ) -> CompletedRequest {
        CompletedRequest {
            request: Request {
                id,
                tenant,
                input_len: 128,
                output_len,
                arrival,
            },
            start,
            first_token: start,
            finish,
            preemptions: 0,
        }
    }

    #[test]
    fn goodput_counts_only_attaining_requests() {
        let slo = SloSpec::new(1.0, 0.1);
        // First request: TTFT 0.5, TBT 0.05 — attains. Second: TTFT 5 — misses.
        let completed = [done(0, 0.0, 0.5, 5.5, 100), done(1, 0.0, 5.0, 10.0, 100)];
        let rep = evaluate(&completed, 0, 10.0, &slo);
        assert_eq!(rep.completed, 2);
        assert!((rep.attainment - 0.5).abs() < 1e-9);
        assert!((rep.goodput_tokens_per_s - 10.0).abs() < 1e-9);
        assert!((rep.throughput_tokens_per_s - 20.0).abs() < 1e-9);
    }

    #[test]
    fn rejected_requests_drag_attainment_down() {
        let slo = SloSpec::new(10.0, 1.0);
        let completed = [done(0, 0.0, 0.5, 1.5, 10)];
        let rep = evaluate(&completed, 3, 2.0, &slo);
        assert!((rep.attainment - 0.25).abs() < 1e-9);
        assert_eq!(rep.rejected, 3);
    }

    #[test]
    fn empty_run_is_all_zeros() {
        let rep = evaluate(&[], 0, 0.0, &SloSpec::default());
        assert_eq!(rep.completed, 0);
        assert_eq!(rep.attainment, 0.0);
        assert_eq!(rep.goodput_tokens_per_s, 0.0);
        assert_eq!(rep.ttft, PercentileSummary::default());
    }

    #[test]
    fn all_rejected_trace_has_zero_attainment_and_no_nan() {
        let rep = evaluate_tenanted(&[], 5, &[(0, 3), (1, 2)], 4.0, &SloSpec::default());
        assert_eq!(rep.completed, 0);
        assert_eq!(rep.rejected, 5);
        assert_eq!(rep.attainment, 0.0);
        assert!(rep.attainment.is_finite());
        assert_eq!(rep.goodput_tokens_per_s, 0.0);
        assert!(rep.ttft.p99.is_finite());
        assert_eq!(rep.per_tenant.len(), 2);
        for t in &rep.per_tenant {
            assert_eq!(t.completed, 0);
            assert_eq!(t.attainment, 0.0);
            assert!(t.attainment.is_finite() && t.goodput_tokens_per_s.is_finite());
            assert!(t.ttft.p95.is_finite());
        }
        assert_eq!(rep.per_tenant[0].rejected, 3);
        assert_eq!(rep.per_tenant[1].rejected, 2);
    }

    #[test]
    fn zero_makespan_run_reports_zero_rates_not_inf() {
        let completed = [done(0, 0.0, 0.0, 0.0, 10)];
        let rep = evaluate(&completed, 0, 0.0, &SloSpec::default());
        assert_eq!(rep.goodput_tokens_per_s, 0.0);
        assert_eq!(rep.throughput_tokens_per_s, 0.0);
        assert!(rep.goodput_tokens_per_s.is_finite());
        for t in &rep.per_tenant {
            assert_eq!(t.goodput_tokens_per_s, 0.0);
            assert_eq!(t.throughput_tokens_per_s, 0.0);
        }
    }

    #[test]
    fn per_tenant_goodput_and_counts_sum_to_fleet() {
        let slo = SloSpec::new(1.0, 1.0);
        let completed = [
            tenant_done(0, 0, 0.0, 0.5, 2.0, 100),
            tenant_done(1, 1, 0.0, 0.3, 1.5, 50),
            tenant_done(2, 0, 0.0, 5.0, 9.0, 70), // misses TTFT
            tenant_done(3, 2, 0.0, 0.1, 3.0, 30),
        ];
        let rep = evaluate_tenanted(&completed, 1, &[(1, 1)], 10.0, &slo);
        assert_eq!(rep.per_tenant.len(), 3);
        let good_sum: f64 = rep.per_tenant.iter().map(|t| t.goodput_tokens_per_s).sum();
        assert!((good_sum - rep.goodput_tokens_per_s).abs() < 1e-9);
        let thr_sum: f64 = rep
            .per_tenant
            .iter()
            .map(|t| t.throughput_tokens_per_s)
            .sum();
        assert!((thr_sum - rep.throughput_tokens_per_s).abs() < 1e-9);
        let completed_sum: usize = rep.per_tenant.iter().map(|t| t.completed).sum();
        assert_eq!(completed_sum, rep.completed);
        let rejected_sum: usize = rep.per_tenant.iter().map(|t| t.rejected).sum();
        assert_eq!(rejected_sum, rep.rejected);
    }

    #[test]
    fn dead_letter_and_shed_join_the_submitted_denominator() {
        let slo = SloSpec::new(10.0, 1.0);
        let completed = [tenant_done(0, 0, 0.0, 0.5, 1.5, 10)];
        let outcomes = FaultOutcomes {
            dead_lettered: vec![(0, 1)],
            shed: vec![(1, 2)],
            retries: vec![(0, 3)],
        };
        let rep = evaluate_faulted(&completed, 0, &[], &outcomes, 2.0, &slo);
        // submitted = 1 completed + 1 dead-lettered + 2 shed = 4.
        assert!((rep.attainment - 0.25).abs() < 1e-9);
        assert_eq!(rep.dead_lettered, 1);
        assert_eq!(rep.shed, 2);
        assert_eq!(rep.retries, 3);
        let t0 = &rep.per_tenant[0];
        assert!((t0.attainment - 0.5).abs() < 1e-9, "1 of 2 submitted");
        assert_eq!((t0.dead_lettered, t0.retries), (1, 3));
        let t1 = &rep.per_tenant[1];
        assert_eq!((t1.shed, t1.completed), (2, 0));
        assert_eq!(t1.attainment, 0.0);
        assert!(t1.attainment.is_finite());
    }

    #[test]
    fn retried_requests_count_once_in_submitted() {
        // The same single completion with and without retry attempts:
        // attempts show up as counters but move no denominator.
        let slo = SloSpec::new(10.0, 1.0);
        let completed = [done(0, 0.0, 0.5, 1.5, 10)];
        let calm = evaluate_faulted(&completed, 0, &[], &FaultOutcomes::default(), 2.0, &slo);
        let stormy = evaluate_faulted(
            &completed,
            0,
            &[],
            &FaultOutcomes {
                retries: vec![(0, 5)],
                ..FaultOutcomes::default()
            },
            2.0,
            &slo,
        );
        assert_eq!(stormy.retries, 5);
        assert_eq!(stormy.attainment, calm.attainment);
        assert_eq!(stormy.goodput_tokens_per_s, calm.goodput_tokens_per_s);
        assert_eq!(stormy.completed, calm.completed);
    }

    #[test]
    fn default_outcomes_reduce_to_evaluate_tenanted() {
        let slo = SloSpec::new(1.0, 1.0);
        let completed = [tenant_done(0, 0, 0.0, 0.5, 2.0, 100)];
        let a = evaluate_tenanted(&completed, 1, &[(0, 1)], 10.0, &slo);
        let b = evaluate_faulted(
            &completed,
            1,
            &[(0, 1)],
            &FaultOutcomes::default(),
            10.0,
            &slo,
        );
        assert_eq!(a, b);
        assert_eq!((a.dead_lettered, a.shed, a.retries), (0, 0, 0));
    }

    #[test]
    fn percentiles_track_the_tail() {
        let slo = SloSpec::default();
        let completed: Vec<CompletedRequest> = (0..100)
            .map(|i| done(i, 0.0, i as f64 * 0.01, 10.0, 50))
            .collect();
        let rep = evaluate(&completed, 0, 10.0, &slo);
        assert!(rep.ttft.p99 >= rep.ttft.p50);
        assert!((rep.ttft.p99 - 0.99).abs() < 1e-9);
    }
}
