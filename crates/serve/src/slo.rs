//! Latency-SLO accounting.
//!
//! Cluster throughput alone is a vanity metric under open-loop load: a
//! saturated fleet completes requests at full throughput while every
//! user waits minutes for a first token. What the serving literature
//! holds systems to is *goodput* — tokens delivered by requests whose
//! time-to-first-token (TTFT) and time-between-tokens (TBT) both met
//! their service-level objectives — and tail percentiles. This module
//! turns raw completions into that accounting, reusing the same
//! [`PercentileSummary`] the single-node `ScheduleReport` carries so the
//! two layers stay comparable.

use serde::{Deserialize, Serialize};
use spec_runtime::CompletedRequest;
use spec_tensor::PercentileSummary;

/// The per-request latency targets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Max acceptable time-to-first-token, seconds (queueing + prefill).
    pub ttft_s: f64,
    /// Max acceptable mean time between output tokens, seconds.
    pub tbt_s: f64,
}

impl SloSpec {
    /// An SLO with the given TTFT and TBT bounds.
    pub fn new(ttft_s: f64, tbt_s: f64) -> Self {
        Self { ttft_s, tbt_s }
    }
}

impl Default for SloSpec {
    /// An interactive-serving default: first token within 30 s, then at
    /// least ~6.7 tokens/s sustained.
    fn default() -> Self {
        Self {
            ttft_s: 30.0,
            tbt_s: 0.15,
        }
    }
}

/// SLO accounting over a set of completions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Time-to-first-token percentiles, seconds.
    pub ttft: PercentileSummary,
    /// Time-between-tokens percentiles, seconds.
    pub tbt: PercentileSummary,
    /// End-to-end latency percentiles, seconds.
    pub latency: PercentileSummary,
    /// Fraction of *submitted* requests (completed + rejected) that
    /// completed with both TTFT and TBT within the SLO.
    pub attainment: f64,
    /// Output tokens/s delivered by SLO-attaining requests over the
    /// makespan — the headline "goodput under SLO" number.
    pub goodput_tokens_per_s: f64,
    /// Output tokens/s of all completed requests over the makespan.
    pub throughput_tokens_per_s: f64,
    /// Completed requests.
    pub completed: usize,
    /// Rejected (never-admissible) requests.
    pub rejected: usize,
}

/// Evaluates completions against an SLO over a run of length `makespan`.
pub fn evaluate(
    completed: &[CompletedRequest],
    rejected: usize,
    makespan: f64,
    slo: &SloSpec,
) -> SloReport {
    let ttfts: Vec<f64> = completed
        .iter()
        .map(CompletedRequest::time_to_first_token)
        .collect();
    let tbts: Vec<f64> = completed
        .iter()
        .map(CompletedRequest::time_between_tokens)
        .collect();
    let latencies: Vec<f64> = completed.iter().map(CompletedRequest::latency).collect();
    let attains = |c: &CompletedRequest| {
        c.time_to_first_token() <= slo.ttft_s && c.time_between_tokens() <= slo.tbt_s
    };
    let good_tokens: usize = completed
        .iter()
        .filter(|c| attains(c))
        .map(|c| c.request.output_len)
        .sum();
    let all_tokens: usize = completed.iter().map(|c| c.request.output_len).sum();
    let submitted = completed.len() + rejected;
    let per_s = |tokens: usize| {
        if makespan > 0.0 {
            tokens as f64 / makespan
        } else {
            0.0
        }
    };
    SloReport {
        ttft: PercentileSummary::from_samples(&ttfts),
        tbt: PercentileSummary::from_samples(&tbts),
        latency: PercentileSummary::from_samples(&latencies),
        attainment: if submitted > 0 {
            completed.iter().filter(|c| attains(c)).count() as f64 / submitted as f64
        } else {
            0.0
        },
        goodput_tokens_per_s: per_s(good_tokens),
        throughput_tokens_per_s: per_s(all_tokens),
        completed: completed.len(),
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_runtime::Request;

    fn done(
        id: usize,
        arrival: f64,
        start: f64,
        finish: f64,
        output_len: usize,
    ) -> CompletedRequest {
        CompletedRequest {
            request: Request {
                id,
                input_len: 128,
                output_len,
                arrival,
            },
            start,
            finish,
        }
    }

    #[test]
    fn goodput_counts_only_attaining_requests() {
        let slo = SloSpec::new(1.0, 0.1);
        // First request: TTFT 0.5, TBT 0.05 — attains. Second: TTFT 5 — misses.
        let completed = [done(0, 0.0, 0.5, 5.5, 100), done(1, 0.0, 5.0, 10.0, 100)];
        let rep = evaluate(&completed, 0, 10.0, &slo);
        assert_eq!(rep.completed, 2);
        assert!((rep.attainment - 0.5).abs() < 1e-9);
        assert!((rep.goodput_tokens_per_s - 10.0).abs() < 1e-9);
        assert!((rep.throughput_tokens_per_s - 20.0).abs() < 1e-9);
    }

    #[test]
    fn rejected_requests_drag_attainment_down() {
        let slo = SloSpec::new(10.0, 1.0);
        let completed = [done(0, 0.0, 0.5, 1.5, 10)];
        let rep = evaluate(&completed, 3, 2.0, &slo);
        assert!((rep.attainment - 0.25).abs() < 1e-9);
        assert_eq!(rep.rejected, 3);
    }

    #[test]
    fn empty_run_is_all_zeros() {
        let rep = evaluate(&[], 0, 0.0, &SloSpec::default());
        assert_eq!(rep.completed, 0);
        assert_eq!(rep.attainment, 0.0);
        assert_eq!(rep.goodput_tokens_per_s, 0.0);
        assert_eq!(rep.ttft, PercentileSummary::default());
    }

    #[test]
    fn percentiles_track_the_tail() {
        let slo = SloSpec::default();
        let completed: Vec<CompletedRequest> = (0..100)
            .map(|i| done(i, 0.0, i as f64 * 0.01, 10.0, 50))
            .collect();
        let rep = evaluate(&completed, 0, 10.0, &slo);
        assert!(rep.ttft.p99 >= rep.ttft.p50);
        assert!((rep.ttft.p99 - 0.99).abs() < 1e-9);
    }
}
