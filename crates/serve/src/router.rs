//! Pluggable request-routing policies.
//!
//! Routing is the cluster's first scheduling decision and deserves a
//! first-class, swappable abstraction (the lesson of the ASP scheduling
//! line of work): the same fleet under the same load behaves very
//! differently depending on whether requests chase empty queues, low KV
//! pressure, or session locality. Policies are deterministic — ties break
//! by replica index — so whole cluster runs replay bit-for-bit.

use crate::arrivals::ClusterRequest;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One replica's fault-facing condition, as routers see it. Only
/// [`Healthy`](ReplicaHealth::Healthy) replicas are routable under
/// health-aware routing; the cluster folds the others out of the
/// candidate set by clearing their snapshot's `active` flag, so every
/// existing policy ejects them without knowing about faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicaHealth {
    /// Up, full speed, past any probation.
    #[default]
    Healthy,
    /// Up but running slowed (transient straggler window).
    Straggling,
    /// Recently restarted; not yet re-admitted to candidate sets.
    Probation,
    /// Crashed and awaiting restart.
    Down,
}

impl ReplicaHealth {
    /// Whether a health-aware router may send work here.
    pub fn routable(self) -> bool {
        self == ReplicaHealth::Healthy
    }
}

/// What a router sees of one replica at routing time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicaSnapshot {
    /// Replica index in fleet order.
    pub index: usize,
    /// Whether the replica currently accepts new requests (autoscaling
    /// may park replicas).
    pub active: bool,
    /// Requests waiting for admission.
    pub queued: usize,
    /// Requests currently decoding.
    pub running: usize,
    /// Committed KV demand relative to the replica's KV capacity
    /// (`>1` means the backlog already exceeds GPU memory); accounts for
    /// device heterogeneity, unlike raw queue depth.
    pub kv_pressure: f64,
    /// Fault-facing condition. Informational for policies (the cluster
    /// already folds unhealthy replicas out of `active` when routing is
    /// health-aware); serialized snapshots keep it for dashboards.
    pub health: ReplicaHealth,
}

impl ReplicaSnapshot {
    /// Queued + running requests.
    pub fn outstanding(&self) -> usize {
        self.queued + self.running
    }
}

/// A routing policy: picks the replica for each arriving request.
pub trait RoutePolicy {
    /// Policy name (report labels).
    fn name(&self) -> &'static str;

    /// Picks a replica index for `req`. `replicas` is the whole fleet in
    /// index order and contains at least one active replica; the chosen
    /// index must refer to an active one.
    fn route(&mut self, req: &ClusterRequest, replicas: &[ReplicaSnapshot]) -> usize;
}

/// The all-parked fallback: the least-index replica. Every policy
/// degrades to this instead of panicking when autoscaling (or a caller
/// driving snapshots by hand) leaves no replica active.
fn least_index(replicas: &[ReplicaSnapshot]) -> usize {
    replicas.iter().map(|r| r.index).min().unwrap_or(0)
}

fn least_outstanding(replicas: &[ReplicaSnapshot]) -> usize {
    replicas
        .iter()
        .filter(|r| r.active)
        .min_by_key(|r| (r.outstanding(), r.index))
        .map_or_else(|| least_index(replicas), |r| r.index)
}

/// Cycles through active replicas in index order.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoutePolicy for RoundRobin {
    fn name(&self) -> &'static str {
        RouterKind::RoundRobin.name()
    }

    fn route(&mut self, _req: &ClusterRequest, replicas: &[ReplicaSnapshot]) -> usize {
        let active: Vec<usize> = replicas
            .iter()
            .filter(|r| r.active)
            .map(|r| r.index)
            .collect();
        if active.is_empty() {
            // A fully parked fleet (min_replicas would have to be 0 and
            // every replica scaled down) must not divide by zero; fall
            // back to the least-index replica without moving the cursor.
            return least_index(replicas);
        }
        let idx = active[self.cursor % active.len()];
        self.cursor += 1;
        idx
    }
}

/// Joins the shortest queue: fewest queued + running requests.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastOutstanding;

impl RoutePolicy for LeastOutstanding {
    fn name(&self) -> &'static str {
        RouterKind::LeastOutstanding.name()
    }

    fn route(&mut self, _req: &ClusterRequest, replicas: &[ReplicaSnapshot]) -> usize {
        least_outstanding(replicas)
    }
}

/// Joins the replica with the lowest committed KV demand relative to its
/// capacity — the load signal that stays meaningful on heterogeneous
/// fleets, where an A100 replica absorbs far more backlog than a 4090.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastKvPressure;

impl RoutePolicy for LeastKvPressure {
    fn name(&self) -> &'static str {
        RouterKind::LeastKvPressure.name()
    }

    fn route(&mut self, _req: &ClusterRequest, replicas: &[ReplicaSnapshot]) -> usize {
        replicas
            .iter()
            .filter(|r| r.active)
            .min_by(|a, b| {
                a.kv_pressure
                    .partial_cmp(&b.kv_pressure)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.index.cmp(&b.index))
            })
            .map_or_else(|| least_index(replicas), |r| r.index)
    }
}

/// Pins each session to one replica (prefix/KV locality), falling back
/// to least-outstanding for new sessions or parked targets.
#[derive(Debug, Clone, Default)]
pub struct SessionAffinity {
    pinned: HashMap<u64, usize>,
}

impl RoutePolicy for SessionAffinity {
    fn name(&self) -> &'static str {
        RouterKind::SessionAffinity.name()
    }

    fn route(&mut self, req: &ClusterRequest, replicas: &[ReplicaSnapshot]) -> usize {
        if let Some(&idx) = self.pinned.get(&req.session) {
            if replicas.get(idx).is_some_and(|r| r.active) {
                return idx;
            }
        }
        let idx = least_outstanding(replicas);
        self.pinned.insert(req.session, idx);
        idx
    }
}

/// Partitions the active fleet among tenants in proportion to their
/// weights, then joins the least-outstanding replica inside the tenant's
/// partition — noisy-neighbour isolation at the routing layer: a batch
/// tenant's backlog piles onto its own slice of the fleet instead of
/// every queue.
///
/// The partition is recomputed per decision from the tenants seen so far
/// (sorted by id, contiguous slices of the active list, largest-weight
/// shares first by cumulative rounding), so it adapts as autoscaling
/// parks and wakes replicas. A tenant whose share rounds to zero
/// replicas falls back to the global least-outstanding pick.
#[derive(Debug, Clone, Default)]
pub struct WeightedTenant {
    /// `(tenant, weight)` pairs; unlisted tenants weigh 1.
    weights: Vec<(u32, u32)>,
    seen: std::collections::BTreeSet<u32>,
}

impl WeightedTenant {
    /// A policy with explicit tenant weights (unlisted tenants weigh 1).
    pub fn with_weights(weights: Vec<(u32, u32)>) -> Self {
        Self {
            weights,
            seen: std::collections::BTreeSet::new(),
        }
    }

    fn weight(&self, tenant: u32) -> u64 {
        self.weights
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|&(_, w)| w.max(1) as u64)
            .unwrap_or(1)
    }
}

impl RoutePolicy for WeightedTenant {
    fn name(&self) -> &'static str {
        RouterKind::WeightedTenant.name()
    }

    fn route(&mut self, req: &ClusterRequest, replicas: &[ReplicaSnapshot]) -> usize {
        self.seen.insert(req.request.tenant);
        let active: Vec<ReplicaSnapshot> = replicas.iter().filter(|r| r.active).copied().collect();
        if active.is_empty() {
            return least_index(replicas);
        }
        // Cumulative-weight slice boundaries over the active list.
        let total: u64 = self.seen.iter().map(|&t| self.weight(t)).sum();
        let n = active.len() as u64;
        let mut cum = 0u64;
        let mut slice: Option<(usize, usize)> = None;
        for &t in &self.seen {
            let start = (cum * n / total) as usize;
            cum += self.weight(t);
            let end = (cum * n / total) as usize;
            if t == req.request.tenant {
                slice = Some((start, end));
                break;
            }
        }
        let (start, end) = slice.expect("tenant was just inserted");
        if start >= end {
            // Share rounded to zero replicas: fall back fleet-wide.
            return least_outstanding(replicas);
        }
        active[start..end]
            .iter()
            .min_by_key(|r| (r.outstanding(), r.index))
            .expect("non-empty slice")
            .index
    }
}

/// The built-in policies, as a sweepable enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouterKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastOutstanding`].
    LeastOutstanding,
    /// [`LeastKvPressure`].
    LeastKvPressure,
    /// [`SessionAffinity`].
    SessionAffinity,
    /// [`WeightedTenant`] with default (equal) weights; build
    /// [`WeightedTenant::with_weights`] directly for a custom mix.
    WeightedTenant,
}

impl RouterKind {
    /// All built-in policies, in sweep order.
    pub fn all() -> [RouterKind; 5] {
        [
            RouterKind::RoundRobin,
            RouterKind::LeastOutstanding,
            RouterKind::LeastKvPressure,
            RouterKind::SessionAffinity,
            RouterKind::WeightedTenant,
        ]
    }

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn RoutePolicy> {
        match self {
            RouterKind::RoundRobin => Box::new(RoundRobin::default()),
            RouterKind::LeastOutstanding => Box::new(LeastOutstanding),
            RouterKind::LeastKvPressure => Box::new(LeastKvPressure),
            RouterKind::SessionAffinity => Box::new(SessionAffinity::default()),
            RouterKind::WeightedTenant => Box::new(WeightedTenant::default()),
        }
    }

    /// The policy's name — the single source the instances' `name()`
    /// delegates to.
    pub fn name(self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round-robin",
            RouterKind::LeastOutstanding => "least-outstanding",
            RouterKind::LeastKvPressure => "least-kv-pressure",
            RouterKind::SessionAffinity => "session-affinity",
            RouterKind::WeightedTenant => "weighted-tenant",
        }
    }
}

impl std::fmt::Display for RouterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_runtime::Request;

    fn req(id: usize, session: u64) -> ClusterRequest {
        tenant_req(id, session, 0)
    }

    fn tenant_req(id: usize, session: u64, tenant: u32) -> ClusterRequest {
        ClusterRequest {
            request: Request {
                id,
                tenant,
                input_len: 128,
                output_len: 64,
                arrival: 0.0,
            },
            session,
        }
    }

    fn snap(index: usize, active: bool, queued: usize, pressure: f64) -> ReplicaSnapshot {
        ReplicaSnapshot {
            index,
            active,
            queued,
            running: 0,
            kv_pressure: pressure,
            health: ReplicaHealth::Healthy,
        }
    }

    #[test]
    fn only_healthy_is_routable() {
        assert!(ReplicaHealth::Healthy.routable());
        for h in [
            ReplicaHealth::Straggling,
            ReplicaHealth::Probation,
            ReplicaHealth::Down,
        ] {
            assert!(!h.routable(), "{h:?} must stay ejected");
        }
    }

    #[test]
    fn round_robin_cycles_over_active_only() {
        let snaps = [
            snap(0, true, 0, 0.0),
            snap(1, false, 0, 0.0),
            snap(2, true, 0, 0.0),
        ];
        let mut rr = RoundRobin::default();
        let picks: Vec<usize> = (0..4).map(|i| rr.route(&req(i, 0), &snaps)).collect();
        assert_eq!(picks, [0, 2, 0, 2]);
    }

    #[test]
    fn least_outstanding_breaks_ties_by_index() {
        let snaps = [
            snap(0, true, 3, 0.0),
            snap(1, true, 1, 0.0),
            snap(2, true, 1, 0.0),
        ];
        assert_eq!(LeastOutstanding.route(&req(0, 0), &snaps), 1);
    }

    #[test]
    fn kv_pressure_ignores_queue_counts() {
        // Replica 0 has fewer requests but each is huge; pressure routing
        // must prefer replica 1.
        let snaps = [snap(0, true, 1, 0.9), snap(1, true, 4, 0.2)];
        assert_eq!(LeastKvPressure.route(&req(0, 0), &snaps), 1);
        assert_eq!(LeastOutstanding.route(&req(0, 0), &snaps), 0);
    }

    #[test]
    fn session_affinity_sticks_until_target_parks() {
        let mut aff = SessionAffinity::default();
        let snaps = [snap(0, true, 5, 0.0), snap(1, true, 0, 0.0)];
        let first = aff.route(&req(0, 42), &snaps);
        assert_eq!(first, 1);
        // Same session sticks even though replica 0 is now emptier.
        let snaps2 = [snap(0, true, 0, 0.0), snap(1, true, 9, 0.0)];
        assert_eq!(aff.route(&req(1, 42), &snaps2), 1);
        // Target parked: re-pin to the best active replica.
        let snaps3 = [snap(0, true, 0, 0.0), snap(1, false, 9, 0.0)];
        assert_eq!(aff.route(&req(2, 42), &snaps3), 0);
        assert_eq!(aff.route(&req(3, 42), &snaps2), 0);
    }

    #[test]
    fn kinds_build_their_names() {
        let names: Vec<&str> = RouterKind::all().iter().map(|k| k.build().name()).collect();
        assert_eq!(
            names,
            [
                "round-robin",
                "least-outstanding",
                "least-kv-pressure",
                "session-affinity",
                "weighted-tenant"
            ]
        );
    }

    #[test]
    fn every_policy_survives_a_fully_parked_fleet() {
        // Regression: `active[self.cursor % active.len()]` divided by zero
        // when autoscaling parked every replica. All policies now fall
        // back to the least-index replica instead of panicking.
        let parked = [snap(0, false, 3, 0.5), snap(1, false, 0, 0.1)];
        for kind in RouterKind::all() {
            let mut policy = kind.build();
            assert_eq!(policy.route(&req(0, 9), &parked), 0, "policy {kind}");
        }
    }

    #[test]
    fn round_robin_cursor_survives_park_unpark() {
        let mut rr = RoundRobin::default();
        let both = [snap(0, true, 0, 0.0), snap(1, true, 0, 0.0)];
        let parked = [snap(0, false, 0, 0.0), snap(1, false, 0, 0.0)];
        assert_eq!(rr.route(&req(0, 0), &both), 0);
        assert_eq!(rr.route(&req(1, 0), &parked), 0); // fallback, no cursor move
        assert_eq!(rr.route(&req(2, 0), &both), 1); // rotation resumes
    }

    #[test]
    fn weighted_tenant_partitions_the_fleet() {
        let mut wt = WeightedTenant::with_weights(vec![(0, 1), (1, 1)]);
        let snaps = [
            snap(0, true, 0, 0.0),
            snap(1, true, 0, 0.0),
            snap(2, true, 0, 0.0),
            snap(3, true, 0, 0.0),
        ];
        // Register both tenants, then check isolation: tenant 0 stays in
        // the low half, tenant 1 in the high half, regardless of load.
        wt.route(&tenant_req(0, 0, 0), &snaps);
        wt.route(&tenant_req(1, 0, 1), &snaps);
        let loaded = [
            snap(0, true, 9, 0.0),
            snap(1, true, 9, 0.0),
            snap(2, true, 0, 0.0),
            snap(3, true, 0, 0.0),
        ];
        let t0 = wt.route(&tenant_req(2, 0, 0), &loaded);
        let t1 = wt.route(&tenant_req(3, 0, 1), &loaded);
        assert!(t0 < 2, "tenant 0 must stay in its slice, got {t0}");
        assert!(t1 >= 2, "tenant 1 must stay in its slice, got {t1}");
    }

    #[test]
    fn weighted_tenant_zero_share_falls_back_fleet_wide() {
        // One-to-nine weights on a 2-replica fleet: the light tenant's
        // share rounds to zero replicas (cumulative floor boundary 0..0),
        // so it joins the global least-outstanding pick instead of
        // wedging.
        let mut wt = WeightedTenant::with_weights(vec![(0, 1), (1, 9)]);
        let snaps = [snap(0, true, 5, 0.0), snap(1, true, 0, 0.0)];
        wt.route(&tenant_req(0, 0, 1), &snaps);
        let pick = wt.route(&tenant_req(1, 0, 0), &snaps);
        assert_eq!(pick, 1);
    }

    #[test]
    fn weighted_tenant_single_replica_serves_everyone() {
        let mut wt = WeightedTenant::default();
        let snaps = [snap(0, true, 0, 0.0)];
        for t in 0..5u32 {
            assert_eq!(wt.route(&tenant_req(t as usize, 0, t), &snaps), 0);
        }
    }
}
