//! Pluggable request-routing policies.
//!
//! Routing is the cluster's first scheduling decision and deserves a
//! first-class, swappable abstraction (the lesson of the ASP scheduling
//! line of work): the same fleet under the same load behaves very
//! differently depending on whether requests chase empty queues, low KV
//! pressure, or session locality. Policies are deterministic — ties break
//! by replica index — so whole cluster runs replay bit-for-bit.

use crate::arrivals::ClusterRequest;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a router sees of one replica at routing time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicaSnapshot {
    /// Replica index in fleet order.
    pub index: usize,
    /// Whether the replica currently accepts new requests (autoscaling
    /// may park replicas).
    pub active: bool,
    /// Requests waiting for admission.
    pub queued: usize,
    /// Requests currently decoding.
    pub running: usize,
    /// Committed KV demand relative to the replica's KV capacity
    /// (`>1` means the backlog already exceeds GPU memory); accounts for
    /// device heterogeneity, unlike raw queue depth.
    pub kv_pressure: f64,
}

impl ReplicaSnapshot {
    /// Queued + running requests.
    pub fn outstanding(&self) -> usize {
        self.queued + self.running
    }
}

/// A routing policy: picks the replica for each arriving request.
pub trait RoutePolicy {
    /// Policy name (report labels).
    fn name(&self) -> &'static str;

    /// Picks a replica index for `req`. `replicas` is the whole fleet in
    /// index order and contains at least one active replica; the chosen
    /// index must refer to an active one.
    fn route(&mut self, req: &ClusterRequest, replicas: &[ReplicaSnapshot]) -> usize;
}

fn least_outstanding(replicas: &[ReplicaSnapshot]) -> usize {
    replicas
        .iter()
        .filter(|r| r.active)
        .min_by_key(|r| (r.outstanding(), r.index))
        .expect("at least one active replica")
        .index
}

/// Cycles through active replicas in index order.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoutePolicy for RoundRobin {
    fn name(&self) -> &'static str {
        RouterKind::RoundRobin.name()
    }

    fn route(&mut self, _req: &ClusterRequest, replicas: &[ReplicaSnapshot]) -> usize {
        let active: Vec<usize> = replicas
            .iter()
            .filter(|r| r.active)
            .map(|r| r.index)
            .collect();
        let idx = active[self.cursor % active.len()];
        self.cursor += 1;
        idx
    }
}

/// Joins the shortest queue: fewest queued + running requests.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastOutstanding;

impl RoutePolicy for LeastOutstanding {
    fn name(&self) -> &'static str {
        RouterKind::LeastOutstanding.name()
    }

    fn route(&mut self, _req: &ClusterRequest, replicas: &[ReplicaSnapshot]) -> usize {
        least_outstanding(replicas)
    }
}

/// Joins the replica with the lowest committed KV demand relative to its
/// capacity — the load signal that stays meaningful on heterogeneous
/// fleets, where an A100 replica absorbs far more backlog than a 4090.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastKvPressure;

impl RoutePolicy for LeastKvPressure {
    fn name(&self) -> &'static str {
        RouterKind::LeastKvPressure.name()
    }

    fn route(&mut self, _req: &ClusterRequest, replicas: &[ReplicaSnapshot]) -> usize {
        replicas
            .iter()
            .filter(|r| r.active)
            .min_by(|a, b| {
                a.kv_pressure
                    .partial_cmp(&b.kv_pressure)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.index.cmp(&b.index))
            })
            .expect("at least one active replica")
            .index
    }
}

/// Pins each session to one replica (prefix/KV locality), falling back
/// to least-outstanding for new sessions or parked targets.
#[derive(Debug, Clone, Default)]
pub struct SessionAffinity {
    pinned: HashMap<u64, usize>,
}

impl RoutePolicy for SessionAffinity {
    fn name(&self) -> &'static str {
        RouterKind::SessionAffinity.name()
    }

    fn route(&mut self, req: &ClusterRequest, replicas: &[ReplicaSnapshot]) -> usize {
        if let Some(&idx) = self.pinned.get(&req.session) {
            if replicas.get(idx).is_some_and(|r| r.active) {
                return idx;
            }
        }
        let idx = least_outstanding(replicas);
        self.pinned.insert(req.session, idx);
        idx
    }
}

/// The built-in policies, as a sweepable enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouterKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastOutstanding`].
    LeastOutstanding,
    /// [`LeastKvPressure`].
    LeastKvPressure,
    /// [`SessionAffinity`].
    SessionAffinity,
}

impl RouterKind {
    /// All built-in policies, in sweep order.
    pub fn all() -> [RouterKind; 4] {
        [
            RouterKind::RoundRobin,
            RouterKind::LeastOutstanding,
            RouterKind::LeastKvPressure,
            RouterKind::SessionAffinity,
        ]
    }

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn RoutePolicy> {
        match self {
            RouterKind::RoundRobin => Box::new(RoundRobin::default()),
            RouterKind::LeastOutstanding => Box::new(LeastOutstanding),
            RouterKind::LeastKvPressure => Box::new(LeastKvPressure),
            RouterKind::SessionAffinity => Box::new(SessionAffinity::default()),
        }
    }

    /// The policy's name — the single source the instances' `name()`
    /// delegates to.
    pub fn name(self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round-robin",
            RouterKind::LeastOutstanding => "least-outstanding",
            RouterKind::LeastKvPressure => "least-kv-pressure",
            RouterKind::SessionAffinity => "session-affinity",
        }
    }
}

impl std::fmt::Display for RouterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_runtime::Request;

    fn req(id: usize, session: u64) -> ClusterRequest {
        ClusterRequest {
            request: Request {
                id,
                input_len: 128,
                output_len: 64,
                arrival: 0.0,
            },
            session,
        }
    }

    fn snap(index: usize, active: bool, queued: usize, pressure: f64) -> ReplicaSnapshot {
        ReplicaSnapshot {
            index,
            active,
            queued,
            running: 0,
            kv_pressure: pressure,
        }
    }

    #[test]
    fn round_robin_cycles_over_active_only() {
        let snaps = [
            snap(0, true, 0, 0.0),
            snap(1, false, 0, 0.0),
            snap(2, true, 0, 0.0),
        ];
        let mut rr = RoundRobin::default();
        let picks: Vec<usize> = (0..4).map(|i| rr.route(&req(i, 0), &snaps)).collect();
        assert_eq!(picks, [0, 2, 0, 2]);
    }

    #[test]
    fn least_outstanding_breaks_ties_by_index() {
        let snaps = [
            snap(0, true, 3, 0.0),
            snap(1, true, 1, 0.0),
            snap(2, true, 1, 0.0),
        ];
        assert_eq!(LeastOutstanding.route(&req(0, 0), &snaps), 1);
    }

    #[test]
    fn kv_pressure_ignores_queue_counts() {
        // Replica 0 has fewer requests but each is huge; pressure routing
        // must prefer replica 1.
        let snaps = [snap(0, true, 1, 0.9), snap(1, true, 4, 0.2)];
        assert_eq!(LeastKvPressure.route(&req(0, 0), &snaps), 1);
        assert_eq!(LeastOutstanding.route(&req(0, 0), &snaps), 0);
    }

    #[test]
    fn session_affinity_sticks_until_target_parks() {
        let mut aff = SessionAffinity::default();
        let snaps = [snap(0, true, 5, 0.0), snap(1, true, 0, 0.0)];
        let first = aff.route(&req(0, 42), &snaps);
        assert_eq!(first, 1);
        // Same session sticks even though replica 0 is now emptier.
        let snaps2 = [snap(0, true, 0, 0.0), snap(1, true, 9, 0.0)];
        assert_eq!(aff.route(&req(1, 42), &snaps2), 1);
        // Target parked: re-pin to the best active replica.
        let snaps3 = [snap(0, true, 0, 0.0), snap(1, false, 9, 0.0)];
        assert_eq!(aff.route(&req(2, 42), &snaps3), 0);
        assert_eq!(aff.route(&req(3, 42), &snaps2), 0);
    }

    #[test]
    fn kinds_build_their_names() {
        let names: Vec<&str> = RouterKind::all().iter().map(|k| k.build().name()).collect();
        assert_eq!(
            names,
            [
                "round-robin",
                "least-outstanding",
                "least-kv-pressure",
                "session-affinity"
            ]
        );
    }
}
