//! Deterministic, seeded fault injection and graceful degradation.
//!
//! A [`FaultPlan`] describes everything that can go wrong during a
//! cluster run — replica crashes and restarts (memoryless MTBF/MTTR
//! processes or scripted events), transient straggler windows (a
//! per-replica multiplier on device-priced step costs), and KV
//! checkpoint-migration failures — plus the recovery knobs: a capped
//! exponential-backoff [`RetryPolicy`] with seeded jitter and a retry
//! budget, an optional tenant-weighted [`ShedPolicy`] for overload
//! shedding, a probation window for restarted replicas, and whether
//! routing is health-aware. The [`FaultInjector`] materializes the plan
//! into a deterministic event timeline on the simulated clock: every
//! random quantity is drawn from [`SimRng`] streams forked from the
//! plan seed per replica, so identical plans produce byte-identical
//! timelines at any `SPEC_THREADS`.
//!
//! The empty plan ([`FaultPlan::none`]) schedules nothing, retries
//! nothing and sheds nothing — `Cluster::run_faulted` under it is
//! bit-identical to `Cluster::run` (pinned by `tests/faults.rs`).

use serde::{Deserialize, Serialize};
use spec_tensor::SimRng;
use std::collections::{BTreeMap, HashMap};

/// One scripted crash: `replica` goes down at `at_s` for `down_for_s`
/// seconds, then restarts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// Fleet index of the replica that crashes.
    pub replica: usize,
    /// Crash instant, seconds on the simulated clock.
    pub at_s: f64,
    /// Outage duration, seconds.
    pub down_for_s: f64,
}

/// One scripted straggler window: `replica`'s device-priced costs are
/// multiplied by `slowdown` between `at_s` and `at_s + duration_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerWindow {
    /// Fleet index of the straggling replica.
    pub replica: usize,
    /// Window start, seconds.
    pub at_s: f64,
    /// Window length, seconds.
    pub duration_s: f64,
    /// Cost multiplier (> 1 slows the replica down).
    pub slowdown: f64,
}

/// How crashes are generated.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum CrashModel {
    /// Nothing ever crashes.
    #[default]
    None,
    /// Each replica fails independently with exponentially distributed
    /// time-between-failures (mean `mtbf_s`) and outage length (mean
    /// `mttr_s`), both drawn from a per-replica stream forked off the
    /// plan seed.
    Mtbf {
        /// Mean time between failures, seconds.
        mtbf_s: f64,
        /// Mean time to repair, seconds.
        mttr_s: f64,
    },
    /// Exactly these crashes, in any order.
    Scripted(Vec<CrashEvent>),
}

/// How straggler windows are generated.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum StragglerModel {
    /// Nobody straggles.
    #[default]
    None,
    /// Exactly these windows, in any order.
    Scripted(Vec<StragglerWindow>),
    /// Each replica independently enters `slowdown`× windows of length
    /// `duration_s` with exponentially distributed gaps (mean `mtbs_s`).
    Random {
        /// Mean time between straggler windows, seconds.
        mtbs_s: f64,
        /// Window length, seconds.
        duration_s: f64,
        /// Cost multiplier while straggling.
        slowdown: f64,
    },
}

/// Capped exponential backoff with seeded jitter and a retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Crash-driven re-entries a request may consume (retries *and*
    /// checkpoint migrations both count, so a request bouncing between
    /// crashing replicas always terminates). Exhausted → dead-lettered.
    pub max_attempts: u32,
    /// First retry's backoff, seconds.
    pub base_backoff_s: f64,
    /// Backoff ceiling, seconds.
    pub max_backoff_s: f64,
    /// Multiplicative jitter: the backoff is scaled by a seeded uniform
    /// draw in `[1, 1 + jitter_frac)`.
    pub jitter_frac: f32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_s: 0.5,
            max_backoff_s: 8.0,
            jitter_frac: 0.2,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (1-based): capped
    /// exponential plus seeded jitter.
    pub fn backoff(&self, attempt: u32, rng: &mut SimRng) -> f64 {
        let doubling = attempt.saturating_sub(1).min(30);
        let raw = self.base_backoff_s * f64::from(1u32 << doubling);
        let capped = raw.min(self.max_backoff_s).max(0.0);
        capped * (1.0 + f64::from(self.jitter_frac) * f64::from(rng.uniform()))
    }
}

/// Tenant-weighted overload shedding: a fresh arrival is dropped when
/// the fleet's outstanding work has reached its tenant's watermark.
/// Thresholds scale with tenant weight relative to the heaviest tenant,
/// so light (low-priority) tenants shed first and the heavy tenant keeps
/// the full `watermark` of headroom — graceful degradation instead of
/// collapsing every SLO at once. Retries are exempt: shedding applies to
/// first-time arrivals only, keeping each request's disposition unique.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShedPolicy {
    /// Outstanding-work watermark for the heaviest tenant.
    pub watermark: usize,
    /// `(tenant, weight)` pairs; unlisted tenants weigh 1.
    pub weights: Vec<(u32, u32)>,
}

impl ShedPolicy {
    /// Sheds every tenant at `watermark` outstanding (equal weights).
    pub fn new(watermark: usize) -> Self {
        Self {
            watermark,
            weights: Vec::new(),
        }
    }

    /// Sets the tenant weights (unlisted tenants weigh 1).
    pub fn weights(mut self, weights: Vec<(u32, u32)>) -> Self {
        self.weights = weights;
        self
    }

    fn weight(&self, tenant: u32) -> u64 {
        self.weights
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|&(_, w)| u64::from(w.max(1)))
            .unwrap_or(1)
    }

    /// The outstanding-work level at which `tenant`'s arrivals shed:
    /// `ceil(watermark · weight / max_weight)`, at least 1.
    pub fn threshold(&self, tenant: u32) -> usize {
        let w_max = self
            .weights
            .iter()
            .map(|&(_, w)| u64::from(w.max(1)))
            .max()
            .unwrap_or(1)
            .max(1);
        let w = self.weight(tenant);
        (self.watermark as u64 * w).div_ceil(w_max).max(1) as usize
    }
}

/// Everything that goes wrong during one cluster run, plus the recovery
/// knobs. Built fluently from [`FaultPlan::none`]; the default plan
/// injects nothing and leaves `Cluster::run_faulted` bit-identical to
/// `Cluster::run`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every random quantity the plan draws.
    pub seed: u64,
    /// Crash generation.
    pub crashes: CrashModel,
    /// Straggler generation.
    pub stragglers: StragglerModel,
    /// Probability that a crashed replica's host-side checkpoint fails
    /// to transfer to a surviving replica (the request then restarts
    /// from scratch via the retry path). Local PCIe restores inside a
    /// healthy engine stay reliable — only cross-replica migration over
    /// the network can fail.
    pub kv_loss_prob: f32,
    /// Retry budget and backoff for crash-lost requests.
    pub retry: RetryPolicy,
    /// Overload shedding; `None` admits everything.
    pub shed: Option<ShedPolicy>,
    /// How long a restarted replica stays in probation (unroutable under
    /// health-aware routing) before re-admission. 0 = immediate.
    pub probation_s: f64,
    /// Whether routing ejects non-healthy replicas (down, straggling, or
    /// in probation) from candidate sets. `false` routes blindly: a
    /// crashed replica keeps receiving work that waits out the outage.
    pub health_aware: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no crashes, no stragglers, no shedding.
    pub fn none() -> Self {
        Self {
            seed: 0,
            crashes: CrashModel::None,
            stragglers: StragglerModel::None,
            kv_loss_prob: 0.0,
            retry: RetryPolicy::default(),
            shed: None,
            probation_s: 0.0,
            health_aware: false,
        }
    }

    /// Whether the plan can never perturb a run.
    pub fn is_empty(&self) -> bool {
        self.crashes == CrashModel::None
            && self.stragglers == StragglerModel::None
            && self.shed.is_none()
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables memoryless MTBF/MTTR crashes.
    pub fn mtbf(mut self, mtbf_s: f64, mttr_s: f64) -> Self {
        self.crashes = CrashModel::Mtbf { mtbf_s, mttr_s };
        self
    }

    /// Appends one scripted crash.
    pub fn crash_at(mut self, replica: usize, at_s: f64, down_for_s: f64) -> Self {
        let ev = CrashEvent {
            replica,
            at_s,
            down_for_s,
        };
        match &mut self.crashes {
            CrashModel::Scripted(list) => list.push(ev),
            _ => self.crashes = CrashModel::Scripted(vec![ev]),
        }
        self
    }

    /// Appends one scripted straggler window.
    pub fn straggler_at(
        mut self,
        replica: usize,
        at_s: f64,
        duration_s: f64,
        slowdown: f64,
    ) -> Self {
        let w = StragglerWindow {
            replica,
            at_s,
            duration_s,
            slowdown,
        };
        match &mut self.stragglers {
            StragglerModel::Scripted(list) => list.push(w),
            _ => self.stragglers = StragglerModel::Scripted(vec![w]),
        }
        self
    }

    /// Enables memoryless straggler windows.
    pub fn random_stragglers(mut self, mtbs_s: f64, duration_s: f64, slowdown: f64) -> Self {
        self.stragglers = StragglerModel::Random {
            mtbs_s,
            duration_s,
            slowdown,
        };
        self
    }

    /// Sets the checkpoint-migration loss probability.
    pub fn kv_loss(mut self, prob: f32) -> Self {
        self.kv_loss_prob = prob;
        self
    }

    /// Sets the retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables overload shedding.
    pub fn shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = Some(shed);
        self
    }

    /// Sets the restart probation window.
    pub fn probation(mut self, probation_s: f64) -> Self {
        self.probation_s = probation_s;
        self
    }

    /// Sets health-aware routing.
    pub fn health_aware(mut self, on: bool) -> Self {
        self.health_aware = on;
        self
    }
}

/// Fleet-level fault and recovery counters, carried on `ClusterReport`.
/// All zeros for a no-fault run, which keeps report equality pinning
/// intact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Replica crashes applied.
    pub crashes: usize,
    /// Replica restarts applied.
    pub recoveries: usize,
    /// Requests torn out of crashed replicas without a checkpoint.
    pub lost_in_flight: usize,
    /// Retry attempts scheduled (backoff re-entries).
    pub retries: usize,
    /// Requests that exhausted their retry budget.
    pub dead_lettered: usize,
    /// Fresh arrivals dropped by overload shedding.
    pub shed: usize,
    /// Checkpoints successfully migrated to a surviving replica.
    pub checkpoints_migrated: usize,
    /// Checkpoints whose migration transfer failed (request retried
    /// from scratch).
    pub checkpoints_lost: usize,
    /// Straggler windows applied.
    pub straggler_windows: usize,
}

/// What one fault-timeline event does to a replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FaultAction {
    /// The replica's process dies until the already-scheduled restart.
    Crash,
    /// The replica comes back up (probation may follow).
    Restart,
    /// A straggler window opens with this cost multiplier.
    StragglerStart(f64),
    /// The open straggler window closes.
    StragglerEnd,
    /// The post-restart probation window ends.
    ProbationEnd,
}

impl FaultAction {
    /// Tie-break priority at equal timestamps: recoveries before new
    /// failures, so a replica restarting and re-crashing at the same
    /// instant observes the restart first.
    fn priority(self) -> u8 {
        match self {
            FaultAction::Restart => 0,
            FaultAction::ProbationEnd => 1,
            FaultAction::StragglerEnd => 2,
            FaultAction::StragglerStart(_) => 3,
            FaultAction::Crash => 4,
        }
    }
}

/// One materialized fault-timeline event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FaultEvent {
    /// When it fires, seconds on the simulated clock.
    pub at: f64,
    /// Which replica it targets.
    pub replica: usize,
    /// What it does.
    pub action: FaultAction,
}

/// Per-replica stochastic state for lazily generated processes.
#[derive(Debug)]
struct ReplicaProcess {
    rng: SimRng,
}

/// Materializes a [`FaultPlan`] into a deterministic event timeline.
///
/// Scripted events are loaded up front; stochastic processes (MTBF
/// crashes, random straggler windows) are chained lazily — popping a
/// restart draws the next crash, popping a window start schedules its
/// end and the next gap — from per-replica [`SimRng`] streams, so the
/// draw sequence is a pure function of the plan and never of thread
/// interleaving. Events pop in `(time, replica, action-priority)` order.
#[derive(Debug)]
pub struct FaultInjector {
    pending: Vec<FaultEvent>,
    processes: Vec<ReplicaProcess>,
    crashes: CrashModel,
    stragglers: StragglerModel,
    probation_s: f64,
    /// Injector-side down tracking, so scripted crashes that overlap an
    /// existing outage are dropped instead of double-scheduling restarts.
    down: Vec<bool>,
}

fn exp_draw(rng: &mut SimRng, mean: f64) -> f64 {
    // Inverse-CDF with u in [0,1): 1-u is in (0,1], so ln is finite.
    let u = f64::from(rng.uniform());
    -(1.0 - u).max(1e-12).ln() * mean
}

impl FaultInjector {
    /// Builds the injector for a fleet of `replicas`.
    pub fn new(plan: &FaultPlan, replicas: usize) -> Self {
        let mut processes: Vec<ReplicaProcess> = (0..replicas)
            .map(|i| ReplicaProcess {
                // Fresh parent per replica: the stream depends only on
                // (seed, replica), never on construction order.
                rng: SimRng::seed(plan.seed).fork(i as u64 + 1),
            })
            .collect();
        let mut pending = Vec::new();
        match &plan.crashes {
            CrashModel::None => {}
            CrashModel::Scripted(list) => {
                for ev in list {
                    if ev.replica < replicas {
                        pending.push(FaultEvent {
                            at: ev.at_s,
                            replica: ev.replica,
                            action: FaultAction::Crash,
                        });
                        pending.push(FaultEvent {
                            at: ev.at_s + ev.down_for_s,
                            replica: ev.replica,
                            action: FaultAction::Restart,
                        });
                    }
                }
            }
            &CrashModel::Mtbf { mtbf_s, mttr_s } => {
                for (i, p) in processes.iter_mut().enumerate() {
                    let at = exp_draw(&mut p.rng, mtbf_s);
                    let down_for = exp_draw(&mut p.rng, mttr_s);
                    pending.push(FaultEvent {
                        at,
                        replica: i,
                        action: FaultAction::Crash,
                    });
                    pending.push(FaultEvent {
                        at: at + down_for,
                        replica: i,
                        action: FaultAction::Restart,
                    });
                }
            }
        }
        match &plan.stragglers {
            StragglerModel::None => {}
            StragglerModel::Scripted(list) => {
                for w in list {
                    if w.replica < replicas {
                        pending.push(FaultEvent {
                            at: w.at_s,
                            replica: w.replica,
                            action: FaultAction::StragglerStart(w.slowdown),
                        });
                        pending.push(FaultEvent {
                            at: w.at_s + w.duration_s,
                            replica: w.replica,
                            action: FaultAction::StragglerEnd,
                        });
                    }
                }
            }
            &StragglerModel::Random {
                mtbs_s,
                duration_s,
                slowdown,
            } => {
                for (i, p) in processes.iter_mut().enumerate() {
                    let at = exp_draw(&mut p.rng, mtbs_s);
                    pending.push(FaultEvent {
                        at,
                        replica: i,
                        action: FaultAction::StragglerStart(slowdown),
                    });
                    pending.push(FaultEvent {
                        at: at + duration_s,
                        replica: i,
                        action: FaultAction::StragglerEnd,
                    });
                }
            }
        }
        Self {
            pending,
            processes,
            crashes: plan.crashes.clone(),
            stragglers: plan.stragglers.clone(),
            probation_s: plan.probation_s,
            down: vec![false; replicas],
        }
    }

    fn min_index(&self) -> Option<usize> {
        (0..self.pending.len()).min_by(|&a, &b| {
            let (ea, eb) = (&self.pending[a], &self.pending[b]);
            ea.at
                .partial_cmp(&eb.at)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ea.replica.cmp(&eb.replica))
                .then(ea.action.priority().cmp(&eb.action.priority()))
        })
    }

    /// When the next deliverable event fires, if any.
    pub(crate) fn peek_time(&mut self) -> Option<f64> {
        self.discard_undeliverable();
        self.min_index().map(|i| self.pending[i].at)
    }

    /// Drops leading events that can no longer apply (a scripted crash
    /// landing inside an existing outage).
    fn discard_undeliverable(&mut self) {
        while let Some(i) = self.min_index() {
            let ev = self.pending[i];
            if ev.action == FaultAction::Crash && self.down[ev.replica] {
                self.pending.swap_remove(i);
                // Its paired scripted restart would re-start the replica
                // early; drop the earliest matching restart too.
                if let Some(j) = (0..self.pending.len())
                    .filter(|&j| {
                        self.pending[j].replica == ev.replica
                            && self.pending[j].action == FaultAction::Restart
                            && self.pending[j].at >= ev.at
                    })
                    .min_by(|&a, &b| {
                        self.pending[a]
                            .at
                            .partial_cmp(&self.pending[b].at)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                {
                    self.pending.swap_remove(j);
                }
            } else {
                break;
            }
        }
    }

    /// Pops the next event, chaining the stochastic processes: a crash
    /// marks the replica down; a restart marks it up, schedules the
    /// probation end and (under MTBF) draws the next crash; a window
    /// start under the random model draws the next window.
    pub(crate) fn pop(&mut self) -> Option<FaultEvent> {
        self.discard_undeliverable();
        let i = self.min_index()?;
        let ev = self.pending.swap_remove(i);
        match ev.action {
            FaultAction::Crash => self.down[ev.replica] = true,
            FaultAction::Restart => {
                self.down[ev.replica] = false;
                if self.probation_s > 0.0 {
                    self.pending.push(FaultEvent {
                        at: ev.at + self.probation_s,
                        replica: ev.replica,
                        action: FaultAction::ProbationEnd,
                    });
                }
                if let CrashModel::Mtbf { mtbf_s, mttr_s } = self.crashes {
                    let p = &mut self.processes[ev.replica];
                    let gap = exp_draw(&mut p.rng, mtbf_s);
                    let down_for = exp_draw(&mut p.rng, mttr_s);
                    self.pending.push(FaultEvent {
                        at: ev.at + gap,
                        replica: ev.replica,
                        action: FaultAction::Crash,
                    });
                    self.pending.push(FaultEvent {
                        at: ev.at + gap + down_for,
                        replica: ev.replica,
                        action: FaultAction::Restart,
                    });
                }
            }
            FaultAction::StragglerEnd => {
                if let StragglerModel::Random {
                    mtbs_s, duration_s, ..
                } = self.stragglers
                {
                    let slowdown = match self.stragglers {
                        StragglerModel::Random { slowdown, .. } => slowdown,
                        _ => unreachable!(),
                    };
                    let p = &mut self.processes[ev.replica];
                    let gap = exp_draw(&mut p.rng, mtbs_s);
                    self.pending.push(FaultEvent {
                        at: ev.at + gap,
                        replica: ev.replica,
                        action: FaultAction::StragglerStart(slowdown),
                    });
                    self.pending.push(FaultEvent {
                        at: ev.at + gap + duration_s,
                        replica: ev.replica,
                        action: FaultAction::StragglerEnd,
                    });
                }
            }
            FaultAction::StragglerStart(_) | FaultAction::ProbationEnd => {}
        }
        Some(ev)
    }
}

/// One crash-lost request waiting out its backoff.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingRetry {
    /// When it re-enters the router.
    pub ready: f64,
    /// FIFO tie-break among equal ready times.
    pub seq: u64,
    /// The request (arrival restamped at re-entry).
    pub req: spec_runtime::Request,
}

/// Per-tenant fault bookkeeping a faulted run accumulates, folded into
/// the report afterwards.
#[derive(Debug, Default)]
pub(crate) struct FaultLedger {
    /// Request id → original arrival, recorded the first time a request
    /// is disturbed (retried or migrated), so latency metrics span from
    /// first submission. Empty for undisturbed runs — reports then stay
    /// bit-identical.
    pub origins: HashMap<usize, f64>,
    /// Dead-lettered requests per tenant.
    pub dead_by_tenant: BTreeMap<u32, usize>,
    /// Shed requests per tenant.
    pub shed_by_tenant: BTreeMap<u32, usize>,
    /// Retry attempts per tenant.
    pub retries_by_tenant: BTreeMap<u32, usize>,
    /// Fleet-level counters.
    pub summary: FaultSummary,
}

impl FaultLedger {
    /// The per-tenant dispositions in `slo::evaluate_faulted` form.
    pub fn outcomes(&self) -> crate::slo::FaultOutcomes {
        crate::slo::FaultOutcomes {
            dead_lettered: self.dead_by_tenant.iter().map(|(&t, &n)| (t, n)).collect(),
            shed: self.shed_by_tenant.iter().map(|(&t, &n)| (t, n)).collect(),
            retries: self
                .retries_by_tenant
                .iter()
                .map(|(&t, &n)| (t, n))
                .collect(),
        }
    }
}

/// The whole mutable state of one faulted run: the injector timeline,
/// the retry queue, per-request attempt counts, session pins for
/// re-routing, the jitter/KV-loss RNG and the ledger.
#[derive(Debug)]
pub(crate) struct FaultRun {
    pub injector: FaultInjector,
    pub retry: RetryPolicy,
    pub kv_loss_prob: f32,
    /// Mirror of the plan's probation window, so replica deadlines match
    /// the injector's `ProbationEnd` timestamps exactly.
    pub probation_s: f64,
    /// Jitter and migration-loss draws (cluster-scope, drawn on the
    /// serial event path in deterministic order).
    pub rng: SimRng,
    pending: Vec<PendingRetry>,
    next_seq: u64,
    /// Request id → crash-driven re-entries consumed so far.
    pub attempts: HashMap<usize, u32>,
    /// Request id → session id, so retries keep their session affinity.
    pub sessions: HashMap<usize, u64>,
    pub ledger: FaultLedger,
}

impl FaultRun {
    pub fn new(plan: &FaultPlan, replicas: usize) -> Self {
        Self {
            injector: FaultInjector::new(plan, replicas),
            retry: plan.retry,
            kv_loss_prob: plan.kv_loss_prob,
            probation_s: plan.probation_s,
            rng: SimRng::seed(plan.seed).fork(0xFA17),
            pending: Vec::new(),
            next_seq: 0,
            attempts: HashMap::new(),
            sessions: HashMap::new(),
            ledger: FaultLedger::default(),
        }
    }

    /// When the earliest pending retry re-enters, if any.
    pub fn next_retry_time(&self) -> Option<f64> {
        self.retry_min().map(|i| self.pending[i].ready)
    }

    fn retry_min(&self) -> Option<usize> {
        (0..self.pending.len()).min_by(|&a, &b| {
            let (ra, rb) = (&self.pending[a], &self.pending[b]);
            ra.ready
                .partial_cmp(&rb.ready)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ra.seq.cmp(&rb.seq))
        })
    }

    /// Pops the earliest pending retry.
    pub fn pop_retry(&mut self) -> Option<PendingRetry> {
        let i = self.retry_min()?;
        Some(self.pending.swap_remove(i))
    }

    /// Consumes one unit of `req`'s retry budget. Returns the attempt
    /// number (1-based), or `None` when the budget is exhausted — the
    /// caller must dead-letter. Records the request's original arrival
    /// on first disturbance.
    pub fn consume_attempt(&mut self, req: &spec_runtime::Request) -> Option<u32> {
        self.ledger.origins.entry(req.id).or_insert(req.arrival);
        let used = self.attempts.entry(req.id).or_insert(0);
        if *used >= self.retry.max_attempts {
            return None;
        }
        *used += 1;
        Some(*used)
    }

    /// Queues a crash-lost request for re-entry after backoff. The
    /// caller has already consumed the attempt.
    pub fn schedule_retry(&mut self, req: spec_runtime::Request, now: f64, attempt: u32) -> f64 {
        let ready = now + self.retry.backoff(attempt, &mut self.rng);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(PendingRetry { ready, seq, req });
        self.ledger.summary.retries += 1;
        *self.ledger.retries_by_tenant.entry(req.tenant).or_insert(0) += 1;
        ready
    }

    /// Records a dead-lettered request.
    pub fn dead_letter(&mut self, req: &spec_runtime::Request) {
        self.ledger.summary.dead_lettered += 1;
        *self.ledger.dead_by_tenant.entry(req.tenant).or_insert(0) += 1;
    }

    /// Records a shed arrival.
    pub fn record_shed(&mut self, req: &spec_runtime::Request) {
        self.ledger.summary.shed += 1;
        *self.ledger.shed_by_tenant.entry(req.tenant).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_schedules_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        let mut inj = FaultInjector::new(&plan, 4);
        assert_eq!(inj.peek_time(), None);
        assert!(inj.pop().is_none());
    }

    #[test]
    fn scripted_events_pop_in_time_order() {
        let plan = FaultPlan::none()
            .crash_at(1, 5.0, 2.0)
            .straggler_at(0, 1.0, 3.0, 4.0);
        let mut inj = FaultInjector::new(&plan, 2);
        let mut seen = Vec::new();
        while let Some(ev) = inj.pop() {
            seen.push((ev.at, ev.replica));
        }
        assert_eq!(seen, vec![(1.0, 0), (4.0, 0), (5.0, 1), (7.0, 1)]);
    }

    #[test]
    fn overlapping_scripted_crash_is_dropped_with_its_restart() {
        let plan = FaultPlan::none()
            .crash_at(0, 1.0, 10.0)
            .crash_at(0, 2.0, 1.0);
        let mut inj = FaultInjector::new(&plan, 1);
        let kinds: Vec<(f64, FaultAction)> = std::iter::from_fn(|| inj.pop())
            .map(|e| (e.at, e.action))
            .collect();
        assert_eq!(
            kinds,
            vec![(1.0, FaultAction::Crash), (11.0, FaultAction::Restart)]
        );
    }

    #[test]
    fn mtbf_timeline_is_deterministic_and_alternates() {
        let plan = FaultPlan::none().mtbf(10.0, 2.0).seed(7);
        let pops = |n: usize| {
            let mut inj = FaultInjector::new(&plan, 2);
            (0..n)
                .map(|_| inj.pop().expect("endless"))
                .collect::<Vec<_>>()
        };
        let a = pops(12);
        let b = pops(12);
        assert_eq!(a, b, "same plan, same timeline");
        // Per replica, crashes and restarts must strictly alternate.
        for r in 0..2 {
            let seq: Vec<FaultAction> = a
                .iter()
                .filter(|e| e.replica == r)
                .map(|e| e.action)
                .collect();
            for pair in seq.windows(2) {
                assert_ne!(pair[0], pair[1], "replica {r} must alternate");
            }
        }
    }

    #[test]
    fn backoff_is_capped_exponential_with_bounded_jitter() {
        let retry = RetryPolicy {
            max_attempts: 10,
            base_backoff_s: 1.0,
            max_backoff_s: 4.0,
            jitter_frac: 0.5,
        };
        let mut rng = SimRng::seed(3);
        for (attempt, nominal) in [(1u32, 1.0f64), (2, 2.0), (3, 4.0), (4, 4.0), (9, 4.0)] {
            let b = retry.backoff(attempt, &mut rng);
            assert!(
                b >= nominal && b < nominal * 1.5,
                "attempt {attempt}: backoff {b} outside [{nominal}, {})",
                nominal * 1.5
            );
        }
    }

    #[test]
    fn shed_thresholds_scale_with_tenant_weight() {
        let shed = ShedPolicy::new(20).weights(vec![(0, 4), (1, 1)]);
        assert_eq!(shed.threshold(0), 20, "heaviest tenant gets the watermark");
        assert_eq!(shed.threshold(1), 5, "light tenant sheds at a quarter");
        assert_eq!(shed.threshold(9), 5, "unlisted tenants weigh 1");
        let equal = ShedPolicy::new(8);
        assert_eq!(equal.threshold(0), 8);
        assert_eq!(equal.threshold(5), 8);
        // Degenerate watermark still leaves a sliver of admission.
        assert_eq!(ShedPolicy::new(0).threshold(0), 1);
    }

    #[test]
    fn retry_budget_dead_letters_after_max_attempts() {
        let plan = FaultPlan::none().retry(RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        });
        let mut run = FaultRun::new(&plan, 1);
        let req = spec_runtime::Request {
            id: 9,
            tenant: 3,
            input_len: 128,
            output_len: 64,
            arrival: 1.0,
        };
        assert_eq!(run.consume_attempt(&req), Some(1));
        assert_eq!(run.consume_attempt(&req), Some(2));
        assert_eq!(run.consume_attempt(&req), None, "budget exhausted");
        assert_eq!(run.ledger.origins.get(&9), Some(&1.0));
    }

    #[test]
    fn retries_pop_in_ready_order_with_fifo_ties() {
        let plan = FaultPlan::none().retry(RetryPolicy {
            jitter_frac: 0.0,
            base_backoff_s: 1.0,
            ..RetryPolicy::default()
        });
        let mut run = FaultRun::new(&plan, 1);
        let req = |id: usize| spec_runtime::Request {
            id,
            tenant: 0,
            input_len: 1,
            output_len: 1,
            arrival: 0.0,
        };
        run.schedule_retry(req(1), 0.0, 1);
        run.schedule_retry(req(2), 0.0, 1);
        run.schedule_retry(req(0), 1.0, 1);
        let order: Vec<usize> = std::iter::from_fn(|| run.pop_retry())
            .map(|p| p.req.id)
            .collect();
        assert_eq!(order, vec![1, 2, 0]);
        assert_eq!(run.ledger.summary.retries, 3);
    }
}
