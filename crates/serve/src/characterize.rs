//! Trace characterization: one streaming pass over an encoded trace,
//! out come the numbers that tell you what kind of workload it is.
//!
//! The SPEC CPU2026 characterization papers make the case that a
//! benchmark suite is only trustworthy once its footprints and dynamics
//! are quantified; same here — before replaying a trace against routers
//! and autoscalers, [`characterize`] reports its request count, tenant
//! mix, length histograms, burstiness (interarrival coefficient of
//! variation), and peak-to-mean rate, as both markdown (for humans and
//! the README) and JSON (for tooling). The pass is single-scan and O(1)
//! in trace length apart from the per-tenant/per-session tallies, so it
//! handles million-request traces in milliseconds.

use crate::trace::{ticks_to_seconds, TraceCursor, TraceError};
use std::collections::{HashMap, HashSet};

/// Log₂-bucketed length histogram: bucket `i` counts values in
/// `[2^i, 2^(i+1))`, bucket 0 also holding 0.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Log2Histogram {
    /// Count per power-of-two bucket.
    pub buckets: Vec<u64>,
}

impl Log2Histogram {
    fn add(&mut self, value: usize) {
        let b = (usize::BITS - value.leading_zeros()).saturating_sub(1) as usize;
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
    }

    /// Renders `bucket-lo: count` lines, skipping empty buckets.
    fn to_markdown(&self, indent: &str) -> String {
        let total: u64 = self.buckets.iter().sum();
        let mut out = String::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let lo = 1usize << i;
            let hi = (1usize << (i + 1)) - 1;
            out.push_str(&format!(
                "{indent}| {lo}–{hi} | {n} | {:.1}% |\n",
                100.0 * n as f64 / total as f64
            ));
        }
        out
    }

    fn to_json(&self) -> String {
        let inner: Vec<String> = self.buckets.iter().map(u64::to_string).collect();
        format!("[{}]", inner.join(","))
    }
}

/// Prefill-vs-decode compute split of a trace.
///
/// Under the standard 2·P-FLOPs-per-token transformer cost model both
/// phases burn the same FLOPs per generated-or-ingested token, so a
/// request's prefill share is `input / (input + output)` — the quantity
/// that decides how a disaggregated fleet should split prefill and
/// decode replicas (see `cluster::Cluster::from_fleet_slots`). This is
/// an approximation: it ignores the attention term's quadratic growth
/// with context, which skews long-context traces further toward
/// prefill.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeSplit {
    /// Token-weighted fleet share: Σ input / Σ (input + output). The
    /// fraction of total FLOPs a prefill tier would absorb.
    pub prefill_share: f64,
    /// Unweighted mean of per-request prefill shares.
    pub mean_request_share: f64,
    /// Smallest per-request prefill share (most decode-heavy request).
    pub min_request_share: f64,
    /// Largest per-request prefill share (most prefill-heavy request).
    pub max_request_share: f64,
    /// Per-request shares bucketed into ten 0.1-wide bins over [0, 1].
    pub share_hist: [u64; 10],
}

impl Default for ComputeSplit {
    fn default() -> Self {
        ComputeSplit {
            prefill_share: 0.0,
            mean_request_share: 0.0,
            min_request_share: 0.0,
            max_request_share: 0.0,
            share_hist: [0; 10],
        }
    }
}

/// One tenant's share of the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantShare {
    /// Tenant id.
    pub tenant: u32,
    /// Requests billed to this tenant.
    pub requests: u64,
    /// Total tokens (input + output) billed to this tenant.
    pub tokens: u64,
}

/// The full characterization of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    /// Trace name (caller-chosen; lands in the report headings).
    pub name: String,
    /// Total requests.
    pub requests: u64,
    /// Span from first to last arrival, seconds.
    pub duration_s: f64,
    /// Mean arrival rate over the span, requests/second.
    pub mean_rate: f64,
    /// Peak arrival rate over any 1-second window, requests/second.
    pub peak_rate: f64,
    /// Peak-to-mean rate ratio (1.0 = perfectly smooth).
    pub peak_to_mean: f64,
    /// Coefficient of variation of inter-arrival times (1.0 = Poisson;
    /// higher = burstier).
    pub interarrival_cv: f64,
    /// Distinct session ids.
    pub sessions: u64,
    /// Total input tokens.
    pub input_tokens: u64,
    /// Total output tokens.
    pub output_tokens: u64,
    /// Per-tenant shares, sorted by tenant id.
    pub tenants: Vec<TenantShare>,
    /// Prefill-vs-decode compute split (disaggregation sizing input).
    pub compute_split: ComputeSplit,
    /// Input-length histogram (log₂ buckets).
    pub input_hist: Log2Histogram,
    /// Output-length histogram (log₂ buckets).
    pub output_hist: Log2Histogram,
    /// Encoded trace size, bytes (header included).
    pub encoded_bytes: u64,
    /// Encoded payload bytes per request (header excluded).
    pub bytes_per_request: f64,
}

/// Characterizes an encoded trace in one streaming pass.
pub fn characterize(name: &str, bytes: &[u8]) -> Result<Characterization, TraceError> {
    let mut cursor = TraceCursor::new(bytes)?;
    let tick_ns = cursor.tick_ns();
    let header = header_offset(bytes);

    let mut requests: u64 = 0;
    let mut first_ticks: u64 = 0;
    let mut last_ticks: u64 = 0;
    let mut prev_ticks: Option<u64> = None;
    // Welford running moments of the inter-arrival times.
    let (mut ia_mean, mut ia_m2, mut ia_n) = (0.0f64, 0.0f64, 0u64);
    // Peak 1-second-window rate: bucket arrivals into whole seconds.
    let ticks_per_s = (1_000_000_000 / tick_ns).max(1);
    let mut window_start: u64 = 0;
    let mut window_count: u64 = 0;
    let mut peak_window: u64 = 0;
    let mut sessions: HashSet<u64> = HashSet::new();
    let mut tenants: HashMap<u32, (u64, u64)> = HashMap::new();
    let (mut input_tokens, mut output_tokens) = (0u64, 0u64);
    let mut input_hist = Log2Histogram::default();
    let mut output_hist = Log2Histogram::default();
    let mut share_sum = 0.0f64;
    let (mut share_min, mut share_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut share_hist = [0u64; 10];

    while let Some(rec) = cursor.next_record()? {
        if requests == 0 {
            first_ticks = rec.ticks;
            window_start = rec.ticks;
        }
        last_ticks = rec.ticks;
        if let Some(prev) = prev_ticks {
            let dt = ticks_to_seconds(rec.ticks - prev, tick_ns);
            ia_n += 1;
            let d = dt - ia_mean;
            ia_mean += d / ia_n as f64;
            ia_m2 += d * (dt - ia_mean);
        }
        prev_ticks = Some(rec.ticks);
        while rec.ticks >= window_start + ticks_per_s {
            peak_window = peak_window.max(window_count);
            window_start += ticks_per_s;
            window_count = 0;
        }
        window_count += 1;
        sessions.insert(rec.session);
        let t = tenants.entry(rec.tenant).or_insert((0, 0));
        t.0 += 1;
        t.1 += (rec.input_len + rec.output_len) as u64;
        input_tokens += rec.input_len as u64;
        output_tokens += rec.output_len as u64;
        input_hist.add(rec.input_len);
        output_hist.add(rec.output_len);
        let total = rec.input_len + rec.output_len;
        let share = if total > 0 {
            rec.input_len as f64 / total as f64
        } else {
            0.0
        };
        share_sum += share;
        share_min = share_min.min(share);
        share_max = share_max.max(share);
        share_hist[((share * 10.0) as usize).min(9)] += 1;
        requests += 1;
    }
    peak_window = peak_window.max(window_count);

    let duration_s = ticks_to_seconds(last_ticks - first_ticks, tick_ns);
    let mean_rate = if duration_s > 0.0 {
        requests as f64 / duration_s
    } else {
        0.0
    };
    let peak_rate = peak_window as f64;
    let interarrival_cv = if ia_n > 1 && ia_mean > 0.0 {
        (ia_m2 / ia_n as f64).sqrt() / ia_mean
    } else {
        0.0
    };
    let mut tenant_shares: Vec<TenantShare> = tenants
        .into_iter()
        .map(|(tenant, (reqs, tokens))| TenantShare {
            tenant,
            requests: reqs,
            tokens,
        })
        .collect();
    tenant_shares.sort_by_key(|t| t.tenant);

    Ok(Characterization {
        name: name.to_string(),
        requests,
        duration_s,
        mean_rate,
        peak_rate,
        peak_to_mean: if mean_rate > 0.0 {
            peak_rate / mean_rate
        } else {
            0.0
        },
        interarrival_cv,
        sessions: sessions.len() as u64,
        input_tokens,
        output_tokens,
        tenants: tenant_shares,
        compute_split: if requests > 0 {
            ComputeSplit {
                prefill_share: input_tokens as f64 / (input_tokens + output_tokens).max(1) as f64,
                mean_request_share: share_sum / requests as f64,
                min_request_share: share_min,
                max_request_share: share_max,
                share_hist,
            }
        } else {
            ComputeSplit::default()
        },
        input_hist,
        output_hist,
        encoded_bytes: bytes.len() as u64,
        bytes_per_request: if requests > 0 {
            (bytes.len() - header) as f64 / requests as f64
        } else {
            0.0
        },
    })
}

/// Byte offset of the first record (magic + version + tick varint).
fn header_offset(bytes: &[u8]) -> usize {
    let mut pos = 5;
    while pos < bytes.len() && bytes[pos] & 0x80 != 0 {
        pos += 1;
    }
    pos + 1
}

impl Characterization {
    /// The report as markdown (the shape committed to `results/`).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# Trace characterization: {}\n\n", self.name));
        out.push_str("| metric | value |\n|---|---|\n");
        out.push_str(&format!("| requests | {} |\n", self.requests));
        out.push_str(&format!("| duration | {:.1} s |\n", self.duration_s));
        out.push_str(&format!("| mean rate | {:.2} req/s |\n", self.mean_rate));
        out.push_str(&format!(
            "| peak rate (1 s window) | {:.0} req/s |\n",
            self.peak_rate
        ));
        out.push_str(&format!("| peak-to-mean | {:.2}× |\n", self.peak_to_mean));
        out.push_str(&format!(
            "| interarrival CV | {:.2} (1.0 = Poisson) |\n",
            self.interarrival_cv
        ));
        out.push_str(&format!("| sessions | {} |\n", self.sessions));
        out.push_str(&format!(
            "| tokens | {} in / {} out |\n",
            self.input_tokens, self.output_tokens
        ));
        out.push_str(&format!(
            "| encoded size | {} bytes ({:.2} bytes/request) |\n\n",
            self.encoded_bytes, self.bytes_per_request
        ));

        out.push_str(
            "## Tenant mix\n\n| tenant | requests | share | tokens |\n|---|---|---|---|\n",
        );
        for t in &self.tenants {
            out.push_str(&format!(
                "| {} | {} | {:.1}% | {} |\n",
                t.tenant,
                t.requests,
                100.0 * t.requests as f64 / self.requests.max(1) as f64,
                t.tokens
            ));
        }

        let cs = &self.compute_split;
        out.push_str("\n## Prefill/decode compute split\n\n");
        out.push_str(
            "Token-share proxy for FLOPs (2·P per token in both phases); the\n\
             fraction of fleet compute a prefill tier would absorb.\n\n",
        );
        out.push_str("| metric | value |\n|---|---|\n");
        out.push_str(&format!(
            "| prefill share (token-weighted) | {:.1}% |\n",
            100.0 * cs.prefill_share
        ));
        out.push_str(&format!(
            "| prefill share (per-request mean) | {:.1}% |\n",
            100.0 * cs.mean_request_share
        ));
        out.push_str(&format!(
            "| per-request range | {:.1}%–{:.1}% |\n",
            100.0 * cs.min_request_share,
            100.0 * cs.max_request_share
        ));
        out.push_str("\n| prefill share | requests |\n|---|---|\n");
        for (i, &n) in cs.share_hist.iter().enumerate() {
            if n == 0 {
                continue;
            }
            out.push_str(&format!("| {}0–{}0% | {} |\n", i, i + 1, n));
        }

        out.push_str("\n## Input lengths (tokens)\n\n| range | count | share |\n|---|---|---|\n");
        out.push_str(&self.input_hist.to_markdown(""));
        out.push_str("\n## Output lengths (tokens)\n\n| range | count | share |\n|---|---|---|\n");
        out.push_str(&self.output_hist.to_markdown(""));
        out
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        let tenants: Vec<String> = self
            .tenants
            .iter()
            .map(|t| {
                format!(
                    "{{\"tenant\":{},\"requests\":{},\"tokens\":{}}}",
                    t.tenant, t.requests, t.tokens
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"name\": \"{}\",\n",
                "  \"requests\": {},\n",
                "  \"duration_s\": {:.6},\n",
                "  \"mean_rate\": {:.6},\n",
                "  \"peak_rate\": {:.1},\n",
                "  \"peak_to_mean\": {:.4},\n",
                "  \"interarrival_cv\": {:.4},\n",
                "  \"sessions\": {},\n",
                "  \"input_tokens\": {},\n",
                "  \"output_tokens\": {},\n",
                "  \"tenants\": [{}],\n",
                "  \"prefill_share\": {:.4},\n",
                "  \"prefill_share_mean\": {:.4},\n",
                "  \"prefill_share_min\": {:.4},\n",
                "  \"prefill_share_max\": {:.4},\n",
                "  \"prefill_share_hist\": [{}],\n",
                "  \"input_hist_log2\": {},\n",
                "  \"output_hist_log2\": {},\n",
                "  \"encoded_bytes\": {},\n",
                "  \"bytes_per_request\": {:.4}\n",
                "}}\n"
            ),
            self.name,
            self.requests,
            self.duration_s,
            self.mean_rate,
            self.peak_rate,
            self.peak_to_mean,
            self.interarrival_cv,
            self.sessions,
            self.input_tokens,
            self.output_tokens,
            tenants.join(","),
            self.compute_split.prefill_share,
            self.compute_split.mean_request_share,
            self.compute_split.min_request_share,
            self.compute_split.max_request_share,
            self.compute_split
                .share_hist
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(","),
            self.input_hist.to_json(),
            self.output_hist.to_json(),
            self.encoded_bytes,
            self.bytes_per_request,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{generate, TenantClass, TraceConfig};
    use crate::trace::encode;
    use spec_runtime::Workload;
    use spec_tensor::SimRng;

    #[test]
    fn characterizes_a_poisson_trace() {
        let cfg = TraceConfig::poisson(4.0)
            .shapes(vec![Workload::new(2048, 1024, 1)])
            .count(2000)
            .seed(3);
        let bytes = encode(generate(&cfg, &mut SimRng::seed(3)));
        let c = characterize("poisson", &bytes).unwrap();
        assert_eq!(c.requests, 2000);
        assert!((c.mean_rate - 4.0).abs() < 0.5, "mean rate {}", c.mean_rate);
        // Poisson interarrivals: CV ≈ 1.
        assert!(
            (c.interarrival_cv - 1.0).abs() < 0.15,
            "CV {}",
            c.interarrival_cv
        );
        assert_eq!(c.input_tokens, 2000 * 2048);
        assert_eq!(c.tenants.len(), 1);
        assert!(c.bytes_per_request <= 16.0);
        assert!(c.sessions > 0 && c.sessions <= 500);
    }

    #[test]
    fn bursty_traces_report_higher_cv_and_peak() {
        let shapes = vec![Workload::new(2048, 1024, 1)];
        let p = encode(generate(
            &TraceConfig::poisson(2.0).shapes(shapes.clone()).count(3000),
            &mut SimRng::seed(7),
        ));
        let b = encode(generate(
            &TraceConfig::bursty(0.5, 30.0, 0.04)
                .shapes(shapes)
                .count(3000),
            &mut SimRng::seed(7),
        ));
        let cp = characterize("p", &p).unwrap();
        let cb = characterize("b", &b).unwrap();
        assert!(cb.interarrival_cv > cp.interarrival_cv * 1.3);
        assert!(cb.peak_to_mean > cp.peak_to_mean);
    }

    #[test]
    fn tenant_shares_sum_to_total() {
        let cfg = TraceConfig::poisson(2.0)
            .tenants(vec![
                TenantClass::new(0, 3, vec![Workload::new(512, 256, 1)]),
                TenantClass::new(4, 1, vec![Workload::new(2048, 8192, 1)]),
            ])
            .count(1000);
        let bytes = encode(generate(&cfg, &mut SimRng::seed(9)));
        let c = characterize("mix", &bytes).unwrap();
        assert_eq!(c.tenants.iter().map(|t| t.requests).sum::<u64>(), 1000);
        assert_eq!(c.tenants[0].tenant, 0);
        assert_eq!(c.tenants[1].tenant, 4);
        let share0 = c.tenants[0].requests as f64 / 1000.0;
        assert!((share0 - 0.75).abs() < 0.05, "tenant-0 share {share0}");
    }

    #[test]
    fn reports_render() {
        let cfg = TraceConfig::poisson(2.0)
            .shapes(vec![Workload::new(2048, 1024, 1)])
            .count(100);
        let bytes = encode(generate(&cfg, &mut SimRng::seed(1)));
        let c = characterize("render", &bytes).unwrap();
        let md = c.to_markdown();
        assert!(md.contains("# Trace characterization: render"));
        assert!(md.contains("| requests | 100 |"));
        assert!(md.contains("## Tenant mix"));
        let json = c.to_json();
        assert!(json.contains("\"requests\": 100"));
        assert!(json.contains("\"input_hist_log2\": ["));
    }

    #[test]
    fn compute_split_is_exact_for_a_single_shape() {
        // One shape, 2048 in / 1024 out: every request's prefill share
        // is exactly 2/3, so weighted, mean, min and max all agree and
        // the whole mass lands in the 60–70% bucket.
        let cfg = TraceConfig::poisson(2.0)
            .shapes(vec![Workload::new(2048, 1024, 1)])
            .count(200);
        let bytes = encode(generate(&cfg, &mut SimRng::seed(11)));
        let cs = characterize("split", &bytes).unwrap().compute_split;
        let want = 2048.0 / 3072.0;
        assert!((cs.prefill_share - want).abs() < 1e-12);
        assert!((cs.mean_request_share - want).abs() < 1e-12);
        assert_eq!(cs.min_request_share, cs.max_request_share);
        assert_eq!(cs.share_hist[6], 200);
        assert_eq!(cs.share_hist.iter().sum::<u64>(), 200);
    }

    #[test]
    fn compute_split_orders_prefill_vs_decode_heavy_traces() {
        let heavy_in = encode(generate(
            &TraceConfig::poisson(2.0)
                .shapes(vec![Workload::new(8192, 128, 1)])
                .count(500),
            &mut SimRng::seed(5),
        ));
        let heavy_out = encode(generate(
            &TraceConfig::poisson(2.0)
                .shapes(vec![Workload::new(512, 8192, 1)])
                .count(500),
            &mut SimRng::seed(5),
        ));
        let ci = characterize("in", &heavy_in).unwrap().compute_split;
        let co = characterize("out", &heavy_out).unwrap().compute_split;
        assert!(ci.prefill_share > 0.9, "prefill-heavy {}", ci.prefill_share);
        assert!(co.prefill_share < 0.1, "decode-heavy {}", co.prefill_share);
        assert!(ci.mean_request_share > co.mean_request_share);
    }

    #[test]
    fn compute_split_renders_in_both_report_shapes() {
        let cfg = TraceConfig::poisson(2.0)
            .shapes(vec![Workload::new(2048, 1024, 1)])
            .count(50);
        let bytes = encode(generate(&cfg, &mut SimRng::seed(2)));
        let c = characterize("render-split", &bytes).unwrap();
        let md = c.to_markdown();
        assert!(md.contains("## Prefill/decode compute split"));
        assert!(md.contains("| prefill share (token-weighted) | 66.7% |"));
        let json = c.to_json();
        assert!(json.contains("\"prefill_share\": 0.6667"));
        assert!(json.contains("\"prefill_share_hist\": [0,0,0,0,0,0,50,0,0,0]"));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Log2Histogram::default();
        h.add(1);
        h.add(2);
        h.add(3);
        h.add(2048);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[11], 1);
    }
}
