//! Cluster-scale serving on top of the single-engine runtime.
//!
//! The paper's serving evaluation (Table 3) and `spec_runtime`'s
//! [`Scheduler`](spec_runtime::Scheduler) stop at one replica fed a
//! closed-loop workload. This crate adds the layer between "one engine"
//! and "a fleet": an event-driven cluster simulator that composes N
//! replicas of the existing `ServingSim`/`Scheduler` stack behind a
//! pluggable router, drives them from streaming arrival sources —
//! open-loop processes, recorded traces, closed-loop sessions — and
//! accounts results against latency SLOs.
//!
//! * [`arrivals`] — the streaming [`ArrivalSource`](arrivals::ArrivalSource)
//!   API and its generators: Poisson, bursty (Markov-modulated), diurnal
//!   and flash-crowd processes over the runtime's `Workload` shapes, plus
//!   closed-loop sessions whose next request departs only after the
//!   previous response; deterministic via `spec_tensor::SimRng`;
//! * [`trace`] — compact binary traces (~10 bytes/request): record any
//!   source, replay it bit-for-bit with O(1) memory;
//! * [`characterize`] — one-pass trace characterization (tenant mix,
//!   length histograms, burstiness, peak-to-mean) as markdown + JSON;
//! * [`router`] — pluggable routing policies: round-robin,
//!   least-outstanding, least-KV-pressure, session affinity, and
//!   weighted-tenant fleet partitioning;
//! * [`replica`] — one serving engine: the runtime scheduler's stepping
//!   core plus KV occupancy accounting through `spec_kvcache`'s block
//!   allocator;
//! * [`cluster`] — the event loop: pull arrivals from the source, advance
//!   replicas, route, optionally autoscale on queue depth, feed
//!   completions back to closed-loop sources, drain, report;
//!   heterogeneous fleets come from `spec_hwsim::Fleet`. Role-typed
//!   fleets ([`Cluster::from_fleet_slots`](cluster::Cluster::from_fleet_slots))
//!   disaggregate serving: prefill replicas retire requests at first
//!   token and hand their sparse-budget KV to decode replicas over a
//!   priced interconnect, with two-stage routing, cost-aware role-aware
//!   autoscaling, and goodput-per-dollar accounting;
//! * [`slo`] — per-request TTFT/TBT/latency percentiles, SLO attainment
//!   and goodput, fleet-wide and broken down per tenant;
//! * [`faults`] — deterministic seeded fault injection (crashes,
//!   stragglers, checkpoint-transfer failures) and the recovery knobs:
//!   capped-backoff retries with a dead-letter budget, tenant-weighted
//!   overload shedding, probation, and health-aware routing.
//!
//! A 1-replica cluster under round-robin routing reproduces
//! [`Scheduler::run`](spec_runtime::Scheduler::run) bit-for-bit: both
//! drive the identical [`Scheduler::step`](spec_runtime::Scheduler::step)
//! decisions, the cluster merely interleaves arrival routing between
//! steps (see `tests/properties.rs`).
//!
//! # Example
//!
//! ```
//! use spec_hwsim::{DeviceSpec, Fleet};
//! use spec_model::ModelConfig;
//! use spec_runtime::{SystemKind, Workload};
//! use spec_serve::{
//!     arrivals::TraceConfig,
//!     cluster::{Cluster, ClusterConfig},
//!     router::RouterKind,
//!     slo::SloSpec,
//! };
//!
//! let fleet = Fleet::new().with(DeviceSpec::a100_80g(), 2).build();
//! let mut cluster = Cluster::from_fleet(
//!     &ModelConfig::deepseek_distill_llama_8b(),
//!     &fleet,
//!     2048,
//!     SystemKind::SpeContext,
//!     ClusterConfig::new(),
//!     RouterKind::LeastOutstanding.build(),
//! );
//! let cfg = TraceConfig::poisson(0.5)
//!     .shapes(vec![Workload::new(2048, 1024, 1)])
//!     .count(8)
//!     .seed(7);
//! let report = cluster.run_source(&mut cfg.source(), &SloSpec::default());
//! assert_eq!(report.completed, 8);
//! ```

pub mod arrivals;
pub mod characterize;
pub mod cluster;
pub mod faults;
pub mod replica;
pub mod router;
pub mod slo;
pub mod trace;

pub use arrivals::{
    ArrivalProcess, ArrivalSource, ClosedLoopConfig, ClosedLoopSource, ClusterRequest,
    GeneratedArrivals, SliceSource, TenantClass, TraceConfig,
};
pub use characterize::{characterize, Characterization, ComputeSplit};
pub use cluster::{
    AutoscaleConfig, Cluster, ClusterConfig, ClusterReport, DisaggConfig, HandoffSummary,
    ReplicaReport,
};
pub use faults::{
    CrashEvent, CrashModel, FaultInjector, FaultPlan, FaultSummary, RetryPolicy, ShedPolicy,
    StragglerModel, StragglerWindow,
};
pub use replica::Replica;
pub use router::{ReplicaHealth, ReplicaSnapshot, RoutePolicy, RouterKind, WeightedTenant};
pub use slo::{CostReport, FaultOutcomes, SloReport, SloSpec, TenantSlo};
pub use trace::{RecordingSource, ReplayArrivals, TraceCursor, TraceError, TraceWriter};
