//! Cluster-scale serving on top of the single-engine runtime.
//!
//! The paper's serving evaluation (Table 3) and `spec_runtime`'s
//! [`Scheduler`](spec_runtime::Scheduler) stop at one replica fed a
//! closed-loop workload. This crate adds the layer between "one engine"
//! and "a fleet": an event-driven cluster simulator that composes N
//! replicas of the existing `ServingSim`/`Scheduler` stack behind a
//! pluggable router, drives them with open-loop arrival processes, and
//! accounts results against latency SLOs.
//!
//! * [`arrivals`] — open-loop request generation: Poisson and bursty
//!   (Markov-modulated) processes over the runtime's `Workload` shapes,
//!   plus trace-driven replay; deterministic via `spec_tensor::SimRng`;
//! * [`router`] — pluggable routing policies: round-robin,
//!   least-outstanding, least-KV-pressure, session affinity, and
//!   weighted-tenant fleet partitioning;
//! * [`replica`] — one serving engine: the runtime scheduler's stepping
//!   core plus KV occupancy accounting through `spec_kvcache`'s block
//!   allocator;
//! * [`cluster`] — the event loop: advance replicas to each arrival,
//!   route, optionally autoscale on queue depth, drain, report;
//!   heterogeneous fleets come from `spec_hwsim::Fleet`;
//! * [`slo`] — per-request TTFT/TBT/latency percentiles, SLO attainment
//!   and goodput, fleet-wide and broken down per tenant.
//!
//! A 1-replica cluster under round-robin routing reproduces
//! [`Scheduler::run`](spec_runtime::Scheduler::run) bit-for-bit: both
//! drive the identical [`Scheduler::step`](spec_runtime::Scheduler::step)
//! decisions, the cluster merely interleaves arrival routing between
//! steps (see `tests/properties.rs`).
//!
//! # Example
//!
//! ```
//! use spec_hwsim::{DeviceSpec, Fleet};
//! use spec_model::ModelConfig;
//! use spec_runtime::{SystemKind, Workload};
//! use spec_serve::{
//!     arrivals::{self, ArrivalConfig},
//!     cluster::{Cluster, ClusterConfig},
//!     router::RouterKind,
//!     slo::SloSpec,
//! };
//! use spec_tensor::SimRng;
//!
//! let fleet = Fleet::new().with(DeviceSpec::a100_80g(), 2).build();
//! let mut cluster = Cluster::from_fleet(
//!     &ModelConfig::deepseek_distill_llama_8b(),
//!     &fleet,
//!     2048,
//!     SystemKind::SpeContext,
//!     ClusterConfig::default(),
//!     RouterKind::LeastOutstanding.build(),
//! );
//! let trace = arrivals::generate(
//!     &ArrivalConfig::poisson(0.5, vec![Workload::new(2048, 1024, 1)], 8),
//!     &mut SimRng::seed(7),
//! );
//! let report = cluster.run(&trace, &SloSpec::default());
//! assert_eq!(report.completed, 8);
//! ```

pub mod arrivals;
pub mod cluster;
pub mod replica;
pub mod router;
pub mod slo;

pub use arrivals::{ArrivalConfig, ArrivalProcess, ClusterRequest, TenantClass};
pub use cluster::{AutoscaleConfig, Cluster, ClusterConfig, ClusterReport, ReplicaReport};
pub use replica::Replica;
pub use router::{ReplicaSnapshot, RoutePolicy, RouterKind, WeightedTenant};
pub use slo::{SloReport, SloSpec, TenantSlo};
