//! One cluster replica: a serving engine plus KV occupancy accounting.
//!
//! A replica wraps the runtime's continuous-batching core — a
//! [`Scheduler`] driving a [`BatchState`] through
//! [`Scheduler::step`] micro-steps — so the cluster event loop can
//! interleave request routing with engine progress at decision
//! granularity. On top of the scheduler's logical state the replica
//! mirrors its running batch into a [`BlockAllocator`] drawn from
//! `spec_kvcache`, giving routers a byte-accurate KV-pressure signal
//! that stays comparable across heterogeneous devices.

use crate::router::{ReplicaHealth, ReplicaSnapshot};
use spec_kvcache::{AllocId, AllocPolicy, BlockAllocator};
use spec_runtime::{
    BatchState, CompletedRequest, CrashedWork, HandoffRecord, ReplicaRole, Request,
    RestorableRequest, Scheduler, SchedulerConfig, ServingSim, StepCache, SystemKind,
};
use spec_telemetry::{seconds_to_ticks, Event, EventKind, RecordingSink, TelemetrySink};
use std::collections::{HashMap, HashSet};

/// One serving engine in the fleet.
#[derive(Debug)]
pub struct Replica {
    scheduler: Scheduler,
    state: BatchState,
    cache: StepCache,
    kv: BlockAllocator,
    kv_live: HashMap<usize, AllocId>,
    /// Running requests the allocator could not admit (its paged
    /// round-up needs slightly more than the scheduler's admission
    /// arithmetic): id → tokens, accounted arithmetically so pressure
    /// never undercounts a loaded replica.
    kv_overflow: HashMap<usize, usize>,
    kv_token_cap: usize,
    device: String,
    /// Rental price of the underlying device, USD per hour (cost-aware
    /// autoscaling and the fleet cost report).
    hourly_cost: f64,
    active: bool,
    /// Crashed and not yet restarted: the engine is frozen (no steps,
    /// no drains) and the fault loop owns its state.
    down: bool,
    /// Post-restart probation deadline (health-aware routers keep the
    /// replica ejected until it passes).
    probation_until: Option<f64>,
    assigned: usize,
    /// Per-replica event buffer (`None` = untraced, zero overhead).
    /// Each replica records into its own buffer, so recorded streams
    /// stay deterministic when the cluster fans replicas out over the
    /// worker pool; the cluster merges buffers thread-invariantly.
    telemetry: Option<RecordingSink>,
    /// Last KV occupancy emitted, so traced runs gauge on change.
    kv_gauge: Option<u64>,
}

impl Replica {
    /// Creates a replica for `system` on the given serving simulator.
    /// Its KV capacity is the device memory left after weights and
    /// runtime buffers, managed as 16-token pages.
    pub fn new(sim: ServingSim, system: SystemKind, cfg: SchedulerConfig) -> Self {
        let mm = sim.memory_model();
        // One token's K+V across all layers plus the retrieval-head and
        // grouped-query terms of Eq. 6 — shared with the admission
        // arithmetic via the memory model.
        let bytes_per_token = mm.kv_token_total_bytes().max(1.0) as u64;
        let capacity = (mm.gpu_mem as f64 - mm.static_bytes()).max(0.0) as u64;
        // Sparse systems keep at most `budget` tokens per request
        // resident; full systems keep the whole context.
        let kv_token_cap = match system {
            SystemKind::SpeContext => sim.budget(),
            _ => usize::MAX,
        };
        let device = sim.device().name.clone();
        let hourly_cost = sim.device().hourly_cost;
        Self {
            scheduler: Scheduler::new(sim, system, cfg),
            state: BatchState::new(),
            cache: StepCache::new(),
            kv: BlockAllocator::new(
                AllocPolicy::Paged { block_tokens: 16 },
                bytes_per_token,
                capacity,
            ),
            kv_live: HashMap::new(),
            kv_overflow: HashMap::new(),
            kv_token_cap,
            device,
            hourly_cost,
            active: true,
            down: false,
            probation_until: None,
            assigned: 0,
            telemetry: None,
            kv_gauge: None,
        }
    }

    /// Starts recording this replica's telemetry, stamping every event
    /// with `index`. Scheduler-scope events (admissions, preemptions,
    /// gauges) flow into the same buffer via the tagged sink.
    pub fn enable_telemetry(&mut self, index: u32) {
        self.telemetry = Some(RecordingSink::tagged(index));
        self.kv_gauge = None;
    }

    /// Stops recording and returns the buffered events, in emission
    /// order (untraced replicas return an empty stream).
    pub fn take_telemetry(&mut self) -> Vec<Event> {
        self.kv_gauge = None;
        self.telemetry
            .take()
            .map(RecordingSink::into_events)
            .unwrap_or_default()
    }

    /// The wrapped scheduler.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The device this replica runs on.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// Rental price of the underlying device, USD per hour.
    pub fn hourly_cost(&self) -> f64 {
        self.hourly_cost
    }

    /// One token's KV bytes on this replica (warmup-transfer sizing).
    pub fn kv_bytes_per_token(&self) -> u64 {
        self.kv.bytes_per_token()
    }

    /// The phase this replica's engine runs ([`ReplicaRole::Unified`]
    /// unless the fleet slot said otherwise).
    pub fn role(&self) -> ReplicaRole {
        self.state.role()
    }

    /// Pins the replica to one serving phase. Set at fleet construction,
    /// before any request is routed.
    pub fn set_role(&mut self, role: ReplicaRole) {
        self.state.set_role(role);
    }

    /// Whether this (prefill) replica has emitted handoffs the cluster
    /// has not collected yet.
    pub fn has_handoffs(&self) -> bool {
        self.state.has_handoffs()
    }

    /// Drains the handoff records emitted since the last collection, in
    /// emission order.
    pub fn take_handoffs(&mut self) -> Vec<HandoffRecord> {
        self.state.take_handoffs()
    }

    /// Admits a delivered prefill handoff at time `at`: the request's KV
    /// is already device-resident (the cluster priced the interconnect
    /// hop by delaying delivery), so admission charges nothing and the
    /// first-token history carries over.
    pub fn push_preloaded(&mut self, restorable: RestorableRequest, at: f64) {
        self.assigned += 1;
        self.state
            .push_preloaded(restorable, at, &mut self.telemetry);
    }

    /// Jumps the engine clock forward to `t` without touching queued
    /// work — the autoscaler charges spin-up latency and cold-start KV
    /// warmup to a freshly woken replica this way.
    pub fn warm_until(&mut self, t: f64) {
        self.state.skip_to(t);
    }

    /// Whether the replica accepts new requests.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Parks or unparks the replica (autoscaling). A parked replica
    /// keeps draining already-assigned work.
    pub fn set_active(&mut self, active: bool) {
        self.active = active;
    }

    /// Requests routed here so far.
    pub fn assigned(&self) -> usize {
        self.assigned
    }

    /// Whether the replica is crashed and awaiting restart.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Fault-facing health, by severity: a crashed replica is [`Down`]
    /// whatever else holds; a slowed one is [`Straggling`]; a freshly
    /// restarted one is in [`Probation`] until its deadline passes.
    ///
    /// [`Down`]: ReplicaHealth::Down
    /// [`Straggling`]: ReplicaHealth::Straggling
    /// [`Probation`]: ReplicaHealth::Probation
    pub fn health(&self) -> ReplicaHealth {
        if self.down {
            ReplicaHealth::Down
        } else if self.state.time_scale() > 1.0 {
            ReplicaHealth::Straggling
        } else if self.probation_until.is_some() {
            ReplicaHealth::Probation
        } else {
            ReplicaHealth::Healthy
        }
    }

    /// Crashes the replica at its current clock: tears all in-flight
    /// work out of the engine (running and queued requests are lost;
    /// queued-with-progress ones surface as restorable checkpoints),
    /// releases the KV mirror, and freezes the engine until
    /// [`restart`](Self::restart). Completions and rejections recorded
    /// so far survive — they already happened.
    pub fn crash(&mut self) -> CrashedWork {
        self.down = true;
        self.probation_until = None;
        let work = self.state.crash_dump();
        self.sync_kv();
        work
    }

    /// Brings a crashed replica back at time `now`, optionally entering
    /// probation until `probation_until`.
    pub fn restart(&mut self, now: f64, probation_until: Option<f64>) {
        self.down = false;
        self.probation_until = probation_until;
        self.state.skip_to(now);
    }

    /// Ends the probation window scheduled for `at`. Stale deadlines (a
    /// re-crash superseded them) are ignored.
    pub fn end_probation(&mut self, at: f64) {
        if !self.down && self.probation_until == Some(at) {
            self.probation_until = None;
        }
    }

    /// Sets the straggler cost multiplier (1.0 = healthy speed).
    pub fn set_slowdown(&mut self, factor: f64) {
        self.state.set_time_scale(factor);
    }

    /// The current straggler cost multiplier.
    pub fn slowdown(&self) -> f64 {
        self.state.time_scale()
    }

    /// Host-side checkpoint size for a request with `produced` decoded
    /// tokens: its resident KV footprint under this replica's token cap.
    pub fn checkpoint_bytes(&self, req: &Request, produced: usize) -> u64 {
        let tokens = (req.input_len + produced).min(self.kv_token_cap);
        tokens as u64 * self.kv.bytes_per_token()
    }

    /// The replica's local clock, seconds.
    pub fn now(&self) -> f64 {
        self.state.now()
    }

    /// Queued + running requests.
    pub fn outstanding(&self) -> usize {
        self.state.outstanding()
    }

    /// Whether any assigned request is still queued or decoding.
    pub fn has_work(&self) -> bool {
        self.state.has_work()
    }

    /// Requests finished so far, in finish order.
    pub fn completed(&self) -> &[CompletedRequest] {
        self.state.completed()
    }

    /// Requests rejected so far (never admissible, even alone).
    pub fn rejected(&self) -> usize {
        self.state.rejected()
    }

    /// The rejected requests themselves (per-tenant SLO attribution).
    pub fn rejected_requests(&self) -> &[Request] {
        self.state.rejected_requests()
    }

    /// Hands an arrived request to this replica's engine.
    pub fn push(&mut self, req: Request) {
        self.assigned += 1;
        self.state.push_traced(req, &mut self.telemetry);
    }

    /// Restores a crash-survived checkpoint onto this replica at time
    /// `at`, keeping its decode progress and first-token latency.
    pub fn push_restored(&mut self, restorable: RestorableRequest, at: f64) {
        self.assigned += 1;
        self.state
            .push_restorable(restorable, at, &mut self.telemetry);
    }

    /// Advances the engine until its clock reaches `t` or it runs dry,
    /// then refreshes the KV occupancy mirror. One micro-step may
    /// overshoot `t` (a decode iteration is atomic), exactly like the
    /// closed-loop scheduler. A crashed replica is frozen: its queued
    /// ghosts (blind routing) wait out the outage.
    pub fn advance_until(&mut self, t: f64) {
        if self.down {
            return;
        }
        while self.state.has_work() && self.state.now() < t {
            self.scheduler
                .step_traced(&mut self.state, &mut self.cache, &mut self.telemetry);
        }
        self.sync_kv();
    }

    /// One scheduler micro-step (closed-loop event granularity: the
    /// cluster interleaves single steps with completion feedback), then
    /// refreshes the KV occupancy mirror. No-op when idle.
    pub fn step_once(&mut self) {
        if self.down {
            return;
        }
        if self.state.has_work() {
            self.scheduler
                .step_traced(&mut self.state, &mut self.cache, &mut self.telemetry);
        }
        self.sync_kv();
    }

    /// Runs all remaining assigned work to completion. No-op while
    /// crashed — the fault loop restarts the replica first.
    pub fn drain(&mut self) {
        if self.down {
            return;
        }
        while self.state.has_work() {
            self.scheduler
                .step_traced(&mut self.state, &mut self.cache, &mut self.telemetry);
        }
        self.sync_kv();
    }

    /// Router-facing view of this replica.
    pub fn snapshot(&self, index: usize) -> ReplicaSnapshot {
        ReplicaSnapshot {
            index,
            active: self.active,
            queued: self.state.queued(),
            running: self.state.running_len(),
            kv_pressure: self.kv_pressure(),
            health: self.health(),
        }
    }

    /// Committed KV demand (resident batch + queued backlog at final
    /// lengths, sparse-budget-capped per request) relative to capacity.
    pub fn kv_pressure(&self) -> f64 {
        let capacity = self.kv.capacity_bytes();
        if capacity == 0 {
            return f64::INFINITY;
        }
        let queued_tokens: usize = self
            .state
            .queued_requests()
            .map(|q| (q.input_len + q.output_len).min(self.kv_token_cap))
            .sum();
        let overflow_tokens: usize = self.kv_overflow.values().sum();
        let unresident_bytes =
            (queued_tokens + overflow_tokens) as f64 * self.kv.bytes_per_token() as f64;
        (self.kv.used_bytes() as f64 + unresident_bytes) / capacity as f64
    }

    /// Mirrors the running batch into the block allocator: admit newly
    /// scheduled requests, release finished ones. Accounting only — the
    /// scheduler's own admission test stays authoritative, so a
    /// 1-replica cluster still reproduces `Scheduler::run` bit-for-bit.
    fn sync_kv(&mut self) {
        let running: HashSet<usize> = self.state.running_requests().map(|r| r.id).collect();
        let gone: Vec<usize> = self
            .kv_live
            .keys()
            .copied()
            .filter(|id| !running.contains(id))
            .collect();
        for id in gone {
            let alloc = self.kv_live.remove(&id).expect("tracked allocation");
            self.kv.release(alloc);
        }
        self.kv_overflow.retain(|id, _| running.contains(id));
        let new: Vec<Request> = self
            .state
            .running_requests()
            .filter(|r| !self.kv_live.contains_key(&r.id) && !self.kv_overflow.contains_key(&r.id))
            .copied()
            .collect();
        for req in new {
            let tokens = (req.input_len + req.output_len).min(self.kv_token_cap);
            if let Some(alloc) = self.kv.admit(tokens) {
                self.kv_live.insert(req.id, alloc);
            } else {
                // The scheduler's admission stays authoritative; keep the
                // demand on the books so LeastKvPressure sees the load.
                self.kv_overflow.insert(req.id, tokens);
            }
        }
        if self.telemetry.enabled() {
            let used = self.kv.used_bytes();
            if self.kv_gauge != Some(used) {
                self.kv_gauge = Some(used);
                self.telemetry.emit(Event {
                    tick: seconds_to_ticks(self.state.now()),
                    replica: 0, // restamped by the tagged sink
                    kind: EventKind::KvOccupancy {
                        used,
                        capacity: self.kv.capacity_bytes(),
                    },
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_hwsim::DeviceSpec;
    use spec_model::ModelConfig;

    fn replica(system: SystemKind) -> Replica {
        Replica::new(
            ServingSim::new(
                ModelConfig::deepseek_distill_llama_8b(),
                DeviceSpec::a100_80g(),
                2048,
            ),
            system,
            SchedulerConfig::default(),
        )
    }

    fn req(id: usize, arrival: f64) -> Request {
        Request {
            id,
            tenant: 0,
            input_len: 2048,
            output_len: 512,
            arrival,
        }
    }

    #[test]
    fn advance_until_respects_the_clock() {
        let mut r = replica(SystemKind::SpeContext);
        r.push(req(0, 0.0));
        r.advance_until(0.5);
        assert!(r.now() >= 0.0);
        let before = r.now();
        r.drain();
        assert!(r.now() >= before);
        assert_eq!(r.completed().len(), 1);
        assert!(!r.has_work());
    }

    #[test]
    fn kv_pressure_rises_with_backlog_and_clears_when_drained() {
        let mut r = replica(SystemKind::FullFlashInfer);
        let empty = r.kv_pressure();
        for i in 0..8 {
            r.push(req(i, 0.0));
        }
        r.advance_until(1e-9); // admit some work, sync the mirror
        let loaded = r.kv_pressure();
        assert!(loaded > empty, "pressure {loaded} after load vs {empty}");
        r.drain();
        assert_eq!(r.completed().len(), 8);
        assert!(r.kv_pressure() < loaded);
    }

    #[test]
    fn sparse_system_caps_per_request_kv_at_the_budget() {
        let mut ours = replica(SystemKind::SpeContext);
        let mut full = replica(SystemKind::FullFlashInfer);
        for i in 0..4 {
            ours.push(req(i, 0.0));
            full.push(req(i, 0.0));
        }
        ours.advance_until(1e-9);
        full.advance_until(1e-9);
        assert!(ours.kv_pressure() < full.kv_pressure());
    }

    #[test]
    fn crash_tears_out_work_and_freezes_until_restart() {
        let mut r = replica(SystemKind::SpeContext);
        r.push(req(0, 0.0));
        r.push(req(1, 0.0));
        r.advance_until(1e-9); // admit, no completions yet
        let work = r.crash();
        assert!(r.is_down());
        assert_eq!(r.health(), ReplicaHealth::Down);
        assert!(!r.has_work(), "crash empties the engine");
        assert_eq!(
            work.lost.len() + work.checkpointed.len() + r.completed().len(),
            2,
            "every assigned request is lost, checkpointed or already done"
        );
        let frozen = r.now();
        r.advance_until(10.0);
        assert_eq!(r.now(), frozen, "a crashed replica is frozen");
        r.restart(5.0, Some(6.5));
        assert_eq!(r.health(), ReplicaHealth::Probation);
        assert!(r.now() >= 5.0, "restart fast-forwards the clock");
        r.end_probation(6.0); // stale deadline: ignored
        assert_eq!(r.health(), ReplicaHealth::Probation);
        r.end_probation(6.5);
        assert_eq!(r.health(), ReplicaHealth::Healthy);
    }

    #[test]
    fn straggler_slowdown_stretches_the_clock() {
        let mut fast = replica(SystemKind::SpeContext);
        let mut slow = replica(SystemKind::SpeContext);
        slow.set_slowdown(4.0);
        assert_eq!(slow.health(), ReplicaHealth::Straggling);
        fast.push(req(0, 0.0));
        slow.push(req(0, 0.0));
        fast.drain();
        slow.drain();
        assert!(
            slow.now() > fast.now(),
            "slowed replica {} must trail healthy {}",
            slow.now(),
            fast.now()
        );
        slow.set_slowdown(1.0);
        assert_eq!(slow.health(), ReplicaHealth::Healthy);
    }

    #[test]
    fn prefill_replica_hands_off_and_decode_resumes_free() {
        let mut p = replica(SystemKind::SpeContext);
        p.set_role(ReplicaRole::Prefill);
        assert_eq!(p.role(), ReplicaRole::Prefill);
        p.push(req(0, 0.0));
        p.drain();
        assert!(p.completed().is_empty(), "prefill retires at first token");
        assert!(p.has_handoffs());
        let hs = p.take_handoffs();
        assert_eq!(hs.len(), 1);
        assert!(!p.has_handoffs(), "collection drains the buffer");
        let mut d = replica(SystemKind::SpeContext);
        d.set_role(ReplicaRole::Decode);
        d.push_preloaded(hs[0].restorable, hs[0].emitted);
        d.drain();
        assert_eq!(d.completed().len(), 1);
        assert_eq!(
            d.completed()[0].first_token,
            hs[0].emitted,
            "first-token history survives the hop"
        );
    }

    #[test]
    fn parked_replica_keeps_draining() {
        let mut r = replica(SystemKind::SpeContext);
        r.push(req(0, 0.0));
        r.set_active(false);
        assert!(!r.is_active());
        r.drain();
        assert_eq!(r.completed().len(), 1);
    }
}
