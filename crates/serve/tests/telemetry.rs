//! Telemetry contract tests over the committed sample trace.
//!
//! 1. **Determinism** — replaying a prefix of
//!    `results/sample_trace.sptr` through a traced cluster emits the
//!    exact same event stream at `SPEC_THREADS` ∈ {1, 4, 7}.
//! 2. **Zero interference** — a traced run's `ClusterReport` (and so
//!    its `SloReport`) is identical to the untraced run's: recording
//!    observes the schedule, it never perturbs it.
//! 3. **Conservation** — lifecycle edges pair up: every request arrives
//!    and enqueues exactly once, completions match the report, and
//!    every preemption has a checkpoint and a later restore.

use spec_hwsim::{fleet, DeviceSpec};
use spec_model::ModelConfig;
use spec_runtime::{FairConfig, PreemptionPolicy, QueueDiscipline, SchedulerConfig, SystemKind};
use spec_serve::arrivals::ClusterRequest;
use spec_serve::cluster::{Cluster, ClusterConfig};
use spec_serve::router::RouterKind;
use spec_serve::slo::SloSpec;
use spec_serve::trace::decode;
use spec_telemetry::{Event, EventKind};

/// The first `n` requests of the committed sample trace.
fn sample_prefix(n: usize) -> Vec<ClusterRequest> {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/sample_trace.sptr");
    let bytes = std::fs::read(path).expect("committed results/sample_trace.sptr");
    let mut trace = decode(&bytes).expect("sample trace decodes");
    trace.truncate(n);
    trace
}

/// A small DRR + preemption fleet (the `table3_replay` policy shape), so
/// the replay exercises the full lifecycle including preempt/restore.
fn cluster() -> Cluster {
    let cfg = ClusterConfig::new().scheduler(SchedulerConfig {
        max_batch: 4,
        admission_stride: 4,
        fair: FairConfig {
            discipline: QueueDiscipline::DeficitRoundRobin,
            weights: vec![(0, 4), (1, 1)],
            preemption: PreemptionPolicy::DeficitRoundRobin,
            ..FairConfig::default()
        },
    });
    Cluster::from_fleet(
        &ModelConfig::deepseek_distill_llama_8b(),
        &fleet::homogeneous(DeviceSpec::a100_80g(), 2),
        2048,
        SystemKind::SpeContext,
        cfg,
        RouterKind::LeastOutstanding.build(),
    )
}

fn count(events: &[Event], f: impl Fn(&EventKind) -> bool) -> usize {
    events.iter().filter(|e| f(&e.kind)).count()
}

#[test]
fn traced_replay_is_thread_count_invariant() {
    let trace = sample_prefix(192);
    let run = |threads: usize| {
        spec_parallel::with_threads(threads, || {
            cluster().run_traced(&trace, &SloSpec::new(10.0, 0.02))
        })
    };
    let (report_1, events_1) = run(1);
    assert!(!events_1.is_empty());
    for threads in [4usize, 7] {
        let (report_t, events_t) = run(threads);
        assert_eq!(report_t, report_1, "report at SPEC_THREADS={threads}");
        assert_eq!(
            events_t, events_1,
            "event stream at SPEC_THREADS={threads} diverged"
        );
    }
}

#[test]
fn tracing_never_perturbs_the_schedule() {
    let trace = sample_prefix(192);
    let slo = SloSpec::new(10.0, 0.02);
    let untraced = cluster().run(&trace, &slo);
    let (traced, events) = cluster().run_traced(&trace, &slo);
    assert!(!events.is_empty());
    assert_eq!(traced, untraced, "recording must not change the report");
    assert_eq!(traced.slo, untraced.slo);
}

#[test]
fn lifecycle_edges_are_conserved() {
    let trace = sample_prefix(192);
    let (report, events) = cluster().run_traced(&trace, &SloSpec::new(10.0, 0.02));
    let arrived = count(&events, |k| matches!(k, EventKind::Arrived { .. }));
    let enqueued = count(&events, |k| matches!(k, EventKind::Enqueued { .. }));
    let completed = count(&events, |k| matches!(k, EventKind::Completed { .. }));
    let rejected = count(&events, |k| matches!(k, EventKind::Rejected { .. }));
    let preempted = count(&events, |k| matches!(k, EventKind::Preempted { .. }));
    let checkpoints = count(&events, |k| {
        matches!(k, EventKind::CheckpointWritten { .. })
    });
    let restored = count(&events, |k| matches!(k, EventKind::Restored { .. }));
    assert_eq!(arrived, trace.len());
    assert_eq!(enqueued, trace.len());
    assert_eq!(completed, report.completed);
    assert_eq!(rejected, report.rejected);
    assert_eq!(
        preempted, checkpoints,
        "each preemption writes a checkpoint"
    );
    assert_eq!(preempted, restored, "each preempted request is restored");
    // Ticks are merge-sorted: the stream must be nondecreasing in time.
    assert!(events.windows(2).all(|w| w[0].tick <= w[1].tick));
}
