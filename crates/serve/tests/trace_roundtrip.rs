//! Round-trip and golden-layout tests for the binary trace format.
//!
//! The format's promises, pinned here:
//!
//! 1. **Round-trip** — record → encode → decode → replay yields the
//!    identical `ClusterRequest` stream, and cluster runs over a replay
//!    produce identical `SloReport`s, at any `SPEC_THREADS`.
//! 2. **Layout** — the on-disk encoding is pinned byte-for-byte by a
//!    golden test, so a codec change cannot silently invalidate
//!    committed traces.
//! 3. **Size** — the committed sample trace stays within the format's
//!    ≤ 16 bytes/request budget.
//! 4. **API equivalence** — the streaming `ArrivalSource` path produces
//!    byte-identical traces to the historical eager `generate`.

use proptest::prelude::*;
use spec_hwsim::DeviceSpec;
use spec_model::ModelConfig;
use spec_runtime::{ServingSim, SystemKind, Workload};
use spec_serve::arrivals::{generate, ArrivalSource, ClosedLoopConfig, TenantClass, TraceConfig};
use spec_serve::cluster::{Cluster, ClusterConfig, ClusterReport};
use spec_serve::router::RouterKind;
use spec_serve::slo::SloSpec;
use spec_serve::trace::{
    decode, encode, sample_trace_config, RecordingSource, ReplayArrivals, TraceWriter,
};
use spec_tensor::SimRng;

fn cluster(n: usize) -> Cluster {
    Cluster::new(
        (0..n)
            .map(|_| {
                ServingSim::new(
                    ModelConfig::deepseek_distill_llama_8b(),
                    DeviceSpec::a100_80g(),
                    2048,
                )
            })
            .collect(),
        SystemKind::SpeContext,
        ClusterConfig::new(),
        RouterKind::LeastOutstanding.build(),
    )
}

fn arb_config() -> impl Strategy<Value = TraceConfig> {
    // variant packs (bursty, tenanted): bit 0 = bursty, bit 1 = tenanted.
    (0u64..1000, 2usize..24, 1.0f64..16.0, 0usize..4).prop_map(|(seed, count, rate, variant)| {
        let (bursty, tenanted) = (variant & 1 != 0, variant & 2 != 0);
        let cfg = if bursty {
            TraceConfig::bursty(rate, rate * 8.0, 0.1)
        } else {
            TraceConfig::poisson(rate)
        };
        let cfg = if tenanted {
            cfg.tenants(vec![
                TenantClass::new(0, 3, vec![Workload::new(2048, 512, 3)]),
                TenantClass::new(1, 1, vec![Workload::new(4096, 1024, 1)]),
            ])
        } else {
            cfg.shapes(vec![
                Workload::new(2048, 512, 3),
                Workload::new(4096, 1024, 1),
            ])
        };
        cfg.count(count).seed(seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// record → encode → decode and encode → replay agree exactly, and
    /// re-encoding the decoded stream reproduces the bytes (the tick
    /// grid is the canonical representation, not f64 seconds).
    #[test]
    fn encode_decode_replay_round_trip(cfg in arb_config()) {
        let recorded = generate(&cfg, &mut SimRng::seed(cfg.seed));
        let bytes = encode(recorded.iter().copied());
        let decoded = decode(&bytes).unwrap();
        prop_assert_eq!(decoded.len(), recorded.len());
        let mut replay = ReplayArrivals::new(bytes.clone()).unwrap();
        let mut streamed = Vec::new();
        while let Some(cr) = replay.next_request() {
            streamed.push(cr);
        }
        prop_assert_eq!(&streamed, &decoded);
        prop_assert_eq!(encode(decoded), bytes);
    }

    /// Cluster runs over a replayed trace are deterministic: identical
    /// `ClusterReport`s (hence identical `SloReport`s) across replays
    /// and across worker thread counts.
    #[test]
    fn replayed_runs_produce_identical_slo_reports(
        seed in 0u64..200,
        count in 4usize..16,
        replicas in 1usize..4,
    ) {
        let cfg = TraceConfig::bursty(2.0, 16.0, 0.1)
            .shapes(vec![Workload::new(2048, 512, 3), Workload::new(4096, 1024, 1)])
            .count(count)
            .seed(seed);
        let bytes = encode(generate(&cfg, &mut SimRng::seed(seed)));
        let run = |threads: usize| -> ClusterReport {
            spec_parallel::with_threads(threads, || {
                let mut replay = ReplayArrivals::new(bytes.clone()).unwrap();
                cluster(replicas).run_source(&mut replay, &SloSpec::default())
            })
        };
        let reference = run(1);
        prop_assert_eq!(reference.completed + reference.rejected, count);
        for threads in [1usize, 4, 7] {
            let report = run(threads);
            prop_assert_eq!(&report, &reference, "threads={}", threads);
            prop_assert_eq!(&report.slo, &reference.slo);
        }
    }

    /// The streaming source is byte-identical to the eager generator
    /// for every process/mix the config space can express.
    #[test]
    fn streaming_api_is_byte_identical_to_eager(cfg in arb_config()) {
        let eager = generate(&cfg, &mut SimRng::seed(cfg.seed));
        let streamed: Vec<_> = cfg.source().collect();
        prop_assert_eq!(&eager, &streamed);
        prop_assert_eq!(encode(eager), encode(streamed));
    }
}

/// The binary layout, pinned byte-for-byte: header = magic "SPTR",
/// version 1, varint tick_ns (1000 = 0xE8 0x07); then per record the
/// five varints Δticks, input_len, output_len, tenant, session.
#[test]
fn golden_encoding_layout() {
    use spec_runtime::Request;
    use spec_serve::arrivals::ClusterRequest;

    let mut w = TraceWriter::default();
    // 1.5 ms after epoch = 1500 ticks = varint [0xDC, 0x0B].
    w.record(&ClusterRequest {
        request: Request::new(0, 2, 300, 127, 0.0015),
        session: 5,
    });
    // Same instant: Δ = 0. 128 needs two varint bytes [0x80, 0x01].
    w.record(&ClusterRequest {
        request: Request::new(1, 0, 128, 1, 0.0015),
        session: 0,
    });
    let bytes = w.into_bytes();
    let expected: Vec<u8> = vec![
        b'S', b'P', b'T', b'R', // magic
        1,    // version
        0xE8, 0x07, // tick_ns = 1000
        0xDC, 0x0B, // Δticks = 1500
        0xAC, 0x02, // input_len = 300
        0x7F, // output_len = 127
        0x02, // tenant = 2
        0x05, // session = 5
        0x00, // Δticks = 0
        0x80, 0x01, // input_len = 128
        0x01, // output_len = 1
        0x00, // tenant = 0
        0x00, // session = 0
    ];
    assert_eq!(
        bytes, expected,
        "the on-disk layout changed — bump VERSION and update the format docs"
    );
}

/// The committed sample trace regenerates bit-for-bit from its pinned
/// config (codec + generator drift guard) and respects the size budget.
#[test]
fn committed_sample_trace_matches_and_fits_budget() {
    let cfg = sample_trace_config();
    let mut w = TraceWriter::default();
    for cr in generate(&cfg, &mut SimRng::seed(cfg.seed)) {
        w.record(&cr);
    }
    assert!(
        w.bytes_per_request() <= 16.0,
        "{:.2} bytes/request breaks the format budget",
        w.bytes_per_request()
    );
    let regenerated = w.into_bytes();
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/sample_trace.sptr");
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing committed sample trace {} ({e}); run `cargo run --release --example trace_replay` to generate it",
            path.display()
        )
    });
    assert_eq!(
        committed, regenerated,
        "results/sample_trace.sptr no longer matches sample_trace_config()"
    );
}

/// Recording a closed-loop run captures the realized arrival trace, and
/// replaying it open-loop reproduces the same completions — sessions'
/// causal gating is baked into the recorded arrival times.
#[test]
fn closed_loop_record_then_replay_reproduces_the_run() {
    let cfg = ClosedLoopConfig::new(4, 3)
        .think(0.3)
        .ramp(0.5)
        .shapes(vec![Workload::new(1024, 256, 1)])
        .seed(9);
    let mut tee = RecordingSource::new(cfg.source());
    let live = cluster(2).run_source(&mut tee, &SloSpec::default());
    assert_eq!(live.completed, 12);
    let bytes = tee.into_bytes();

    let run_replay = || {
        let mut replay = ReplayArrivals::new(bytes.clone()).unwrap();
        cluster(2).run_source(&mut replay, &SloSpec::default())
    };
    let a = run_replay();
    let b = run_replay();
    assert_eq!(a, b, "replays must be bit-identical");
    assert_eq!(a.completed, live.completed);
    assert_eq!(a.rejected, live.rejected);
}
