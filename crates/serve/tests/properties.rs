//! Property tests for the cluster serving subsystem.
//!
//! The three invariants the subsystem is pinned to:
//!
//! 1. **Conservation** — across any router, every submitted request is
//!    either completed exactly once or rejected exactly once; none is
//!    lost or duplicated.
//! 2. **Per-replica monotonicity** — each replica retires requests in
//!    nondecreasing finish-time order, and no request finishes before it
//!    starts or starts before it arrives.
//! 3. **Single-replica equivalence** — a 1-replica cluster (any router)
//!    reproduces the closed-loop `Scheduler::run` bit-for-bit: same
//!    completions, same floats, same makespan.

use proptest::prelude::*;
use spec_hwsim::DeviceSpec;
use spec_model::ModelConfig;
use spec_runtime::{Scheduler, SchedulerConfig, ServingSim, SystemKind, Workload};
use spec_serve::arrivals::{self, ArrivalProcess, ClusterRequest, TenantClass, TraceConfig};
use spec_serve::cluster::{Cluster, ClusterConfig};
use spec_serve::router::RouterKind;
use spec_serve::slo::SloSpec;
use spec_tensor::SimRng;

fn sim() -> ServingSim {
    ServingSim::new(
        ModelConfig::deepseek_distill_llama_8b(),
        DeviceSpec::a100_80g(),
        2048,
    )
}

fn cluster(n: usize, kind: RouterKind) -> Cluster {
    Cluster::new(
        (0..n).map(|_| sim()).collect(),
        SystemKind::SpeContext,
        ClusterConfig::default(),
        kind.build(),
    )
}

fn make_trace(seed: u64, count: usize, rate: f64, bursty: bool) -> Vec<ClusterRequest> {
    let process = if bursty {
        ArrivalProcess::Bursty {
            base_rate: rate,
            burst_rate: rate * 8.0,
            switch_prob: 0.1,
        }
    } else {
        ArrivalProcess::Poisson { rate }
    };
    arrivals::generate(
        &TraceConfig::new(process)
            .shapes(vec![
                Workload::new(2048, 512, 3),
                Workload::new(4096, 1024, 1),
            ])
            .sessions((count / 3).max(1))
            .count(count),
        &mut SimRng::seed(seed),
    )
}

fn make_tenanted_trace(seed: u64, count: usize, rate: f64) -> Vec<ClusterRequest> {
    arrivals::generate(
        &TraceConfig::poisson(rate)
            .tenants(vec![
                TenantClass::new(0, 3, vec![Workload::new(512, 128, 1)]),
                TenantClass::new(1, 1, vec![Workload::new(2048, 4096, 1)]),
            ])
            .count(count),
        &mut SimRng::seed(seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// No request is lost or duplicated, whatever the router.
    #[test]
    fn requests_are_conserved_across_routing(
        seed in 0u64..1000,
        count in 4usize..24,
        replicas in 1usize..4,
        bursty in any::<bool>(),
    ) {
        let trace = make_trace(seed, count, 2.0, bursty);
        for kind in RouterKind::all() {
            let mut c = cluster(replicas, kind);
            let report = c.run(&trace, &SloSpec::default());
            prop_assert_eq!(report.completed + report.rejected, count);
            let mut ids: Vec<usize> = report
                .replicas
                .iter()
                .flat_map(|r| r.report.completed.iter().map(|c| c.request.id))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), report.completed, "duplicated completion under {}", kind);
        }
    }

    /// Completion times are monotone per replica, and every request
    /// observes arrival <= start < finish.
    #[test]
    fn completions_are_monotone_per_replica(
        seed in 0u64..1000,
        count in 4usize..20,
        replicas in 1usize..4,
    ) {
        let trace = make_trace(seed, count, 4.0, false);
        let mut c = cluster(replicas, RouterKind::LeastOutstanding);
        let report = c.run(&trace, &SloSpec::default());
        for rep in &report.replicas {
            prop_assert!(rep
                .report
                .completed
                .windows(2)
                .all(|w| w[0].finish <= w[1].finish));
            for done in &rep.report.completed {
                prop_assert!(done.start >= done.request.arrival);
                prop_assert!(done.finish > done.start);
            }
        }
    }

    /// A 1-replica cluster reproduces the closed-loop scheduler exactly:
    /// identical completions (same floats), makespan and rejects, for
    /// every router (with one replica, routing is forced).
    #[test]
    fn one_replica_cluster_equals_scheduler_run(
        seed in 0u64..1000,
        count in 2usize..16,
        rate in 1.0f64..16.0,
        bursty in any::<bool>(),
    ) {
        let trace = make_trace(seed, count, rate, bursty);
        let requests: Vec<_> = trace.iter().map(|cr| cr.request).collect();
        let single = Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default())
            .run(&requests);
        for kind in RouterKind::all() {
            let mut c = cluster(1, kind);
            let report = c.run(&trace, &SloSpec::default());
            prop_assert_eq!(&report.replicas[0].report, &single, "router {}", kind);
            prop_assert_eq!(report.makespan.to_bits(), single.makespan.to_bits());
            prop_assert_eq!(report.rejected, single.rejected);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Per-tenant goodput, throughput, completions and rejections sum to
    /// the fleet totals, for any router over a 2-tenant mix.
    #[test]
    fn per_tenant_slo_sums_to_fleet(
        seed in 0u64..1000,
        count in 6usize..24,
        replicas in 1usize..4,
    ) {
        let trace = make_tenanted_trace(seed, count, 4.0);
        for kind in RouterKind::all() {
            let mut c = cluster(replicas, kind);
            let report = c.run(&trace, &SloSpec::default());
            let s = &report.slo;
            let good: f64 = s.per_tenant.iter().map(|t| t.goodput_tokens_per_s).sum();
            let thr: f64 = s.per_tenant.iter().map(|t| t.throughput_tokens_per_s).sum();
            let done: usize = s.per_tenant.iter().map(|t| t.completed).sum();
            let rej: usize = s.per_tenant.iter().map(|t| t.rejected).sum();
            prop_assert!((good - s.goodput_tokens_per_s).abs() <= 1e-9 * good.max(1.0),
                "goodput {} vs sum {} under {}", s.goodput_tokens_per_s, good, kind);
            prop_assert!((thr - s.throughput_tokens_per_s).abs() <= 1e-9 * thr.max(1.0));
            prop_assert_eq!(done, s.completed);
            prop_assert_eq!(rej, s.rejected);
            prop_assert!(s.per_tenant.iter().all(|t| t.attainment.is_finite()));
        }
    }

    /// Tenanted traces are conserved under preemptive fair scheduling
    /// too: every request completes once or is rejected once, and no
    /// completion exceeds the preemption cap.
    #[test]
    fn preemptive_cluster_conserves_requests(
        seed in 0u64..1000,
        count in 6usize..20,
        replicas in 1usize..3,
    ) {
        use spec_runtime::{FairConfig, PreemptionPolicy, QueueDiscipline};
        let trace = make_tenanted_trace(seed, count, 8.0);
        let cfg = ClusterConfig::new().scheduler(SchedulerConfig {
            max_batch: 4,
            admission_stride: 4,
            fair: FairConfig {
                discipline: QueueDiscipline::DeficitRoundRobin,
                weights: vec![(0, 4), (1, 1)],
                preemption: PreemptionPolicy::DeficitRoundRobin,
                ..FairConfig::default()
            },
        });
        let mut c = Cluster::new(
            (0..replicas).map(|_| sim()).collect(),
            SystemKind::SpeContext,
            cfg,
            RouterKind::LeastOutstanding.build(),
        );
        let report = c.run(&trace, &SloSpec::default());
        prop_assert_eq!(report.completed + report.rejected, count);
        let cap = FairConfig::default().max_preemptions;
        for rep in &report.replicas {
            for done in &rep.report.completed {
                prop_assert!(done.preemptions <= cap);
                prop_assert!(done.first_token >= done.start);
                prop_assert!(done.finish >= done.first_token);
            }
        }
    }
}

/// The same equivalence holds for a batching baseline system and for a
/// tight admission stride (admission every iteration).
#[test]
fn one_replica_equivalence_for_baseline_and_tight_stride() {
    let trace = make_trace(77, 12, 6.0, true);
    let requests: Vec<_> = trace.iter().map(|cr| cr.request).collect();
    for (system, stride) in [
        (SystemKind::FullFlashInfer, 16),
        (SystemKind::SpeContext, 1),
        (SystemKind::ShadowKv, 4),
    ] {
        let cfg = SchedulerConfig {
            admission_stride: stride,
            ..SchedulerConfig::default()
        };
        let single = Scheduler::new(sim(), system, cfg.clone()).run(&requests);
        let mut c = Cluster::new(
            vec![sim()],
            system,
            ClusterConfig::new().scheduler(cfg),
            RouterKind::RoundRobin.build(),
        );
        let report = c.run(&trace, &SloSpec::default());
        assert_eq!(
            report.replicas[0].report, single,
            "system {system} stride {stride}"
        );
    }
}

/// Oversized requests are rejected by the cluster exactly as by the
/// single-node scheduler, and never wedge the event loop.
#[test]
fn oversized_requests_reject_cluster_wide() {
    let trace = arrivals::from_trace(&[
        (0.0, 2048, 512),
        (0.5, 10_000_000, 10_000_000),
        (1.0, 2048, 512),
    ])
    .expect("sorted trace");
    let mut c = cluster(2, RouterKind::LeastOutstanding);
    let report = c.run(&trace, &SloSpec::default());
    assert_eq!(report.completed, 2);
    assert_eq!(report.rejected, 1);
}
