//! Fault-injection pins.
//!
//! 1. **No-fault identity** — `run_fault_plan(FaultPlan::none())` is
//!    bit-identical to `Cluster::run`, reports and event streams alike:
//!    the fault machinery prices at exactly zero when unused.
//! 2. **Determinism** — identical `FaultPlan` + seed produce
//!    byte-identical event streams and `ClusterReport`s at
//!    `SPEC_THREADS` ∈ {1, 4, 7}.
//! 3. **Conservation** — under any plan, every submitted request is
//!    completed, rejected, dead-lettered or shed, exactly once.
//! 4. **Recovery policy** — health-aware routing strictly beats
//!    failure-blind routing through the same outage, sessions re-pin
//!    away from crashed replicas without flapping back during
//!    probation, and the autoscaler never parks a replica holding
//!    outstanding work.

use proptest::prelude::*;
use spec_hwsim::{fleet, DeviceSpec};
use spec_model::ModelConfig;
use spec_runtime::{Request, SystemKind, Workload};
use spec_serve::arrivals::{self, ClusterRequest, TenantClass, TraceConfig};
use spec_serve::cluster::{AutoscaleConfig, Cluster, ClusterConfig, ClusterReport};
use spec_serve::router::RouterKind;
use spec_serve::slo::SloSpec;
use spec_serve::{FaultPlan, RetryPolicy, ShedPolicy};
use spec_telemetry::{Event, EventKind};
use spec_tensor::SimRng;

fn cluster(n: usize, kind: RouterKind, autoscale: Option<AutoscaleConfig>) -> Cluster {
    let cfg = match autoscale {
        Some(auto) => ClusterConfig::new().autoscale(auto),
        None => ClusterConfig::new(),
    };
    Cluster::from_fleet(
        &ModelConfig::deepseek_distill_llama_8b(),
        &fleet::homogeneous(DeviceSpec::a100_80g(), n),
        2048,
        SystemKind::SpeContext,
        cfg,
        kind.build(),
    )
}

fn trace(rate: f64, count: usize, seed: u64) -> Vec<ClusterRequest> {
    arrivals::generate(
        &TraceConfig::poisson(rate)
            .shapes(vec![Workload::new(2048, 512, 1)])
            .count(count),
        &mut SimRng::seed(seed),
    )
}

fn tenanted_trace(rate: f64, count: usize, seed: u64) -> Vec<ClusterRequest> {
    arrivals::generate(
        &TraceConfig::poisson(rate)
            .tenants(vec![
                TenantClass::new(0, 3, vec![Workload::new(512, 128, 1)]),
                TenantClass::new(1, 1, vec![Workload::new(2048, 1024, 1)]),
            ])
            .count(count),
        &mut SimRng::seed(seed),
    )
}

/// completed + rejected + dead-lettered + shed must equal submitted —
/// the conservation law every faulted run answers to.
fn assert_conserved(report: &ClusterReport, submitted: usize, label: &str) {
    let accounted =
        report.completed + report.rejected + report.faults.dead_lettered + report.faults.shed;
    assert_eq!(
        accounted, submitted,
        "{label}: {} completed + {} rejected + {} dead-lettered + {} shed != {submitted} submitted",
        report.completed, report.rejected, report.faults.dead_lettered, report.faults.shed
    );
    // The SLO denominators must agree with the fleet counters.
    let slo_submitted =
        report.slo.completed + report.slo.rejected + report.slo.dead_lettered + report.slo.shed;
    assert_eq!(slo_submitted, submitted, "{label}: SLO denominator");
    assert_eq!(report.slo.dead_lettered, report.faults.dead_lettered);
    assert_eq!(report.slo.shed, report.faults.shed);
}

#[test]
fn empty_plan_is_bit_identical_to_run() {
    let reqs = trace(2.0, 24, 11);
    let slo = SloSpec::default();
    for kind in RouterKind::all() {
        let baseline = cluster(3, kind, None).run(&reqs, &slo);
        let faulted = cluster(3, kind, None).run_fault_plan(&reqs, &slo, &FaultPlan::none());
        assert_eq!(baseline, faulted, "router {kind}");
    }
    // With autoscaling in the loop too.
    let auto = AutoscaleConfig {
        min_replicas: 1,
        scale_up_outstanding: 2,
        scale_down_outstanding: 1,
        ..AutoscaleConfig::default()
    };
    let a = cluster(4, RouterKind::LeastOutstanding, Some(auto)).run(&reqs, &slo);
    let b = cluster(4, RouterKind::LeastOutstanding, Some(auto)).run_fault_plan(
        &reqs,
        &slo,
        &FaultPlan::none(),
    );
    assert_eq!(a, b, "autoscaled");
}

#[test]
fn empty_plan_traced_matches_run_traced_event_for_event() {
    let reqs = trace(3.0, 20, 17);
    let slo = SloSpec::default();
    let (ra, ea) = cluster(2, RouterKind::LeastKvPressure, None).run_traced(&reqs, &slo);
    let (rb, eb) = cluster(2, RouterKind::LeastKvPressure, None).run_fault_plan_traced(
        &reqs,
        &slo,
        &FaultPlan::none(),
    );
    assert_eq!(ra, rb, "reports");
    assert_eq!(ea, eb, "event streams");
}

#[test]
fn crashed_replica_work_is_recovered_or_dead_lettered() {
    let reqs = trace(4.0, 40, 7);
    // Replica 0 crashes mid-trace and restarts while arrivals continue.
    let plan = FaultPlan::none()
        .crash_at(0, 1.0, 5.0)
        .health_aware(true)
        .seed(3);
    let mut c = cluster(2, RouterKind::LeastOutstanding, None);
    let (report, events) = c.run_fault_plan_traced(&reqs, &SloSpec::default(), &plan);
    assert_eq!(report.faults.crashes, 1);
    assert_eq!(report.faults.recoveries, 1);
    assert_conserved(&report, 40, "single crash");
    // Something was actually in flight when the crash hit, and it came
    // back through a checkpoint or a retry.
    let torn = report.faults.lost_in_flight
        + report.faults.checkpoints_migrated
        + report.faults.checkpoints_lost;
    assert!(torn > 0, "the crash must tear out in-flight work");
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::ReplicaCrashed { .. })),
        "crash event recorded"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::ReplicaRecovered)),
        "recovery event recorded"
    );
}

#[test]
fn straggler_window_slows_then_releases_the_replica() {
    let reqs = trace(2.0, 16, 23);
    let slo = SloSpec::default();
    let healthy = cluster(2, RouterKind::RoundRobin, None).run(&reqs, &slo);
    let plan = FaultPlan::none().straggler_at(0, 0.0, 30.0, 6.0);
    let (slowed, events) =
        cluster(2, RouterKind::RoundRobin, None).run_fault_plan_traced(&reqs, &slo, &plan);
    assert_eq!(slowed.faults.straggler_windows, 1);
    assert_conserved(&slowed, 16, "straggler");
    assert!(
        slowed.slo.latency.p95 > healthy.slo.latency.p95,
        "a 6x straggler must stretch tail latency ({} vs {})",
        slowed.slo.latency.p95,
        healthy.slo.latency.p95
    );
    let started = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::StragglerStarted { .. }))
        .count();
    let ended = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::StragglerEnded))
        .count();
    assert_eq!((started, ended), (1, 1));
}

#[test]
fn health_aware_routing_beats_failure_blind_through_an_outage() {
    let reqs = tenanted_trace(6.0, 36, 41);
    let slo = SloSpec::default();
    // Replica 0 is down for most of the trace. Blind routing keeps
    // assigning work to the frozen replica (its queue looks short);
    // health-aware routing ejects it from candidate sets.
    let outage = |aware: bool| {
        FaultPlan::none()
            .crash_at(0, 0.5, 30.0)
            .probation(1.0)
            .health_aware(aware)
            .seed(9)
    };
    let blind =
        cluster(2, RouterKind::LeastOutstanding, None).run_fault_plan(&reqs, &slo, &outage(false));
    let aware =
        cluster(2, RouterKind::LeastOutstanding, None).run_fault_plan(&reqs, &slo, &outage(true));
    assert_conserved(&blind, 36, "blind");
    assert_conserved(&aware, 36, "aware");
    assert!(
        aware.slo.attainment > blind.slo.attainment,
        "health-aware attainment {} must strictly beat blind {}",
        aware.slo.attainment,
        blind.slo.attainment
    );
    assert!(
        aware.slo.latency.p95 < blind.slo.latency.p95,
        "health-aware p95 {} must strictly beat blind {}",
        aware.slo.latency.p95,
        blind.slo.latency.p95
    );
}

#[test]
fn shedding_degrades_gracefully_by_tenant_weight() {
    let reqs = tenanted_trace(20.0, 48, 13);
    let slo = SloSpec::default();
    let plan = FaultPlan::none().shed(ShedPolicy::new(6).weights(vec![(0, 4), (1, 1)]));
    let report = cluster(2, RouterKind::LeastOutstanding, None).run_fault_plan(&reqs, &slo, &plan);
    assert_conserved(&report, 48, "shedding");
    assert!(report.faults.shed > 0, "overload must trigger shedding");
    // The light tenant (1) sheds at a quarter of the heavy tenant's
    // watermark, so its shed fraction must be at least as high.
    let shed_frac = |tenant: u32| {
        let t = report
            .slo
            .per_tenant
            .iter()
            .find(|t| t.tenant == tenant)
            .expect("tenant present");
        let submitted = t.completed + t.rejected + t.dead_lettered + t.shed;
        t.shed as f64 / submitted.max(1) as f64
    };
    assert!(
        shed_frac(1) >= shed_frac(0),
        "light tenant shed fraction {} must be >= heavy {}",
        shed_frac(1),
        shed_frac(0)
    );
}

#[test]
fn sessions_repin_away_from_a_crash_and_hold_through_probation() {
    let mk = |id: usize, arrival: f64| ClusterRequest {
        request: Request {
            id,
            tenant: 0,
            input_len: 1024,
            output_len: 256,
            arrival,
        },
        session: 42,
    };
    // Request 0 pins session 42 to replica 0 (least-outstanding tie
    // breaks to index 0). Replica 0 then crashes at 1.0 and restarts at
    // 6.0 into a long probation; the remaining turns must re-pin to
    // replica 1 and stay there — both during probation and after it.
    let reqs = [mk(0, 0.0), mk(1, 2.0), mk(2, 8.0), mk(3, 40.0)];
    let plan = FaultPlan::none()
        .crash_at(0, 1.0, 5.0)
        .probation(10.0)
        .health_aware(true)
        .seed(5);
    let mut c = cluster(2, RouterKind::SessionAffinity, None);
    let (report, events) = c.run_fault_plan_traced(&reqs, &SloSpec::default(), &plan);
    assert_conserved(&report, 4, "session crash");
    let routed: Vec<(u64, u32)> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Arrived { request, .. } => Some((request, e.replica)),
            _ => None,
        })
        .collect();
    assert_eq!(routed[0], (0, 0), "session pins to replica 0 first");
    assert_eq!(routed[1], (1, 1), "crash forces a re-pin to replica 1");
    assert_eq!(routed[2], (2, 1), "no flap-back during probation");
    assert_eq!(
        routed[3],
        (3, 1),
        "the moved pin holds even after probation re-admits replica 0"
    );
}

#[test]
fn no_arrival_is_ever_routed_to_a_parked_replica() {
    // Cluster-stream invariant (routing decisions and scale events are
    // emitted by the same serial path, so their order is exact): after
    // ReplicaScaledDown for replica i, no Arrived may target i until a
    // matching ReplicaScaledUp. A parked replica was drained when
    // parked — see `scale_down_skips_replicas_still_holding_work` for
    // the decision-point pin — so routing anything there would strand
    // it on a replica the autoscaler believes is idle.
    let auto = AutoscaleConfig {
        min_replicas: 1,
        scale_up_outstanding: 2,
        scale_down_outstanding: 3,
        ..AutoscaleConfig::default()
    };
    // Two bursts separated by a long lull: scale decisions fire at
    // arrival instants, so the fleet must be drained at one for a park
    // to happen — the first tail arrival finds it empty.
    let mut reqs = trace(6.0, 24, 31);
    let base = reqs.len();
    for (k, mut cr) in trace(6.0, 24, 33).into_iter().enumerate() {
        cr.request.id = base + k;
        cr.request.arrival += 300.0;
        reqs.push(cr);
    }
    let (report, events) =
        cluster(4, RouterKind::LeastOutstanding, Some(auto)).run_traced(&reqs, &SloSpec::default());
    assert_eq!(report.completed, 48);
    let down_count = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ReplicaScaledDown))
        .count();
    assert!(down_count > 0, "the sweep must exercise scale-down");
    let mut parked = [false; 4];
    for e in &events {
        let r = e.replica as usize;
        match e.kind {
            EventKind::ReplicaScaledDown => parked[r] = true,
            EventKind::ReplicaScaledUp => parked[r] = false,
            EventKind::Arrived { request, .. } if parked[r] => {
                panic!(
                    "request {request} routed to parked replica {r} at tick {}",
                    e.tick
                )
            }
            _ => {}
        }
    }
}

#[test]
fn retry_budget_exhaustion_dead_letters_with_tenant_attribution() {
    // A single replica that crashes over and over: every in-flight
    // request bounces until its budget runs out, then dead-letters.
    let reqs = trace(4.0, 12, 3);
    let mut plan = FaultPlan::none()
        .mtbf(1.5, 0.5)
        .retry(RetryPolicy {
            max_attempts: 1,
            base_backoff_s: 0.2,
            max_backoff_s: 1.0,
            jitter_frac: 0.1,
        })
        .seed(29);
    plan.kv_loss_prob = 1.0; // every checkpoint transfer fails
    let report = cluster(1, RouterKind::LeastOutstanding, None).run_fault_plan(
        &reqs,
        &SloSpec::default(),
        &plan,
    );
    assert_conserved(&report, 12, "crash churn");
    assert!(report.faults.crashes > 1, "the plan must crash repeatedly");
    assert!(
        report.faults.dead_lettered > 0,
        "a 1-attempt budget under crash churn must dead-letter"
    );
    let per_tenant_dead: usize = report.slo.per_tenant.iter().map(|t| t.dead_lettered).sum();
    assert_eq!(
        per_tenant_dead, report.faults.dead_lettered,
        "dead-letters must be attributed to tenants"
    );
}

fn fault_event_names(events: &[Event]) -> Vec<&'static str> {
    events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::ReplicaCrashed { .. }
                    | EventKind::ReplicaRecovered
                    | EventKind::RetryScheduled { .. }
                    | EventKind::RequestShed { .. }
                    | EventKind::CheckpointLost { .. }
                    | EventKind::DeadLettered { .. }
                    | EventKind::StragglerStarted { .. }
                    | EventKind::StragglerEnded
            )
        })
        .map(|e| e.kind.name())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Identical plan + seed → byte-identical event streams and reports
    /// at SPEC_THREADS ∈ {1, 4, 7}; conservation holds throughout.
    #[test]
    fn faulted_runs_are_deterministic_and_thread_invariant(
        seed in 0u64..1000,
        mtbf in 2.0f64..8.0,
        mttr in 0.5f64..2.0,
        kv_loss in 0.0f32..1.0,
        straggle in any::<bool>(),
        shed in any::<bool>(),
        aware in any::<bool>(),
    ) {
        let mut plan = FaultPlan::none()
            .mtbf(mtbf, mttr)
            .probation(0.5)
            .health_aware(aware)
            .seed(seed);
        plan.kv_loss_prob = kv_loss;
        if straggle {
            plan = plan.random_stragglers(4.0, 1.5, 3.0);
        }
        if shed {
            plan = plan.shed(ShedPolicy::new(24).weights(vec![(0, 2), (1, 1)]));
        }
        let reqs = tenanted_trace(5.0, 30, seed ^ 0xABCD);
        let run = |threads: usize| {
            spec_parallel::with_threads(threads, || {
                cluster(3, RouterKind::LeastOutstanding, None)
                    .run_fault_plan_traced(&reqs, &SloSpec::default(), &plan)
            })
        };
        let (report, events) = run(1);
        assert_conserved(&report, 30, "proptest");
        prop_assert!(report.faults.crashes > 0 || report.makespan < mtbf);
        for threads in [4usize, 7] {
            let (r, e) = run(threads);
            prop_assert_eq!(&r, &report, "report at SPEC_THREADS={}", threads);
            prop_assert_eq!(&e, &events, "events at SPEC_THREADS={}", threads);
        }
        // The fault lifecycle must actually be visible in telemetry when
        // the summary says something happened.
        if report.faults.crashes > 0 {
            prop_assert!(fault_event_names(&events).contains(&"replica_crashed"));
        }
    }
}
