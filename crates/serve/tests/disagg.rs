//! Property tests pinning disaggregated prefill/decode serving to the
//! monolithic cluster.
//!
//! Three invariants:
//!
//! 1. **Unified anchor** — a fleet built from `from_fleet_slots` whose
//!    slots all carry `ReplicaRole::Unified` reproduces the monolithic
//!    `Cluster::new` path bit-for-bit (full `ClusterReport` equality,
//!    cost and handoff fields included), for every router.
//! 2. **Zero-cost-link equivalence** — on a serial trace (every request
//!    finishes before the next arrives), a 1-prefill + 1-decode fleet
//!    over a free interconnect reproduces the 1-replica monolithic
//!    cluster's per-request floats exactly: the KV hop is priced, never
//!    recomputed, so a free hop must be invisible.
//! 3. **Thread invariance** — the two-stage path (routing, handoff
//!    delivery, billing) is serial by construction, so reports do not
//!    depend on the worker-pool width.

use proptest::prelude::*;
use spec_hwsim::{DeviceSpec, Fleet, LinkSpec, ReplicaRole};
use spec_model::ModelConfig;
use spec_runtime::{ServingSim, SystemKind, Workload};
use spec_serve::arrivals::{self, ArrivalProcess, ClusterRequest, TraceConfig};
use spec_serve::cluster::{Cluster, ClusterConfig, DisaggConfig};
use spec_serve::router::RouterKind;
use spec_serve::slo::SloSpec;
use spec_tensor::SimRng;

const BUDGET: usize = 2048;

fn model() -> ModelConfig {
    ModelConfig::deepseek_distill_llama_8b()
}

fn sim() -> ServingSim {
    ServingSim::new(model(), DeviceSpec::a100_80g(), BUDGET)
}

fn monolithic(n: usize, kind: RouterKind) -> Cluster {
    Cluster::new(
        (0..n).map(|_| sim()).collect(),
        SystemKind::SpeContext,
        ClusterConfig::default(),
        kind.build(),
    )
}

fn unified_slots(n: usize, kind: RouterKind) -> Cluster {
    let slots = Fleet::new().with(DeviceSpec::a100_80g(), n).build_slots();
    Cluster::from_fleet_slots(
        &model(),
        &slots,
        BUDGET,
        SystemKind::SpeContext,
        ClusterConfig::default(),
        kind.build(),
    )
}

fn split(prefill: usize, decode: usize, link: LinkSpec, decode_router: RouterKind) -> Cluster {
    let slots = Fleet::new()
        .with_role(DeviceSpec::a100_80g(), ReplicaRole::Prefill, prefill)
        .with_role(DeviceSpec::a100_80g(), ReplicaRole::Decode, decode)
        .build_slots();
    Cluster::from_fleet_slots(
        &model(),
        &slots,
        BUDGET,
        SystemKind::SpeContext,
        ClusterConfig::new().disagg(DisaggConfig::new().link(link).decode_router(decode_router)),
        RouterKind::LeastOutstanding.build(),
    )
}

fn make_trace(seed: u64, count: usize, rate: f64, bursty: bool) -> Vec<ClusterRequest> {
    let process = if bursty {
        ArrivalProcess::Bursty {
            base_rate: rate,
            burst_rate: rate * 8.0,
            switch_prob: 0.1,
        }
    } else {
        ArrivalProcess::Poisson { rate }
    };
    arrivals::generate(
        &TraceConfig::new(process)
            .shapes(vec![
                Workload::new(2048, 512, 3),
                Workload::new(1024, 256, 1),
            ])
            .sessions((count / 3).max(1))
            .count(count),
        &mut SimRng::seed(seed),
    )
}

/// Arrivals spaced so widely every request drains before the next one
/// lands: the regime where a free KV hop is provably invisible.
fn serial_trace(count: usize, gap: f64) -> Vec<ClusterRequest> {
    let items: Vec<(f64, usize, usize)> = (0..count)
        .map(|i| {
            if i % 2 == 0 {
                (i as f64 * gap, 2048, 512)
            } else {
                (i as f64 * gap, 1024, 256)
            }
        })
        .collect();
    arrivals::from_trace(&items).expect("sorted by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Invariant 1: an all-`Unified` slot fleet is the monolithic
    /// cluster, bit for bit — every field of the report, including the
    /// new handoff and cost sections, for every router.
    #[test]
    fn unified_slot_fleet_is_bit_identical_to_monolithic(
        seed in 0u64..1000,
        count in 4usize..20,
        replicas in 1usize..4,
        bursty in any::<bool>(),
    ) {
        let trace = make_trace(seed, count, 2.0, bursty);
        for kind in RouterKind::all() {
            let a = unified_slots(replicas, kind).run(&trace, &SloSpec::default());
            let b = monolithic(replicas, kind).run(&trace, &SloSpec::default());
            prop_assert_eq!(&a, &b, "router {}", kind);
            prop_assert_eq!(a.handoffs.count, 0, "unified fleets never hop KV");
        }
    }

    /// Disaggregated fleets conserve requests for every decode router:
    /// each request is prefilled once, hopped once, decoded once.
    #[test]
    fn split_fleet_conserves_requests_across_decode_routers(
        seed in 0u64..1000,
        count in 4usize..16,
        decode in 1usize..3,
    ) {
        let trace = make_trace(seed, count, 2.0, false);
        for kind in RouterKind::all() {
            let report = split(1, decode, LinkSpec::infiniband(), kind)
                .run(&trace, &SloSpec::default());
            prop_assert_eq!(
                report.completed + report.rejected, count, "decode router {}", kind
            );
            prop_assert_eq!(report.handoffs.count, report.completed);
            let mut ids: Vec<usize> = report
                .replicas
                .iter()
                .flat_map(|r| r.report.completed.iter().map(|c| c.request.id))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), report.completed, "duplicate under {}", kind);
        }
    }

    /// Invariant 3: the two-stage path is worker-pool-width invariant.
    /// (CI additionally runs this whole file under SPEC_THREADS=1/4/7.)
    #[test]
    fn two_stage_report_is_thread_count_invariant(
        seed in 0u64..1000,
        count in 4usize..16,
    ) {
        let trace = make_trace(seed, count, 4.0, true);
        let run = |threads: usize| {
            spec_parallel::with_threads(threads, || {
                split(1, 2, LinkSpec::infiniband(), RouterKind::LeastOutstanding)
                    .run(&trace, &SloSpec::default())
            })
        };
        let reference = run(1);
        for t in [4usize, 7] {
            prop_assert_eq!(&run(t), &reference, "threads={}", t);
        }
    }
}

/// Invariant 2: over a free link, prefill/decode disaggregation
/// reproduces the monolithic single replica exactly on serial traces —
/// identical start/first-token/finish floats, SLO report and makespan.
#[test]
fn zero_cost_link_split_matches_monolithic_on_serial_traces() {
    for count in [2usize, 5, 8] {
        let trace = serial_trace(count, 600.0);
        let mono = monolithic(1, RouterKind::RoundRobin).run(&trace, &SloSpec::default());
        // Premise check: the trace really is serial on this hardware.
        let mut done: Vec<_> = mono
            .replicas
            .iter()
            .flat_map(|r| r.report.completed.iter())
            .collect();
        done.sort_by(|a, b| a.finish.partial_cmp(&b.finish).unwrap());
        for (c, next) in done.iter().zip(trace.iter().skip(1)) {
            assert!(
                c.finish < next.request.arrival,
                "gap too small: finish {} vs next arrival {}",
                c.finish,
                next.request.arrival
            );
        }

        let disagg = split(1, 1, LinkSpec::zero_cost(), RouterKind::RoundRobin)
            .run(&trace, &SloSpec::default());
        assert_eq!(disagg.completed, mono.completed);
        assert_eq!(disagg.rejected, mono.rejected);
        assert_eq!(disagg.handoffs.count, count);
        assert_eq!(disagg.handoffs.transfer_s, 0.0, "free link charges nothing");
        assert_eq!(
            disagg.makespan.to_bits(),
            mono.makespan.to_bits(),
            "count {count}"
        );
        assert_eq!(&disagg.slo, &mono.slo, "count {count}");
        let mut hopped: Vec<_> = disagg
            .replicas
            .iter()
            .flat_map(|r| r.report.completed.iter())
            .collect();
        hopped.sort_by(|a, b| a.finish.partial_cmp(&b.finish).unwrap());
        for (h, m) in hopped.iter().zip(done.iter()) {
            assert_eq!(h.request.id, m.request.id);
            assert_eq!(h.request.arrival.to_bits(), m.request.arrival.to_bits());
            assert_eq!(h.start.to_bits(), m.start.to_bits());
            assert_eq!(h.first_token.to_bits(), m.first_token.to_bits());
            assert_eq!(h.finish.to_bits(), m.finish.to_bits());
        }
    }
}
