//! Speculative decoding with the DLM as the draft model.
//!
//! The paper's retrieval head is pruned from an EAGLE-3-style distilled
//! LM whose *original* purpose is speculative decoding (Section 2.3):
//! the draft LM autoregressively proposes tokens that the target LLM
//! verifies in parallel, committing the longest matching prefix plus one
//! bonus token per round. Since this reproduction carries the full DLM
//! anyway, the natural extension — SpeContext's sparsity *and* EAGLE's
//! speculation from the same distilled model — is implemented here.
//!
//! Verification uses the standard greedy acceptance rule: a drafted
//! token is accepted iff the target's argmax at that position equals it.
//! Every committed token is produced by the target model, so output
//! equals plain greedy decoding exactly; speculation only changes how
//! much target work can be batched per round.

use spec_model::{Dlm, Model, ModelKv, SparsePlan};
use spec_retrieval::spec_head::SpecContextRetriever;

/// Result of a speculative generation run.
#[derive(Debug, Clone, Default)]
pub struct SpecDecodeResult {
    /// Committed token ids (identical to greedy decoding's output).
    pub tokens: Vec<usize>,
    /// Verification rounds executed.
    pub rounds: usize,
    /// Drafted tokens accepted across all rounds.
    pub accepted: usize,
    /// Drafted tokens proposed across all rounds.
    pub drafted: usize,
}

impl SpecDecodeResult {
    /// Mean accepted draft tokens per round (the EAGLE speedup driver).
    pub fn acceptance_rate(&self) -> f32 {
        if self.drafted == 0 {
            0.0
        } else {
            self.accepted as f32 / self.drafted as f32
        }
    }

    /// Committed tokens per verification round. Each round's target
    /// passes are batchable (one latency-critical pass per round), so
    /// this is the latency-speedup driver; plain autoregressive decoding
    /// corresponds to 1.0.
    pub fn tokens_per_round(&self) -> f32 {
        if self.rounds == 0 {
            0.0
        } else {
            self.tokens.len() as f32 / self.rounds as f32
        }
    }
}

/// Speculative generator: DLM drafts, teacher verifies, both under
/// SpeContext sparsity for the teacher's steps.
#[derive(Debug)]
pub struct SpeculativeDecoder<'a> {
    teacher: &'a Model,
    dlm: &'a Dlm,
    /// Draft length per round.
    pub draft_len: usize,
}

impl<'a> SpeculativeDecoder<'a> {
    /// Creates a decoder drafting `draft_len` tokens per round.
    ///
    /// # Panics
    ///
    /// Panics if `draft_len == 0`.
    pub fn new(teacher: &'a Model, dlm: &'a Dlm, draft_len: usize) -> Self {
        assert!(draft_len > 0, "draft length must be positive");
        Self {
            teacher,
            dlm,
            draft_len,
        }
    }

    /// Generates `steps` tokens starting from `first_token`, with the
    /// teacher attending sparsely per `retriever` (pass `None` for dense
    /// verification). Returns the committed tokens plus acceptance
    /// statistics. The committed stream equals greedy decoding exactly.
    pub fn generate(
        &self,
        teacher_kv: &mut ModelKv,
        mut retriever: Option<&mut SpecContextRetriever>,
        first_token: usize,
        steps: usize,
    ) -> SpecDecodeResult {
        let mut res = SpecDecodeResult::default();
        let geom = self.teacher.geometry();
        let mut dlm_kv = ModelKv::empty(self.dlm.model().geometry());
        // Warm the DLM cache with nothing: drafts condition only on the
        // committed stream (EAGLE warms from hidden states; the sim DLM
        // redrafts from its own cache built over committed tokens).
        let mut current = first_token;

        while res.tokens.len() < steps {
            // --- draft phase: DLM proposes draft_len tokens ------------
            let mut drafts = Vec::with_capacity(self.draft_len);
            let mut dlm_tok = current;
            let draft_base = dlm_kv.seq_len();
            for _ in 0..self.draft_len {
                let emb = self.dlm.model().embed_tokens(&[dlm_tok]);
                let out = self
                    .dlm
                    .model()
                    .decode_step(emb.row(0), dlm_kv.seq_len(), &mut dlm_kv);
                dlm_tok = Model::argmax_token(&out.logits);
                drafts.push(dlm_tok);
            }
            res.drafted += drafts.len();
            res.rounds += 1;

            // --- verify phase: teacher consumes current + drafts -------
            let mut committed_this_round = 0;
            let mut feed = current;
            for (i, &draft) in drafts.iter().enumerate() {
                let emb = self.teacher.embed_tokens(&[feed]);
                let x = emb.row(0);
                let pos = teacher_kv.seq_len();
                let out = match retriever.as_deref_mut() {
                    Some(r) => {
                        r.observe(x);
                        let sel = r.select(x, geom);
                        let plan = sel.to_plan(geom.layers);
                        self.teacher.decode_step_sparse(x, pos, teacher_kv, &plan)
                    }
                    None => {
                        let plan = SparsePlan::dense(geom.layers);
                        self.teacher.decode_step_sparse(x, pos, teacher_kv, &plan)
                    }
                };
                let target_tok = Model::argmax_token(&out.logits);
                res.tokens.push(target_tok);
                committed_this_round += 1;
                if res.tokens.len() >= steps {
                    break;
                }
                if target_tok == draft {
                    res.accepted += 1;
                    feed = target_tok;
                } else {
                    // Mismatch: the round ends; resync the DLM cache to
                    // the committed stream.
                    let _ = i;
                    break;
                }
            }
            // Resync DLM: drop the speculative entries beyond what was
            // committed and append the committed tokens instead.
            let mut resync = ModelKv::empty(self.dlm.model().geometry());
            // (Rebuild is O(committed); fine at sim scale. A production
            // implementation would roll back in place.)
            let committed_prefix: Vec<usize> = res.tokens.clone();
            let _ = draft_base;
            for &t in &committed_prefix {
                let emb = self.dlm.model().embed_tokens(&[t]);
                self.dlm
                    .model()
                    .decode_step(emb.row(0), resync.seq_len(), &mut resync);
            }
            dlm_kv = resync;
            current = *res.tokens.last().expect("committed at least one");
            let _ = committed_this_round;
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{AttentionKind, DistillOptions, PrefillMode, SimGeometry};

    fn setup() -> (Model, Dlm, ModelKv, usize) {
        let teacher = Model::new(SimGeometry::tiny(AttentionKind::Gqa), 121);
        let dlm = Dlm::distill(&teacher, DistillOptions::default());
        let tokens: Vec<usize> = (0..24).map(|i| (i * 5) % 60).collect();
        let (kv, out) = teacher.prefill_tokens(&tokens, PrefillMode::Exact);
        let first = Model::argmax_token(&out.logits);
        (teacher, dlm, kv, first)
    }

    #[test]
    fn speculative_output_equals_greedy_decoding() {
        let (teacher, dlm, kv, first) = setup();
        // Reference: plain greedy decoding.
        let mut kv_ref = kv.clone();
        let mut reference = Vec::new();
        let mut tok = first;
        for _ in 0..12 {
            let emb = teacher.embed_tokens(&[tok]);
            let out = teacher.decode_step(emb.row(0), kv_ref.seq_len(), &mut kv_ref);
            tok = Model::argmax_token(&out.logits);
            reference.push(tok);
        }
        // Speculative run (dense verification).
        let mut kv_spec = kv.clone();
        let dec = SpeculativeDecoder::new(&teacher, &dlm, 3);
        let res = dec.generate(&mut kv_spec, None, first, 12);
        assert_eq!(res.tokens, reference, "speculation must be lossless");
    }

    #[test]
    fn acceptance_statistics_are_consistent() {
        let (teacher, dlm, mut kv, first) = setup();
        let dec = SpeculativeDecoder::new(&teacher, &dlm, 4);
        let res = dec.generate(&mut kv, None, first, 16);
        assert_eq!(res.tokens.len(), 16);
        assert!(res.accepted <= res.drafted);
        assert!(res.rounds >= 16 / (4 + 1), "too few rounds");
        assert!((0.0..=1.0).contains(&res.acceptance_rate()));
    }

    #[test]
    fn distilled_draft_beats_random_draft() {
        // The DLM is distilled from the teacher, so its drafts should be
        // accepted more often than an un-distilled draft model's.
        let (teacher, dlm, kv, first) = setup();
        let other_teacher = Model::new(SimGeometry::tiny(AttentionKind::Gqa), 777);
        let undistilled = Dlm::distill(&other_teacher, DistillOptions::default());

        let mut kv_a = kv.clone();
        let good = SpeculativeDecoder::new(&teacher, &dlm, 3).generate(&mut kv_a, None, first, 24);
        let mut kv_b = kv.clone();
        let bad =
            SpeculativeDecoder::new(&teacher, &undistilled, 3).generate(&mut kv_b, None, first, 24);
        assert!(
            good.acceptance_rate() >= bad.acceptance_rate(),
            "distilled {} vs undistilled {}",
            good.acceptance_rate(),
            bad.acceptance_rate()
        );
    }

    #[test]
    fn works_with_sparse_verification() {
        let (teacher, dlm, mut kv, first) = setup();
        let head = dlm.to_retrieval_head();
        let cfg = spec_retrieval::common::SelectorConfig::with_budget(20);
        let mut retr = SpecContextRetriever::new(head, cfg, spec_retrieval::MappingLevel::Head);
        // Observe the prompt.
        let tokens: Vec<usize> = (0..24).map(|i| (i * 5) % 60).collect();
        let emb = teacher.embed_tokens(&tokens);
        for r in 0..emb.rows() {
            retr.observe(emb.row(r));
        }
        let dec = SpeculativeDecoder::new(&teacher, &dlm, 3);
        let res = dec.generate(&mut kv, Some(&mut retr), first, 8);
        assert_eq!(res.tokens.len(), 8);
    }
}
