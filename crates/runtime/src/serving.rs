//! End-to-end throughput estimation: Table 3, Fig. 10, Fig. 11.
//!
//! A [`ServingSim`] binds a model config, a device and a KV budget;
//! [`ServingSim::throughput`] then estimates tokens/second for one system
//! on one workload by composing the prefill cost, the per-system
//! preprocessing cost, and the per-step decode timelines of
//! [`crate::dataflow`], integrated over the growing sequence length with
//! the memory policy deciding layer placement at every point.

use crate::adaptive::Thresholds;
use crate::costs::{CostModel, PreprocessKind};
use crate::dataflow::{step_timeline, DataflowKind, StepBreakdown, StepParams};
use crate::memory::MemoryModel;
use serde::{Deserialize, Serialize};
use spec_hwsim::{DeviceSpec, EngineProfile};
use spec_model::ModelConfig;

/// The systems of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// HuggingFace eager full attention.
    FullEager,
    /// Full attention on FlashAttention kernels.
    FullFlash,
    /// Full attention on FlashInfer kernels.
    FullFlashInfer,
    /// Quest (paged dynamic selection).
    Quest,
    /// ClusterKV (clustered dynamic selection).
    ClusterKv,
    /// ShadowKV (quantized-key selection, V offload).
    ShadowKv,
    /// SpeContext (this paper).
    SpeContext,
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SystemKind::FullEager => "Full Attn (Eager)",
            SystemKind::FullFlash => "Full Attn (Flash Attn)",
            SystemKind::FullFlashInfer => "Full Attn (FlashInfer)",
            SystemKind::Quest => "Quest",
            SystemKind::ClusterKv => "ClusterKV",
            SystemKind::ShadowKv => "ShadowKV",
            SystemKind::SpeContext => "SpeContext (Ours)",
        };
        f.write_str(s)
    }
}

impl SystemKind {
    /// All systems, in the paper's table order.
    pub fn all() -> [SystemKind; 7] {
        [
            SystemKind::FullEager,
            SystemKind::FullFlash,
            SystemKind::FullFlashInfer,
            SystemKind::Quest,
            SystemKind::ClusterKv,
            SystemKind::ShadowKv,
            SystemKind::SpeContext,
        ]
    }

    /// The engine profile each system runs on (SpeContext is built on
    /// FlashInfer, Section 7.5.1).
    pub fn profile(&self) -> EngineProfile {
        match self {
            SystemKind::FullEager => EngineProfile::eager(),
            SystemKind::FullFlash => EngineProfile::flash_attention(),
            SystemKind::FullFlashInfer | SystemKind::SpeContext => EngineProfile::flashinfer(),
            _ => EngineProfile::flash_attention(),
        }
    }

    /// Whether the system supports batched (multi-request) serving
    /// (Quest and ClusterKV are single-request, Section 7.3.1).
    pub fn supports_batching(&self) -> bool {
        !matches!(self, SystemKind::Quest | SystemKind::ClusterKv)
    }

    /// Maximum batch the system's serving stack can schedule. HF eager
    /// has no paged KV allocator and preallocates max-context buffers,
    /// capping it at small batches (the paper's Table 3 runs it at 4).
    pub fn max_batch(&self) -> usize {
        match self {
            SystemKind::FullEager => 4,
            SystemKind::Quest | SystemKind::ClusterKv => 1,
            _ => usize::MAX,
        }
    }
}

/// How the system places KV between GPU and CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryPolicy {
    /// Everything on GPU; out-of-memory if it does not fit.
    AllGpuOrOom,
    /// Decided before inference from the final length: all GPU if it
    /// fits, otherwise the entire KV cache on CPU (Challenge 3).
    AllGpuOrFullOffload,
    /// SpeContext's per-layer progressive offloading (Section 6).
    Adaptive,
}

impl SystemKind {
    /// Default memory policy per system.
    pub fn default_policy(&self) -> MemoryPolicy {
        match self {
            SystemKind::SpeContext => MemoryPolicy::Adaptive,
            SystemKind::FullEager | SystemKind::FullFlash | SystemKind::FullFlashInfer => {
                MemoryPolicy::AllGpuOrOom
            }
            _ => MemoryPolicy::AllGpuOrFullOffload,
        }
    }
}

/// A `[input_len, output_len] × requests` workload (Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Prompt length per request.
    pub input_len: usize,
    /// Generated tokens per request.
    pub output_len: usize,
    /// Concurrent requests.
    pub requests: usize,
}

impl Workload {
    /// Convenience constructor.
    pub fn new(input_len: usize, output_len: usize, requests: usize) -> Self {
        Self {
            input_len,
            output_len,
            requests,
        }
    }
}

/// The result of a throughput simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Output tokens per second (all requests combined); 0 when OOM.
    pub tokens_per_s: f64,
    /// Whether the configuration ran out of GPU memory.
    pub oom: bool,
    /// Prefill + preprocessing seconds.
    pub prefill_s: f64,
    /// Total decode seconds.
    pub decode_s: f64,
    /// Bytes moved over PCIe during decode.
    pub transfer_bytes: f64,
    /// Mean per-step breakdown at the midpoint sequence length.
    pub mid_step: StepBreakdown,
    /// The batch size simulated.
    pub requests: usize,
}

impl ThroughputReport {
    fn oom(requests: usize) -> Self {
        Self {
            tokens_per_s: 0.0,
            oom: true,
            prefill_s: 0.0,
            decode_s: 0.0,
            transfer_bytes: 0.0,
            mid_step: StepBreakdown::default(),
            requests,
        }
    }
}

/// Memoized per-step timelines, keyed by everything that determines one
/// decode step: `(system, batch, seq_len, prefill_len, l_cpu)`.
///
/// The event-driven step timeline is by far the most expensive part of a
/// serving estimate, and sweeps (batch search, continuous batching, the
/// `spec_serve` cluster simulator) re-evaluate identical steps
/// constantly. Callers own a cache per [`ServingSim`] and thread it
/// through; entries are exact — the key fully determines the timeline
/// for a fixed simulator — so hits are bit-for-bit identical to
/// recomputation. Discard the cache if `elastic_reuse` is changed.
#[derive(Debug, Clone, Default)]
pub struct StepCache {
    map: std::collections::HashMap<(SystemKind, usize, usize, usize, usize), StepBreakdown>,
    /// Memoized prefill times keyed by `(system, input_len)` — the
    /// scheduler re-prefills identical prompt lengths on every admission.
    pub(crate) prefill: std::collections::HashMap<(SystemKind, usize), f64>,
}

impl StepCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct steps evaluated so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no step has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The serving simulator.
#[derive(Debug, Clone)]
pub struct ServingSim {
    cm: CostModel,
    mm: MemoryModel,
    dev: DeviceSpec,
    budget: usize,
    /// Elastic-loading reuse fraction used for SpeContext steps.
    pub elastic_reuse: f32,
}

impl ServingSim {
    /// Creates a simulator for a model on a device with a KV budget.
    pub fn new(cfg: ModelConfig, dev: DeviceSpec, budget: usize) -> Self {
        let mm = MemoryModel::new(&cfg, &dev);
        Self {
            cm: CostModel::new(cfg),
            mm,
            dev,
            budget,
            elastic_reuse: 0.85,
        }
    }

    /// The memory model.
    pub fn memory_model(&self) -> &MemoryModel {
        &self.mm
    }

    /// The cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cm
    }

    /// The device being simulated.
    pub fn device(&self) -> &DeviceSpec {
        &self.dev
    }

    /// The KV budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// One decode-iteration latency for `system` at batch `r`, total
    /// sequence length `s`, with the prompt portion `prefill_len`
    /// (governs the baselines' retained-generation growth). Placement
    /// follows the system's default policy at this point.
    pub fn step_time(&self, system: SystemKind, r: usize, s: usize, prefill_len: usize) -> f64 {
        let l_cpu = self.policy_l_cpu(system.default_policy(), r, s);
        self.step_breakdown(system, r, s, prefill_len, l_cpu).total
    }

    /// Memoized [`ServingSim::step_time`] — the per-iteration hook the
    /// continuous-batching scheduler and the `spec_serve` replica wrapper
    /// drive; batch compositions recur constantly there, so the cache
    /// turns repeated timeline evaluations into lookups.
    pub fn step_time_cached(
        &self,
        cache: &mut StepCache,
        system: SystemKind,
        r: usize,
        s: usize,
        prefill_len: usize,
    ) -> f64 {
        let l_cpu = self.policy_l_cpu(system.default_policy(), r, s);
        self.step_breakdown_cached(cache, system, r, s, prefill_len, l_cpu)
            .total
    }

    /// The offload depth `policy` dictates at batch `r`, length `s` when
    /// the decision is taken step-locally (the [`ServingSim::step_time`]
    /// contract; [`ServingSim::throughput_with_policy`] instead decides
    /// full offload once from the workload's final length).
    fn policy_l_cpu(&self, policy: MemoryPolicy, r: usize, s: usize) -> usize {
        let cfg = self.cm.config();
        match policy {
            MemoryPolicy::AllGpuOrOom => 0,
            MemoryPolicy::AllGpuOrFullOffload => {
                if self.mm.fits_all(r, s) {
                    0
                } else {
                    cfg.layers
                }
            }
            MemoryPolicy::Adaptive => {
                let th = Thresholds::compute(&self.mm, r, self.budget);
                th.required_offload(s).unwrap_or(cfg.layers)
            }
        }
    }

    /// The fully-determined step timeline at an explicit offload depth.
    fn step_breakdown(
        &self,
        system: SystemKind,
        r: usize,
        s: usize,
        prefill_len: usize,
        l_cpu: usize,
    ) -> StepBreakdown {
        let generated = s.saturating_sub(prefill_len);
        let (kind, s_att, candidates, candidate_bytes) =
            self.system_step_shape(system, s, prefill_len, generated);
        let params = StepParams {
            r,
            s_total: s,
            s_attended: s_att,
            candidates,
            candidate_bytes,
            l_cpu,
            budget: self.budget,
            reuse: self.elastic_reuse,
        };
        step_timeline(kind, &self.cm, &system.profile(), &self.dev, &params).1
    }

    /// Cache-through variant of [`ServingSim::step_breakdown`].
    fn step_breakdown_cached(
        &self,
        cache: &mut StepCache,
        system: SystemKind,
        r: usize,
        s: usize,
        prefill_len: usize,
        l_cpu: usize,
    ) -> StepBreakdown {
        let key = (system, r, s, prefill_len, l_cpu);
        if let Some(bd) = cache.map.get(&key) {
            return *bd;
        }
        let bd = self.step_breakdown(system, r, s, prefill_len, l_cpu);
        cache.map.insert(key, bd);
        bd
    }

    /// The per-system dataflow shape at a point in the generation.
    fn system_step_shape(
        &self,
        system: SystemKind,
        s: usize,
        prefill_len: usize,
        generated: usize,
    ) -> (DataflowKind, usize, usize, f64) {
        let cfg = self.cm.config();
        match system {
            SystemKind::FullEager | SystemKind::FullFlash | SystemKind::FullFlashInfer => {
                (DataflowKind::PrefetchFullKv, s, 0, 0.0)
            }
            SystemKind::Quest => (
                DataflowKind::FetchSparseKv,
                (self.budget + generated).min(s),
                prefill_len / 16,
                4.0 * cfg.head_dim as f64,
            ),
            SystemKind::ClusterKv => (
                DataflowKind::FetchSparseKv,
                (self.budget + generated).min(s),
                prefill_len / 16,
                2.0 * cfg.head_dim as f64,
            ),
            SystemKind::ShadowKv => (
                DataflowKind::PrefetchSparseV,
                (self.budget + generated).min(s),
                prefill_len,
                cfg.head_dim as f64 / 2.0 + 4.0,
            ),
            SystemKind::SpeContext => (DataflowKind::SpeContext, self.budget.min(s), 0, 0.0),
        }
    }

    /// Estimates throughput for `system` with its default memory policy.
    pub fn throughput(&self, system: SystemKind, w: &Workload) -> ThroughputReport {
        self.throughput_with_policy(system, w, system.default_policy())
    }

    /// Estimates throughput under an explicit memory policy (used by the
    /// ablation of Fig. 11 and the Challenge-3 experiment of Fig. 2(a)).
    pub fn throughput_with_policy(
        &self,
        system: SystemKind,
        w: &Workload,
        policy: MemoryPolicy,
    ) -> ThroughputReport {
        self.throughput_with_policy_cached(system, w, policy, &mut StepCache::new())
    }

    /// [`ServingSim::throughput_with_policy`] with a caller-owned step
    /// cache, so sweeps over related workloads (batch search, repeated
    /// shapes) share step-timeline evaluations.
    pub fn throughput_with_policy_cached(
        &self,
        system: SystemKind,
        w: &Workload,
        policy: MemoryPolicy,
        cache: &mut StepCache,
    ) -> ThroughputReport {
        let cfg = self.cm.config();
        let profile = system.profile();
        let s_end = w.input_len + w.output_len;
        let r = w.requests;

        // --- OOM checks -------------------------------------------------
        match policy {
            MemoryPolicy::AllGpuOrOom => {
                let mut needed = self.mm.m_all(r, s_end);
                if system == SystemKind::FullEager {
                    needed += self.mm.eager_prefill_scores_bytes(r, w.input_len);
                }
                if needed > self.mm.gpu_mem as f64 {
                    return ThroughputReport::oom(r);
                }
            }
            MemoryPolicy::AllGpuOrFullOffload | MemoryPolicy::Adaptive => {
                // Even full offload needs the model weights resident.
                if self.mm.static_bytes()
                    + 4.0 * (self.budget * r) as f64 * (self.mm.kv_heads * self.mm.head_dim) as f64
                    > self.mm.gpu_mem as f64
                {
                    return ThroughputReport::oom(r);
                }
            }
        }

        // --- prefill + preprocessing ------------------------------------
        let mut prefill_s = profile.op_time(self.cm.prefill(r, w.input_len), &self.dev);
        let preprocess = match system {
            SystemKind::Quest => PreprocessKind::Paging,
            SystemKind::ClusterKv => PreprocessKind::Clustering {
                iters: 15,
                tokens_per_cluster: 16,
            },
            SystemKind::ShadowKv => PreprocessKind::Quantization,
            _ => PreprocessKind::None,
        };
        prefill_s += profile.op_time(self.cm.preprocess(r, w.input_len, preprocess), &self.dev);
        if system == SystemKind::SpeContext {
            prefill_s += profile.op_time(self.cm.retrieval_head_prefill(r, w.input_len), &self.dev);
        }

        // --- decode integration ------------------------------------------
        let thresholds = Thresholds::compute(&self.mm, r, self.budget);
        let full_offload_decided =
            policy == MemoryPolicy::AllGpuOrFullOffload && !self.mm.fits_all(r, s_end);

        let l_cpu_at = |s: usize| -> Option<usize> {
            match policy {
                MemoryPolicy::AllGpuOrOom => Some(0),
                MemoryPolicy::AllGpuOrFullOffload => {
                    Some(if full_offload_decided { cfg.layers } else { 0 })
                }
                MemoryPolicy::Adaptive => thresholds.required_offload(s).or(Some(cfg.layers)),
            }
        };

        let step_at = |s: usize, cache: &mut StepCache| -> StepBreakdown {
            let l_cpu = l_cpu_at(s).unwrap_or(cfg.layers);
            self.step_breakdown_cached(cache, system, r, s, w.input_len, l_cpu)
        };

        // Sample points: stride plus adaptive-threshold crossings.
        let mut samples: Vec<usize> = Vec::new();
        let stride = (w.output_len / 48).max(1);
        let mut s = w.input_len;
        while s < s_end {
            samples.push(s);
            s += stride;
        }
        samples.push(s_end);
        if policy == MemoryPolicy::Adaptive {
            for &t in &thresholds.values {
                let t = t.max(0) as usize;
                if t > w.input_len && t < s_end {
                    samples.push(t);
                    samples.push(t + 1);
                }
            }
        }
        samples.sort_unstable();
        samples.dedup();

        // Trapezoidal integration of step time over the token axis.
        let mut decode_s = 0.0;
        let mut transfer_bytes = 0.0;
        let mut prev: Option<(usize, StepBreakdown)> = None;
        for &sp in &samples {
            let bd = step_at(sp, cache);
            if let Some((s0, bd0)) = prev {
                let n = (sp - s0) as f64;
                decode_s += 0.5 * (bd0.total + bd.total) * n;
                transfer_bytes += 0.5 * (bd0.bytes_transferred + bd.bytes_transferred) * n;
            }
            prev = Some((sp, bd));
        }
        let mid_step = step_at(w.input_len + w.output_len / 2, cache);

        let total = prefill_s + decode_s;
        ThroughputReport {
            tokens_per_s: (r * w.output_len) as f64 / total,
            oom: false,
            prefill_s,
            decode_s,
            transfer_bytes,
            mid_step,
            requests: r,
        }
    }

    /// Finds the batch size maximizing throughput among `candidates`
    /// (single-request systems only consider 1). The sweep shares one
    /// [`StepCache`] across candidates, so duplicate candidates and the
    /// repeated step evaluations inside each integration (midpoint,
    /// threshold crossings) are memoized instead of recomputing the full
    /// cost model per candidate.
    pub fn best_batch(
        &self,
        system: SystemKind,
        input_len: usize,
        output_len: usize,
        candidates: &[usize],
    ) -> ThroughputReport {
        self.best_batch_cached(
            system,
            input_len,
            output_len,
            candidates,
            &mut StepCache::new(),
        )
    }

    /// [`ServingSim::best_batch`] with a caller-owned cache, so repeated
    /// sweeps (e.g. the same system across arrival rates in a cluster
    /// bench) keep their step evaluations across calls.
    pub fn best_batch_cached(
        &self,
        system: SystemKind,
        input_len: usize,
        output_len: usize,
        candidates: &[usize],
        cache: &mut StepCache,
    ) -> ThroughputReport {
        let cap = system.max_batch();
        let mut cands: Vec<usize> = candidates.iter().copied().filter(|&r| r <= cap).collect();
        if cands.is_empty() {
            cands.push(cap.min(candidates.iter().copied().min().unwrap_or(1)));
        }
        cands.sort_unstable();
        cands.dedup();
        cands
            .iter()
            .map(|&r| {
                self.throughput_with_policy_cached(
                    system,
                    &Workload::new(input_len, output_len, r),
                    system.default_policy(),
                    cache,
                )
            })
            .max_by(|a, b| {
                a.tokens_per_s
                    .partial_cmp(&b.tokens_per_s)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("at least one candidate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud_sim() -> ServingSim {
        ServingSim::new(
            ModelConfig::deepseek_distill_llama_8b(),
            DeviceSpec::a100_80g(),
            2048,
        )
    }

    #[test]
    fn engine_profiles_rank_on_full_attention() {
        let sim = cloud_sim();
        let w = Workload::new(2048, 16 * 1024, 4);
        let eager = sim.throughput(SystemKind::FullEager, &w);
        let flash = sim.throughput(SystemKind::FullFlash, &w);
        let fi = sim.throughput(SystemKind::FullFlashInfer, &w);
        assert!(!eager.oom && !flash.oom && !fi.oom);
        assert!(eager.tokens_per_s < flash.tokens_per_s);
        assert!(flash.tokens_per_s < fi.tokens_per_s);
    }

    #[test]
    fn eager_ooms_at_16k_batch4_like_table3() {
        let sim = cloud_sim();
        let w = Workload::new(16 * 1024, 2048, 4);
        assert!(sim.throughput(SystemKind::FullEager, &w).oom);
    }

    #[test]
    fn specontext_beats_flashinfer_in_reasoning_scenario() {
        // Table 3 [2k,16k]/[2k,32k]: long generation favors SpeContext.
        let sim = cloud_sim();
        let w = Workload::new(2048, 32 * 1024, 8);
        let fi = sim.throughput(SystemKind::FullFlashInfer, &w);
        let ours = sim.throughput(SystemKind::SpeContext, &w);
        assert!(
            ours.tokens_per_s > fi.tokens_per_s,
            "ours {} vs flashinfer {}",
            ours.tokens_per_s,
            fi.tokens_per_s
        );
    }

    #[test]
    fn specontext_scales_to_larger_batches() {
        // The sparse budget frees memory: batch 32 fits for ours where
        // full attention cannot hold 32 requests of 34K tokens.
        let sim = cloud_sim();
        let w = Workload::new(2048, 32 * 1024, 32);
        let ours = sim.throughput(SystemKind::SpeContext, &w);
        assert!(!ours.oom);
        let fi = sim.throughput(SystemKind::FullFlashInfer, &w);
        assert!(fi.oom, "full attention at batch 32 x 34K must OOM");
    }

    #[test]
    fn best_batch_single_request_systems_stay_at_one() {
        let sim = cloud_sim();
        let rep = sim.best_batch(SystemKind::Quest, 2048, 4096, &[1, 4, 8]);
        assert_eq!(rep.requests, 1);
    }

    #[test]
    fn offload_cliff_matches_challenge3() {
        // Fig. 2(a): a predetermined policy collapses when the workload
        // no longer fits (120K -> 128K at batch 4), while adaptive
        // placement degrades gracefully.
        // With the 30% runtime buffer, 4 requests fit entirely on the
        // 80GB GPU up to ~107K tokens (Alg. 1's S_T_0); 96K fits, 112K
        // spills. The paper's 120K/128K anecdote ignores the runtime
        // buffer, shifting the boundary but not the cliff shape.
        let sim = cloud_sim();
        let fits = Workload::new(96 * 1024, 2048, 4);
        let spills = Workload::new(112 * 1024, 2048, 4);
        let pre_fits = sim.throughput_with_policy(
            SystemKind::FullFlashInfer,
            &fits,
            MemoryPolicy::AllGpuOrFullOffload,
        );
        let pre_spills = sim.throughput_with_policy(
            SystemKind::FullFlashInfer,
            &spills,
            MemoryPolicy::AllGpuOrFullOffload,
        );
        assert!(
            pre_spills.tokens_per_s < 0.35 * pre_fits.tokens_per_s,
            "cliff expected: {} -> {}",
            pre_fits.tokens_per_s,
            pre_spills.tokens_per_s
        );
        let ada_spills =
            sim.throughput_with_policy(SystemKind::SpeContext, &spills, MemoryPolicy::Adaptive);
        assert!(ada_spills.tokens_per_s > pre_spills.tokens_per_s);
    }

    #[test]
    fn edge_device_supports_specontext_generation() {
        let sim = ServingSim::new(
            ModelConfig::reasoning_llama3_2_1b(),
            DeviceSpec::rtx4060_laptop_4g(),
            2048,
        );
        let w = Workload::new(2048, 16 * 1024, 1);
        let ours = sim.throughput(SystemKind::SpeContext, &w);
        assert!(!ours.oom);
        assert!(ours.tokens_per_s > 1.0);
        // Eager with full offload is far slower (Fig. 10(b)).
        let eager = sim.throughput_with_policy(
            SystemKind::FullEager,
            &w,
            MemoryPolicy::AllGpuOrFullOffload,
        );
        assert!(ours.tokens_per_s > 2.0 * eager.tokens_per_s);
    }

    #[test]
    fn transfer_bytes_track_elastic_reuse() {
        let mut sim = cloud_sim();
        let w = Workload::new(100 * 1024, 8 * 1024, 16); // forces offload
        sim.elastic_reuse = 0.0;
        let full = sim.throughput(SystemKind::SpeContext, &w);
        sim.elastic_reuse = 0.9;
        let elastic = sim.throughput(SystemKind::SpeContext, &w);
        assert!(elastic.transfer_bytes < 0.2 * full.transfer_bytes);
        assert!(elastic.tokens_per_s >= full.tokens_per_s);
    }
}
