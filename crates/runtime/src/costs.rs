//! Kernel-cost builders: from a model's **real** geometry to the FLOPs and
//! bytes of each decode/prefill operation.
//!
//! All costs are per decode step for a batch of `r` requests unless noted.
//! Weights are FP16 (2 bytes) and are read once per step regardless of
//! batch size; per-request state (KV, activations) scales with `r`.

use spec_hwsim::KernelCost;
use spec_model::ModelConfig;

/// Cost builder bound to one model config.
#[derive(Debug, Clone)]
pub struct CostModel {
    cfg: ModelConfig,
}

impl CostModel {
    /// Binds the builder to a config.
    pub fn new(cfg: ModelConfig) -> Self {
        Self { cfg }
    }

    /// The bound config.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn qd(&self) -> f64 {
        (self.cfg.q_heads * self.cfg.head_dim) as f64
    }

    fn kvd(&self) -> f64 {
        (self.cfg.kv_heads * self.cfg.head_dim) as f64
    }

    /// QKV + output projections of one layer (per step, batch `r`).
    pub fn layer_projections(&self, r: usize) -> KernelCost {
        let h = self.cfg.hidden as f64;
        let weights = h * self.qd() + 2.0 * h * self.kvd() + self.qd() * h;
        KernelCost {
            flops: 2.0 * r as f64 * weights,
            bytes: 2.0 * weights + 4.0 * r as f64 * h,
            launches: 4.0,
        }
    }

    /// Decode attention of one layer over `s_att` attended positions per
    /// request. `byte_multiplier` is the engine's score-materialization
    /// factor (eager = 2, fused = 1).
    pub fn layer_attention(&self, r: usize, s_att: usize, byte_multiplier: f64) -> KernelCost {
        let r = r as f64;
        let s = s_att as f64;
        let flops = 2.0 * 2.0 * r * self.qd() * s; // QK^T and PV
        let kv_bytes = 2.0 * 2.0 * self.kvd() * s; // K and V, fp16
        KernelCost {
            flops,
            bytes: r * kv_bytes * byte_multiplier,
            launches: 2.0,
        }
    }

    /// Gated FFN of one layer (per step, batch `r`).
    pub fn layer_ffn(&self, r: usize) -> KernelCost {
        let h = self.cfg.hidden as f64;
        let f = self.cfg.ffn_dim as f64;
        let weights = 3.0 * h * f;
        KernelCost {
            flops: 2.0 * r as f64 * weights,
            bytes: 2.0 * weights,
            launches: 3.0,
        }
    }

    /// Final norm + LM head (per step, batch `r`).
    pub fn lm_head(&self, r: usize) -> KernelCost {
        let h = self.cfg.hidden as f64;
        let v = self.cfg.vocab as f64;
        KernelCost {
            flops: 2.0 * r as f64 * h * v,
            bytes: 2.0 * h * v,
            launches: 2.0,
        }
    }

    /// Layer-wise retrieval scoring over `candidates` representatives
    /// (pages, centroids or quantized keys) per KV head, plus top-k.
    /// `bytes_per_candidate` covers the metadata read (e.g. two page
    /// vectors = `2·2·D`, an int4 key = `D/2`).
    pub fn retrieval_op(
        &self,
        r: usize,
        candidates: usize,
        bytes_per_candidate: f64,
    ) -> KernelCost {
        let r = r as f64;
        let c = candidates as f64;
        let heads = self.cfg.kv_heads as f64;
        KernelCost {
            flops: 2.0 * r * self.qd() * c + r * heads * c * 16.0, // score + top-k
            bytes: r * heads * c * bytes_per_candidate,
            launches: 3.0, // score, top-k, gather-index
        }
    }

    /// The SpeContext retrieval head's per-step cost: QK projection of the
    /// new token plus head-level scoring over `s` cached keys
    /// (one layer only — this is the <~5% overhead of Section 4).
    pub fn retrieval_head_step(&self, r: usize, s: usize) -> KernelCost {
        let h = self.cfg.hidden as f64;
        let r = r as f64;
        let proj = 2.0 * r * (h * self.qd() + h * self.kvd());
        let score = 2.0 * r * self.qd() * s as f64;
        KernelCost {
            flops: proj + score,
            bytes: 2.0 * (h * self.qd() + h * self.kvd()) + r * 2.0 * self.qd() * s as f64,
            launches: 4.0,
        }
    }

    /// The retrieval head's prefill pass: projecting every prompt token
    /// through QK and building its key cache (one layer).
    pub fn retrieval_head_prefill(&self, r: usize, s: usize) -> KernelCost {
        let h = self.cfg.hidden as f64;
        let r = r as f64;
        let s_f = s as f64;
        KernelCost {
            flops: 2.0 * r * s_f * (h * self.qd() + h * self.kvd()),
            bytes: 2.0 * (h * self.qd() + h * self.kvd()) + r * s_f * 2.0 * self.qd(),
            launches: 2.0,
        }
    }

    /// ShadowKV's key reconstruction for `b` selected tokens per head.
    pub fn k_reconstruct(&self, r: usize, b: usize) -> KernelCost {
        let r = r as f64;
        KernelCost {
            flops: 2.0 * r * self.kvd() * b as f64,
            bytes: r * 2.0 * self.kvd() * b as f64,
            launches: 1.0,
        }
    }

    /// Whole prefill compute (all layers) for `s` prompt tokens, batch `r`.
    /// Attention is quadratic; projections/FFN linear in `s`.
    pub fn prefill(&self, r: usize, s: usize) -> KernelCost {
        let r = r as f64;
        let s_f = s as f64;
        let h = self.cfg.hidden as f64;
        let l = self.cfg.layers as f64;
        let proj = 2.0 * r * s_f * (h * self.qd() + 2.0 * h * self.kvd() + self.qd() * h);
        let ffn = 2.0 * r * s_f * 3.0 * h * self.cfg.ffn_dim as f64;
        let attn = 2.0 * 2.0 * r * self.qd() * s_f * s_f / 2.0; // causal half
        let weight_bytes = 2.0
            * (h * self.qd()
                + 2.0 * h * self.kvd()
                + self.qd() * h
                + 3.0 * h * self.cfg.ffn_dim as f64);
        KernelCost {
            flops: l * (proj + ffn + attn),
            bytes: l * (weight_bytes + r * 4.0 * self.kvd() * s_f),
            launches: l * 9.0,
        }
    }

    /// KV bytes of `tokens` cache entries in one layer (per request):
    /// K+V at FP16.
    pub fn kv_bytes_layer(&self, tokens: usize) -> f64 {
        4.0 * self.kvd() * tokens as f64
    }

    /// Preprocessing cost after prefill, per the baseline's algorithm.
    pub fn preprocess(&self, r: usize, s: usize, kind: PreprocessKind) -> KernelCost {
        let r = r as f64;
        let s_f = s as f64;
        let l = self.cfg.layers as f64;
        let heads = self.cfg.kv_heads as f64;
        let d = self.cfg.head_dim as f64;
        match kind {
            PreprocessKind::None => KernelCost::default(),
            // Min/max scan over all keys.
            PreprocessKind::Paging => KernelCost {
                flops: r * l * heads * s_f * d * 2.0,
                bytes: r * l * heads * s_f * d * 2.0,
                launches: l,
            },
            // Lloyd iterations: iters × k × n × d multiply-adds.
            PreprocessKind::Clustering {
                iters,
                tokens_per_cluster,
            } => {
                let k = (s_f / tokens_per_cluster as f64).max(1.0);
                KernelCost {
                    flops: r * l * heads * iters as f64 * k * s_f * d * 2.0,
                    bytes: r * l * heads * s_f * d * 2.0 * iters as f64,
                    launches: l * iters as f64,
                }
            }
            // Quantization pass over all keys.
            PreprocessKind::Quantization => KernelCost {
                flops: r * l * heads * s_f * d * 3.0,
                bytes: r * l * heads * s_f * d * 2.5,
                launches: l,
            },
        }
    }
}

/// Which preprocessing a baseline runs after prefill.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PreprocessKind {
    /// No preprocessing (full attention, SpeContext).
    None,
    /// Quest's page min/max vectors.
    Paging,
    /// ClusterKV's k-means.
    Clustering {
        /// Lloyd iterations.
        iters: usize,
        /// Average cluster size.
        tokens_per_cluster: usize,
    },
    /// ShadowKV's key quantization.
    Quantization,
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_hwsim::{DeviceSpec, EngineProfile};

    fn cm() -> CostModel {
        CostModel::new(ModelConfig::llama3_1_8b())
    }

    #[test]
    fn attention_cost_scales_linearly_with_context() {
        let c = cm();
        let a = c.layer_attention(1, 1000, 1.0);
        let b = c.layer_attention(1, 2000, 1.0);
        assert!((b.flops / a.flops - 2.0).abs() < 1e-6);
        assert!((b.bytes / a.bytes - 2.0).abs() < 1e-6);
    }

    #[test]
    fn decode_latency_grows_materially_with_context() {
        // Paper Section 1 reports a ~2x step-latency gap between 16K and
        // 1K contexts on a 4090 (HF eager). A pure roofline model puts
        // the eager gap at ~1.5x (the anecdote includes framework
        // overhead we do not model); assert the direction and magnitude
        // band rather than the single measured point.
        let c = cm();
        let dev = DeviceSpec::rtx4060_laptop();
        let p = EngineProfile::eager();
        let step = |s: usize| -> f64 {
            let mut t = 0.0;
            for _ in 0..c.config().layers {
                t += p.op_time(c.layer_projections(1), &dev);
                t += p.op_time(c.layer_attention(1, s, p.attn_byte_multiplier), &dev);
                t += p.op_time(c.layer_ffn(1), &dev);
            }
            t + p.op_time(c.lm_head(1), &dev)
        };
        let ratio = step(16 * 1024) / step(1024);
        assert!((1.2..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn retrieval_head_is_small_fraction_of_step() {
        let c = cm();
        let dev = DeviceSpec::a100_80g();
        let p = EngineProfile::flashinfer();
        let head = p.op_time(c.retrieval_head_step(1, 32 * 1024), &dev);
        let mut full_step = 0.0;
        for _ in 0..c.config().layers {
            full_step += p.op_time(c.layer_projections(1), &dev);
            full_step += p.op_time(c.layer_attention(1, 32 * 1024, 1.0), &dev);
            full_step += p.op_time(c.layer_ffn(1), &dev);
        }
        assert!(head < 0.25 * full_step, "head {head} vs step {full_step}");
    }

    #[test]
    fn clustering_preprocess_dwarfs_paging() {
        let c = cm();
        let paging = c.preprocess(1, 32 * 1024, PreprocessKind::Paging);
        let cluster = c.preprocess(
            1,
            32 * 1024,
            PreprocessKind::Clustering {
                iters: 15,
                tokens_per_cluster: 16,
            },
        );
        assert!(cluster.flops > 100.0 * paging.flops);
    }

    #[test]
    fn prefill_quadratic_term_dominates_long_contexts() {
        let c = cm();
        let short = c.prefill(1, 2048);
        let long = c.prefill(1, 32 * 1024);
        // 16x longer context must cost much more than 16x (quadratic part).
        assert!(long.flops > 18.0 * short.flops);
    }

    #[test]
    fn kv_bytes_match_config_formula() {
        let c = cm();
        let cfg = c.config();
        assert_eq!(
            c.kv_bytes_layer(1000) as u64,
            cfg.kv_bytes_per_token_layer() * 1000
        );
    }
}
