//! The theoretical memory model of Section 6 (Table 1, Eq. 6–8).
//!
//! Symbols follow the paper: `M_O` (LLM bytes), `M_D` (DLM/retrieval-head
//! bytes), `L` layers, `H` KV heads, `D` head dim, `S` sequence length,
//! `B` retrieval budget, `α` the GQA group count, `R` requests. Runtime
//! buffers are 30% of model size; KV entries are FP16, so the K+V pair of
//! one token in one head costs `4·D` bytes (the paper's coefficient 4).
//!
//! One deliberate correction: Algorithm 1 as printed omits the
//! coefficient 4 on the `i × B` buffer term in the numerator; physically
//! the per-offloaded-layer GPU staging buffer holds FP16 K and V for `B`
//! tokens, i.e. `4·B·R·H·D` bytes. We apply the coefficient (noted in
//! DESIGN.md); at paper scales the difference shifts thresholds by <2%.

use serde::{Deserialize, Serialize};
use spec_hwsim::DeviceSpec;
use spec_model::ModelConfig;

/// The memory model for one (model, device, DLM) triple.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryModel {
    /// LLM parameter bytes (`M_O`).
    pub model_bytes: u64,
    /// Retrieval head bytes (`M_D`).
    pub dlm_bytes: u64,
    /// Layers (`L`).
    pub layers: usize,
    /// KV heads (`H`).
    pub kv_heads: usize,
    /// Head dimension (`D`).
    pub head_dim: usize,
    /// GQA group count (`α`).
    pub alpha: usize,
    /// GPU memory capacity.
    pub gpu_mem: u64,
}

impl MemoryModel {
    /// Builds the model from a config and a device.
    pub fn new(cfg: &ModelConfig, dev: &DeviceSpec) -> Self {
        Self {
            model_bytes: cfg.param_bytes,
            dlm_bytes: cfg.retrieval_head_params() * 2,
            layers: cfg.layers,
            kv_heads: cfg.kv_heads,
            head_dim: cfg.head_dim,
            alpha: cfg.group_size(),
            gpu_mem: dev.gpu_mem_bytes,
        }
    }

    /// `1.3 (M_O + M_D)`: weights plus the 30% runtime buffer.
    pub fn static_bytes(&self) -> f64 {
        1.3 * (self.model_bytes + self.dlm_bytes) as f64
    }

    /// Bytes of one token's K+V in one layer across heads: `4·H·D`.
    pub fn kv_token_layer_bytes(&self) -> f64 {
        4.0 * (self.kv_heads * self.head_dim) as f64
    }

    /// Bytes one resident token costs across the whole model — the Eq. 6
    /// per-token factor `4(L+1+α)·H·D`: all layers' K+V plus the
    /// retrieval-head and grouped-query terms. This is the factor the
    /// serving replicas' KV-pressure accounting must share with the
    /// admission arithmetic, so both read it from here.
    pub fn kv_token_total_bytes(&self) -> f64 {
        self.kv_token_layer_bytes() * (self.layers + 1 + self.alpha) as f64
    }

    /// Eq. 6: total bytes with all KV on GPU —
    /// `1.3(M_O+M_D) + 4R(L+1+α)·S·H·D`.
    pub fn m_all(&self, requests: usize, seq_len: usize) -> f64 {
        self.static_bytes() + self.kv_token_total_bytes() * requests as f64 * seq_len as f64
    }

    /// Eq. 7: total bytes with the last `l_cpu` layers offloaded and a
    /// `B`-token staging buffer per offloaded layer.
    pub fn m_part(&self, requests: usize, seq_len: usize, l_cpu: usize, budget: usize) -> f64 {
        let l_gpu = self.layers - l_cpu.min(self.layers);
        let r = requests as f64;
        self.static_bytes()
            + self.kv_token_layer_bytes()
                * r
                * ((l_gpu + 1 + self.alpha) as f64 * seq_len as f64 + l_cpu as f64 * budget as f64)
    }

    /// Whether everything fits on the GPU at this batch and length.
    pub fn fits_all(&self, requests: usize, seq_len: usize) -> bool {
        self.m_all(requests, seq_len) <= self.gpu_mem as f64
    }

    /// Eq. 8: the largest `L_GPU` (fewest offloaded layers) satisfying
    /// `M_part ≤ Mem_GPU`; `None` if even full offload does not fit.
    pub fn min_offloaded_layers(
        &self,
        requests: usize,
        seq_len: usize,
        budget: usize,
    ) -> Option<usize> {
        (0..=self.layers)
            .find(|&l_cpu| self.m_part(requests, seq_len, l_cpu, budget) <= self.gpu_mem as f64)
    }

    /// Transient bytes of eager prefill's materialized attention scores
    /// (`R · q_heads · S² · 2` for one layer), the paper's Table-3 OOM
    /// cause for the eager baseline. `q_heads = α·H`.
    pub fn eager_prefill_scores_bytes(&self, requests: usize, seq_len: usize) -> f64 {
        let q_heads = (self.alpha * self.kv_heads) as f64;
        2.0 * requests as f64 * q_heads * (seq_len as f64) * (seq_len as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MemoryModel {
        MemoryModel::new(&ModelConfig::llama3_1_8b(), &DeviceSpec::a100_80g())
    }

    #[test]
    fn static_bytes_are_about_21_gb() {
        let m = model();
        let gb = m.static_bytes() / 1e9;
        assert!((19.0..24.0).contains(&gb), "{gb} GB");
    }

    #[test]
    fn m_all_grows_linearly_in_s_and_r() {
        let m = model();
        let base = m.m_all(1, 1000);
        let double_s = m.m_all(1, 2000);
        let double_r = m.m_all(2, 1000);
        let kv1 = base - m.static_bytes();
        assert!(((double_s - m.static_bytes()) / kv1 - 2.0).abs() < 1e-6);
        assert!(((double_r - m.static_bytes()) / kv1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn llama_4_requests_16k_overflows_24gb_but_fits_80gb() {
        // Fig. 1's RTX-4090 framing: 4 x 16K on a 24GB card does not fit.
        let cfg = ModelConfig::llama3_1_8b();
        let small = MemoryModel {
            gpu_mem: 24 * (1 << 30),
            ..MemoryModel::new(&cfg, &DeviceSpec::a100_80g())
        };
        assert!(!small.fits_all(4, 16 * 1024));
        let big = model();
        assert!(big.fits_all(4, 16 * 1024));
    }

    #[test]
    fn m_part_interpolates_between_all_gpu_and_all_cpu() {
        let m = model();
        let (r, s, b) = (4, 32 * 1024, 2048);
        let all = m.m_part(r, s, 0, b);
        let none = m.m_part(r, s, m.layers, b);
        assert!((all - m.m_all(r, s)).abs() < 1e-3);
        assert!(none < all);
        for l in 1..m.layers {
            let v = m.m_part(r, s, l, b);
            assert!(v < all && v > none);
        }
    }

    #[test]
    fn min_offloaded_layers_monotone_in_seq_len() {
        let m = model();
        let mut prev = 0;
        for s in [4096, 16 * 1024, 64 * 1024, 120 * 1024] {
            let l = m.min_offloaded_layers(16, s, 2048).expect("should fit");
            assert!(l >= prev, "offload count must grow with S");
            prev = l;
        }
    }

    #[test]
    fn eager_prefill_scores_cause_oom_at_16k_batch4() {
        // Paper Table 3: eager OOMs at [16k,2k] x4 on 80GB.
        let m = model();
        let total = m.m_all(4, 16 * 1024) + m.eager_prefill_scores_bytes(4, 16 * 1024);
        assert!(total > m.gpu_mem as f64, "{} GB", total / 1e9);
    }
}
