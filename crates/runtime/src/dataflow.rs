//! The five per-step dataflow paradigms of paper Fig. 7, laid out on the
//! two-stream event simulator.
//!
//! Each builder produces the timeline of **one decode step** for a batch:
//! which ops run on the compute stream, which transfers run on the copy
//! stream, and which dependencies serialize them. The makespan of the
//! timeline is the step latency; the per-category busy times feed the
//! Fig. 2(a) overhead analysis and the Fig. 7 visualization.

use crate::costs::CostModel;
use serde::{Deserialize, Serialize};
use spec_hwsim::event::{EventSim, COMPUTE, COPY};
use spec_hwsim::{DeviceSpec, EngineProfile, KernelCost};

/// Which dataflow the step uses (Fig. 7 (a)–(e)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataflowKind {
    /// Fig. 7(a): full KV prefetched layer by layer (offloaded full attn).
    PrefetchFullKv,
    /// Fig. 7(b): per-layer retrieve → fetch → attend (Quest/ClusterKV
    /// with offloading; with `l_cpu == 0` the fetch is a no-op and this
    /// is the plain layer-wise retrieval paradigm).
    FetchSparseKv,
    /// Fig. 7(c): speculative per-layer prefetch (InfiniGen): layer
    /// `l+1`'s retrieval issued during layer `l`, its fetch overlapped.
    PrefetchSparseKv,
    /// Fig. 7(d): ShadowKV — retrieve on quantized keys, prefetch sparse
    /// V, reconstruct K on GPU.
    PrefetchSparseV,
    /// Fig. 7(e): SpeContext — selection known before the step; elastic
    /// transfers fully overlapped.
    SpeContext,
}

impl std::fmt::Display for DataflowKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataflowKind::PrefetchFullKv => "Prefetch full KV (a)",
            DataflowKind::FetchSparseKv => "Fetch sparse KV (b)",
            DataflowKind::PrefetchSparseKv => "Prefetch sparse KV (c)",
            DataflowKind::PrefetchSparseV => "Prefetch sparse V (d)",
            DataflowKind::SpeContext => "SpeContext (e)",
        };
        f.write_str(s)
    }
}

/// Inputs for one step's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepParams {
    /// Batch size (requests).
    pub r: usize,
    /// Total cached positions per request (`S`).
    pub s_total: usize,
    /// Positions actually attended per request per layer.
    pub s_attended: usize,
    /// Retrieval candidate count per KV head (pages/centroids/keys).
    pub candidates: usize,
    /// Bytes of metadata per retrieval candidate.
    pub candidate_bytes: f64,
    /// Number of layers whose KV lives on the CPU.
    pub l_cpu: usize,
    /// Retrieval budget `B` (entries resident per offloaded layer).
    pub budget: usize,
    /// Elastic-loading reuse fraction (0 = refetch everything,
    /// 0.85 ≈ paper's measured adjacent-step overlap).
    pub reuse: f32,
}

/// Per-category busy time of one step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StepBreakdown {
    /// Step latency (timeline makespan), seconds.
    pub total: f64,
    /// Retrieval scoring/top-k time (compute stream).
    pub retrieval: f64,
    /// CPU↔GPU transfer busy time (copy stream).
    pub transfer: f64,
    /// Attention time.
    pub attention: f64,
    /// Projections + FFN + LM head time.
    pub other_compute: f64,
    /// Bytes moved over PCIe this step.
    pub bytes_transferred: f64,
}

impl StepBreakdown {
    /// Fraction of the step spent on retrieval + (unoverlapped) loading,
    /// the quantity behind the paper's "up to 60% overhead" (Fig. 2(a)).
    pub fn retrieval_and_load_fraction(&self) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        let compute = self.attention + self.other_compute;
        ((self.total - compute) / self.total).max(0.0)
    }
}

/// Builds one decode step's timeline.
pub fn step_timeline(
    kind: DataflowKind,
    cm: &CostModel,
    profile: &EngineProfile,
    dev: &DeviceSpec,
    p: &StepParams,
) -> (EventSim, StepBreakdown) {
    let layers = cm.config().layers;
    let mut sim = EventSim::new(2);
    let mut bd = StepBreakdown::default();

    let t = |c: KernelCost| profile.op_time(c, dev);
    let proj_t = t(cm.layer_projections(p.r));
    let attn_t = t(cm.layer_attention(p.r, p.s_attended, profile.attn_byte_multiplier));
    let ffn_t = t(cm.layer_ffn(p.r));
    let retrieve_t = t(cm.retrieval_op(p.r, p.candidates, p.candidate_bytes));

    // Per-layer transfer bytes for an offloaded layer.
    let fetch_bytes = |entries: usize, fraction: f64| -> f64 {
        p.r as f64 * cm.kv_bytes_layer(entries) * fraction
    };
    let is_cpu_layer = |l: usize| l >= layers - p.l_cpu;

    match kind {
        DataflowKind::PrefetchFullKv => {
            let mut prev_attn = None;
            for l in 0..layers {
                let bytes = if is_cpu_layer(l) {
                    fetch_bytes(p.s_total, 1.0)
                } else {
                    0.0
                };
                let fetch =
                    sim.submit(format!("L{l}.kv_prefetch"), COPY, dev.pcie_time(bytes), &[]);
                bd.transfer += dev.pcie_time(bytes);
                bd.bytes_transferred += bytes;
                let deps: Vec<_> = prev_attn.into_iter().chain([fetch]).collect();
                let pj = sim.submit(format!("L{l}.proj"), COMPUTE, proj_t, &deps);
                let at = sim.submit(format!("L{l}.attn"), COMPUTE, attn_t, &[pj]);
                let ff = sim.submit(format!("L{l}.ffn"), COMPUTE, ffn_t, &[at]);
                bd.attention += attn_t;
                bd.other_compute += proj_t + ffn_t;
                prev_attn = Some(ff);
            }
        }
        DataflowKind::FetchSparseKv => {
            let mut prev = None;
            for l in 0..layers {
                let deps: Vec<_> = prev.into_iter().collect();
                let pj = sim.submit(format!("L{l}.proj"), COMPUTE, proj_t, &deps);
                let re = sim.submit(format!("L{l}.retrieve"), COMPUTE, retrieve_t, &[pj]);
                bd.retrieval += retrieve_t;
                // Only the budgeted prefix selection crosses PCIe; newly
                // generated KV pairs are retained on the GPU (Challenge 2
                // costs attention growth, not transfer growth).
                let bytes = if is_cpu_layer(l) {
                    fetch_bytes(p.budget.min(p.s_attended), 1.0)
                } else {
                    0.0
                };
                let ft = sim.submit(
                    format!("L{l}.kv_fetch"),
                    COPY,
                    if bytes > 0.0 {
                        dev.pcie_time(bytes)
                    } else {
                        0.0
                    },
                    &[re],
                );
                if bytes > 0.0 {
                    bd.transfer += dev.pcie_time(bytes);
                    bd.bytes_transferred += bytes;
                }
                let at = sim.submit(format!("L{l}.attn"), COMPUTE, attn_t, &[ft]);
                let ff = sim.submit(format!("L{l}.ffn"), COMPUTE, ffn_t, &[at]);
                bd.attention += attn_t;
                bd.other_compute += proj_t + ffn_t;
                prev = Some(ff);
            }
        }
        DataflowKind::PrefetchSparseKv => {
            // Layer l's retrieval is issued speculatively during layer
            // l-1's compute, so its fetch overlaps one layer of compute.
            let mut prev: Option<spec_hwsim::event::OpHandle> = None;
            let mut pending_fetch: Option<spec_hwsim::event::OpHandle> = None;
            for l in 0..layers {
                let deps: Vec<_> = prev.into_iter().collect();
                let re = sim.submit(format!("L{l}.retrieve"), COMPUTE, retrieve_t, &deps);
                bd.retrieval += retrieve_t;
                let bytes = if is_cpu_layer(l) {
                    fetch_bytes(p.budget.min(p.s_attended), 1.0)
                } else {
                    0.0
                };
                let next_fetch = sim.submit(
                    format!("L{l}.kv_prefetch"),
                    COPY,
                    if bytes > 0.0 {
                        dev.pcie_time(bytes)
                    } else {
                        0.0
                    },
                    &[re],
                );
                if bytes > 0.0 {
                    bd.transfer += dev.pcie_time(bytes);
                    bd.bytes_transferred += bytes;
                }
                let pj = sim.submit(format!("L{l}.proj"), COMPUTE, proj_t, &[re]);
                // Attention waits on the fetch issued in the *previous*
                // layer's shadow when available (speculative hit).
                let fetch_dep = pending_fetch.unwrap_or(next_fetch);
                let at = sim.submit(format!("L{l}.attn"), COMPUTE, attn_t, &[pj, fetch_dep]);
                let ff = sim.submit(format!("L{l}.ffn"), COMPUTE, ffn_t, &[at]);
                bd.attention += attn_t;
                bd.other_compute += proj_t + ffn_t;
                prev = Some(ff);
                pending_fetch = Some(next_fetch);
            }
        }
        DataflowKind::PrefetchSparseV => {
            let recon_t = t(cm.k_reconstruct(p.r, p.s_attended));
            let mut prev = None;
            for l in 0..layers {
                let deps: Vec<_> = prev.into_iter().collect();
                let pj = sim.submit(format!("L{l}.proj"), COMPUTE, proj_t, &deps);
                let re = sim.submit(format!("L{l}.retrieve"), COMPUTE, retrieve_t, &[pj]);
                bd.retrieval += retrieve_t;
                // V of the budgeted prefix selection only (half the KV
                // bytes); generated KV stays GPU-resident.
                let bytes = if is_cpu_layer(l) {
                    fetch_bytes(p.budget.min(p.s_attended), 0.5)
                } else {
                    0.0
                };
                let vf = sim.submit(
                    format!("L{l}.v_fetch"),
                    COPY,
                    if bytes > 0.0 {
                        dev.pcie_time(bytes)
                    } else {
                        0.0
                    },
                    &[re],
                );
                if bytes > 0.0 {
                    bd.transfer += dev.pcie_time(bytes);
                    bd.bytes_transferred += bytes;
                }
                let kr = sim.submit(format!("L{l}.k_recons"), COMPUTE, recon_t, &[re]);
                bd.other_compute += recon_t;
                let at = sim.submit(format!("L{l}.attn"), COMPUTE, attn_t, &[vf, kr]);
                let ff = sim.submit(format!("L{l}.ffn"), COMPUTE, ffn_t, &[at]);
                bd.attention += attn_t;
                bd.other_compute += proj_t + ffn_t;
                prev = Some(ff);
            }
        }
        DataflowKind::SpeContext => {
            // Retrieval head runs once, before the LLM step.
            let head_t = t(cm.retrieval_head_step(p.r, p.s_total));
            let head = sim.submit("retrieval_head", COMPUTE, head_t, &[]);
            bd.retrieval += head_t;
            // All fetches are known immediately; elastic loading moves
            // only the non-reused fraction of the budget.
            let mut fetches = Vec::with_capacity(layers);
            for l in 0..layers {
                let bytes = if is_cpu_layer(l) {
                    fetch_bytes(p.budget.min(p.s_total), (1.0 - p.reuse as f64).max(0.0))
                } else {
                    0.0
                };
                let ft = sim.submit(
                    format!("L{l}.kv_prefetch"),
                    COPY,
                    if bytes > 0.0 {
                        dev.pcie_time(bytes)
                    } else {
                        0.0
                    },
                    &[head],
                );
                if bytes > 0.0 {
                    bd.transfer += dev.pcie_time(bytes);
                    bd.bytes_transferred += bytes;
                }
                fetches.push(ft);
            }
            let mut prev = Some(head);
            for (l, &fetch) in fetches.iter().enumerate() {
                let deps: Vec<_> = prev.into_iter().collect();
                let pj = sim.submit(format!("L{l}.proj"), COMPUTE, proj_t, &deps);
                let at = sim.submit(format!("L{l}.attn"), COMPUTE, attn_t, &[pj, fetch]);
                let ff = sim.submit(format!("L{l}.ffn"), COMPUTE, ffn_t, &[at]);
                bd.attention += attn_t;
                bd.other_compute += proj_t + ffn_t;
                prev = Some(ff);
            }
        }
    }
    let lm_t = t(cm.lm_head(p.r));
    let last: Vec<_> = Vec::new();
    sim.submit("lm_head", COMPUTE, lm_t, &last);
    bd.other_compute += lm_t;
    bd.total = sim.makespan();
    (sim, bd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::ModelConfig;

    fn setup() -> (CostModel, EngineProfile, DeviceSpec) {
        (
            CostModel::new(ModelConfig::llama3_1_8b()),
            EngineProfile::flashinfer(),
            DeviceSpec::a100_80g(),
        )
    }

    fn params(l_cpu: usize) -> StepParams {
        StepParams {
            r: 1,
            s_total: 32 * 1024,
            s_attended: 2048,
            candidates: 2048,
            candidate_bytes: 512.0,
            l_cpu,
            budget: 2048,
            reuse: 0.85,
        }
    }

    #[test]
    fn specontext_beats_all_offloaded_paradigms() {
        let (cm, prof, dev) = setup();
        let p = params(32);
        let mut totals = std::collections::HashMap::new();
        for kind in [
            DataflowKind::PrefetchFullKv,
            DataflowKind::FetchSparseKv,
            DataflowKind::PrefetchSparseKv,
            DataflowKind::PrefetchSparseV,
            DataflowKind::SpeContext,
        ] {
            let (_, bd) = step_timeline(kind, &cm, &prof, &dev, &p);
            totals.insert(kind, bd.total);
        }
        let ours = totals[&DataflowKind::SpeContext];
        for (kind, t) in &totals {
            if *kind != DataflowKind::SpeContext {
                assert!(ours < *t, "{kind}: ours {ours} vs {t}");
            }
        }
        // Full-KV prefetch is the worst (it moves the entire cache).
        assert!(totals[&DataflowKind::PrefetchFullKv] > totals[&DataflowKind::FetchSparseKv]);
    }

    #[test]
    fn layerwise_retrieval_overhead_can_reach_paper_levels() {
        // Fig. 2(a): retrieval + load reaches tens of percent of latency
        // for layer-wise retrieval with offloading.
        let (cm, prof, dev) = setup();
        let p = params(32);
        let (_, bd) = step_timeline(DataflowKind::FetchSparseKv, &cm, &prof, &dev, &p);
        let frac = bd.retrieval_and_load_fraction();
        assert!(
            (0.3..0.95).contains(&frac),
            "retrieval+load fraction {frac}"
        );
    }

    #[test]
    fn specontext_overlap_hides_most_transfer() {
        let (cm, prof, dev) = setup();
        let p = params(32);
        let (sim, bd) = step_timeline(DataflowKind::SpeContext, &cm, &prof, &dev, &p);
        // Copy busy time is mostly hidden under compute.
        let compute_busy = sim.busy_time(COMPUTE);
        assert!(bd.total < compute_busy + bd.transfer * 0.5);
    }

    #[test]
    fn no_offload_means_no_transfer() {
        let (cm, prof, dev) = setup();
        let p = params(0);
        for kind in [
            DataflowKind::FetchSparseKv,
            DataflowKind::PrefetchSparseV,
            DataflowKind::SpeContext,
        ] {
            let (_, bd) = step_timeline(kind, &cm, &prof, &dev, &p);
            assert_eq!(bd.bytes_transferred, 0.0, "{kind}");
        }
    }

    #[test]
    fn elastic_reuse_reduces_transfer_linearly() {
        let (cm, prof, dev) = setup();
        let mut p = params(32);
        p.reuse = 0.0;
        let (_, full) = step_timeline(DataflowKind::SpeContext, &cm, &prof, &dev, &p);
        p.reuse = 0.9;
        let (_, tenth) = step_timeline(DataflowKind::SpeContext, &cm, &prof, &dev, &p);
        let ratio = tenth.bytes_transferred / full.bytes_transferred;
        assert!((ratio - 0.1).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn makespan_at_least_compute_critical_path() {
        let (cm, prof, dev) = setup();
        let p = params(16);
        for kind in [
            DataflowKind::PrefetchFullKv,
            DataflowKind::FetchSparseKv,
            DataflowKind::PrefetchSparseKv,
            DataflowKind::PrefetchSparseV,
            DataflowKind::SpeContext,
        ] {
            let (sim, bd) = step_timeline(kind, &cm, &prof, &dev, &p);
            assert!(bd.total >= sim.busy_time(COMPUTE) - 1e-9, "{kind}");
        }
    }
}
