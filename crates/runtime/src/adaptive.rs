//! Adaptive memory management: Algorithm 1 (threshold calculation at
//! compilation) and Algorithm 2 (progressive offloading during inference).
//!
//! `S_T[i]` is the largest sequence length at which it suffices to keep
//! the last `i` layers' KV on the CPU. During decode, whenever `S`
//! crosses `S_T[L_CPU]`, the manager offloads one more layer (from the
//! last layer toward the first), freeing GPU room for the still-resident
//! layers' growing caches — instead of the all-or-nothing offload that
//! causes the >80% cliff of Challenge 3.

use crate::memory::MemoryModel;
use serde::{Deserialize, Serialize};

/// The compile-time threshold list `S_T = [S_T_0 … S_T_L]` (Algorithm 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// `values[i]`: max sequence length with `i` layers offloaded.
    pub values: Vec<i64>,
    /// Budget used in the calculation.
    pub budget: usize,
    /// Requests used in the calculation.
    pub requests: usize,
}

impl Thresholds {
    /// Algorithm 1: computes `S_T_i` for `i = 0..=L`.
    pub fn compute(mm: &MemoryModel, requests: usize, budget: usize) -> Self {
        let hd = (mm.kv_heads * mm.head_dim) as f64;
        let r = requests as f64;
        let free = mm.gpu_mem as f64 - mm.static_bytes();
        let mut values = Vec::with_capacity(mm.layers + 1);
        for i in 0..=mm.layers {
            let denom = 4.0 * (mm.layers + 1 + mm.alpha - i) as f64 * r * hd;
            let numer = free - 4.0 * (i as f64 * budget as f64) * r * hd;
            values.push((numer / denom).floor() as i64);
        }
        Self {
            values,
            budget,
            requests,
        }
    }

    /// Number of layers that must be offloaded at sequence length `s`
    /// (the smallest `i` with `s < S_T_i`), or `None` if even full
    /// offload cannot host the sequence.
    pub fn required_offload(&self, s: usize) -> Option<usize> {
        self.values.iter().position(|&t| (s as i64) < t)
    }
}

/// Algorithm 2: the runtime manager driving progressive offload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveManager {
    thresholds: Thresholds,
    layers: usize,
    l_cpu: usize,
}

/// An offload action emitted by the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OffloadEvent {
    /// The layer whose KV moves to the CPU.
    pub layer: usize,
    /// Offloaded-layer count after this event.
    pub l_cpu: usize,
}

impl AdaptiveManager {
    /// Creates a manager with all layers resident.
    pub fn new(thresholds: Thresholds, layers: usize) -> Self {
        Self {
            thresholds,
            layers,
            l_cpu: 0,
        }
    }

    /// Current number of offloaded layers (`L_CPU`).
    pub fn l_cpu(&self) -> usize {
        self.l_cpu
    }

    /// Current number of GPU-resident layers (`L_GPU`).
    pub fn l_gpu(&self) -> usize {
        self.layers - self.l_cpu
    }

    /// Algorithm 2 lines 4–7: advances to sequence length `s`, offloading
    /// layers (last toward first) until the threshold condition holds.
    /// Returns the offload events triggered, in order.
    pub fn advance_to(&mut self, s: usize) -> Vec<OffloadEvent> {
        let mut events = Vec::new();
        while self.l_cpu < self.layers && s as i64 >= self.thresholds.values[self.l_cpu] {
            let layer = self.layers - self.l_cpu - 1;
            self.l_cpu += 1;
            events.push(OffloadEvent {
                layer,
                l_cpu: self.l_cpu,
            });
        }
        events
    }

    /// The thresholds driving this manager.
    pub fn thresholds(&self) -> &Thresholds {
        &self.thresholds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_hwsim::DeviceSpec;
    use spec_model::ModelConfig;

    fn mm_cloud(requests: usize) -> (MemoryModel, Thresholds) {
        let mm = MemoryModel::new(&ModelConfig::llama3_1_8b(), &DeviceSpec::a100_80g());
        let th = Thresholds::compute(&mm, requests, 2048);
        (mm, th)
    }

    #[test]
    fn thresholds_increase_with_offloaded_layers() {
        let (_, th) = mm_cloud(16);
        for w in th.values.windows(2) {
            assert!(w[1] >= w[0], "thresholds must be non-decreasing: {w:?}");
        }
    }

    #[test]
    fn threshold_zero_matches_m_all_capacity() {
        // S_T_0 is the largest S with all KV on GPU: M_all(S_T_0) <= Mem
        // and M_all(S_T_0 + 1) > Mem (up to flooring).
        let (mm, th) = mm_cloud(16);
        let s0 = th.values[0];
        assert!(s0 > 0);
        assert!(mm.fits_all(16, s0 as usize));
        assert!(!mm.fits_all(16, s0 as usize + 2));
    }

    #[test]
    fn threshold_i_matches_m_part_capacity() {
        let (mm, th) = mm_cloud(16);
        for i in [1usize, 8, 16, 31] {
            let s = th.values[i];
            assert!(
                mm.m_part(16, s as usize, i, 2048) <= mm.gpu_mem as f64,
                "i={i}"
            );
            assert!(
                mm.m_part(16, s as usize + 2, i, 2048) > mm.gpu_mem as f64,
                "i={i}"
            );
        }
    }

    #[test]
    fn manager_offloads_last_layer_first_each_exactly_once() {
        let (_, th) = mm_cloud(16);
        let layers = 32;
        let mut mgr = AdaptiveManager::new(th.clone(), layers);
        let mut seen = Vec::new();
        let max_s = th.values[layers] as usize;
        let mut s = 1024;
        while s < max_s {
            for e in mgr.advance_to(s) {
                seen.push(e.layer);
            }
            s += 1024;
        }
        // Layers come off strictly from the back, no repeats.
        for w in seen.windows(2) {
            assert_eq!(w[0], w[1] + 1, "must offload back-to-front: {seen:?}");
        }
        let unique: std::collections::HashSet<_> = seen.iter().collect();
        assert_eq!(unique.len(), seen.len());
    }

    #[test]
    fn advance_is_idempotent_at_same_length() {
        let (_, th) = mm_cloud(16);
        let mut mgr = AdaptiveManager::new(th, 32);
        let s = 100_000;
        let first = mgr.advance_to(s);
        let second = mgr.advance_to(s);
        assert!(!first.is_empty());
        assert!(second.is_empty(), "no repeated offloads at the same S");
    }

    #[test]
    fn required_offload_consistent_with_manager() {
        let (_, th) = mm_cloud(16);
        let s = 90_000;
        let req = th.required_offload(s);
        let mut mgr = AdaptiveManager::new(th, 32);
        mgr.advance_to(s);
        if let Some(r) = req {
            assert_eq!(mgr.l_cpu(), r);
        } else {
            assert_eq!(mgr.l_cpu(), 32);
        }
    }

    #[test]
    fn small_gpu_starts_offloading_early() {
        let mm = MemoryModel::new(
            &ModelConfig::reasoning_llama3_2_1b(),
            &DeviceSpec::rtx4060_laptop_4g(),
        );
        let th = Thresholds::compute(&mm, 1, 1024);
        // A 2.5GB model in a 4GB budget leaves little KV room: the
        // all-GPU threshold must be small.
        assert!(th.values[0] < 32 * 1024, "S_T_0 = {}", th.values[0]);
    }
}
