//! The SpeContext runtime: memory model, adaptive management, dataflow
//! paradigms and the end-to-end serving simulator.
//!
//! * [`memory`] — the theoretical memory model of Section 6 (Eq. 6–8);
//! * [`adaptive`] — Algorithm 1 (compile-time sequence-length thresholds)
//!   and Algorithm 2 (progressive per-layer offloading during inference);
//! * [`costs`] — kernel-cost builders mapping a model's *real* geometry to
//!   `spec_hwsim::KernelCost` values per decode/prefill op;
//! * [`dataflow`] — the five per-step dataflow paradigms of Fig. 7, laid
//!   out on the two-stream event simulator;
//! * [`serving`] — end-to-end throughput estimation for a workload
//!   `[input_len, output_len] × requests` on a device (Table 3, Fig. 10,
//!   Fig. 11);
//! * [`exec`] — the functional decode executor that couples a real
//!   (simulated) model, a retrieval algorithm and the elastic loading
//!   buffers to produce *accuracy* results and transfer statistics.

pub mod adaptive;
pub mod costs;
pub mod dataflow;
pub mod exec;
pub mod memory;
pub mod scheduler;
pub mod serving;
pub mod spec_decode;

pub use adaptive::{AdaptiveManager, Thresholds};
pub use dataflow::{DataflowKind, StepBreakdown};
pub use memory::MemoryModel;
pub use scheduler::{
    BatchState, CompletedRequest, CrashedWork, FairConfig, HandoffRecord, PreemptionPolicy,
    QueueDiscipline, Request, RestorableRequest, ScheduleReport, Scheduler, SchedulerConfig,
};
pub use serving::{MemoryPolicy, ServingSim, StepCache, SystemKind, ThroughputReport, Workload};
// The role enum lives beside the fleet model in `spec_hwsim`; re-export
// it so scheduler users name it without a second import.
pub use spec_hwsim::ReplicaRole;
