//! The functional decode executor: couples the (simulated) model, a
//! retrieval strategy and the elastic-loading buffers.
//!
//! Where [`crate::serving`] estimates *time*, this module produces
//! *outputs*: logits, attention traces, selection overlap statistics and
//! transfer accounting from actually running the model — the accuracy
//! side of every experiment (Figs. 5, 6(b), 8, 9).

use spec_kvcache::budget::{BudgetBuffer, StepTransfer};
use spec_model::{LayerSelector, Model, ModelKv, SelectScratch, SparsePlan, StepOutput, StepTrace};
use spec_retrieval::spec_head::SpecContextRetriever;
use spec_tensor::{stats, Matrix};

/// How decode attention is driven.
pub enum DecodeStrategy {
    /// Dense attention (the accuracy ceiling).
    Dense,
    /// SpeContext: speculative whole-model selection + elastic loading.
    SpeContext(Box<SpecContextRetriever>),
    /// A layer-wise query-aware baseline.
    LayerWise(Box<dyn LayerSelector>),
}

impl std::fmt::Debug for DecodeStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DecodeStrategy::Dense => "Dense",
            DecodeStrategy::SpeContext(_) => "SpeContext",
            DecodeStrategy::LayerWise(_) => "LayerWise",
        };
        write!(f, "DecodeStrategy::{s}")
    }
}

/// Result of a generation run.
#[derive(Debug, Default)]
pub struct GenerationResult {
    /// Step outputs in order.
    pub outputs: Vec<StepOutput>,
    /// Greedily decoded token ids (free-running mode).
    pub tokens: Vec<usize>,
    /// Attention traces (when requested).
    pub traces: Vec<StepTrace>,
    /// Aggregate elastic-loading transfer accounting (SpeContext only).
    pub transfer: Option<StepTransfer>,
    /// Per-step selection overlap with the previous step (SpeContext
    /// only; the Fig. 6(b) statistic).
    pub overlaps: Vec<f32>,
}

/// Runs `steps` decode iterations teacher-forced on the rows of `inputs`
/// (row `i` is the embedding fed at step `i`).
///
/// # Panics
///
/// Panics if `inputs` has fewer rows than `steps`.
pub fn generate_teacher_forced(
    model: &Model,
    kv: &mut ModelKv,
    inputs: &Matrix,
    steps: usize,
    strategy: &mut DecodeStrategy,
    record_traces: bool,
) -> GenerationResult {
    assert!(inputs.rows() >= steps, "not enough teacher-forced inputs");
    let mut res = GenerationResult::default();
    let mut buffers = make_buffers(model, strategy);
    let mut last_selection: Option<Vec<usize>> = None;
    // One selection workspace for the whole generation (the
    // zero-allocation hot path: warm across steps and layers).
    let mut scratch = SelectScratch::new();

    for i in 0..steps {
        let x = inputs.row(i).to_vec();
        let pos = kv.seq_len();
        let out = run_step(
            model,
            kv,
            &x,
            pos,
            strategy,
            record_traces,
            &mut res,
            &mut buffers,
            &mut last_selection,
            &mut scratch,
        );
        res.tokens.push(Model::argmax_token(&out.logits));
        res.outputs.push(out);
    }
    res
}

/// Runs `steps` free-running decode iterations: each step feeds the
/// embedding of the previous step's argmax token, starting from `first`.
pub fn generate_free_running(
    model: &Model,
    kv: &mut ModelKv,
    first: &[f32],
    steps: usize,
    strategy: &mut DecodeStrategy,
    record_traces: bool,
) -> GenerationResult {
    let mut res = GenerationResult::default();
    let mut buffers = make_buffers(model, strategy);
    let mut last_selection: Option<Vec<usize>> = None;
    let mut scratch = SelectScratch::new();
    let mut x = first.to_vec();

    for _ in 0..steps {
        let pos = kv.seq_len();
        let out = run_step(
            model,
            kv,
            &x,
            pos,
            strategy,
            record_traces,
            &mut res,
            &mut buffers,
            &mut last_selection,
            &mut scratch,
        );
        let tok = Model::argmax_token(&out.logits);
        res.tokens.push(tok);
        x = model.embed_tokens(&[tok]).row(0).to_vec();
        res.outputs.push(out);
    }
    res
}

fn make_buffers(model: &Model, strategy: &DecodeStrategy) -> Option<BudgetBuffer> {
    match strategy {
        DecodeStrategy::SpeContext(r) => {
            let g = model.geometry();
            Some(BudgetBuffer::new(
                g.layers,
                g.kv_heads,
                r.config().budget.max(1) + r.config().recent + r.config().sinks + 1,
            ))
        }
        _ => None,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_step(
    model: &Model,
    kv: &mut ModelKv,
    x: &[f32],
    pos: usize,
    strategy: &mut DecodeStrategy,
    record_traces: bool,
    res: &mut GenerationResult,
    buffers: &mut Option<BudgetBuffer>,
    last_selection: &mut Option<Vec<usize>>,
    scratch: &mut SelectScratch,
) -> StepOutput {
    match strategy {
        DecodeStrategy::Dense => {
            let plan = SparsePlan::dense(model.geometry().layers);
            if record_traces {
                let (out, trace) = model.decode_step_traced(x, pos, kv, &plan);
                res.traces.push(trace);
                out
            } else {
                model.decode_step_sparse(x, pos, kv, &plan)
            }
        }
        DecodeStrategy::SpeContext(retr) => {
            // The retrieval head sees the token before the LLM does.
            retr.observe(x);
            let sel = retr.select_scratch(x, model.geometry(), scratch);
            // Elastic loading accounting.
            if let Some(buf) = buffers {
                let per_layer: Vec<Vec<Vec<usize>>> =
                    vec![sel.per_head.clone(); model.geometry().layers];
                let t = buf.step(&per_layer);
                let agg = res.transfer.get_or_insert_with(StepTransfer::default);
                agg.fetched_entries += t.fetched_entries;
                agg.reused_entries += t.reused_entries;
            }
            let union = sel.union_positions();
            if let Some(prev) = last_selection.as_ref() {
                res.overlaps.push(stats::overlap_rate(prev, &union));
            }
            *last_selection = Some(union);

            let plan = sel.to_plan(model.geometry().layers);
            if record_traces {
                let (out, trace) = model.decode_step_traced(x, pos, kv, &plan);
                res.traces.push(trace);
                out
            } else {
                model.decode_step_sparse(x, pos, kv, &plan)
            }
        }
        DecodeStrategy::LayerWise(sel) => {
            if record_traces {
                let (out, trace) =
                    model.decode_step_selected_traced_scratch(x, pos, kv, sel.as_mut(), scratch);
                res.traces.push(trace);
                out
            } else {
                model.decode_step_selected_scratch(x, pos, kv, sel.as_mut(), scratch)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{AttentionKind, DistillOptions, Dlm, PrefillMode, SimGeometry};
    use spec_retrieval::common::SelectorConfig;
    use spec_retrieval::full::FullAttention;
    use spec_retrieval::quest::QuestSelector;
    use spec_retrieval::MappingLevel;

    fn setup() -> (Model, ModelKv, Matrix) {
        let m = Model::new(SimGeometry::tiny(AttentionKind::Gqa), 71);
        let tokens: Vec<usize> = (0..32).map(|i| (i * 3) % 60).collect();
        let emb = m.embed_tokens(&tokens);
        let (kv, _) = m.prefill_embeddings(&emb, PrefillMode::Exact);
        (m, kv, emb)
    }

    #[test]
    fn dense_and_full_selector_agree() {
        let (m, kv, emb) = setup();
        let mut kv_a = kv.clone();
        let mut kv_b = kv.clone();
        let mut dense = DecodeStrategy::Dense;
        let mut full = DecodeStrategy::LayerWise(Box::new(FullAttention));
        let a = generate_teacher_forced(&m, &mut kv_a, &emb, 4, &mut dense, false);
        let b = generate_teacher_forced(&m, &mut kv_b, &emb, 4, &mut full, false);
        assert_eq!(a.tokens, b.tokens);
    }

    #[test]
    fn specontext_strategy_records_transfer_and_overlap() {
        let (m, mut kv, emb) = setup();
        let head = Dlm::distill(&m, DistillOptions::default()).to_retrieval_head();
        let mut retr = SpecContextRetriever::new(
            head,
            SelectorConfig {
                budget: 12,
                sinks: 2,
                recent: 2,
                ..SelectorConfig::with_budget(12)
            },
            MappingLevel::Head,
        );
        // The retrieval head must observe the prompt first.
        for r in 0..emb.rows() {
            retr.observe(emb.row(r));
        }
        let mut strat = DecodeStrategy::SpeContext(Box::new(retr));
        let res = generate_teacher_forced(&m, &mut kv, &emb, 6, &mut strat, false);
        let t = res.transfer.expect("transfer accounting");
        assert!(t.fetched_entries > 0);
        assert!(t.reused_entries > 0, "elastic reuse should occur");
        assert_eq!(res.overlaps.len(), 5);
        for o in &res.overlaps {
            assert!((0.0..=1.0).contains(o));
        }
    }

    #[test]
    fn layerwise_quest_runs_and_differs_from_dense() {
        let (m, kv, emb) = setup();
        let mut kv_a = kv.clone();
        let mut kv_b = kv.clone();
        let cfg = SelectorConfig {
            budget: 8,
            sinks: 1,
            recent: 2,
            ..SelectorConfig::with_budget(8)
        };
        let quest = QuestSelector::preprocess(&kv, cfg);
        let mut strat = DecodeStrategy::LayerWise(Box::new(quest));
        let sparse = generate_teacher_forced(&m, &mut kv_a, &emb, 4, &mut strat, false);
        let mut dense = DecodeStrategy::Dense;
        let dense_res = generate_teacher_forced(&m, &mut kv_b, &emb, 4, &mut dense, false);
        // Outputs are finite and the sparse run genuinely restricted
        // attention (logits differ).
        let diff: f32 = sparse.outputs[0]
            .logits
            .iter()
            .zip(&dense_res.outputs[0].logits)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn free_running_generates_tokens_in_vocab() {
        let (m, mut kv, emb) = setup();
        let mut dense = DecodeStrategy::Dense;
        let res = generate_free_running(&m, &mut kv, emb.row(0), 8, &mut dense, false);
        assert_eq!(res.tokens.len(), 8);
        assert!(res.tokens.iter().all(|&t| t < m.geometry().vocab));
        assert_eq!(kv.seq_len(), 32 + 8);
    }

    #[test]
    fn traces_recorded_when_requested() {
        let (m, mut kv, emb) = setup();
        let mut dense = DecodeStrategy::Dense;
        let res = generate_teacher_forced(&m, &mut kv, &emb, 3, &mut dense, true);
        assert_eq!(res.traces.len(), 3);
        assert_eq!(res.traces[0].attn.len(), m.geometry().layers);
    }
}
