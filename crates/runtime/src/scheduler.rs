//! Continuous-batching request scheduler — the serving system of the
//! paper's Fig. 3 ("Model, Requests → KV cache manager → hardware").
//!
//! Requests arrive over time; the scheduler admits them into the running
//! batch whenever the memory model allows (weights + per-request KV under
//! the system's placement policy), executes one decode iteration for the
//! whole batch, retires finished requests, and repeats. Iteration latency
//! comes from the same per-step dataflow timelines as the throughput
//! benches, so scheduler results and Table-3 results are mutually
//! consistent.

use crate::serving::{ServingSim, StepCache, SystemKind, Workload};
use serde::{Deserialize, Serialize};
use spec_tensor::PercentileSummary;
use std::collections::VecDeque;

/// One serving request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Request id (unique per run).
    pub id: usize,
    /// Prompt tokens.
    pub input_len: usize,
    /// Tokens to generate.
    pub output_len: usize,
    /// Arrival time, seconds.
    pub arrival: f64,
}

/// A finished request with its timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedRequest {
    /// The request.
    pub request: Request,
    /// When decoding started (admission + prefill end).
    pub start: f64,
    /// When the last token was produced.
    pub finish: f64,
}

impl CompletedRequest {
    /// End-to-end latency (arrival to last token).
    pub fn latency(&self) -> f64 {
        self.finish - self.request.arrival
    }

    /// Queueing + prefill delay before decoding began.
    pub fn time_to_first_token(&self) -> f64 {
        self.start - self.request.arrival
    }

    /// Mean time between output tokens over the decode span.
    pub fn time_between_tokens(&self) -> f64 {
        (self.finish - self.start) / self.request.output_len.max(1) as f64
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Hard cap on concurrent requests.
    pub max_batch: usize,
    /// Decode iterations between admission checks (1 = every step;
    /// larger values model chunked admission).
    pub admission_stride: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            admission_stride: 16,
        }
    }
}

/// A serving run's aggregate report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// Completed requests, in finish order.
    pub completed: Vec<CompletedRequest>,
    /// Total simulated time.
    pub makespan: f64,
    /// Output tokens per second over the whole run.
    pub throughput: f64,
    /// End-to-end latency percentiles (arrival → last token).
    pub latency: PercentileSummary,
    /// Time-to-first-token percentiles (arrival → decode start), the
    /// same definition the `spec_serve` SLO accounting uses, so
    /// single-node and cluster reports are directly comparable.
    pub ttft: PercentileSummary,
    /// Time-between-tokens percentiles (decode span / output tokens).
    pub tbt: PercentileSummary,
    /// Requests that could never be admitted (memory).
    pub rejected: usize,
}

impl ScheduleReport {
    /// Builds the aggregate report from a run's raw outcome.
    pub fn from_completed(
        completed: Vec<CompletedRequest>,
        makespan: f64,
        rejected: usize,
    ) -> Self {
        let total_tokens: usize = completed.iter().map(|c| c.request.output_len).sum();
        let latencies: Vec<f64> = completed.iter().map(CompletedRequest::latency).collect();
        let ttfts: Vec<f64> = completed
            .iter()
            .map(CompletedRequest::time_to_first_token)
            .collect();
        let tbts: Vec<f64> = completed
            .iter()
            .map(CompletedRequest::time_between_tokens)
            .collect();
        Self {
            makespan,
            throughput: if makespan > 0.0 {
                total_tokens as f64 / makespan
            } else {
                0.0
            },
            latency: PercentileSummary::from_samples(&latencies),
            ttft: PercentileSummary::from_samples(&ttfts),
            tbt: PercentileSummary::from_samples(&tbts),
            rejected,
            completed,
        }
    }
}

/// The continuous-batching simulator, bound to a system and a
/// [`ServingSim`]'s model/device/budget.
#[derive(Debug, Clone)]
pub struct Scheduler {
    sim: ServingSim,
    system: SystemKind,
    cfg: SchedulerConfig,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    req: Request,
    produced: usize,
    start: f64,
}

/// The incremental state of one continuous-batching engine: wait queue,
/// running batch, completions and the local clock.
///
/// [`Scheduler::run`] drives a `BatchState` to completion over a whole
/// trace; the `spec_serve` cluster simulator instead drives one per
/// replica, event by event, feeding arrivals in as its router assigns
/// them. Both paths execute the identical [`Scheduler::step`] code, so a
/// 1-replica cluster reproduces `Scheduler::run` bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct BatchState {
    queue: VecDeque<Request>,
    running: Vec<Running>,
    completed: Vec<CompletedRequest>,
    rejected: usize,
    now: f64,
    iter: usize,
    /// Whether the admission sweep for the current iteration already
    /// closed (hit a future arrival, a full batch, or an empty queue).
    sweep_done: bool,
    last_arrival: f64,
}

impl BatchState {
    /// An empty engine at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues an arrived request.
    ///
    /// # Panics
    ///
    /// Panics if `req` arrives earlier than a previously pushed request
    /// (arrivals must be fed in nondecreasing order).
    pub fn push(&mut self, req: Request) {
        assert!(
            req.arrival >= self.last_arrival,
            "requests must be pushed in arrival order ({} after {})",
            req.arrival,
            self.last_arrival
        );
        self.last_arrival = req.arrival;
        self.queue.push_back(req);
    }

    /// Whether any request is still queued or decoding.
    pub fn has_work(&self) -> bool {
        !self.queue.is_empty() || !self.running.is_empty()
    }

    /// The engine's local clock, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Queued (not yet admitted) requests.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently decoding.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Queued + running requests — the router's load signal.
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.running.len()
    }

    /// The requests currently decoding, in admission order.
    pub fn running_requests(&self) -> impl Iterator<Item = &Request> {
        self.running.iter().map(|r| &r.req)
    }

    /// The requests waiting for admission, in arrival order.
    pub fn queued_requests(&self) -> impl Iterator<Item = &Request> {
        self.queue.iter()
    }

    /// Requests finished so far, in finish order.
    pub fn completed(&self) -> &[CompletedRequest] {
        &self.completed
    }

    /// Requests rejected so far (could never be admitted, even alone).
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Consumes the state into `(completed, rejected)`.
    pub fn into_outcome(self) -> (Vec<CompletedRequest>, usize) {
        (self.completed, self.rejected)
    }
}

impl Scheduler {
    /// Creates a scheduler for `system` on the given serving simulator.
    pub fn new(sim: ServingSim, system: SystemKind, cfg: SchedulerConfig) -> Self {
        Self { sim, system, cfg }
    }

    /// The underlying serving simulator.
    pub fn sim(&self) -> &ServingSim {
        &self.sim
    }

    /// The system being scheduled.
    pub fn system(&self) -> SystemKind {
        self.system
    }

    /// The scheduling configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Runs the request trace to completion.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty or not sorted by arrival, or if
    /// the config's `admission_stride` is zero.
    pub fn run(&self, requests: &[Request]) -> ScheduleReport {
        assert!(!requests.is_empty(), "no requests");
        assert!(
            requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "requests must be sorted by arrival"
        );
        let mut state = BatchState::new();
        for req in requests {
            state.push(*req);
        }
        let mut cache = StepCache::new();
        while state.has_work() {
            self.step(&mut state, &mut cache);
        }
        let makespan = state.now;
        let (completed, rejected) = state.into_outcome();
        ScheduleReport::from_completed(completed, makespan, rejected)
    }

    /// Executes one scheduling micro-step: a single admission decision
    /// while an admission sweep is open, otherwise a single decode
    /// iteration for the running batch (a step with an empty batch only
    /// advances the admission phase). This is the loop body of
    /// [`Scheduler::run`] split at decision granularity, exposed so
    /// external event loops (the `spec_serve` replicas) can interleave
    /// stepping with routing: the clock never advances by more than one
    /// admission or one iteration per call, so a router can inject an
    /// arrival the moment the replica's clock passes it — exactly what
    /// the closed loop sees with the full trace queued upfront.
    ///
    /// # Panics
    ///
    /// Panics if the config's `admission_stride` is zero.
    pub fn step(&self, state: &mut BatchState, cache: &mut StepCache) {
        assert!(
            self.cfg.admission_stride > 0,
            "admission_stride must be positive"
        );
        // Admission: one head decision per call while the sweep is open.
        if state.iter.is_multiple_of(self.cfg.admission_stride) && !state.sweep_done {
            if let Some(&head) = state.queue.front() {
                if head.arrival > state.now && state.running.is_empty() {
                    state.now = head.arrival; // idle: jump to next arrival
                }
                if head.arrival > state.now || state.running.len() >= self.cfg.max_batch {
                    state.sweep_done = true;
                    return;
                }
                if !self.admissible(&state.running, &head) {
                    if state.running.is_empty() {
                        // Can never run, even alone.
                        state.rejected += 1;
                        state.queue.pop_front();
                        return; // sweep stays open for the next head
                    }
                    state.sweep_done = true;
                    return;
                }
                state.queue.pop_front();
                state.now += self.prefill_time(&head, cache);
                state.running.push(Running {
                    req: head,
                    produced: 0,
                    start: state.now,
                });
                return; // sweep stays open for the next head
            }
            state.sweep_done = true;
            return;
        }
        if state.running.is_empty() {
            state.iter += 1;
            state.sweep_done = false;
            return;
        }
        // One decode iteration for the whole batch.
        state.now += self.iteration_time(&state.running, cache);
        state.iter += 1;
        state.sweep_done = false;
        for r in state.running.iter_mut() {
            r.produced += 1;
        }
        let now = state.now;
        let completed = &mut state.completed;
        state.running.retain(|r| {
            if r.produced >= r.req.output_len {
                completed.push(CompletedRequest {
                    request: r.req,
                    start: r.start,
                    finish: now,
                });
                false
            } else {
                true
            }
        });
    }

    /// Whether adding `req` to the running batch fits in GPU memory at
    /// the *final* lengths (conservative admission).
    fn admissible(&self, running: &[Running], req: &Request) -> bool {
        let mm = self.sim.memory_model();
        let max_len = running
            .iter()
            .map(|r| r.req.input_len + r.req.output_len)
            .chain([req.input_len + req.output_len])
            .max()
            .unwrap_or(0);
        let batch = running.len() + 1;
        match self.system {
            SystemKind::SpeContext => {
                // Adaptive placement: admissible if full offload fits.
                mm.m_part(batch, max_len, mm.layers, self.sim_budget()) <= mm.gpu_mem as f64
            }
            _ => mm.fits_all(batch, max_len),
        }
    }

    fn sim_budget(&self) -> usize {
        self.sim.budget()
    }

    /// Prefill latency for one prompt, memoized per `(system, input_len)`
    /// — admission re-prefills identical prompt lengths constantly.
    fn prefill_time(&self, req: &Request, cache: &mut StepCache) -> f64 {
        let key = (self.system, req.input_len);
        if let Some(&t) = cache.prefill.get(&key) {
            return t;
        }
        let t = self
            .sim
            .throughput(self.system, &Workload::new(req.input_len, 1, 1))
            .prefill_s;
        cache.prefill.insert(key, t);
        t
    }

    /// Iteration latency at the current batch composition: the per-step
    /// dataflow timeline at the batch's mean sequence length, memoized
    /// across iterations through the run's step cache.
    fn iteration_time(&self, running: &[Running], cache: &mut StepCache) -> f64 {
        let batch = running.len();
        let mean_len: usize = running
            .iter()
            .map(|r| r.req.input_len + r.produced)
            .sum::<usize>()
            / batch;
        self.sim
            .step_time_cached(cache, self.system, batch, mean_len, mean_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_hwsim::DeviceSpec;
    use spec_model::ModelConfig;

    fn sim() -> ServingSim {
        ServingSim::new(
            ModelConfig::deepseek_distill_llama_8b(),
            DeviceSpec::a100_80g(),
            2048,
        )
    }

    fn trace(n: usize, spacing: f64) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                id: i,
                input_len: 2048,
                output_len: 1024,
                arrival: i as f64 * spacing,
            })
            .collect()
    }

    #[test]
    fn all_requests_complete_in_fifo_friendly_trace() {
        let s = Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default());
        let report = s.run(&trace(8, 0.1));
        assert_eq!(report.completed.len(), 8);
        assert_eq!(report.rejected, 0);
        assert!(report.throughput > 0.0);
        for c in &report.completed {
            assert!(c.finish > c.start);
            assert!(c.start >= c.request.arrival);
        }
    }

    #[test]
    fn batching_system_outperforms_single_request_system() {
        let reqs = trace(6, 0.01);
        let ours =
            Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default()).run(&reqs);
        let quest_cfg = SchedulerConfig {
            max_batch: 1,
            ..SchedulerConfig::default()
        };
        let quest = Scheduler::new(sim(), SystemKind::Quest, quest_cfg).run(&reqs);
        assert!(
            ours.throughput > quest.throughput,
            "ours {} vs single-request {}",
            ours.throughput,
            quest.throughput
        );
        assert!(ours.latency.mean < quest.latency.mean);
    }

    #[test]
    fn memory_pressure_limits_full_attention_batch() {
        // Full attention at 33K final length cannot batch as deep as the
        // sparse system: its makespan suffers.
        let reqs: Vec<Request> = (0..8)
            .map(|i| Request {
                id: i,
                input_len: 2048,
                output_len: 31 * 1024,
                arrival: 0.0,
            })
            .collect();
        let full = Scheduler::new(
            sim(),
            SystemKind::FullFlashInfer,
            SchedulerConfig::default(),
        )
        .run(&reqs);
        let ours =
            Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default()).run(&reqs);
        assert!(ours.throughput > full.throughput);
    }

    #[test]
    fn oversized_requests_are_rejected_not_hung() {
        let reqs = vec![Request {
            id: 0,
            input_len: 10_000_000, // cannot fit even alone
            output_len: 10_000_000,
            arrival: 0.0,
        }];
        let s = Scheduler::new(
            sim(),
            SystemKind::FullFlashInfer,
            SchedulerConfig::default(),
        );
        let report = s.run(&reqs);
        assert_eq!(report.rejected, 1);
        assert!(report.completed.is_empty());
    }

    #[test]
    fn p95_at_least_mean() {
        let s = Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default());
        let report = s.run(&trace(10, 0.5));
        assert!(report.latency.p95 >= report.latency.mean * 0.5);
    }
}
