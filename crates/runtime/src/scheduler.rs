//! Continuous-batching request scheduler — the serving system of the
//! paper's Fig. 3 ("Model, Requests → KV cache manager → hardware").
//!
//! Requests arrive over time; the scheduler admits them into the running
//! batch whenever the memory model allows (weights + per-request KV under
//! the system's placement policy), executes one decode iteration for the
//! whole batch, retires finished requests, and repeats. Iteration latency
//! comes from the same per-step dataflow timelines as the throughput
//! benches, so scheduler results and Table-3 results are mutually
//! consistent.
//!
//! # Multi-tenant fairness and preemption
//!
//! Every [`Request`] bills to a tenant. The wait "queue" is one FIFO per
//! tenant; a [`FairConfig`] picks the admission discipline across tenants
//! ([`QueueDiscipline::Fifo`] = global arrival order, exactly the
//! pre-tenant behaviour; [`QueueDiscipline::DeficitRoundRobin`] =
//! weighted deficit round-robin over tenant queues) and an optional
//! [`PreemptionPolicy`]: when an arrived request cannot enter the batch
//! (batch cap or memory) the scheduler may checkpoint a running victim —
//! paying the KV save transfer at the memory model's bytes/token over the
//! device's PCIe bandwidth — admit the waiter, and later restore the
//! victim (paying the restore transfer on re-admission). With a single
//! tenant and preemption off, every discipline reduces to the historical
//! single-FIFO scheduler bit-for-bit ([`Scheduler::run_reference`] keeps
//! that behaviour verbatim and `tests/fairness.rs` pins the equivalence).

use crate::serving::{ServingSim, StepCache, SystemKind, Workload};
use serde::{Deserialize, Serialize};
use spec_hwsim::ReplicaRole;
use spec_telemetry::{seconds_to_ticks, Event, EventKind, NullSink, TelemetrySink};
use spec_tensor::PercentileSummary;
use std::collections::{BTreeMap, VecDeque};

/// Emits a scheduler-scope telemetry event at simulated time `now`.
/// Scheduler code cannot know which replica it runs inside, so the
/// replica field is 0; a tagged `RecordingSink` overwrites it.
fn emit<S: TelemetrySink>(sink: &mut S, now: f64, kind: EventKind) {
    sink.emit(Event {
        tick: seconds_to_ticks(now),
        replica: 0,
        kind,
    });
}

/// One serving request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Request id (unique per run).
    pub id: usize,
    /// Tenant (user group / workload class) the request bills to; the
    /// fair scheduler arbitrates between tenants. Single-tenant traces
    /// use 0.
    pub tenant: u32,
    /// Prompt tokens.
    pub input_len: usize,
    /// Tokens to generate.
    pub output_len: usize,
    /// Arrival time, seconds.
    pub arrival: f64,
}

impl Request {
    /// Builds a request from its fields, in declaration order — the one
    /// construction site arrival generators share, so adding a field
    /// means fixing one constructor instead of every trace producer.
    pub fn new(id: usize, tenant: u32, input_len: usize, output_len: usize, arrival: f64) -> Self {
        Self {
            id,
            tenant,
            input_len,
            output_len,
            arrival,
        }
    }

    /// Builds a request shaped like one [`Workload`] row (its
    /// `requests` batch-size field is a mixture weight to trace
    /// generators and is ignored here).
    pub fn with_shape(id: usize, tenant: u32, shape: &Workload, arrival: f64) -> Self {
        Self::new(id, tenant, shape.input_len, shape.output_len, arrival)
    }
}

/// A finished request with its timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedRequest {
    /// The request.
    pub request: Request,
    /// When decoding started (first admission + prefill end).
    pub start: f64,
    /// When the first output token existed: the end of the request's
    /// first decode iteration (not the decode *start* — the batch
    /// iteration has to finish before a token exists).
    pub first_token: f64,
    /// When the last token was produced.
    pub finish: f64,
    /// Times the request was checkpointed off the batch and later
    /// restored (0 when it ran uninterrupted).
    pub preemptions: usize,
}

impl CompletedRequest {
    /// End-to-end latency (arrival to last token).
    pub fn latency(&self) -> f64 {
        self.finish - self.request.arrival
    }

    /// Queueing + prefill + first decode iteration: arrival until the
    /// first output token exists.
    pub fn time_to_first_token(&self) -> f64 {
        self.first_token - self.request.arrival
    }

    /// Mean time between output tokens: the span from the first token to
    /// the last spread over the `output_len - 1` intervals between them
    /// (0 for single-token outputs, which have no inter-token gap).
    pub fn time_between_tokens(&self) -> f64 {
        let intervals = self.request.output_len.saturating_sub(1);
        if intervals == 0 {
            0.0
        } else {
            (self.finish - self.first_token) / intervals as f64
        }
    }
}

/// How queued requests of different tenants are ordered for admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// Global arrival order across all tenants — the historical single
    /// FIFO. A long-generation tenant's backlog delays everyone behind
    /// it.
    Fifo,
    /// Weighted deficit round-robin over per-tenant queues: tenants take
    /// turns in id order, each visit granting `quantum × weight` tokens
    /// of deficit, and a tenant's head is admitted once its remaining
    /// output fits the accumulated deficit. Orders *who goes next*
    /// without ever delaying admission the memory model would allow, so
    /// a single-tenant trace is served exactly as under `Fifo`.
    DeficitRoundRobin,
}

/// Whom to evict when an arrived request cannot enter the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreemptionPolicy {
    /// Never evict; the waiter queues until capacity frees up.
    None,
    /// Evict the running request with the most remaining output tokens
    /// (ties to the smaller id).
    LongestFirst,
    /// Evict from the tenant that has consumed the most decode service
    /// per unit weight this run (ties: most remaining output, then
    /// smaller id) — the deficit-round-robin notion of "most over
    /// served".
    DeficitRoundRobin,
}

/// Multi-tenant fairness knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairConfig {
    /// Admission ordering across tenants.
    pub discipline: QueueDiscipline,
    /// `(tenant, weight)` pairs; unlisted tenants weigh 1. Weights scale
    /// both the DRR deficit quantum and the preemption service ledger.
    pub weights: Vec<(u32, u32)>,
    /// Deficit tokens granted per DRR visit (per unit weight).
    pub quantum_tokens: usize,
    /// Eviction policy when an arrived request cannot enter the batch.
    pub preemption: PreemptionPolicy,
    /// Hard cap on how many times one request may be checkpointed — the
    /// thrash guard that bounds save/restore churn.
    pub max_preemptions: usize,
}

impl Default for FairConfig {
    fn default() -> Self {
        Self {
            discipline: QueueDiscipline::DeficitRoundRobin,
            weights: Vec::new(),
            quantum_tokens: 512,
            preemption: PreemptionPolicy::None,
            max_preemptions: 4,
        }
    }
}

impl FairConfig {
    /// The weight of `tenant` (1 unless listed).
    pub fn weight(&self, tenant: u32) -> u32 {
        self.weights
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|&(_, w)| w.max(1))
            .unwrap_or(1)
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Hard cap on concurrent requests.
    pub max_batch: usize,
    /// Decode iterations between admission checks (1 = every step;
    /// larger values model chunked admission).
    pub admission_stride: usize,
    /// Tenant fairness and preemption.
    pub fair: FairConfig,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            admission_stride: 16,
            fair: FairConfig::default(),
        }
    }
}

/// A serving run's aggregate report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// Completed requests, in finish order.
    pub completed: Vec<CompletedRequest>,
    /// Total simulated time.
    pub makespan: f64,
    /// Output tokens per second over the whole run.
    pub throughput: f64,
    /// End-to-end latency percentiles (arrival → last token).
    pub latency: PercentileSummary,
    /// Time-to-first-token percentiles (arrival → first token), the
    /// same definition the `spec_serve` SLO accounting uses, so
    /// single-node and cluster reports are directly comparable.
    pub ttft: PercentileSummary,
    /// Time-between-tokens percentiles (first-to-last-token span over
    /// `output_len - 1` intervals).
    pub tbt: PercentileSummary,
    /// Requests that could never be admitted (memory).
    pub rejected: usize,
    /// Checkpoint/restore round-trips paid across all completions.
    pub preemptions: usize,
}

impl ScheduleReport {
    /// Builds the aggregate report from a run's raw outcome.
    pub fn from_completed(
        completed: Vec<CompletedRequest>,
        makespan: f64,
        rejected: usize,
    ) -> Self {
        let total_tokens: usize = completed.iter().map(|c| c.request.output_len).sum();
        let latencies: Vec<f64> = completed.iter().map(CompletedRequest::latency).collect();
        let ttfts: Vec<f64> = completed
            .iter()
            .map(CompletedRequest::time_to_first_token)
            .collect();
        let tbts: Vec<f64> = completed
            .iter()
            .map(CompletedRequest::time_between_tokens)
            .collect();
        Self {
            makespan,
            throughput: if makespan > 0.0 {
                total_tokens as f64 / makespan
            } else {
                0.0
            },
            latency: PercentileSummary::from_samples(&latencies),
            ttft: PercentileSummary::from_samples(&ttfts),
            tbt: PercentileSummary::from_samples(&tbts),
            rejected,
            preemptions: completed.iter().map(|c| c.preemptions).sum(),
            completed,
        }
    }
}

/// The continuous-batching simulator, bound to a system and a
/// [`ServingSim`]'s model/device/budget.
#[derive(Debug, Clone)]
pub struct Scheduler {
    sim: ServingSim,
    system: SystemKind,
    cfg: SchedulerConfig,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    req: Request,
    produced: usize,
    start: f64,
    first_token: Option<f64>,
    preemptions: usize,
}

/// One queued unit of work: a fresh arrival (`produced == 0`), a
/// checkpointed request awaiting restore, or a delivered prefill
/// handoff whose KV is already device-resident (`preloaded`).
#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    req: Request,
    /// Global push sequence — the FIFO discipline's ordering key.
    seq: u64,
    /// Tokens already produced before the last checkpoint (0 = fresh).
    produced: usize,
    /// Original decode start, kept across checkpoints.
    start: Option<f64>,
    /// When the first token was produced, kept across checkpoints.
    first_token: Option<f64>,
    /// Times this request has been checkpointed so far.
    preemptions: usize,
    /// Whether the entry's KV is already resident on this engine: a
    /// prefill handoff whose interconnect hop (paid by the cluster)
    /// priced device placement too, so admission charges nothing. A
    /// preemption clears it — later restores pay PCIe like any
    /// checkpoint.
    preloaded: bool,
}

/// One tenant's wait queue plus its fairness ledgers.
#[derive(Debug, Clone, Default)]
struct TenantQueue {
    queue: VecDeque<QueueEntry>,
    /// DRR deficit, in output tokens.
    deficit: u64,
    /// Decode service consumed this run, in output tokens (the
    /// preemption policy's "over-served" signal).
    served: u64,
}

/// Last-emitted gauge values, so traced runs emit gauges on *change*
/// rather than on every micro-step (a long decode emits millions of
/// steps but only thousands of gauge transitions). Never read unless a
/// sink is enabled, so the untraced path carries only the empty struct.
#[derive(Debug, Clone, Default)]
struct GaugeShadow {
    queue_depth: BTreeMap<u32, u64>,
    deficit: BTreeMap<u32, u64>,
    batch: Option<u64>,
}

/// A request checkpointed before a crash: its host-side checkpoint
/// survives the process, so it can restore on another engine by paying
/// the Eq.-6 KV re-transfer instead of a fresh prefill. Carries the
/// timing history the destination needs for honest latency accounting.
#[derive(Debug, Clone, Copy)]
pub struct RestorableRequest {
    /// The request itself (arrival restamped on re-injection).
    pub request: Request,
    /// Tokens produced before the last checkpoint.
    pub produced: usize,
    /// Original decode start, kept across checkpoints.
    pub start: Option<f64>,
    /// When the first token was produced, if any.
    pub first_token: Option<f64>,
    /// Times this request has been checkpointed so far.
    pub preemptions: usize,
}

/// A request a `Prefill`-role engine retired at its first token,
/// packaged for the KV hop to a decode replica. The restorable carries
/// the request with its *original* arrival plus the timing history
/// (start, first token, produced = 1) the decode side needs for honest
/// latency accounting; `kv_bytes` is the resident KV under the sparse
/// budget — exactly what the interconnect moves, and the quantity the
/// `table3_disagg` bench shows shrinking versus dense baselines.
#[derive(Debug, Clone, Copy)]
pub struct HandoffRecord {
    /// The request plus its produced/timing history.
    pub restorable: RestorableRequest,
    /// The prefill engine's clock when the handoff was emitted (the
    /// request's first-token time).
    pub emitted: f64,
    /// Device-resident KV bytes to move over the interconnect.
    pub kv_bytes: f64,
}

/// Everything a crash tears out of an engine — see
/// [`BatchState::crash_dump`].
#[derive(Debug, Clone, Default)]
pub struct CrashedWork {
    /// Requests whose device-resident state died with the process: the
    /// running batch plus queued fresh arrivals. They restart from
    /// scratch (the cluster's retry path).
    pub lost: Vec<Request>,
    /// Queued entries holding host-side checkpoints (preempted before
    /// the crash): eligible for restore on a surviving engine.
    pub checkpointed: Vec<RestorableRequest>,
}

/// The incremental state of one continuous-batching engine: per-tenant
/// wait queues, running batch, completions and the local clock.
///
/// [`Scheduler::run`] drives a `BatchState` to completion over a whole
/// trace; the `spec_serve` cluster simulator instead drives one per
/// replica, event by event, feeding arrivals in as its router assigns
/// them. Both paths execute the identical [`Scheduler::step`] code, so a
/// 1-replica cluster reproduces `Scheduler::run` bit-for-bit.
#[derive(Debug, Clone)]
pub struct BatchState {
    queues: BTreeMap<u32, TenantQueue>,
    running: Vec<Running>,
    completed: Vec<CompletedRequest>,
    rejected: Vec<Request>,
    now: f64,
    iter: usize,
    /// Whether the admission sweep for the current iteration already
    /// closed (hit a future arrival, a full batch, or an empty queue).
    sweep_done: bool,
    last_arrival: f64,
    next_seq: u64,
    /// The tenant id the DRR rotation visited last.
    drr_last: Option<u32>,
    /// Gauge change-tracking for traced runs (empty when untraced).
    gauges: GaugeShadow,
    /// Straggler multiplier on device-priced costs (1.0 = nominal).
    time_scale: f64,
    /// Which phase this engine serves. `Unified` (the default) is the
    /// monolithic behaviour, bit-identical to the pre-role scheduler.
    role: ReplicaRole,
    /// Handoffs a `Prefill`-role engine has emitted and nobody
    /// collected yet.
    handoffs: Vec<HandoffRecord>,
}

impl Default for BatchState {
    fn default() -> Self {
        Self {
            queues: BTreeMap::new(),
            running: Vec::new(),
            completed: Vec::new(),
            rejected: Vec::new(),
            now: 0.0,
            iter: 0,
            sweep_done: false,
            last_arrival: 0.0,
            next_seq: 0,
            drr_last: None,
            gauges: GaugeShadow::default(),
            time_scale: 1.0,
            role: ReplicaRole::Unified,
            handoffs: Vec::new(),
        }
    }
}

impl BatchState {
    /// An empty engine at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The engine's straggler multiplier on device-priced costs.
    pub fn time_scale(&self) -> f64 {
        self.time_scale
    }

    /// Which phase this engine serves.
    pub fn role(&self) -> ReplicaRole {
        self.role
    }

    /// Sets the engine's role. `Unified` runs the whole request
    /// lifecycle (the default, bit-identical to the pre-role
    /// scheduler); `Prefill` retires each request at its first token
    /// into a [`HandoffRecord`]; `Decode` admits delivered handoffs via
    /// [`BatchState::push_preloaded`] and runs the remaining
    /// iterations.
    pub fn set_role(&mut self, role: ReplicaRole) {
        self.role = role;
    }

    /// Drains the handoffs a `Prefill`-role engine has emitted since
    /// the last call, in emission order.
    pub fn take_handoffs(&mut self) -> Vec<HandoffRecord> {
        std::mem::take(&mut self.handoffs)
    }

    /// Whether any emitted handoff is still waiting for collection.
    pub fn has_handoffs(&self) -> bool {
        !self.handoffs.is_empty()
    }

    /// Sets the straggler multiplier: prefill, decode iterations and KV
    /// checkpoint/restore transfers cost `scale`× their nominal time.
    /// The idle clock jump to the next arrival is *not* scaled (waiting
    /// is not compute). The default 1.0 is exact — `x * 1.0 == x`
    /// bit-for-bit — so an engine that never straggles is bit-identical
    /// to one without the knob.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is finite and positive.
    pub fn set_time_scale(&mut self, scale: f64) {
        assert!(
            scale.is_finite() && scale > 0.0,
            "time_scale must be finite and positive, got {scale}"
        );
        self.time_scale = scale;
    }

    /// Jumps the clock forward to `t` if it lags behind (restart after a
    /// crash outage: the engine was down, not computing).
    pub fn skip_to(&mut self, t: f64) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Simulates a process crash: tears all queued and running work out
    /// of the engine and resets the admission sweep. Queued entries
    /// holding a host-side checkpoint (`produced > 0`, written by a
    /// preemption before the crash) survive as restorable; everything
    /// else — the running batch, whose device state died with the
    /// process, and fresh queued arrivals — is lost and must retry from
    /// scratch. Completions, rejections and the clock are untouched.
    /// Ordering is deterministic: the running batch in admission order,
    /// then queues in tenant-id order.
    pub fn crash_dump(&mut self) -> CrashedWork {
        let mut out = CrashedWork::default();
        for r in self.running.drain(..) {
            out.lost.push(r.req);
        }
        for q in self.queues.values_mut() {
            for e in q.queue.drain(..) {
                // Preloaded handoffs live in device memory only — no
                // host checkpoint survives the crash.
                if e.produced > 0 && !e.preloaded {
                    out.checkpointed.push(RestorableRequest {
                        request: e.req,
                        produced: e.produced,
                        start: e.start,
                        first_token: e.first_token,
                        preemptions: e.preemptions,
                    });
                } else {
                    out.lost.push(e.req);
                }
            }
            q.deficit = 0;
        }
        self.sweep_done = false;
        out
    }

    /// Re-enqueues a checkpoint rescued from a crashed engine (cluster
    /// failover): the entry keeps its produced tokens and timing
    /// history, so its admission charges the Eq.-6 KV re-transfer — a
    /// restore, not a fresh prefill. `arrival` restamps the request for
    /// the destination's arrival-order contract; the caller owns mapping
    /// latency metrics back to the original arrival.
    ///
    /// # Panics
    ///
    /// Panics if `arrival` precedes a previously pushed request.
    pub fn push_restorable<S: TelemetrySink>(
        &mut self,
        restorable: RestorableRequest,
        arrival: f64,
        sink: &mut S,
    ) {
        let mut req = restorable.request;
        req.arrival = arrival;
        assert!(
            req.arrival >= self.last_arrival,
            "requests must be pushed in arrival order ({} after {})",
            req.arrival,
            self.last_arrival
        );
        self.last_arrival = req.arrival;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queues
            .entry(req.tenant)
            .or_default()
            .queue
            .push_back(QueueEntry {
                req,
                seq,
                produced: restorable.produced,
                start: restorable.start,
                first_token: restorable.first_token,
                preemptions: restorable.preemptions,
                preloaded: false,
            });
        emit(
            sink,
            req.arrival,
            EventKind::Enqueued {
                request: req.id as u64,
                tenant: req.tenant,
            },
        );
    }

    /// Re-enqueues a delivered prefill handoff whose KV the
    /// interconnect already placed on this engine
    /// ([`BatchState::push_restorable`] with `preloaded` set): its
    /// admission charges nothing — the cluster priced the whole hop,
    /// GPUDirect-style, when it delayed delivery by the link time — and
    /// emits [`EventKind::Restored`] rather than a fresh admission. A
    /// later preemption clears the flag, so re-restores pay PCIe like
    /// any checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `arrival` precedes a previously pushed request.
    pub fn push_preloaded<S: TelemetrySink>(
        &mut self,
        restorable: RestorableRequest,
        arrival: f64,
        sink: &mut S,
    ) {
        let mut req = restorable.request;
        req.arrival = arrival;
        assert!(
            req.arrival >= self.last_arrival,
            "requests must be pushed in arrival order ({} after {})",
            req.arrival,
            self.last_arrival
        );
        self.last_arrival = req.arrival;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queues
            .entry(req.tenant)
            .or_default()
            .queue
            .push_back(QueueEntry {
                req,
                seq,
                produced: restorable.produced,
                start: restorable.start,
                first_token: restorable.first_token,
                preemptions: restorable.preemptions,
                preloaded: true,
            });
        emit(
            sink,
            req.arrival,
            EventKind::Enqueued {
                request: req.id as u64,
                tenant: req.tenant,
            },
        );
    }

    /// Enqueues an arrived request on its tenant's queue.
    ///
    /// # Panics
    ///
    /// Panics if `req` arrives earlier than a previously pushed request
    /// (arrivals must be fed in nondecreasing order).
    pub fn push(&mut self, req: Request) {
        self.push_traced(req, &mut NullSink);
    }

    /// [`BatchState::push`] with telemetry: emits
    /// [`EventKind::Enqueued`] stamped at the request's arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `req` arrives earlier than a previously pushed request
    /// (arrivals must be fed in nondecreasing order).
    pub fn push_traced<S: TelemetrySink>(&mut self, req: Request, sink: &mut S) {
        assert!(
            req.arrival >= self.last_arrival,
            "requests must be pushed in arrival order ({} after {})",
            req.arrival,
            self.last_arrival
        );
        self.last_arrival = req.arrival;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queues
            .entry(req.tenant)
            .or_default()
            .queue
            .push_back(QueueEntry {
                req,
                seq,
                produced: 0,
                start: None,
                first_token: None,
                preemptions: 0,
                preloaded: false,
            });
        emit(
            sink,
            req.arrival,
            EventKind::Enqueued {
                request: req.id as u64,
                tenant: req.tenant,
            },
        );
    }

    /// Whether any request is still queued or decoding.
    pub fn has_work(&self) -> bool {
        !self.running.is_empty() || self.queues.values().any(|q| !q.queue.is_empty())
    }

    /// The engine's local clock, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Queued (not yet admitted or checkpointed) requests.
    pub fn queued(&self) -> usize {
        self.queues.values().map(|q| q.queue.len()).sum()
    }

    /// Requests currently decoding.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Queued + running requests — the router's load signal.
    pub fn outstanding(&self) -> usize {
        self.queued() + self.running.len()
    }

    /// The requests currently decoding, in admission order.
    pub fn running_requests(&self) -> impl Iterator<Item = &Request> {
        self.running.iter().map(|r| &r.req)
    }

    /// The requests waiting for admission, grouped by tenant id and in
    /// queue order within each tenant.
    pub fn queued_requests(&self) -> impl Iterator<Item = &Request> {
        self.queues
            .values()
            .flat_map(|q| q.queue.iter().map(|e| &e.req))
    }

    /// Requests finished so far, in finish order.
    pub fn completed(&self) -> &[CompletedRequest] {
        &self.completed
    }

    /// Requests rejected so far (could never be admitted, even alone).
    pub fn rejected(&self) -> usize {
        self.rejected.len()
    }

    /// The rejected requests themselves (per-tenant SLO accounting needs
    /// their tenant ids, not just the count).
    pub fn rejected_requests(&self) -> &[Request] {
        &self.rejected
    }

    /// Consumes the state into `(completed, rejected)`.
    pub fn into_outcome(self) -> (Vec<CompletedRequest>, usize) {
        (self.completed, self.rejected.len())
    }

    /// Tenant ids with any queued work, in id order.
    fn waiting_tenants(&self) -> impl Iterator<Item = u32> + '_ {
        self.queues
            .iter()
            .filter(|(_, q)| !q.queue.is_empty())
            .map(|(&t, _)| t)
    }

    /// The earliest head arrival across tenant queues.
    fn earliest_head_arrival(&self) -> Option<f64> {
        self.queues
            .values()
            .filter_map(|q| q.queue.front())
            .map(|e| e.req.arrival)
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Emits per-tick gauges (queue depths, DRR deficits, batch size)
    /// for every value that changed since the last emission. Callers
    /// guard on `sink.enabled()`, so untraced runs never touch the
    /// shadow.
    fn emit_gauges<S: TelemetrySink>(&mut self, sink: &mut S) {
        let now = self.now;
        let shadow = &mut self.gauges;
        for (&tenant, q) in &self.queues {
            let depth = q.queue.len() as u64;
            if shadow.queue_depth.get(&tenant) != Some(&depth) {
                shadow.queue_depth.insert(tenant, depth);
                emit(sink, now, EventKind::QueueDepth { tenant, depth });
            }
            if shadow.deficit.get(&tenant) != Some(&q.deficit) {
                shadow.deficit.insert(tenant, q.deficit);
                emit(
                    sink,
                    now,
                    EventKind::DrrDeficit {
                        tenant,
                        deficit: q.deficit,
                    },
                );
            }
        }
        let batch = self.running.len() as u64;
        if shadow.batch != Some(batch) {
            shadow.batch = Some(batch);
            emit(sink, now, EventKind::RunningBatch { size: batch });
        }
    }
}

impl Scheduler {
    /// Creates a scheduler for `system` on the given serving simulator.
    pub fn new(sim: ServingSim, system: SystemKind, cfg: SchedulerConfig) -> Self {
        Self { sim, system, cfg }
    }

    /// The underlying serving simulator.
    pub fn sim(&self) -> &ServingSim {
        &self.sim
    }

    /// The system being scheduled.
    pub fn system(&self) -> SystemKind {
        self.system
    }

    /// The scheduling configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Runs the request trace to completion.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty or not sorted by arrival, or if
    /// the config's `admission_stride` is zero.
    pub fn run(&self, requests: &[Request]) -> ScheduleReport {
        self.run_traced(requests, &mut NullSink)
    }

    /// [`Scheduler::run`] with telemetry: every lifecycle edge and gauge
    /// transition of the run flows into `sink`. With [`NullSink`] this
    /// *is* `run` — the instrumentation monomorphizes away.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty or not sorted by arrival, or if
    /// the config's `admission_stride` is zero.
    pub fn run_traced<S: TelemetrySink>(
        &self,
        requests: &[Request],
        sink: &mut S,
    ) -> ScheduleReport {
        assert!(!requests.is_empty(), "no requests");
        assert!(
            requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "requests must be sorted by arrival"
        );
        let mut state = BatchState::new();
        for req in requests {
            state.push_traced(*req, sink);
        }
        let mut cache = StepCache::new();
        while state.has_work() {
            self.step_traced(&mut state, &mut cache, sink);
        }
        let makespan = state.now;
        let (completed, rejected) = state.into_outcome();
        ScheduleReport::from_completed(completed, makespan, rejected)
    }

    /// The pre-tenant scheduler, kept verbatim as the pinning reference
    /// (the same convention as the selection engine's `*_reference`
    /// kernels): one global FIFO, no preemption. `tests/fairness.rs`
    /// property-tests that [`Scheduler::run`] under a single tenant with
    /// preemption off reproduces this bit-for-bit, whatever the
    /// discipline.
    pub fn run_reference(&self, requests: &[Request]) -> ScheduleReport {
        assert!(!requests.is_empty(), "no requests");
        assert!(
            self.cfg.admission_stride > 0,
            "admission_stride must be positive"
        );
        let mut queue: VecDeque<Request> = requests.iter().copied().collect();
        let mut running: Vec<Running> = Vec::new();
        let mut completed: Vec<CompletedRequest> = Vec::new();
        let mut rejected = 0usize;
        let mut now = 0.0f64;
        let mut iter = 0usize;
        let mut cache = StepCache::new();
        while !queue.is_empty() || !running.is_empty() {
            if iter.is_multiple_of(self.cfg.admission_stride) {
                // Admission sweep: pull every admissible head.
                while let Some(&head) = queue.front() {
                    if head.arrival > now && running.is_empty() {
                        now = head.arrival;
                    }
                    if head.arrival > now || running.len() >= self.cfg.max_batch {
                        break;
                    }
                    if !self.admissible(&running, &head) {
                        if running.is_empty() {
                            rejected += 1;
                            queue.pop_front();
                            continue;
                        }
                        break;
                    }
                    queue.pop_front();
                    now += self.prefill_time(&head, &mut cache);
                    running.push(Running {
                        req: head,
                        produced: 0,
                        start: now,
                        first_token: None,
                        preemptions: 0,
                    });
                }
            }
            if running.is_empty() {
                iter += 1;
                continue;
            }
            now += self.iteration_time(&running, &mut cache);
            iter += 1;
            for r in running.iter_mut() {
                r.produced += 1;
                if r.first_token.is_none() {
                    r.first_token = Some(now);
                }
            }
            running.retain(|r| {
                if r.produced >= r.req.output_len {
                    completed.push(CompletedRequest {
                        request: r.req,
                        start: r.start,
                        first_token: r.first_token.expect("token after iteration"),
                        finish: now,
                        preemptions: r.preemptions,
                    });
                    false
                } else {
                    true
                }
            });
        }
        ScheduleReport::from_completed(completed, now, rejected)
    }

    /// Executes one scheduling micro-step: a single admission decision
    /// while an admission sweep is open, otherwise a single decode
    /// iteration for the running batch (a step with an empty batch only
    /// advances the admission phase). This is the loop body of
    /// [`Scheduler::run`] split at decision granularity, exposed so
    /// external event loops (the `spec_serve` replicas) can interleave
    /// stepping with routing: the clock never advances by more than one
    /// admission decision (a preemptive admission charges the victim's
    /// checkpoint and the waiter's prefill/restore as one decision) or
    /// one iteration per call, so a router can inject an arrival the
    /// moment the replica's clock passes it — exactly what the closed
    /// loop sees with the full trace queued upfront.
    ///
    /// # Panics
    ///
    /// Panics if the config's `admission_stride` is zero.
    pub fn step(&self, state: &mut BatchState, cache: &mut StepCache) {
        self.step_traced(state, cache, &mut NullSink);
    }

    /// [`Scheduler::step`] with telemetry: admissions, preemptions,
    /// first tokens, completions and rejections are emitted as they
    /// happen, and gauge transitions after every decision/iteration.
    /// With [`NullSink`] this *is* `step` — the same machine code.
    ///
    /// # Panics
    ///
    /// Panics if the config's `admission_stride` is zero.
    pub fn step_traced<S: TelemetrySink>(
        &self,
        state: &mut BatchState,
        cache: &mut StepCache,
        sink: &mut S,
    ) {
        assert!(
            self.cfg.admission_stride > 0,
            "admission_stride must be positive"
        );
        // Admission: one decision per call while the sweep is open.
        if state.iter.is_multiple_of(self.cfg.admission_stride) && !state.sweep_done {
            self.admission_decision(state, cache, sink);
            if sink.enabled() {
                state.emit_gauges(sink);
            }
            return;
        }
        if state.running.is_empty() {
            state.iter += 1;
            state.sweep_done = false;
            return;
        }
        // One decode iteration for the whole batch.
        state.now += self.iteration_time(&state.running, cache) * state.time_scale;
        state.iter += 1;
        state.sweep_done = false;
        let now = state.now;
        for r in state.running.iter_mut() {
            r.produced += 1;
            if r.first_token.is_none() {
                r.first_token = Some(now);
                emit(
                    sink,
                    now,
                    EventKind::FirstToken {
                        request: r.req.id as u64,
                        tenant: r.req.tenant,
                    },
                );
            }
        }
        for r in &state.running {
            state.queues.entry(r.req.tenant).or_default().served += 1;
        }
        let role = state.role;
        let completed = &mut state.completed;
        let handoffs = &mut state.handoffs;
        state.running.retain(|r| {
            if r.produced >= r.req.output_len {
                completed.push(CompletedRequest {
                    request: r.req,
                    start: r.start,
                    first_token: r.first_token.expect("token after iteration"),
                    finish: now,
                    preemptions: r.preemptions,
                });
                emit(
                    sink,
                    now,
                    EventKind::Completed {
                        request: r.req.id as u64,
                        tenant: r.req.tenant,
                    },
                );
                false
            } else if role == ReplicaRole::Prefill {
                // A prefill engine is done with a request the moment its
                // first token exists: retire it into a handoff carrying
                // the resident KV (sparse-budget-capped) for the decode
                // hop. Requests whose whole output was that one token
                // completed above and never pay the hop.
                let kv_bytes = self.resident_tokens(&r.req, r.produced) as f64
                    * self.sim.memory_model().kv_token_total_bytes();
                handoffs.push(HandoffRecord {
                    restorable: RestorableRequest {
                        request: r.req,
                        produced: r.produced,
                        start: Some(r.start),
                        first_token: r.first_token,
                        preemptions: r.preemptions,
                    },
                    emitted: now,
                    kv_bytes,
                });
                emit(
                    sink,
                    now,
                    EventKind::HandoffEmitted {
                        request: r.req.id as u64,
                        tenant: r.req.tenant,
                        bytes: kv_bytes as u64,
                    },
                );
                false
            } else {
                true
            }
        });
        if sink.enabled() {
            state.emit_gauges(sink);
        }
    }

    /// One admission decision: pick the next waiting request under the
    /// configured discipline, then admit, reject, preempt-and-admit, or
    /// close the sweep.
    fn admission_decision<S: TelemetrySink>(
        &self,
        state: &mut BatchState,
        cache: &mut StepCache,
        sink: &mut S,
    ) {
        if state.queued() == 0 {
            state.sweep_done = true;
            return;
        }
        // Idle engine: jump the clock to the next arrival, exactly like
        // the single-FIFO reference.
        if state.running.is_empty() {
            let earliest = state.earliest_head_arrival().expect("queued work");
            if earliest > state.now {
                state.now = earliest;
            }
        }
        let Some(tenant) = self.select_tenant(state) else {
            // Heads exist but none has arrived yet.
            state.sweep_done = true;
            return;
        };
        let entry = *state.queues[&tenant].queue.front().expect("selected head");
        if state.running.len() >= self.cfg.max_batch {
            self.preempt_for(state, cache, tenant, &entry, sink);
            return;
        }
        if !self.admissible(&state.running, &entry.req) {
            if state.running.is_empty() {
                // Can never run, even alone.
                let q = state.queues.get_mut(&tenant).expect("selected queue");
                q.queue.pop_front();
                if q.queue.is_empty() {
                    q.deficit = 0;
                }
                state.rejected.push(entry.req);
                emit(
                    sink,
                    state.now,
                    EventKind::Rejected {
                        request: entry.req.id as u64,
                        tenant: entry.req.tenant,
                    },
                );
                return; // sweep stays open for the next head
            }
            self.preempt_for(state, cache, tenant, &entry, sink);
            return;
        }
        self.admit(state, cache, tenant, sink);
    }

    /// Pops `tenant`'s head and moves it into the running batch,
    /// charging prefill (fresh) or the KV restore transfer (checkpointed).
    fn admit<S: TelemetrySink>(
        &self,
        state: &mut BatchState,
        cache: &mut StepCache,
        tenant: u32,
        sink: &mut S,
    ) {
        let q = state.queues.get_mut(&tenant).expect("selected queue");
        let entry = q.queue.pop_front().expect("selected head");
        let cost = remaining_tokens(&entry) as u64;
        q.deficit = q.deficit.saturating_sub(cost);
        if q.queue.is_empty() {
            q.deficit = 0;
        }
        if entry.preloaded {
            // Delivered prefill handoff: the KV is already resident (the
            // cluster priced the interconnect hop, device placement
            // included), so admission costs nothing.
            emit(
                sink,
                state.now,
                EventKind::Restored {
                    request: entry.req.id as u64,
                    tenant: entry.req.tenant,
                },
            );
        } else if entry.produced == 0 {
            state.now += self.prefill_time(&entry.req, cache) * state.time_scale;
            emit(
                sink,
                state.now,
                EventKind::Admitted {
                    request: entry.req.id as u64,
                    tenant: entry.req.tenant,
                },
            );
        } else {
            state.now += self.kv_transfer_time(&entry.req, entry.produced) * state.time_scale;
            emit(
                sink,
                state.now,
                EventKind::Restored {
                    request: entry.req.id as u64,
                    tenant: entry.req.tenant,
                },
            );
        }
        state.running.push(Running {
            req: entry.req,
            produced: entry.produced,
            start: entry.start.unwrap_or(state.now),
            first_token: entry.first_token,
            preemptions: entry.preemptions,
        });
    }

    /// Tries to checkpoint a running victim so the blocked `entry` can
    /// enter the batch this decision; closes the sweep when the policy
    /// yields no eligible victim or evicting one would not unblock the
    /// waiter.
    fn preempt_for<S: TelemetrySink>(
        &self,
        state: &mut BatchState,
        cache: &mut StepCache,
        tenant: u32,
        entry: &QueueEntry,
        sink: &mut S,
    ) {
        let Some(victim_idx) = self.pick_victim(state, entry) else {
            state.sweep_done = true;
            return;
        };
        // Eviction must actually unblock the waiter memory-wise (the
        // batch slot is never the issue: the batch can't exceed
        // max_batch, so one eviction always frees a slot).
        let victim = state.running[victim_idx];
        if !self.admissible_without(&state.running, victim_idx, &entry.req) {
            state.sweep_done = true;
            return;
        }
        // Checkpoint: save the victim's resident KV over PCIe and park
        // it at the front of its tenant queue (it resumes before that
        // tenant's fresh arrivals).
        state.now += self.kv_transfer_time(&victim.req, victim.produced) * state.time_scale;
        state.running.remove(victim_idx);
        state
            .queues
            .entry(victim.req.tenant)
            .or_default()
            .queue
            .push_front(QueueEntry {
                req: victim.req,
                seq: 0, // resumes first under FIFO too: it predates the queue
                produced: victim.produced,
                start: Some(victim.start),
                first_token: victim.first_token,
                preemptions: victim.preemptions + 1,
                // The checkpoint now lives host-side; the restore pays
                // PCIe even if the KV originally arrived preloaded.
                preloaded: false,
            });
        if sink.enabled() {
            let request = victim.req.id as u64;
            emit(
                sink,
                state.now,
                EventKind::Preempted {
                    request,
                    tenant: victim.req.tenant,
                },
            );
            let bytes = (self.resident_tokens(&victim.req, victim.produced) as f64
                * self.sim.memory_model().kv_token_total_bytes()) as u64;
            emit(
                sink,
                state.now,
                EventKind::CheckpointWritten { request, bytes },
            );
        }
        self.admit(state, cache, tenant, sink);
    }

    /// The index of the victim the preemption policy picks for the
    /// blocked `entry`, or `None` when no running request is eligible.
    /// Eligibility: a different tenant, strictly more remaining output
    /// than the waiter (so the preemption chain terminates), at least
    /// one produced token (its restore has something to checkpoint), and
    /// under the per-request preemption cap.
    fn pick_victim(&self, state: &BatchState, entry: &QueueEntry) -> Option<usize> {
        if self.cfg.fair.preemption == PreemptionPolicy::None {
            return None;
        }
        let waiter_remaining = remaining_tokens(entry);
        let eligible = |r: &Running| {
            r.req.tenant != entry.req.tenant
                && r.produced > 0
                && r.preemptions < self.cfg.fair.max_preemptions
                && r.req.output_len - r.produced > waiter_remaining
        };
        let remaining = |r: &Running| r.req.output_len - r.produced;
        match self.cfg.fair.preemption {
            PreemptionPolicy::None => None,
            PreemptionPolicy::LongestFirst => state
                .running
                .iter()
                .enumerate()
                .filter(|(_, r)| eligible(r))
                .max_by(|(_, a), (_, b)| {
                    remaining(a)
                        .cmp(&remaining(b))
                        .then(b.req.id.cmp(&a.req.id))
                })
                .map(|(i, _)| i),
            PreemptionPolicy::DeficitRoundRobin => {
                // Most over-served tenant first: served tokens per unit
                // weight, exact in integers via cross-multiplication.
                let norm = |r: &Running| {
                    let served = state
                        .queues
                        .get(&r.req.tenant)
                        .map(|q| q.served)
                        .unwrap_or(0);
                    (served, self.cfg.fair.weight(r.req.tenant) as u64)
                };
                state
                    .running
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| eligible(r))
                    .max_by(|(_, a), (_, b)| {
                        let (sa, wa) = norm(a);
                        let (sb, wb) = norm(b);
                        (sa * wb)
                            .cmp(&(sb * wa))
                            .then(remaining(a).cmp(&remaining(b)))
                            .then(b.req.id.cmp(&a.req.id))
                    })
                    .map(|(i, _)| i)
            }
        }
    }

    /// Picks the tenant whose head goes next, among tenants whose head
    /// has arrived. `None` when every queued head is still in the
    /// future.
    fn select_tenant(&self, state: &mut BatchState) -> Option<u32> {
        let arrived: Vec<u32> = state
            .waiting_tenants()
            .filter(|t| {
                state.queues[t]
                    .queue
                    .front()
                    .is_some_and(|e| e.req.arrival <= state.now)
            })
            .collect();
        match (arrived.as_slice(), self.cfg.fair.discipline) {
            ([], _) => None,
            ([only], _) => Some(*only),
            (_, QueueDiscipline::Fifo) => {
                // Global push order: the smallest sequence number wins
                // (checkpointed entries carry seq 0 and resume first).
                arrived
                    .iter()
                    .copied()
                    .min_by_key(|t| state.queues[t].queue.front().map(|e| e.seq))
            }
            (_, QueueDiscipline::DeficitRoundRobin) => {
                // Rotate in tenant-id order from the last visited tenant,
                // granting quantum × weight per visit, until some arrived
                // head's remaining output fits its tenant's deficit. The
                // deficit only ever *orders* tenants — it keeps growing
                // until someone affords, so admission is never delayed
                // beyond what memory allows.
                let quantum = self.cfg.fair.quantum_tokens.max(1) as u64;
                loop {
                    let next = arrived
                        .iter()
                        .copied()
                        .find(|&t| state.drr_last.is_none_or(|last| t > last))
                        .or_else(|| arrived.first().copied())
                        .expect("nonempty arrived set");
                    state.drr_last = Some(next);
                    let q = state.queues.get_mut(&next).expect("arrived tenant");
                    let cost = q.queue.front().map(remaining_tokens).unwrap_or(0) as u64;
                    if q.deficit >= cost {
                        return Some(next);
                    }
                    q.deficit += quantum * self.cfg.fair.weight(next) as u64;
                }
            }
        }
    }

    /// Whether adding `req` to the running batch fits in GPU memory at
    /// the *final* lengths (conservative admission).
    fn admissible(&self, running: &[Running], req: &Request) -> bool {
        self.admissible_at(
            running.iter().map(|r| r.req.input_len + r.req.output_len),
            running.len() + 1,
            req,
        )
    }

    /// [`Scheduler::admissible`] with the running request at `skip`
    /// excluded — the preemption check "would evicting this victim
    /// unblock the waiter", without materializing the reduced batch.
    fn admissible_without(&self, running: &[Running], skip: usize, req: &Request) -> bool {
        self.admissible_at(
            running
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, r)| r.req.input_len + r.req.output_len),
            running.len(),
            req,
        )
    }

    fn admissible_at(
        &self,
        final_lens: impl Iterator<Item = usize>,
        batch: usize,
        req: &Request,
    ) -> bool {
        let mm = self.sim.memory_model();
        let max_len = final_lens
            .chain([req.input_len + req.output_len])
            .max()
            .unwrap_or(0);
        match self.system {
            SystemKind::SpeContext => {
                // Adaptive placement: admissible if full offload fits.
                mm.m_part(batch, max_len, mm.layers, self.sim_budget()) <= mm.gpu_mem as f64
            }
            _ => mm.fits_all(batch, max_len),
        }
    }

    fn sim_budget(&self) -> usize {
        self.sim.budget()
    }

    /// Tokens of `req`'s KV resident on the GPU once `produced` tokens
    /// exist — the checkpoint/restore transfer size. Sparse systems keep
    /// at most the retrieval budget per request; full systems keep the
    /// whole context.
    fn resident_tokens(&self, req: &Request, produced: usize) -> usize {
        let total = req.input_len + produced;
        match self.system {
            SystemKind::SpeContext => total.min(self.sim.budget()),
            _ => total,
        }
    }

    /// The one-way PCIe time to move `req`'s resident KV at the memory
    /// model's bytes/token — paid once to checkpoint and once to
    /// restore.
    fn kv_transfer_time(&self, req: &Request, produced: usize) -> f64 {
        let bytes = self.resident_tokens(req, produced) as f64
            * self.sim.memory_model().kv_token_total_bytes();
        self.sim.device().pcie_time(bytes)
    }

    /// Prefill latency for one prompt, memoized per `(system, input_len)`
    /// — admission re-prefills identical prompt lengths constantly.
    fn prefill_time(&self, req: &Request, cache: &mut StepCache) -> f64 {
        let key = (self.system, req.input_len);
        if let Some(&t) = cache.prefill.get(&key) {
            return t;
        }
        let t = self
            .sim
            .throughput(self.system, &Workload::new(req.input_len, 1, 1))
            .prefill_s;
        cache.prefill.insert(key, t);
        t
    }

    /// Iteration latency at the current batch composition: the per-step
    /// dataflow timeline at the batch's mean sequence length, memoized
    /// across iterations through the run's step cache.
    fn iteration_time(&self, running: &[Running], cache: &mut StepCache) -> f64 {
        let batch = running.len();
        let mean_len: usize = running
            .iter()
            .map(|r| r.req.input_len + r.produced)
            .sum::<usize>()
            / batch;
        self.sim
            .step_time_cached(cache, self.system, batch, mean_len, mean_len)
    }
}

fn remaining_tokens(entry: &QueueEntry) -> usize {
    entry.req.output_len.saturating_sub(entry.produced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_hwsim::DeviceSpec;
    use spec_model::ModelConfig;

    fn sim() -> ServingSim {
        ServingSim::new(
            ModelConfig::deepseek_distill_llama_8b(),
            DeviceSpec::a100_80g(),
            2048,
        )
    }

    fn trace(n: usize, spacing: f64) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                id: i,
                tenant: 0,
                input_len: 2048,
                output_len: 1024,
                arrival: i as f64 * spacing,
            })
            .collect()
    }

    #[test]
    fn all_requests_complete_in_fifo_friendly_trace() {
        let s = Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default());
        let report = s.run(&trace(8, 0.1));
        assert_eq!(report.completed.len(), 8);
        assert_eq!(report.rejected, 0);
        assert!(report.throughput > 0.0);
        for c in &report.completed {
            assert!(c.finish > c.start);
            assert!(c.start >= c.request.arrival);
            assert!(c.first_token > c.start, "first token needs an iteration");
            assert!(c.first_token <= c.finish);
        }
    }

    #[test]
    fn batching_system_outperforms_single_request_system() {
        let reqs = trace(6, 0.01);
        let ours =
            Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default()).run(&reqs);
        let quest_cfg = SchedulerConfig {
            max_batch: 1,
            ..SchedulerConfig::default()
        };
        let quest = Scheduler::new(sim(), SystemKind::Quest, quest_cfg).run(&reqs);
        assert!(
            ours.throughput > quest.throughput,
            "ours {} vs single-request {}",
            ours.throughput,
            quest.throughput
        );
        assert!(ours.latency.mean < quest.latency.mean);
    }

    #[test]
    fn memory_pressure_limits_full_attention_batch() {
        // Full attention at 33K final length cannot batch as deep as the
        // sparse system: its makespan suffers.
        let reqs: Vec<Request> = (0..8)
            .map(|i| Request {
                id: i,
                tenant: 0,
                input_len: 2048,
                output_len: 31 * 1024,
                arrival: 0.0,
            })
            .collect();
        let full = Scheduler::new(
            sim(),
            SystemKind::FullFlashInfer,
            SchedulerConfig::default(),
        )
        .run(&reqs);
        let ours =
            Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default()).run(&reqs);
        assert!(ours.throughput > full.throughput);
    }

    #[test]
    fn oversized_requests_are_rejected_not_hung() {
        let reqs = vec![Request {
            id: 0,
            tenant: 0,
            input_len: 10_000_000, // cannot fit even alone
            output_len: 10_000_000,
            arrival: 0.0,
        }];
        let s = Scheduler::new(
            sim(),
            SystemKind::FullFlashInfer,
            SchedulerConfig::default(),
        );
        let report = s.run(&reqs);
        assert_eq!(report.rejected, 1);
        assert!(report.completed.is_empty());
    }

    #[test]
    fn p95_at_least_mean() {
        let s = Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default());
        let report = s.run(&trace(10, 0.5));
        assert!(report.latency.p95 >= report.latency.mean * 0.5);
    }

    #[test]
    fn ttft_includes_the_first_decode_iteration() {
        let s = Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default());
        let report = s.run(&trace(1, 0.0));
        let c = &report.completed[0];
        // TTFT strictly exceeds queueing + prefill: the first iteration
        // has to finish before a token exists.
        assert!(c.time_to_first_token() > c.start - c.request.arrival);
        // TBT spans output_len - 1 intervals from the first token.
        let expect = (c.finish - c.first_token) / (c.request.output_len - 1) as f64;
        assert!((c.time_between_tokens() - expect).abs() < 1e-12);
    }

    #[test]
    fn single_token_output_has_zero_tbt() {
        let done = CompletedRequest {
            request: Request {
                id: 0,
                tenant: 0,
                input_len: 128,
                output_len: 1,
                arrival: 0.0,
            },
            start: 1.0,
            first_token: 1.5,
            finish: 1.5,
            preemptions: 0,
        };
        assert_eq!(done.time_between_tokens(), 0.0);
    }

    fn two_tenant_trace() -> Vec<Request> {
        // Tenant 1 floods long generations at t=0; tenant 0 sends short
        // interactive requests while the batch is saturated.
        let mut reqs: Vec<Request> = (0..6)
            .map(|i| Request {
                id: i,
                tenant: 1,
                input_len: 2048,
                output_len: 8192,
                arrival: 0.0,
            })
            .collect();
        for i in 0..4 {
            reqs.push(Request {
                id: 6 + i,
                tenant: 0,
                input_len: 512,
                output_len: 128,
                arrival: 2.0 + i as f64,
            });
        }
        reqs
    }

    fn fair_cfg(preemption: PreemptionPolicy) -> SchedulerConfig {
        SchedulerConfig {
            max_batch: 4,
            admission_stride: 4,
            fair: FairConfig {
                discipline: QueueDiscipline::DeficitRoundRobin,
                weights: vec![(0, 4), (1, 1)],
                preemption,
                ..FairConfig::default()
            },
        }
    }

    #[test]
    fn preemption_rescues_short_tenant_ttft() {
        let reqs = two_tenant_trace();
        let fifo_cfg = SchedulerConfig {
            max_batch: 4,
            admission_stride: 4,
            fair: FairConfig {
                discipline: QueueDiscipline::Fifo,
                ..FairConfig::default()
            },
        };
        let fifo = Scheduler::new(sim(), SystemKind::SpeContext, fifo_cfg).run(&reqs);
        let fair = Scheduler::new(
            sim(),
            SystemKind::SpeContext,
            fair_cfg(PreemptionPolicy::DeficitRoundRobin),
        )
        .run(&reqs);
        let short_ttft = |rep: &ScheduleReport| {
            let v: Vec<f64> = rep
                .completed
                .iter()
                .filter(|c| c.request.tenant == 0)
                .map(CompletedRequest::time_to_first_token)
                .collect();
            assert_eq!(v.len(), 4);
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert_eq!(fifo.completed.len() + fifo.rejected, 10);
        assert_eq!(fair.completed.len() + fair.rejected, 10);
        assert!(
            fair.preemptions > 0,
            "saturated batch must trigger eviction"
        );
        assert!(
            short_ttft(&fair) < short_ttft(&fifo),
            "fair {} vs fifo {}",
            short_ttft(&fair),
            short_ttft(&fifo)
        );
    }

    #[test]
    fn preempted_requests_still_complete_with_all_tokens() {
        for policy in [
            PreemptionPolicy::LongestFirst,
            PreemptionPolicy::DeficitRoundRobin,
        ] {
            let reqs = two_tenant_trace();
            let rep = Scheduler::new(sim(), SystemKind::SpeContext, fair_cfg(policy)).run(&reqs);
            assert_eq!(rep.completed.len() + rep.rejected, reqs.len());
            for c in &rep.completed {
                assert!(c.preemptions <= FairConfig::default().max_preemptions);
                assert!(c.first_token >= c.start);
                assert!(c.finish >= c.first_token);
            }
        }
    }

    #[test]
    fn prefill_role_retires_requests_at_first_token() {
        let s = Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default());
        let mut state = BatchState::new();
        state.set_role(ReplicaRole::Prefill);
        assert_eq!(state.role(), ReplicaRole::Prefill);
        for req in trace(3, 0.1) {
            state.push(req);
        }
        let mut cache = StepCache::new();
        while state.has_work() {
            s.step(&mut state, &mut cache);
        }
        assert!(state.completed().is_empty(), "prefill engines never finish");
        assert!(state.has_handoffs());
        let handoffs = state.take_handoffs();
        assert_eq!(handoffs.len(), 3);
        assert!(!state.has_handoffs(), "take_handoffs drains");
        // Resident KV under the sparse budget: 2048 input + 1 produced,
        // capped at the 2048-token budget.
        let per_token = s.sim().memory_model().kv_token_total_bytes();
        for h in &handoffs {
            assert_eq!(h.restorable.produced, 1);
            assert_eq!(h.restorable.first_token, Some(h.emitted));
            assert!(h.restorable.start.is_some());
            assert_eq!(h.kv_bytes, 2048.0 * per_token);
        }
    }

    #[test]
    fn single_token_outputs_complete_on_the_prefill_engine() {
        let s = Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default());
        let mut state = BatchState::new();
        state.set_role(ReplicaRole::Prefill);
        state.push(Request::new(0, 0, 1024, 1, 0.0));
        let mut cache = StepCache::new();
        while state.has_work() {
            s.step(&mut state, &mut cache);
        }
        assert_eq!(state.completed().len(), 1);
        assert!(!state.has_handoffs(), "one-token outputs never pay the hop");
    }

    #[test]
    fn preloaded_handoffs_admit_free_and_keep_timing_history() {
        let s = Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default());
        // Produce one handoff on a prefill engine.
        let mut prefill = BatchState::new();
        prefill.set_role(ReplicaRole::Prefill);
        prefill.push(Request::new(0, 0, 2048, 64, 0.0));
        let mut cache = StepCache::new();
        while prefill.has_work() {
            s.step(&mut prefill, &mut cache);
        }
        let handoff = prefill.take_handoffs().pop().expect("one handoff");

        // Admit it preloaded on one decode engine and as a plain
        // restorable (PCIe-charged) on another: the preloaded engine
        // must finish strictly earlier, by exactly the restore time.
        let run = |preloaded: bool| {
            let mut state = BatchState::new();
            state.set_role(ReplicaRole::Decode);
            if preloaded {
                state.push_preloaded(handoff.restorable, handoff.emitted, &mut NullSink);
            } else {
                state.push_restorable(handoff.restorable, handoff.emitted, &mut NullSink);
            }
            let mut cache = StepCache::new();
            while state.has_work() {
                s.step(&mut state, &mut cache);
            }
            state.completed()[0]
        };
        let free = run(true);
        let paid = run(false);
        assert_eq!(free.first_token, handoff.restorable.first_token.unwrap());
        assert_eq!(free.request.output_len, 64);
        assert!(free.finish < paid.finish, "preloaded admission is free");
        assert_eq!(free.preemptions, 0);
    }

    #[test]
    fn traced_run_emits_matching_lifecycle_and_changes_nothing() {
        use spec_telemetry::RecordingSink;
        let s = Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default());
        let mut sink = RecordingSink::new();
        let report = s.run_traced(&trace(4, 0.1), &mut sink);
        let count =
            |pred: fn(&EventKind) -> bool| sink.events().iter().filter(|e| pred(&e.kind)).count();
        assert_eq!(count(|k| matches!(k, EventKind::Enqueued { .. })), 4);
        assert_eq!(count(|k| matches!(k, EventKind::Admitted { .. })), 4);
        assert_eq!(count(|k| matches!(k, EventKind::FirstToken { .. })), 4);
        assert_eq!(
            count(|k| matches!(k, EventKind::Completed { .. })),
            report.completed.len()
        );
        assert!(count(|k| matches!(k, EventKind::RunningBatch { .. })) > 0);
        // Tracing must not perturb the run.
        assert_eq!(s.run(&trace(4, 0.1)), report);
    }

    #[test]
    fn preemptions_emit_paired_checkpoint_and_restore() {
        use spec_telemetry::RecordingSink;
        let reqs = two_tenant_trace();
        let s = Scheduler::new(
            sim(),
            SystemKind::SpeContext,
            fair_cfg(PreemptionPolicy::DeficitRoundRobin),
        );
        let mut sink = RecordingSink::new();
        let report = s.run_traced(&reqs, &mut sink);
        let count =
            |pred: fn(&EventKind) -> bool| sink.events().iter().filter(|e| pred(&e.kind)).count();
        let preempted = count(|k| matches!(k, EventKind::Preempted { .. }));
        assert!(preempted > 0, "trace must trigger preemption");
        assert_eq!(
            preempted,
            count(|k| matches!(k, EventKind::CheckpointWritten { .. }))
        );
        // Every victim completes, so every checkpoint is restored.
        assert_eq!(
            preempted,
            count(|k| matches!(k, EventKind::Restored { .. }))
        );
        assert_eq!(report.preemptions, preempted);
    }

    #[test]
    fn checkpoint_restore_charges_the_victims() {
        // Preemption is not free: the evicted tenant pays the save and
        // restore transfers plus the wait, so its mean latency strictly
        // exceeds the no-preemption run's on the same trace. (Makespan is
        // *not* monotone — evictions change batch compositions and the
        // iteration-time integrand with them.)
        let reqs = two_tenant_trace();
        let none = Scheduler::new(
            sim(),
            SystemKind::SpeContext,
            fair_cfg(PreemptionPolicy::None),
        )
        .run(&reqs);
        let preempt = Scheduler::new(
            sim(),
            SystemKind::SpeContext,
            fair_cfg(PreemptionPolicy::LongestFirst),
        )
        .run(&reqs);
        assert!(preempt.preemptions > 0);
        let victim_latency = |rep: &ScheduleReport| {
            let v: Vec<f64> = rep
                .completed
                .iter()
                .filter(|c| c.request.tenant == 1)
                .map(CompletedRequest::latency)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            victim_latency(&preempt) > victim_latency(&none),
            "victims must pay: {} vs {}",
            victim_latency(&preempt),
            victim_latency(&none)
        );
    }
}
