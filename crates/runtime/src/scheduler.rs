//! Continuous-batching request scheduler — the serving system of the
//! paper's Fig. 3 ("Model, Requests → KV cache manager → hardware").
//!
//! Requests arrive over time; the scheduler admits them into the running
//! batch whenever the memory model allows (weights + per-request KV under
//! the system's placement policy), executes one decode iteration for the
//! whole batch, retires finished requests, and repeats. Iteration latency
//! comes from the same per-step dataflow timelines as the throughput
//! benches, so scheduler results and Table-3 results are mutually
//! consistent.

use crate::serving::{ServingSim, SystemKind, Workload};
use serde::{Deserialize, Serialize};

/// One serving request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Request id (unique per run).
    pub id: usize,
    /// Prompt tokens.
    pub input_len: usize,
    /// Tokens to generate.
    pub output_len: usize,
    /// Arrival time, seconds.
    pub arrival: f64,
}

/// A finished request with its timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedRequest {
    /// The request.
    pub request: Request,
    /// When decoding started (admission + prefill end).
    pub start: f64,
    /// When the last token was produced.
    pub finish: f64,
}

impl CompletedRequest {
    /// End-to-end latency (arrival to last token).
    pub fn latency(&self) -> f64 {
        self.finish - self.request.arrival
    }

    /// Queueing + prefill delay before decoding began.
    pub fn time_to_first_token(&self) -> f64 {
        self.start - self.request.arrival
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Hard cap on concurrent requests.
    pub max_batch: usize,
    /// Decode iterations between admission checks (1 = every step;
    /// larger values model chunked admission).
    pub admission_stride: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            admission_stride: 16,
        }
    }
}

/// A serving run's aggregate report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// Completed requests, in finish order.
    pub completed: Vec<CompletedRequest>,
    /// Total simulated time.
    pub makespan: f64,
    /// Output tokens per second over the whole run.
    pub throughput: f64,
    /// Mean end-to-end latency.
    pub mean_latency: f64,
    /// 95th-percentile latency.
    pub p95_latency: f64,
    /// Requests that could never be admitted (memory).
    pub rejected: usize,
}

/// The continuous-batching simulator, bound to a system and a
/// [`ServingSim`]'s model/device/budget.
#[derive(Debug, Clone)]
pub struct Scheduler {
    sim: ServingSim,
    system: SystemKind,
    cfg: SchedulerConfig,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    req: Request,
    produced: usize,
    start: f64,
}

impl Scheduler {
    /// Creates a scheduler for `system` on the given serving simulator.
    pub fn new(sim: ServingSim, system: SystemKind, cfg: SchedulerConfig) -> Self {
        Self { sim, system, cfg }
    }

    /// Runs the request trace to completion.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty or not sorted by arrival, or if
    /// the config's `admission_stride` is zero.
    pub fn run(&self, requests: &[Request]) -> ScheduleReport {
        assert!(!requests.is_empty(), "no requests");
        assert!(
            self.cfg.admission_stride > 0,
            "admission_stride must be positive"
        );
        assert!(
            requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "requests must be sorted by arrival"
        );
        let mut queue: std::collections::VecDeque<Request> = requests.iter().copied().collect();
        let mut running: Vec<Running> = Vec::new();
        let mut completed: Vec<CompletedRequest> = Vec::new();
        let mut rejected = 0usize;
        let mut now = 0.0f64;
        let mut iter = 0usize;

        while !queue.is_empty() || !running.is_empty() {
            // Admission.
            if iter.is_multiple_of(self.cfg.admission_stride) {
                while let Some(&head) = queue.front() {
                    if head.arrival > now && running.is_empty() {
                        now = head.arrival; // idle: jump to next arrival
                    }
                    if head.arrival > now || running.len() >= self.cfg.max_batch {
                        break;
                    }
                    if !self.admissible(&running, &head) {
                        if running.is_empty() {
                            // Can never run, even alone.
                            rejected += 1;
                            queue.pop_front();
                            continue;
                        }
                        break;
                    }
                    queue.pop_front();
                    now += self.prefill_time(&head);
                    running.push(Running {
                        req: head,
                        produced: 0,
                        start: now,
                    });
                }
            }
            if running.is_empty() {
                iter += 1;
                continue;
            }
            // One decode iteration for the whole batch.
            now += self.iteration_time(&running);
            iter += 1;
            for r in running.iter_mut() {
                r.produced += 1;
            }
            running.retain(|r| {
                if r.produced >= r.req.output_len {
                    completed.push(CompletedRequest {
                        request: r.req,
                        start: r.start,
                        finish: now,
                    });
                    false
                } else {
                    true
                }
            });
        }

        let total_tokens: usize = completed.iter().map(|c| c.request.output_len).sum();
        let mut latencies: Vec<f64> = completed.iter().map(CompletedRequest::latency).collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mean_latency = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
        let p95_latency = latencies
            .get(((latencies.len() as f64 * 0.95) as usize).min(latencies.len().saturating_sub(1)))
            .copied()
            .unwrap_or(0.0);
        ScheduleReport {
            makespan: now,
            throughput: if now > 0.0 {
                total_tokens as f64 / now
            } else {
                0.0
            },
            mean_latency,
            p95_latency,
            rejected,
            completed,
        }
    }

    /// Whether adding `req` to the running batch fits in GPU memory at
    /// the *final* lengths (conservative admission).
    fn admissible(&self, running: &[Running], req: &Request) -> bool {
        let mm = self.sim.memory_model();
        let max_len = running
            .iter()
            .map(|r| r.req.input_len + r.req.output_len)
            .chain([req.input_len + req.output_len])
            .max()
            .unwrap_or(0);
        let batch = running.len() + 1;
        match self.system {
            SystemKind::SpeContext => {
                // Adaptive placement: admissible if full offload fits.
                mm.m_part(batch, max_len, mm.layers, self.sim_budget()) <= mm.gpu_mem as f64
            }
            _ => mm.fits_all(batch, max_len),
        }
    }

    fn sim_budget(&self) -> usize {
        self.sim.budget()
    }

    fn prefill_time(&self, req: &Request) -> f64 {
        self.sim
            .throughput(self.system, &Workload::new(req.input_len, 1, 1))
            .prefill_s
    }

    /// Iteration latency at the current batch composition: the per-step
    /// dataflow timeline at the batch's mean sequence length.
    fn iteration_time(&self, running: &[Running]) -> f64 {
        let batch = running.len();
        let mean_len: usize = running
            .iter()
            .map(|r| r.req.input_len + r.produced)
            .sum::<usize>()
            / batch;
        self.sim.step_time(self.system, batch, mean_len, mean_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_hwsim::DeviceSpec;
    use spec_model::ModelConfig;

    fn sim() -> ServingSim {
        ServingSim::new(
            ModelConfig::deepseek_distill_llama_8b(),
            DeviceSpec::a100_80g(),
            2048,
        )
    }

    fn trace(n: usize, spacing: f64) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                id: i,
                input_len: 2048,
                output_len: 1024,
                arrival: i as f64 * spacing,
            })
            .collect()
    }

    #[test]
    fn all_requests_complete_in_fifo_friendly_trace() {
        let s = Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default());
        let report = s.run(&trace(8, 0.1));
        assert_eq!(report.completed.len(), 8);
        assert_eq!(report.rejected, 0);
        assert!(report.throughput > 0.0);
        for c in &report.completed {
            assert!(c.finish > c.start);
            assert!(c.start >= c.request.arrival);
        }
    }

    #[test]
    fn batching_system_outperforms_single_request_system() {
        let reqs = trace(6, 0.01);
        let ours =
            Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default()).run(&reqs);
        let quest_cfg = SchedulerConfig {
            max_batch: 1,
            ..SchedulerConfig::default()
        };
        let quest = Scheduler::new(sim(), SystemKind::Quest, quest_cfg).run(&reqs);
        assert!(
            ours.throughput > quest.throughput,
            "ours {} vs single-request {}",
            ours.throughput,
            quest.throughput
        );
        assert!(ours.mean_latency < quest.mean_latency);
    }

    #[test]
    fn memory_pressure_limits_full_attention_batch() {
        // Full attention at 33K final length cannot batch as deep as the
        // sparse system: its makespan suffers.
        let reqs: Vec<Request> = (0..8)
            .map(|i| Request {
                id: i,
                input_len: 2048,
                output_len: 31 * 1024,
                arrival: 0.0,
            })
            .collect();
        let full = Scheduler::new(
            sim(),
            SystemKind::FullFlashInfer,
            SchedulerConfig::default(),
        )
        .run(&reqs);
        let ours =
            Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default()).run(&reqs);
        assert!(ours.throughput > full.throughput);
    }

    #[test]
    fn oversized_requests_are_rejected_not_hung() {
        let reqs = vec![Request {
            id: 0,
            input_len: 10_000_000, // cannot fit even alone
            output_len: 10_000_000,
            arrival: 0.0,
        }];
        let s = Scheduler::new(
            sim(),
            SystemKind::FullFlashInfer,
            SchedulerConfig::default(),
        );
        let report = s.run(&reqs);
        assert_eq!(report.rejected, 1);
        assert!(report.completed.is_empty());
    }

    #[test]
    fn p95_at_least_mean() {
        let s = Scheduler::new(sim(), SystemKind::SpeContext, SchedulerConfig::default());
        let report = s.run(&trace(10, 0.5));
        assert!(report.p95_latency >= report.mean_latency * 0.5);
    }
}
